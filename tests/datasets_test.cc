// Tests for datasets/: schema statistics (Table II), benchmark generation
// invariants, and a parameterized sweep validating every generated gold
// query across all three datasets.

#include <gtest/gtest.h>

#include <set>

#include "datasets/dataset.h"
#include "datasets/name_pools.h"
#include "common/string_util.h"
#include "datasets/workload.h"
#include "qfg/fragment.h"
#include "sql/equivalence.h"
#include "sql/parser.h"

namespace templar::datasets {
namespace {

// Datasets are expensive to build; share one instance per suite.
const Dataset& GetDataset(const std::string& name) {
  static std::map<std::string, Dataset>* cache = [] {
    auto* m = new std::map<std::string, Dataset>();
    for (const char* n : {"mas", "yelp", "imdb"}) {
      auto ds = BuildByName(n);
      if (ds.ok()) m->emplace(n, std::move(*ds));
    }
    return m;
  }();
  auto it = cache->find(name);
  EXPECT_NE(it, cache->end()) << "dataset " << name << " failed to build";
  return it->second;
}

struct TableTwoCase {
  const char* name;
  int relations;
  int attributes;
  int fks;
  int queries;
};

class TableTwoTest : public ::testing::TestWithParam<TableTwoCase> {};

TEST_P(TableTwoTest, SchemaMatchesPaperStatistics) {
  const auto& c = GetParam();
  const Dataset& ds = GetDataset(c.name);
  EXPECT_EQ(static_cast<int>(ds.database->catalog().relations().size()),
            c.relations);
  EXPECT_EQ(static_cast<int>(ds.database->catalog().attribute_count()),
            c.attributes);
  EXPECT_EQ(static_cast<int>(ds.database->catalog().foreign_keys().size()),
            c.fks);
  EXPECT_EQ(static_cast<int>(ds.benchmark.size()), c.queries);
  EXPECT_EQ(ds.paper.relations, c.relations);
  EXPECT_EQ(ds.paper.attributes, c.attributes);
  EXPECT_EQ(ds.paper.fk_pk, c.fks);
  EXPECT_EQ(ds.paper.queries, c.queries);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableTwo, TableTwoTest,
    ::testing::Values(TableTwoCase{"mas", 17, 53, 19, 194},
                      TableTwoCase{"yelp", 7, 38, 7, 127},
                      TableTwoCase{"imdb", 16, 65, 20, 128}));

class DatasetInvariantsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetInvariantsTest, BenchmarkQueriesAreDistinct) {
  const Dataset& ds = GetDataset(GetParam());
  std::set<std::string> sqls;
  for (const auto& q : ds.benchmark) {
    EXPECT_TRUE(sqls.insert(q.gold_sql.ToString()).second)
        << "duplicate gold SQL: " << q.gold_sql.ToString();
  }
}

TEST_P(DatasetInvariantsTest, GoldSqlRoundTripsThroughParser) {
  const Dataset& ds = GetDataset(GetParam());
  for (const auto& q : ds.benchmark) {
    auto reparsed = sql::Parse(q.gold_sql.ToString());
    ASSERT_TRUE(reparsed.ok())
        << q.gold_sql.ToString() << " :: " << reparsed.status().ToString();
    EXPECT_TRUE(sql::QueriesEquivalent(*reparsed, q.gold_sql));
  }
}

TEST_P(DatasetInvariantsTest, GoldParseHasKeywordsAndFragments) {
  const Dataset& ds = GetDataset(GetParam());
  for (const auto& q : ds.benchmark) {
    EXPECT_FALSE(q.nlq.empty());
    EXPECT_FALSE(q.gold_parse.keywords.empty()) << q.nlq;
    EXPECT_EQ(q.gold_parse.keywords.size(), q.gold_fragments.size()) << q.nlq;
    for (const auto& kw : q.gold_parse.keywords) {
      EXPECT_TRUE(q.gold_fragments.count(kw.text))
          << q.nlq << " missing fragment for " << kw.text;
    }
  }
}

TEST_P(DatasetInvariantsTest, ValueKeywordsAreDigitFree) {
  // A digit inside a text-value keyword would reroute it into the numeric
  // mapping path; generators must keep entity names digit-free.
  const Dataset& ds = GetDataset(GetParam());
  for (const auto& q : ds.benchmark) {
    for (const auto& kw : q.gold_parse.keywords) {
      if (kw.metadata.context != qfg::FragmentContext::kWhere) continue;
      auto frag = q.gold_fragments.at(kw.text);
      if (frag.find('\'') == std::string::npos) continue;  // Numeric slot.
      EXPECT_FALSE(ContainsDigit(kw.text))
          << "value keyword with digit: '" << kw.text << "' in " << q.nlq;
    }
  }
}

TEST_P(DatasetInvariantsTest, ExtraLogParses) {
  const Dataset& ds = GetDataset(GetParam());
  EXPECT_GT(ds.extra_log.size(), 100u);
  for (const auto& entry : ds.extra_log) {
    EXPECT_TRUE(sql::Parse(entry).ok()) << entry;
  }
}

TEST_P(DatasetInvariantsTest, GoldFragmentsExtractableFromGoldSql) {
  // Every gold fragment must be present in the fragments of the gold SQL —
  // the consistency that makes the KW metric meaningful.
  const Dataset& ds = GetDataset(GetParam());
  for (const auto& q : ds.benchmark) {
    auto frags = qfg::ExtractFragments(q.gold_sql, qfg::ObscurityLevel::kFull);
    std::set<std::string> keys;
    for (const auto& f : frags) keys.insert(f.Key());
    for (const auto& [kw, frag_key] : q.gold_fragments) {
      EXPECT_TRUE(keys.count(frag_key))
          << "fragment " << frag_key << " for keyword '" << kw
          << "' not in gold SQL " << q.gold_sql.ToString();
    }
  }
}

TEST_P(DatasetInvariantsTest, DeterministicForSeed) {
  const char* name = GetParam();
  auto a = BuildByName(name);
  auto b = BuildByName(name);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->benchmark.size(), b->benchmark.size());
  for (size_t i = 0; i < a->benchmark.size(); ++i) {
    EXPECT_EQ(a->benchmark[i].nlq, b->benchmark[i].nlq);
    EXPECT_EQ(a->benchmark[i].gold_sql.ToString(),
              b->benchmark[i].gold_sql.ToString());
  }
  EXPECT_EQ(a->extra_log, b->extra_log);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetInvariantsTest,
                         ::testing::Values("mas", "yelp", "imdb"));

TEST(RegistryTest, UnknownNameRejected) {
  EXPECT_TRUE(BuildByName("oracle").status().IsNotFound());
}

TEST(RegistryTest, CaseInsensitiveLookup) {
  EXPECT_TRUE(BuildByName("MAS").ok());
}

TEST(NamePoolsTest, GeneratorsAreDigitFree) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(ContainsDigit(NamePools::PersonName(&rng)));
    EXPECT_FALSE(ContainsDigit(NamePools::PaperTitle(&rng)));
    EXPECT_FALSE(ContainsDigit(NamePools::MovieTitle(&rng)));
    EXPECT_FALSE(ContainsDigit(NamePools::BusinessName(&rng)));
  }
}

TEST(WorkloadGeneratorTest, SelfJoinShapeEmitsTwoValueKeywords) {
  const Dataset& ds = GetDataset("mas");
  bool found = false;
  for (const auto& q : ds.benchmark) {
    if (q.shape_id != "mas_papers_by_two_authors") continue;
    found = true;
    int where_keywords = 0;
    for (const auto& kw : q.gold_parse.keywords) {
      if (kw.metadata.context == qfg::FragmentContext::kWhere) {
        ++where_keywords;
      }
    }
    EXPECT_EQ(where_keywords, 2) << q.nlq;
    // The gold SQL must contain a genuine self-join (author twice).
    int author_count = 0;
    for (const auto& t : q.gold_sql.from) {
      if (t.table == "author") ++author_count;
    }
    EXPECT_EQ(author_count, 2) << q.gold_sql.ToString();
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadGeneratorTest, RejectsEmptyShapeList) {
  const Dataset& ds = GetDataset("mas");
  WorkloadGenerator gen(ds.database.get(), 1);
  EXPECT_TRUE(gen.GenerateBenchmark({}, 5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace templar::datasets
