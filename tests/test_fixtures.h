#ifndef TEMPLAR_TESTS_TEST_FIXTURES_H_
#define TEMPLAR_TESTS_TEST_FIXTURES_H_

/// \file test_fixtures.h
/// \brief A miniature academic database shared by core/nlidb/integration
/// tests: a cut-down MAS with publication/journal/conference/domain/keyword
/// and the decoy-vs-gold join routes from the paper's Examples 1-7.

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "embed/embedding_model.h"

namespace templar::testing {

/// \brief Builds the mini academic schema + a handful of rows.
///
/// Relations: author(aid,name,oid), organization(oid,name),
/// publication(pid,title,year,cid,jid,citation_num), conference(cid,name),
/// journal(jid,name), keyword(kid,keyword), domain(did,name),
/// writes(aid,pid), publication_keyword(pid,kid), domain_keyword(did,kid),
/// domain_conference(did,cid), domain_journal(did,jid).
/// The publication->domain gold route runs through keyword (4 edges) while
/// a shorter decoy runs through conference (3 edges), as in Example 6.
inline std::unique_ptr<db::Database> MakeMiniAcademicDb() {
  using db::AttributeDef;
  using db::DataType;
  using db::Value;
  auto FT = [](const char* n) {
    return AttributeDef{n, DataType::kText, false, true};
  };
  auto I = [](const char* n) {
    return AttributeDef{n, DataType::kInt, false, false};
  };
  auto PK = [](const char* n) {
    return AttributeDef{n, DataType::kInt, true, false};
  };

  auto db = std::make_unique<db::Database>("mini_academic");
  auto check = [](const Status& s) { assert(s.ok()); (void)s; };
  check(db->CreateRelation({"author", {PK("aid"), FT("name"), I("oid")}}));
  check(db->CreateRelation({"organization", {PK("oid"), FT("name")}}));
  check(db->CreateRelation(
      {"publication", {PK("pid"), FT("title"), I("year"), I("cid"), I("jid"),
                       I("citation_num")}}));
  check(db->CreateRelation({"conference", {PK("cid"), FT("name")}}));
  check(db->CreateRelation({"journal", {PK("jid"), FT("name")}}));
  check(db->CreateRelation({"keyword", {PK("kid"), FT("keyword")}}));
  check(db->CreateRelation({"domain", {PK("did"), FT("name")}}));
  check(db->CreateRelation({"writes", {I("aid"), I("pid")}}));
  check(db->CreateRelation({"publication_keyword", {I("pid"), I("kid")}}));
  check(db->CreateRelation({"domain_keyword", {I("did"), I("kid")}}));
  check(db->CreateRelation({"domain_conference", {I("did"), I("cid")}}));
  check(db->CreateRelation({"domain_journal", {I("did"), I("jid")}}));
  check(db->AddForeignKey({"author", "oid", "organization", "oid"}));
  check(db->AddForeignKey({"publication", "cid", "conference", "cid"}));
  check(db->AddForeignKey({"publication", "jid", "journal", "jid"}));
  check(db->AddForeignKey({"writes", "aid", "author", "aid"}));
  check(db->AddForeignKey({"writes", "pid", "publication", "pid"}));
  check(db->AddForeignKey({"publication_keyword", "pid", "publication", "pid"}));
  check(db->AddForeignKey({"publication_keyword", "kid", "keyword", "kid"}));
  check(db->AddForeignKey({"domain_keyword", "did", "domain", "did"}));
  check(db->AddForeignKey({"domain_keyword", "kid", "keyword", "kid"}));
  check(db->AddForeignKey({"domain_conference", "did", "domain", "did"}));
  check(db->AddForeignKey({"domain_conference", "cid", "conference", "cid"}));
  check(db->AddForeignKey({"domain_journal", "did", "domain", "did"}));
  check(db->AddForeignKey({"domain_journal", "jid", "journal", "jid"}));

  check(db->Insert("organization", {Value::Int(0), Value::Text("Northgate University")}));
  check(db->Insert("author", {Value::Int(0), Value::Text("John Fontaine"), Value::Int(0)}));
  check(db->Insert("author", {Value::Int(1), Value::Text("Jane Petrov"), Value::Int(0)}));
  check(db->Insert("conference", {Value::Int(0), Value::Text("ICDE")}));
  check(db->Insert("journal", {Value::Int(0), Value::Text("TKDE")}));
  check(db->Insert("domain", {Value::Int(0), Value::Text("Databases")}));
  check(db->Insert("domain", {Value::Int(1), Value::Text("Graphics")}));
  check(db->Insert("keyword", {Value::Int(0), Value::Text("Databases")}));
  check(db->Insert("keyword", {Value::Int(1), Value::Text("indexing")}));
  check(db->Insert("publication",
                   {Value::Int(0), Value::Text("Scalable Indexing for Databases"),
                    Value::Int(2003), Value::Int(0), Value::Null(), Value::Int(120)}));
  check(db->Insert("publication",
                   {Value::Int(1), Value::Text("Robust Query Processing"),
                    Value::Int(1998), Value::Null(), Value::Int(0), Value::Int(40)}));
  check(db->Insert("writes", {Value::Int(0), Value::Int(0)}));
  check(db->Insert("writes", {Value::Int(1), Value::Int(0)}));
  check(db->Insert("writes", {Value::Int(1), Value::Int(1)}));
  check(db->Insert("publication_keyword", {Value::Int(0), Value::Int(0)}));
  check(db->Insert("publication_keyword", {Value::Int(1), Value::Int(1)}));
  check(db->Insert("domain_keyword", {Value::Int(0), Value::Int(0)}));
  check(db->Insert("domain_keyword", {Value::Int(0), Value::Int(1)}));
  check(db->Insert("domain_conference", {Value::Int(1), Value::Int(0)}));
  check(db->Insert("domain_journal", {Value::Int(0), Value::Int(0)}));
  return db;
}

/// \brief A small lexicon with the Example-1 trap (papers ~ journal >
/// publication).
inline std::unique_ptr<embed::EmbeddingModel> MakeMiniLexicon() {
  auto model = std::make_unique<embed::EmbeddingModel>();
  model->AddSynonym("paper", "journal", 0.64);
  model->AddSynonym("paper", "publication", 0.58);
  model->AddSynonym("author", "name", 0.55);
  model->AddSynonym("after", "year", 0.50);
  return model;
}

/// \brief Log entries mirroring the paper's Fig. 3 workload: publication
/// titles frequently selected alongside journal-name and year predicates.
inline std::vector<std::string> MakeMiniLog() {
  std::vector<std::string> log;
  for (int i = 0; i < 5; ++i) {
    log.push_back(
        "SELECT p.title FROM publication p WHERE p.year > " +
        std::to_string(2000 + i));
  }
  for (int i = 0; i < 3; ++i) {
    log.push_back(
        "SELECT p.title FROM journal j, publication p WHERE j.name = 'TKDE' "
        "AND p.jid = j.jid AND p.year > 199" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {
    log.push_back(
        "SELECT p.title FROM publication p, publication_keyword pk, keyword "
        "k, domain_keyword dk, domain d WHERE d.name = 'Databases' AND "
        "pk.pid = p.pid AND pk.kid = k.kid AND dk.kid = k.kid AND dk.did = "
        "d.did");
  }
  for (int i = 0; i < 25; ++i) {
    log.push_back("SELECT j.name FROM journal j");
  }
  return log;
}

}  // namespace templar::testing

#endif  // TEMPLAR_TESTS_TEST_FIXTURES_H_
