// Integration tests: the paper's worked examples end to end over the full
// MAS dataset and cross-module behaviours that unit tests cannot cover.

#include <gtest/gtest.h>

#include <set>

#include "datasets/dataset.h"
#include "eval/evaluator.h"
#include "nlidb/nlidb.h"
#include "sql/equivalence.h"
#include "sql/parser.h"

namespace templar {
namespace {

class MasIntegrationTest : public ::testing::Test {
 protected:
  static const datasets::Dataset& Mas() {
    static datasets::Dataset* ds = [] {
      auto built = datasets::BuildMas();
      EXPECT_TRUE(built.ok()) << built.status().ToString();
      return new datasets::Dataset(std::move(*built));
    }();
    return *ds;
  }

  static std::unique_ptr<nlidb::PipelineSystem> BuildSystem(bool augmented) {
    nlidb::PipelineConfig config;
    config.templar_keywords = augmented;
    config.templar_joins = augmented;
    auto sys = nlidb::PipelineSystem::Build(Mas().database.get(),
                                            Mas().lexicon.get(),
                                            Mas().extra_log, config);
    EXPECT_TRUE(sys.ok());
    return std::move(*sys);
  }

  static nlq::ParsedNlq HandParse(
      std::initializer_list<nlq::AnnotatedKeyword> keywords,
      const std::string& original) {
    nlq::ParsedNlq parsed;
    parsed.original = original;
    parsed.keywords = keywords;
    return parsed;
  }

  static nlq::AnnotatedKeyword Select(const std::string& text) {
    nlq::AnnotatedKeyword kw;
    kw.text = text;
    kw.metadata.context = qfg::FragmentContext::kSelect;
    return kw;
  }

  static nlq::AnnotatedKeyword Where(const std::string& text,
                                     sql::BinaryOp op = sql::BinaryOp::kEq) {
    nlq::AnnotatedKeyword kw;
    kw.text = text;
    kw.metadata.context = qfg::FragmentContext::kWhere;
    kw.metadata.op = op;
    return kw;
  }
};

TEST_F(MasIntegrationTest, Example1KeywordTrapFixedByLog) {
  auto parsed = HandParse({Select("papers"), Where("Databases")},
                          "Find papers in the Databases domain");
  auto baseline = BuildSystem(false)->Translate(parsed);
  auto augmented = BuildSystem(true)->Translate(parsed);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(augmented.ok());
  // Baseline: "papers" lands on journal (the embedding trap).
  EXPECT_EQ(baseline->configuration.mappings[0].candidate.relation,
            "journal");
  // Augmented: publication.title, joined to domain via keyword (Example 6).
  EXPECT_EQ(augmented->configuration.mappings[0].candidate.relation,
            "publication");
  std::set<std::string> rels(augmented->join_path.relations.begin(),
                             augmented->join_path.relations.end());
  EXPECT_TRUE(rels.count("publication_keyword"))
      << augmented->join_path.ToString();
  EXPECT_TRUE(rels.count("domain_keyword"));
  EXPECT_FALSE(rels.count("conference"));
}

TEST_F(MasIntegrationTest, Example4PapersAfterYear) {
  auto parsed = HandParse({Select("papers"),
                           Where("after 2000", sql::BinaryOp::kGt)},
                          "Return the papers after 2000");
  auto augmented = BuildSystem(true)->Translate(parsed);
  ASSERT_TRUE(augmented.ok());
  auto expected = sql::Parse(
      "SELECT title FROM publication WHERE year > 2000");
  EXPECT_TRUE(sql::QueriesEquivalent(augmented->query, *expected))
      << augmented->query.ToString();
}

TEST_F(MasIntegrationTest, Example7SelfJoin) {
  // Two author names that exist in the generated data.
  db::Executor ex(Mas().database.get());
  auto names = ex.DistinctValues("author", "name", 2);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  std::string john = (*names)[0].ToString();
  std::string jane = (*names)[1].ToString();

  auto parsed = HandParse({Select("papers"), Where(john), Where(jane)},
                          "Find papers written by both " + john + " and " +
                              jane);
  auto augmented = BuildSystem(true)->Translate(parsed);
  ASSERT_TRUE(augmented.ok());
  int author_instances = 0;
  int writes_instances = 0;
  for (const auto& t : augmented->query.from) {
    if (t.table == "author") ++author_instances;
    if (t.table == "writes") ++writes_instances;
  }
  EXPECT_EQ(author_instances, 2) << augmented->query.ToString();
  EXPECT_EQ(writes_instances, 2) << augmented->query.ToString();
}

TEST_F(MasIntegrationTest, SectionIiiFExampleProducesRankedCandidates) {
  // "Return the papers after 2000": the candidate list must include both
  // the journal.name and publication.title interpretations (Sec. III-F).
  auto parsed = HandParse({Select("papers"),
                           Where("after 2000", sql::BinaryOp::kGt)},
                          "Return the papers after 2000");
  auto all = BuildSystem(true)->TranslateAll(parsed);
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->size(), 2u);
  std::set<std::string> selects;
  for (const auto& t : *all) {
    for (const auto& item : t.query.select) {
      selects.insert(graph::BaseRelationName(item.column.relation) + "." +
                     item.column.column);
    }
  }
  EXPECT_TRUE(selects.count("publication.title"));
}

TEST_F(MasIntegrationTest, AugmentedBeatsBaselineOnHeldOutFold) {
  // A fast two-fold evaluation over a 40-query slice of the benchmark.
  datasets::Dataset slice;
  slice.name = "mas-slice";
  auto full = datasets::BuildMas();
  ASSERT_TRUE(full.ok());
  slice.database = std::move(full->database);
  slice.lexicon = std::move(full->lexicon);
  slice.wordnet = std::move(full->wordnet);
  slice.extra_log = full->extra_log;
  slice.benchmark.assign(full->benchmark.begin(),
                         full->benchmark.begin() + 40);
  eval::EvalOptions options;
  options.folds = 2;
  auto base = eval::EvaluateSystem(slice, eval::SystemKind::kPipeline, options);
  auto plus =
      eval::EvaluateSystem(slice, eval::SystemKind::kPipelinePlus, options);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(plus.ok());
  EXPECT_GT(plus->scores.FqPct(), base->scores.FqPct());
  EXPECT_GE(plus->scores.KwPct(), base->scores.KwPct());
}

TEST_F(MasIntegrationTest, ObscurityLevelsAllBuild) {
  // All three obscurity levels index the same log without error and can
  // translate the running example (the paper reports all three improve on
  // the baseline; the ablation bench quantifies it).
  for (auto level : {qfg::ObscurityLevel::kFull, qfg::ObscurityLevel::kNoConst,
                     qfg::ObscurityLevel::kNoConstOp}) {
    nlidb::PipelineConfig config;
    config.templar_keywords = true;
    config.templar_joins = true;
    config.templar.obscurity = level;
    auto sys = nlidb::PipelineSystem::Build(Mas().database.get(),
                                            Mas().lexicon.get(),
                                            Mas().extra_log, config);
    ASSERT_TRUE(sys.ok());
    auto parsed = HandParse({Select("papers"), Where("Databases")}, "x");
    EXPECT_TRUE((*sys)->Translate(parsed).ok())
        << qfg::ObscurityLevelToString(level);
  }
}

}  // namespace
}  // namespace templar
