// Append-storm differential suite for decisive-edge cache footprints.
//
// The one failure mode a per-fragment footprint must never have is
// under-reporting: a cached ranking surviving an append that would have
// changed its recompute. The decisive-edge footprint is deliberately much
// smaller than the set of weights the Steiner search *consulted*, so this
// suite replays sustained append storms against all three benchmark
// datasets and asserts, after every single append batch, that whatever the
// caches serve is byte-identical to a recompute-from-scratch oracle — a
// bare core::Templar with no caches, appended in lockstep.
//
// The storm also proves the point of the change quantitatively: the
// decisive service must retain strictly more join-cache entries across the
// storm than the consult-everything reference, while serving identical
// rankings.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/templar.h"
#include "datasets/dataset.h"
#include "db/database.h"
#include "nlidb/nlidb.h"
#include "service/templar_service.h"

namespace templar::service {
namespace {

// Datasets are expensive to build; share one instance per process.
const datasets::Dataset& GetDataset(const std::string& name) {
  static std::map<std::string, datasets::Dataset>* cache = [] {
    auto* m = new std::map<std::string, datasets::Dataset>();
    for (const char* n : {"mas", "yelp", "imdb"}) {
      auto ds = datasets::BuildByName(n);
      if (ds.ok()) m->emplace(n, std::move(*ds));
    }
    return m;
  }();
  auto it = cache->find(name);
  EXPECT_NE(it, cache->end()) << "dataset " << name << " failed to build";
  return it->second;
}

std::string Fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Byte-exact serialization of a join ranking (identity + exact score).
std::string SerializeJoinPaths(const std::vector<graph::JoinPath>& paths) {
  std::string out;
  for (const auto& p : paths) {
    out += p.ToString();
    out += " score=" + Fmt(p.score) + "\n";
  }
  return out;
}

// Byte-exact serialization of a translation ranking.
std::string SerializeTranslations(const std::vector<nlidb::Translation>& ts,
                                  size_t limit) {
  std::string out;
  for (size_t i = 0; i < ts.size() && i < limit; ++i) {
    out += ts[i].query.ToString();
    out += " score=" + Fmt(ts[i].score);
    out += ts[i].tie_for_first ? " tie\n" : "\n";
  }
  return out;
}

// Strips a fork-instance suffix: "author#1" -> "author".
std::string BaseRelation(const std::string& instance) {
  size_t pos = instance.find('#');
  return pos == std::string::npos ? instance : instance.substr(0, pos);
}

// The relation bag a gold query's FROM clause implies, with fork-style
// instance naming for self-joins — the same shape Configuration::RelationBag
// produces.
std::vector<std::string> BagFromGoldSql(const sql::SelectQuery& q) {
  std::map<std::string, int> seen;
  std::vector<std::string> bag;
  for (const auto& t : q.from) {
    int n = seen[t.table]++;
    bag.push_back(n == 0 ? t.table : t.table + "#" + std::to_string(n));
  }
  return bag;
}

constexpr size_t kTranslateProbes = 6;
constexpr size_t kJoinProbes = 10;
constexpr size_t kStormRounds = 5;
constexpr size_t kBatchSize = 4;
constexpr size_t kTopK = 3;

class AppendStormTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AppendStormTest, CachedRankingsMatchRecomputeFromScratch) {
  const datasets::Dataset& ds = GetDataset(GetParam());
  ASSERT_GE(ds.extra_log.size(), kStormRounds * kBatchSize * 2)
      << "not enough extra log to stage a storm";

  // Initial log: every gold SQL plus the front half of the extra log; the
  // storm replays the back half in batches.
  std::vector<std::string> initial;
  for (const auto& q : ds.benchmark) initial.push_back(q.gold_sql.ToString());
  const size_t half = ds.extra_log.size() / 2;
  initial.insert(initial.end(), ds.extra_log.begin(),
                 ds.extra_log.begin() + half);

  ServiceOptions decisive_options;
  decisive_options.worker_threads = 1;
  auto decisive = TemplarService::Create(ds.database.get(), ds.lexicon.get(),
                                         initial, decisive_options);
  ASSERT_TRUE(decisive.ok()) << decisive.status().ToString();

  ServiceOptions consult_options;
  consult_options.worker_threads = 1;
  consult_options.templar.joins.consult_everything_footprint = true;
  auto consult = TemplarService::Create(ds.database.get(), ds.lexicon.get(),
                                        initial, consult_options);
  ASSERT_TRUE(consult.ok()) << consult.status().ToString();

  // The oracle: no caches, so every answer is recompute-from-scratch.
  auto oracle =
      core::Templar::Build(ds.database.get(), ds.lexicon.get(), initial);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  // Probes: distinct multi-relation bags from the gold FROM clauses, and
  // the first few benchmark parses end-to-end.
  std::vector<std::vector<std::string>> bags;
  std::set<std::string> bag_keys;
  for (const auto& q : ds.benchmark) {
    if (bags.size() >= kJoinProbes) break;
    auto bag = BagFromGoldSql(q.gold_sql);
    if (bag.size() < 2) continue;
    std::string key;
    for (const auto& r : bag) key += r + ",";
    if (bag_keys.insert(key).second) bags.push_back(std::move(bag));
  }
  ASSERT_GE(bags.size(), 3u);
  std::vector<const nlq::ParsedNlq*> parses;
  for (const auto& q : ds.benchmark) {
    if (parses.size() >= kTranslateProbes) break;
    parses.push_back(&q.gold_parse);
  }

  auto replay = [&](const char* stage) {
    for (const auto& bag : bags) {
      auto oracle_paths = (*oracle)->InferJoins(bag);
      auto decisive_paths = (*decisive)->InferJoins(bag);
      auto consult_paths = (*consult)->InferJoins(bag);
      ASSERT_EQ(oracle_paths.ok(), decisive_paths.ok()) << stage;
      ASSERT_EQ(oracle_paths.ok(), consult_paths.ok()) << stage;
      if (!oracle_paths.ok()) continue;
      const std::string want = SerializeJoinPaths(*oracle_paths);
      EXPECT_EQ(SerializeJoinPaths(*decisive_paths), want)
          << stage << ": decisive-footprint cache served a stale join "
          << "ranking for bag " << bag[0] << "+" << bag.size() - 1;
      EXPECT_EQ(SerializeJoinPaths(*consult_paths), want)
          << stage << ": consult-everything reference diverged for bag "
          << bag[0];
    }
    for (const nlq::ParsedNlq* parsed : parses) {
      auto want = nlidb::TranslateAllWithTemplar(**oracle, *parsed, {});
      auto got = (*decisive)->Translate(
          QueryRequest::Translation(*parsed, kTopK));
      ASSERT_EQ(want.ok(), got.ok())
          << stage << " nlq '" << parsed->original
          << "': " << (want.ok() ? got.status() : want.status()).ToString();
      if (!want.ok()) continue;
      EXPECT_EQ(SerializeTranslations(got->translations, kTopK),
                SerializeTranslations(*want, kTopK))
          << stage << ": cached translation went stale for '"
          << parsed->original << "'";
    }
  };

  replay("warmup");

  size_t appended = 0;
  for (size_t round = 0; round < kStormRounds; ++round) {
    std::vector<std::string> batch(
        ds.extra_log.begin() + half + round * kBatchSize,
        ds.extra_log.begin() + half + (round + 1) * kBatchSize);
    auto a = (*decisive)->AppendLogQueries(batch);
    auto b = (*consult)->AppendLogQueries(batch);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->appended, batch.size());
    ASSERT_EQ(b->appended, batch.size());
    for (const auto& sql_text : batch) {
      ASSERT_TRUE((*oracle)->AppendLogQuery(sql_text).ok()) << sql_text;
    }
    appended += batch.size();
    replay(("round " + std::to_string(round)).c_str());
  }
  ASSERT_EQ(appended, kStormRounds * kBatchSize);

  // Workload-stream appends hammer the schema's hub relations, so both
  // footprint modes may legitimately evict everything above. The retention
  // advantage shows on *narrow* appends: a key scan over a relation that
  // few (ideally no) probes' decisive sets touch. Collect each probe's
  // decisive relation set, pick the catalog relation with minimal overlap,
  // and storm it — decisive entries outside the overlap must survive, while
  // consult-everything entries (which recorded nearly the whole graph) die.
  std::vector<std::set<std::string>> probe_rels;
  for (const auto& bag : bags) {
    auto paths = (*oracle)->InferJoins(bag);
    if (!paths.ok() || paths->empty()) continue;
    std::set<std::string> rels;
    for (const auto& e : paths->front().decisive_edges) {
      rels.insert(BaseRelation(e.fk_relation));
      rels.insert(BaseRelation(e.pk_relation));
    }
    probe_rels.push_back(std::move(rels));
  }
  ASSERT_FALSE(probe_rels.empty());
  const db::RelationDef* narrow_rel = nullptr;
  size_t best_overlap = probe_rels.size();
  for (const auto& rel : ds.database->catalog().relations()) {
    if (rel.attributes.empty()) continue;
    size_t overlap = 0;
    for (const auto& rels : probe_rels) overlap += rels.count(rel.name);
    if (overlap < best_overlap) {
      best_overlap = overlap;
      narrow_rel = &rel;
    }
  }
  if (narrow_rel == nullptr) {
    GTEST_SKIP() << "every catalog relation is decisive for every probe; "
                 << "no narrow append available";
  }
  std::vector<std::string> narrow = {
      "SELECT t0." + narrow_rel->attributes.front().name + " FROM " +
      narrow_rel->name + " t0"};

  // Re-warm (the last replay left both join caches fully populated), then
  // one narrow batch and a final differential replay.
  uint64_t decisive_retained_before =
      (*decisive)->Stats().join_cache.retained;
  uint64_t consult_invalidated_before =
      (*consult)->Stats().join_cache.invalidated;
  auto na = (*decisive)->AppendLogQueries(narrow);
  auto nb = (*consult)->AppendLogQueries(narrow);
  ASSERT_TRUE(na.ok() && nb.ok());
  ASSERT_EQ(na->appended, narrow.size());
  ASSERT_EQ(nb->appended, narrow.size());
  for (const auto& sql_text : narrow) {
    ASSERT_TRUE((*oracle)->AppendLogQuery(sql_text).ok()) << sql_text;
  }
  replay("narrow storm");

  // The storm's verdict: identical rankings throughout, and on the narrow
  // batch the decisive footprints kept joins warm that consult-everything
  // footprints threw away.
  ServiceStats ds_stats = (*decisive)->Stats();
  ServiceStats cs_stats = (*consult)->Stats();
  EXPECT_GT(ds_stats.join_cache.retained, decisive_retained_before)
      << "decisive join footprints should survive a narrow append";
  EXPECT_GT(cs_stats.join_cache.invalidated, consult_invalidated_before)
      << "consult-everything footprints were expected to intersect the "
      << "narrow append (is the schema disconnected?)";
  EXPECT_GT(ds_stats.join_cache.retained, cs_stats.join_cache.retained);
  EXPECT_GE(ds_stats.translate_cache.retained,
            cs_stats.translate_cache.retained);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, AppendStormTest,
                         ::testing::Values("mas", "imdb", "yelp"));

}  // namespace
}  // namespace templar::service
