// Unit tests for nlidb/: SQL assembly and the Pipeline / NaLIR systems.

#include <gtest/gtest.h>

#include "nlidb/nlidb.h"
#include "nlidb/sql_assembler.h"
#include "sql/equivalence.h"
#include "sql/parser.h"
#include "test_fixtures.h"

namespace templar::nlidb {
namespace {

core::FragmentMapping AttrMapping(const char* rel, const char* attr,
                                  std::vector<sql::AggFunc> aggs = {},
                                  bool group_by = false) {
  core::FragmentMapping m;
  m.candidate.kind = core::CandidateMapping::Kind::kAttribute;
  m.candidate.relation = rel;
  m.candidate.attribute = attr;
  m.candidate.aggs = std::move(aggs);
  m.candidate.group_by = group_by;
  m.candidate.fragment = qfg::SelectFragment(rel, attr, m.candidate.aggs);
  return m;
}

core::FragmentMapping PredMapping(const char* rel, const char* attr,
                                  sql::Literal value,
                                  sql::BinaryOp op = sql::BinaryOp::kEq) {
  core::FragmentMapping m;
  m.candidate.kind = core::CandidateMapping::Kind::kPredicate;
  m.candidate.relation = rel;
  m.candidate.attribute = attr;
  m.candidate.op = op;
  m.candidate.value = std::move(value);
  m.candidate.fragment = qfg::WhereFragment(m.candidate.ToPredicate(),
                                            qfg::ObscurityLevel::kFull);
  return m;
}

graph::JoinPath PathOf(std::vector<graph::SchemaEdge> edges,
                       std::vector<std::string> relations) {
  graph::JoinPath jp;
  jp.edges = std::move(edges);
  jp.relations = std::move(relations);
  return jp;
}

TEST(SqlAssemblerTest, SimpleProjectionAndPredicate) {
  core::Configuration config;
  config.mappings = {AttrMapping("publication", "title"),
                     PredMapping("publication", "year",
                                 sql::Literal::Int(2000), sql::BinaryOp::kGt)};
  auto q = AssembleSql(config, PathOf({}, {"publication"}));
  ASSERT_TRUE(q.ok());
  auto expected =
      sql::Parse("SELECT publication.title FROM publication WHERE "
                 "publication.year > 2000");
  EXPECT_TRUE(sql::QueriesEquivalent(*q, *expected)) << q->ToString();
}

TEST(SqlAssemblerTest, JoinConditionsEmitted) {
  core::Configuration config;
  config.mappings = {AttrMapping("publication", "title"),
                     PredMapping("journal", "name",
                                 sql::Literal::String("TKDE"))};
  auto q = AssembleSql(
      config, PathOf({{"publication", "jid", "journal", "jid"}},
                     {"journal", "publication"}));
  ASSERT_TRUE(q.ok());
  auto expected = sql::Parse(
      "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' "
      "AND p.jid = j.jid");
  EXPECT_TRUE(sql::QueriesEquivalent(*q, *expected)) << q->ToString();
}

TEST(SqlAssemblerTest, SelfJoinAliasesUniqueAndWiredCorrectly) {
  core::Configuration config;
  config.mappings = {AttrMapping("publication", "title"),
                     PredMapping("author", "name", sql::Literal::String("John")),
                     PredMapping("author", "name", sql::Literal::String("Jane"))};
  auto q = AssembleSql(
      config,
      PathOf({{"writes", "aid", "author", "aid"},
              {"writes", "pid", "publication", "pid"},
              {"writes#1", "aid", "author#1", "aid"},
              {"writes#1", "pid", "publication", "pid"}},
             {"author", "author#1", "publication", "writes", "writes#1"}));
  ASSERT_TRUE(q.ok());
  auto expected = sql::Parse(
      "SELECT p.title FROM author a1, author a2, publication p, writes w1, "
      "writes w2 WHERE a1.name = 'John' AND a2.name = 'Jane' AND a1.aid = "
      "w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid");
  EXPECT_TRUE(sql::QueriesEquivalent(*q, *expected)) << q->ToString();
  // Every alias distinct.
  std::set<std::string> names;
  for (const auto& t : q->from) {
    EXPECT_TRUE(names.insert(t.EffectiveName()).second) << q->ToString();
  }
}

TEST(SqlAssemblerTest, AliasPrefixesNeverCollideAcrossRelations) {
  // domain and domain_keyword both duplicated: tags must differ.
  core::Configuration config;
  config.mappings = {AttrMapping("keyword", "keyword"),
                     PredMapping("domain", "name", sql::Literal::String("A")),
                     PredMapping("domain", "name", sql::Literal::String("B"))};
  auto q = AssembleSql(
      config,
      PathOf({{"domain_keyword", "did", "domain", "did"},
              {"domain_keyword", "kid", "keyword", "kid"},
              {"domain_keyword#1", "did", "domain#1", "did"},
              {"domain_keyword#1", "kid", "keyword", "kid"}},
             {"domain", "domain#1", "domain_keyword", "domain_keyword#1",
              "keyword"}));
  ASSERT_TRUE(q.ok());
  std::set<std::string> names;
  for (const auto& t : q->from) {
    EXPECT_TRUE(names.insert(t.EffectiveName()).second) << q->ToString();
  }
  // No degenerate self-equality join predicates.
  for (const auto& p : q->where) {
    if (p.IsJoin()) {
      EXPECT_NE(p.lhs.ToString(), p.rhs_column().ToString()) << q->ToString();
    }
  }
}

TEST(SqlAssemblerTest, AggregateTriggersAutoGrouping) {
  core::Configuration config;
  config.mappings = {AttrMapping("author", "name"),
                     AttrMapping("publication", "pid",
                                 {sql::AggFunc::kCount})};
  auto q = AssembleSql(
      config, PathOf({{"writes", "aid", "author", "aid"},
                      {"writes", "pid", "publication", "pid"}},
                     {"author", "publication", "writes"}));
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0].column, "name");
}

TEST(SqlAssemblerTest, PredicatesOnlyProjectsStar) {
  core::Configuration config;
  config.mappings = {PredMapping("journal", "name",
                                 sql::Literal::String("TKDE"))};
  graph::JoinPath jp = PathOf({}, {"journal"});
  jp.terminals = {"journal"};
  auto q = AssembleSql(config, jp);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].column.column, "*");
}

TEST(SqlAssemblerTest, MissingInstanceFails) {
  core::Configuration config;
  config.mappings = {AttrMapping("publication", "title")};
  EXPECT_TRUE(
      AssembleSql(config, PathOf({}, {"journal"})).status().IsNotFound());
  EXPECT_TRUE(AssembleSql(config, PathOf({}, {}))
                  .status()
                  .IsInvalidArgument());
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniAcademicDb();
    lexicon_ = testing::MakeMiniLexicon();
    log_ = testing::MakeMiniLog();
  }

  nlq::ParsedNlq PapersInDatabases() {
    nlq::ParsedNlq parsed;
    parsed.original = "Return the papers in the Databases domain";
    nlq::AnnotatedKeyword papers;
    papers.text = "papers";
    papers.metadata.context = qfg::FragmentContext::kSelect;
    nlq::AnnotatedKeyword value;
    value.text = "Databases";
    value.metadata.context = qfg::FragmentContext::kWhere;
    value.metadata.op = sql::BinaryOp::kEq;
    parsed.keywords = {papers, value};
    return parsed;
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<embed::EmbeddingModel> lexicon_;
  std::vector<std::string> log_;
};

TEST_F(SystemTest, BaselineFallsIntoTrap) {
  PipelineConfig config;  // Baseline: no Templar.
  auto sys = PipelineSystem::Build(db_.get(), lexicon_.get(), log_, config);
  ASSERT_TRUE(sys.ok());
  auto t = (*sys)->Translate(PapersInDatabases());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->configuration.mappings[0].candidate.relation, "journal");
}

TEST_F(SystemTest, AugmentedRecoversExample1) {
  PipelineConfig config;
  config.templar_keywords = true;
  config.templar_joins = true;
  auto sys = PipelineSystem::Build(db_.get(), lexicon_.get(), log_, config);
  ASSERT_TRUE(sys.ok());
  auto t = (*sys)->Translate(PapersInDatabases());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->configuration.mappings[0].candidate.relation, "publication");
  // Join path must use the keyword route (Example 6's gold).
  std::set<std::string> rels(t->join_path.relations.begin(),
                             t->join_path.relations.end());
  EXPECT_TRUE(rels.count("keyword")) << t->join_path.ToString();
  auto expected = sql::Parse(
      "SELECT p.title FROM publication p, publication_keyword pk, keyword "
      "k, domain_keyword dk, domain d WHERE d.name = 'Databases' AND p.pid "
      "= pk.pid AND k.kid = pk.kid AND dk.kid = k.kid AND dk.did = d.did");
  EXPECT_TRUE(sql::QueriesEquivalent(t->query, *expected)) << t->query.ToString();
}

TEST_F(SystemTest, TranslateAllRanksDescending) {
  PipelineConfig config;
  config.templar_keywords = true;
  auto sys = PipelineSystem::Build(db_.get(), lexicon_.get(), log_, config);
  ASSERT_TRUE(sys.ok());
  auto all = (*sys)->TranslateAll(PapersInDatabases());
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->size(), 2u);
  for (size_t i = 1; i < all->size(); ++i) {
    EXPECT_LE((*all)[i].score, (*all)[i - 1].score);
  }
}

TEST_F(SystemTest, NalirParsesAndTranslates) {
  NalirConfig config;
  config.parser_noise = 0.0;  // Clean parser for determinism here.
  auto sys = NalirSystem::Build(db_.get(), lexicon_.get(), log_, config);
  ASSERT_TRUE(sys.ok());
  auto t = (*sys)->Translate("Return the authors");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->query.select.empty());
}

TEST_F(SystemTest, NalirNoiseIsDeterministic) {
  NalirConfig config;
  config.parser_noise = 0.5;
  auto sys = NalirSystem::Build(db_.get(), lexicon_.get(), log_, config);
  ASSERT_TRUE(sys.ok());
  auto a = (*sys)->TranslateParsed(PapersInDatabases());
  auto b = (*sys)->TranslateParsed(PapersInDatabases());
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_EQ(a->query.ToString(), b->query.ToString());
  }
}

TEST_F(SystemTest, TieDetectionOnSymmetricAmbiguity) {
  // Two exact-match candidates with symmetric log evidence and identical
  // join shapes tie for first; the paper counts that as incorrect.
  PipelineConfig config;
  auto sys = PipelineSystem::Build(db_.get(), lexicon_.get(), {}, config);
  ASSERT_TRUE(sys.ok());
  nlq::ParsedNlq parsed;
  parsed.original = "databases";
  nlq::AnnotatedKeyword kw;
  kw.text = "Databases";
  kw.metadata.context = qfg::FragmentContext::kWhere;
  kw.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {kw};
  auto t = (*sys)->Translate(parsed);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->tie_for_first);
}

}  // namespace
}  // namespace templar::nlidb
