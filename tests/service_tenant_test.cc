// Tests for the multi-tenant serving layer: AdmissionController counter
// contracts, FairShareScheduler dispatch (queue-depth rejection, in-flight
// caps, hot-tenant non-starvation), ServiceHost registry lifecycle and
// cache-budget partitioning, typed kOverloaded rejections, and the
// cross-tenant isolation differential test (two tenants with overlapping
// relation names: appends on one never touch the other's caches, and
// rankings stay byte-identical to isolated single-tenant runs).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/templar_service.h"
#include "service/tenant_registry.h"
#include "test_fixtures.h"

namespace templar::service {
namespace {

using core::Configuration;
using graph::JoinPath;

// Spin-waits (with a deadline) until `predicate` holds; returns whether it
// did. Used to cross thread-scheduling boundaries deterministically.
template <typename Fn>
bool EventuallyTrue(Fn&& predicate,
                    std::chrono::milliseconds deadline =
                        std::chrono::milliseconds(5000)) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::yield();
  }
  return true;
}

// ---------------------------------------------------------------------------
// AdmissionController

TEST(AdmissionControllerTest, InflightCapRejectsBeyondLimitAndReconciles) {
  AdmissionController ctl(AdmissionOptions{/*max_inflight=*/2,
                                           /*max_queued=*/0});
  EXPECT_TRUE(ctl.AdmitInflight());
  EXPECT_TRUE(ctl.AdmitInflight());
  EXPECT_FALSE(ctl.AdmitInflight()) << "third concurrent request is over cap";

  AdmissionStats stats = ctl.Stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.inflight, 2u);

  ctl.Release();
  EXPECT_TRUE(ctl.AdmitInflight()) << "released slot is reusable";
  ctl.Release();
  ctl.Release();
  stats = ctl.Stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.completed, stats.admitted);
}

TEST(AdmissionControllerTest, QueueCapRejectsBeyondLimit) {
  AdmissionController ctl(AdmissionOptions{/*max_inflight=*/1,
                                           /*max_queued=*/2});
  EXPECT_TRUE(ctl.AdmitQueued());
  EXPECT_TRUE(ctl.AdmitQueued());
  EXPECT_FALSE(ctl.AdmitQueued());
  AdmissionStats stats = ctl.Stats();
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
}

TEST(AdmissionControllerTest, ZeroCapsRejectEverything) {
  AdmissionController ctl(AdmissionOptions{0, 0});
  EXPECT_FALSE(ctl.AdmitInflight());
  EXPECT_FALSE(ctl.AdmitQueued());
  AdmissionStats stats = ctl.Stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
}

TEST(AdmissionControllerTest, ZeroInflightRejectsQueueAdmissionToo) {
  // Regression: with max_inflight=0 (drain mode) a queued task could never
  // acquire an execution slot — admitting it would park it, and its
  // future, forever. The queue gate must reject even with queue room.
  AdmissionController ctl(AdmissionOptions{/*max_inflight=*/0,
                                           /*max_queued=*/128});
  EXPECT_FALSE(ctl.AdmitQueued());
  EXPECT_EQ(ctl.Stats().rejected, 1u);
  EXPECT_EQ(ctl.queued(), 0u);
}

TEST(AdmissionControllerTest, ConcurrentAdmissionNeverExceedsCapOrLosesCounts) {
  constexpr size_t kCap = 4;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  AdmissionController ctl(AdmissionOptions{kCap, 0});
  std::atomic<size_t> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (ctl.AdmitInflight()) {
          size_t cur = ctl.inflight();
          size_t prev = max_seen.load();
          while (prev < cur && !max_seen.compare_exchange_weak(prev, cur)) {
          }
          ctl.Release();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_seen.load(), kCap);
  AdmissionStats stats = ctl.Stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(stats.inflight, 0u);
}

// ---------------------------------------------------------------------------
// FairShareScheduler

TEST(FairShareSchedulerTest, QueueDepthRejectionIsTypedNotSilent) {
  ThreadPool pool(1);
  FairShareScheduler scheduler(&pool);
  auto tenant = std::make_shared<AdmissionController>(
      AdmissionOptions{/*max_inflight=*/1, /*max_queued=*/2});

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(scheduler.Submit(tenant, [opened] { opened.wait(); }));
  // Wait until the blocker is executing (its queue slot released) so the
  // next two submissions deterministically fill the queue.
  ASSERT_TRUE(EventuallyTrue([&] { return tenant->inflight() == 1; }));

  EXPECT_TRUE(scheduler.Submit(tenant, [] {}));
  EXPECT_TRUE(scheduler.Submit(tenant, [] {}));
  EXPECT_FALSE(scheduler.Submit(tenant, [] {}))
      << "queue slot #3 is over max_queued=2";

  AdmissionStats stats = tenant->Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queued, 2u);

  gate.set_value();
  ASSERT_TRUE(EventuallyTrue(
      [&] { return tenant->Stats().completed == tenant->Stats().admitted; }));
  stats = tenant->Stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(FairShareSchedulerTest, SaturatingTenantCappedAndDoesNotStarveOthers) {
  // Two pool workers, but tenant A may only execute one task at a time: even
  // while A has a blocked leader plus a full queue, tenant B's task must run
  // promptly, and A must never exceed its in-flight cap.
  ThreadPool pool(2);
  FairShareScheduler scheduler(&pool);
  auto hot = std::make_shared<AdmissionController>(
      AdmissionOptions{/*max_inflight=*/1, /*max_queued=*/16});
  auto cold = std::make_shared<AdmissionController>(
      AdmissionOptions{/*max_inflight=*/4, /*max_queued=*/16});

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> hot_concurrent{0};
  std::atomic<int> hot_max{0};
  std::atomic<int> hot_done{0};
  constexpr int kHotTasks = 6;
  for (int i = 0; i < kHotTasks; ++i) {
    ASSERT_TRUE(scheduler.Submit(hot, [&, opened] {
      int cur = hot_concurrent.fetch_add(1) + 1;
      int prev = hot_max.load();
      while (prev < cur && !hot_max.compare_exchange_weak(prev, cur)) {
      }
      opened.wait();
      hot_concurrent.fetch_sub(1);
      hot_done.fetch_add(1);
    }));
  }

  // The cold tenant's task completes while the hot tenant's leader is still
  // blocked holding its only slot — round-robin skips the at-cap tenant.
  std::promise<void> cold_ran;
  ASSERT_TRUE(scheduler.Submit(cold, [&] { cold_ran.set_value(); }));
  ASSERT_EQ(cold_ran.get_future().wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "hot tenant's queue starved the cold tenant";
  EXPECT_LE(hot->inflight(), 1u);

  gate.set_value();
  ASSERT_TRUE(EventuallyTrue([&] { return hot_done.load() == kHotTasks; }));
  EXPECT_EQ(hot_max.load(), 1)
      << "saturating tenant executed above its in-flight cap";
  AdmissionStats stats = hot->Stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kHotTasks));
  EXPECT_EQ(stats.completed, stats.admitted);
}

TEST(FairShareSchedulerTest, RoundRobinInterleavesTenantBursts) {
  // One worker, three tenants, four tasks each, submitted as back-to-back
  // per-tenant bursts. FIFO would run AAAA BBBB CCCC; round-robin must not
  // let any tenant finish its burst before every tenant has started.
  ThreadPool pool(1);
  FairShareScheduler scheduler(&pool);
  std::vector<std::shared_ptr<AdmissionController>> tenants;
  for (int t = 0; t < 3; ++t) {
    tenants.push_back(std::make_shared<AdmissionController>(
        AdmissionOptions{/*max_inflight=*/1, /*max_queued=*/8}));
  }

  // Park the single worker so every burst is queued before dispatch begins.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(scheduler.Submit(tenants[0], [opened] { opened.wait(); }));
  ASSERT_TRUE(EventuallyTrue([&] { return tenants[0]->inflight() == 1; }));

  std::mutex order_mu;
  std::vector<int> order;
  constexpr int kPerTenant = 4;
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < kPerTenant; ++i) {
      ASSERT_TRUE(scheduler.Submit(tenants[t], [&, t] {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(t);
      }));
    }
  }
  gate.set_value();
  ASSERT_TRUE(EventuallyTrue([&] {
    std::lock_guard<std::mutex> lock(order_mu);
    return order.size() == 3 * kPerTenant;
  }));

  std::lock_guard<std::mutex> lock(order_mu);
  // In every window of three consecutive tasks, three distinct tenants ran:
  // strict round-robin while all queues are non-empty.
  for (size_t i = 0; i + 2 < order.size(); i += 3) {
    EXPECT_NE(order[i], order[i + 1]) << "at window " << i;
    EXPECT_NE(order[i + 1], order[i + 2]) << "at window " << i;
    EXPECT_NE(order[i], order[i + 2]) << "at window " << i;
  }
}

// ---------------------------------------------------------------------------
// ServiceHost registry lifecycle

nlq::ParsedNlq PapersInDatabasesNlq() {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  papers.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword databases;
  databases.text = "Databases";
  databases.metadata.context = qfg::FragmentContext::kWhere;
  databases.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {papers, databases};
  return parsed;
}

class ServiceHostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_a_ = testing::MakeMiniAcademicDb();
    db_b_ = testing::MakeMiniAcademicDb();
    model_ = testing::MakeMiniLexicon();
  }

  HostOptions SmallHost() {
    HostOptions options;
    options.worker_threads = 2;
    options.map_cache_budget = 64;
    options.join_cache_budget = 64;
    options.cache_shards = 4;
    return options;
  }

  std::unique_ptr<db::Database> db_a_;
  std::unique_ptr<db::Database> db_b_;
  std::unique_ptr<embed::EmbeddingModel> model_;
};

TEST_F(ServiceHostTest, RegisterServeRetireLifecycle) {
  ServiceHost host(SmallHost());
  EXPECT_EQ(host.tenant_count(), 0u);
  ASSERT_TRUE(host.RegisterTenant("mas", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  EXPECT_EQ(host.tenant_count(), 1u);
  EXPECT_EQ(host.TenantIds(), std::vector<std::string>{"mas"});

  auto handle = host.Tenant("mas");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(handle->alive());
  EXPECT_EQ(handle->id(), "mas");

  auto result = handle->MapKeywords(PapersInDatabasesNlq());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->empty());
  auto async = handle->MapKeywordsAsync(PapersInDatabasesNlq()).get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(result->front().ToString(), async->front().ToString());

  ASSERT_TRUE(host.RetireTenant("mas").ok());
  EXPECT_EQ(host.tenant_count(), 0u);
  EXPECT_FALSE(handle->alive());
  EXPECT_TRUE(host.Tenant("mas").status().IsNotFound());
  // The stale handle fails fast with a typed error, on every path.
  EXPECT_TRUE(handle->MapKeywords(PapersInDatabasesNlq())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(handle->MapKeywordsAsync(PapersInDatabasesNlq())
                  .get()
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(handle->AppendLogQueries({"SELECT j.name FROM journal j"})
                  .status()
                  .IsNotFound());

  // The id is reusable after retire.
  ASSERT_TRUE(host.RegisterTenant("mas", db_b_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  auto reborn = host.Tenant("mas");
  ASSERT_TRUE(reborn.ok());
  EXPECT_TRUE(reborn->MapKeywords(PapersInDatabasesNlq()).ok());
  EXPECT_EQ(reborn->Stats().map_requests, 1u)
      << "re-registered tenant starts with fresh state";
}

TEST_F(ServiceHostTest, DuplicateRegisterAndUnknownRetireAreTypedErrors) {
  ServiceHost host(SmallHost());
  ASSERT_TRUE(host.RegisterTenant("t", db_a_.get(), model_.get(), {}).ok());
  Status dup = host.RegisterTenant("t", db_b_.get(), model_.get(), {});
  EXPECT_TRUE(dup.IsAlreadyExists()) << dup.ToString();
  EXPECT_TRUE(host.RetireTenant("missing").IsNotFound());
  EXPECT_TRUE(host.Tenant("missing").status().IsNotFound());
  EXPECT_TRUE(
      host.RegisterTenant("", db_a_.get(), model_.get(), {}).IsInvalidArgument());
}

TEST_F(ServiceHostTest, CacheBudgetRepartitionsAcrossRegisterAndRetire) {
  ServiceHost host(SmallHost());  // 64-entry budget, 4 shards.
  ASSERT_TRUE(host.RegisterTenant("a", db_a_.get(), model_.get(), {}).ok());
  EXPECT_EQ(host.Tenant("a")->Stats().map_cache.capacity, 64u)
      << "sole tenant owns the whole budget";

  ASSERT_TRUE(host.RegisterTenant("b", db_b_.get(), model_.get(), {}).ok());
  EXPECT_EQ(host.Tenant("a")->Stats().map_cache.capacity, 32u)
      << "budget splits across two tenants";
  EXPECT_EQ(host.Tenant("b")->Stats().map_cache.capacity, 32u);

  // A non-divisible split (64/3 over 4 shards) rounds DOWN: the per-tenant
  // shares must never sum past the advertised host-wide budget.
  ASSERT_TRUE(host.RegisterTenant("c", db_a_.get(), model_.get(), {}).ok());
  size_t total = 0;
  for (const auto& id : host.TenantIds()) {
    total += host.Tenant(id)->Stats().map_cache.capacity;
  }
  EXPECT_LE(total, 64u) << "tenant shares exceed the host cache budget";
  EXPECT_EQ(host.Tenant("c")->Stats().map_cache.capacity, 20u);
  ASSERT_TRUE(host.RetireTenant("c").ok());

  ASSERT_TRUE(host.RetireTenant("b").ok());
  EXPECT_EQ(host.Tenant("a")->Stats().map_cache.capacity, 64u)
      << "survivor reclaims the retired tenant's share";

  HostStats stats = host.Stats();
  EXPECT_EQ(stats.tenant_count, 1u);
  EXPECT_EQ(stats.map_cache_budget, 64u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].tenant_id, "a");
  EXPECT_NE(stats.ToString().find("tenant: a"), std::string::npos);
}

TEST_F(ServiceHostTest, HandleOutlivingHostFailsTypedNotUndefined) {
  // Regression: the tenant state a handle keeps alive points into the
  // host's scheduler and pool. Destroying the host must flip the retired
  // flag so a stale handle's requests fail with kNotFound *before* touching
  // either — not crash on the dangling pointers.
  auto host = std::make_unique<ServiceHost>(SmallHost());
  ASSERT_TRUE(host->RegisterTenant("t", db_a_.get(), model_.get(),
                                   testing::MakeMiniLog())
                  .ok());
  auto handle = host->Tenant("t");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->MapKeywords(PapersInDatabasesNlq()).ok());

  host.reset();

  EXPECT_FALSE(handle->alive());
  EXPECT_TRUE(handle->MapKeywords(PapersInDatabasesNlq())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(handle->MapKeywordsAsync(PapersInDatabasesNlq())
                  .get()
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(handle->AppendLogQueries({"SELECT j.name FROM journal j"})
                  .status()
                  .IsNotFound());
  // Counters remain readable: the handle's shared_ptr keeps the state (and
  // its ServiceCore) alive past the host.
  EXPECT_EQ(handle->Stats().map_requests, 1u);
}

// ---------------------------------------------------------------------------
// Admission through the host

TEST_F(ServiceHostTest, OverloadIsTypedRejectionNotCrashOrSilentDrop) {
  ServiceHost host(SmallHost());
  TenantOptions options;
  options.admission = AdmissionOptions{/*max_inflight=*/0, /*max_queued=*/0};
  ASSERT_TRUE(host.RegisterTenant("drained", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog(), options)
                  .ok());
  auto handle = host.Tenant("drained");
  ASSERT_TRUE(handle.ok());

  Status sync = handle->MapKeywords(PapersInDatabasesNlq()).status();
  EXPECT_TRUE(sync.IsOverloaded()) << sync.ToString();
  EXPECT_EQ(sync.code(), StatusCode::kOverloaded);

  auto future = handle->MapKeywordsAsync(PapersInDatabasesNlq());
  ASSERT_TRUE(future.valid()) << "rejection must still satisfy the future";
  EXPECT_TRUE(future.get().status().IsOverloaded());

  auto batch = handle->InferJoinsBatch({{"publication"}, {"domain"}});
  ASSERT_EQ(batch.size(), 2u) << "rejected batch slots stay aligned";
  EXPECT_TRUE(batch[0].status().IsOverloaded());
  EXPECT_TRUE(batch[1].status().IsOverloaded());

  ServiceStats stats = handle->Stats();
  EXPECT_EQ(stats.admission.submitted, 4u);
  EXPECT_EQ(stats.admission.rejected, 4u);
  EXPECT_EQ(stats.admission.admitted, 0u);
  EXPECT_NE(stats.ToString().find("admission:"), std::string::npos);
}

TEST_F(ServiceHostTest, DrainModeWithQueueRoomStillRejectsAsyncPromptly) {
  // Regression: {max_inflight=0, max_queued>0} must reject async requests
  // with kOverloaded immediately — never park a task that no execution
  // slot could ever dispatch, leaving future.get() to hang forever.
  ServiceHost host(SmallHost());
  TenantOptions options;
  options.admission = AdmissionOptions{/*max_inflight=*/0,
                                       /*max_queued=*/128};
  ASSERT_TRUE(host.RegisterTenant("draining", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog(), options)
                  .ok());
  auto handle = host.Tenant("draining");
  ASSERT_TRUE(handle.ok());
  auto future = handle->MapKeywordsAsync(PapersInDatabasesNlq());
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "async request parked forever in drain mode";
  EXPECT_TRUE(future.get().status().IsOverloaded());
  EXPECT_EQ(handle->Stats().admission.queued, 0u);
}

TEST_F(ServiceHostTest, AdmissionCountersReconcileUnderMixedTraffic) {
  HostOptions host_options = SmallHost();
  host_options.default_admission =
      AdmissionOptions{/*max_inflight=*/4, /*max_queued=*/64};
  ServiceHost host(host_options);
  ASSERT_TRUE(host.RegisterTenant("t", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  auto handle = host.Tenant("t");
  ASSERT_TRUE(handle.ok());

  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(handle->MapKeywords(PapersInDatabasesNlq()).ok());
  }
  auto batch = handle->MapKeywordsBatch(
      std::vector<nlq::ParsedNlq>(6, PapersInDatabasesNlq()));
  for (const auto& r : batch) EXPECT_TRUE(r.ok());
  EXPECT_TRUE(handle->InferJoins({"publication", "domain"}).ok());

  // A future can become ready a hair before the dispatcher releases the
  // task's in-flight slot; wait for quiescence before reconciling.
  ASSERT_TRUE(EventuallyTrue([&] {
    AdmissionStats a = handle->Stats().admission;
    return a.completed == a.admitted && a.inflight == 0;
  }));
  ServiceStats stats = handle->Stats();
  EXPECT_EQ(stats.admission.submitted, 17u);
  EXPECT_EQ(stats.admission.admitted + stats.admission.rejected,
            stats.admission.submitted);
  EXPECT_EQ(stats.admission.rejected, 0u) << "nothing exceeded the caps";
  EXPECT_EQ(stats.admission.completed, stats.admission.admitted);
  EXPECT_EQ(stats.admission.queued, 0u);
}

// ---------------------------------------------------------------------------
// Cross-tenant isolation (differential test)
//
// Both tenants run the MakeMiniAcademicDb schema — every relation name
// overlaps — and serve the same requests. Appends streamed into tenant A
// must neither evict tenant B's cache entries nor perturb its rankings:
// B's results stay byte-identical to a single-tenant service that never saw
// an append, and A's results stay byte-identical to a single-tenant service
// that saw exactly the same appends.

std::vector<std::string> AppendBatch(int i) {
  return {"SELECT a.name FROM author a WHERE a.aid = " + std::to_string(i),
          "SELECT p.title FROM publication p WHERE p.year > " +
              std::to_string(1990 + i)};
}

void ExpectSameConfigs(const std::vector<Configuration>& lhs,
                       const std::vector<Configuration>& rhs,
                       const char* what) {
  ASSERT_EQ(lhs.size(), rhs.size()) << what;
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].ToString(), rhs[i].ToString()) << what << " rank " << i;
    EXPECT_DOUBLE_EQ(lhs[i].score, rhs[i].score) << what << " rank " << i;
  }
}

void ExpectSameJoins(const std::vector<JoinPath>& lhs,
                     const std::vector<JoinPath>& rhs, const char* what) {
  ASSERT_EQ(lhs.size(), rhs.size()) << what;
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].ToString(), rhs[i].ToString()) << what << " rank " << i;
    EXPECT_DOUBLE_EQ(lhs[i].score, rhs[i].score) << what << " rank " << i;
  }
}

TEST_F(ServiceHostTest, AppendsOnOneTenantNeverTouchAnotherDifferential) {
  constexpr int kRounds = 4;
  const nlq::ParsedNlq nlq = PapersInDatabasesNlq();
  const std::vector<std::string> bag = {"publication", "domain"};

  // Isolated single-tenant baselines: B never sees an append; A sees every
  // batch. (Fresh databases so fulltext state is fully independent too.)
  auto baseline_b_db = testing::MakeMiniAcademicDb();
  auto baseline_a_db = testing::MakeMiniAcademicDb();
  ServiceOptions baseline_options;
  baseline_options.worker_threads = 1;
  auto baseline_b = TemplarService::Create(
      baseline_b_db.get(), model_.get(), testing::MakeMiniLog(),
      baseline_options);
  ASSERT_TRUE(baseline_b.ok());
  auto baseline_a = TemplarService::Create(
      baseline_a_db.get(), model_.get(), testing::MakeMiniLog(),
      baseline_options);
  ASSERT_TRUE(baseline_a.ok());

  ServiceHost host(SmallHost());
  ASSERT_TRUE(host.RegisterTenant("a", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  ASSERT_TRUE(host.RegisterTenant("b", db_b_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  auto tenant_a = host.Tenant("a");
  auto tenant_b = host.Tenant("b");
  ASSERT_TRUE(tenant_a.ok());
  ASSERT_TRUE(tenant_b.ok());

  // Warm both tenants and both baselines.
  for (int round = 0; round < kRounds; ++round) {
    auto host_a_map = tenant_a->MapKeywords(nlq);
    auto host_b_map = tenant_b->MapKeywords(nlq);
    auto host_a_join = tenant_a->InferJoins(bag);
    auto host_b_join = tenant_b->InferJoins(bag);
    auto base_a_map = (*baseline_a)->MapKeywords(nlq);
    auto base_b_map = (*baseline_b)->MapKeywords(nlq);
    auto base_a_join = (*baseline_a)->InferJoins(bag);
    auto base_b_join = (*baseline_b)->InferJoins(bag);
    ASSERT_TRUE(host_a_map.ok() && host_b_map.ok() && host_a_join.ok() &&
                host_b_join.ok() && base_a_map.ok() && base_b_map.ok() &&
                base_a_join.ok() && base_b_join.ok());

    ExpectSameConfigs(*host_a_map, *base_a_map, "tenant A map");
    ExpectSameConfigs(*host_b_map, *base_b_map, "tenant B map");
    ExpectSameJoins(*host_a_join, *base_a_join, "tenant A join");
    ExpectSameJoins(*host_b_join, *base_b_join, "tenant B join");

    // Interleave: append to tenant A (and its baseline) only.
    auto outcome = tenant_a->AppendLogQueries(AppendBatch(round));
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->appended, 2u);
    (void)(*baseline_a)->AppendLogQueries(AppendBatch(round));
  }

  // Epochs are tenant-scoped: only A advanced.
  EXPECT_EQ(tenant_a->epoch(), static_cast<uint64_t>(kRounds));
  EXPECT_EQ(tenant_b->epoch(), 0u);

  ServiceStats stats_a = tenant_a->Stats();
  ServiceStats stats_b = tenant_b->Stats();
  // A's appends touched the papers footprint each round: its entry was
  // invalidated and recomputed, exactly as in the single-tenant baseline.
  EXPECT_GT(stats_a.map_cache.invalidated, 0u);
  EXPECT_EQ(stats_a.map_computations,
            (*baseline_a)->Stats().map_computations);
  // B's caches were never swept: every entry computed once, then pure hits.
  EXPECT_EQ(stats_b.map_cache.invalidated, 0u);
  EXPECT_EQ(stats_b.map_cache.stale_drops, 0u);
  EXPECT_EQ(stats_b.map_computations, 1u)
      << "tenant B recomputed despite only tenant A receiving appends";
  EXPECT_EQ(stats_b.join_computations, 1u);
  EXPECT_EQ(stats_b.map_cache.hits, static_cast<uint64_t>(kRounds - 1));
  EXPECT_EQ(stats_b.append_batches, 0u);
}

// ---------------------------------------------------------------------------
// The typed envelope through the multi-tenant host

TEST_F(ServiceHostTest, TranslateThroughHandleIsAdmissionGatedAndRetireSafe) {
  ServiceHost host(SmallHost());
  ASSERT_TRUE(host.RegisterTenant("mas", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  auto handle = host.Tenant("mas");
  ASSERT_TRUE(handle.ok());

  auto sync = handle->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/2));
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  ASSERT_FALSE(sync->translations.empty());
  auto async = handle
                   ->TranslateAsync(
                       QueryRequest::Translation(PapersInDatabasesNlq(),
                                                 /*top_k=*/2))
                   .get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async->translations.front().query.ToString(),
            sync->translations.front().query.ToString());
  EXPECT_GE(async->timings.queue.count(), 0);

  ServiceStats stats = handle->Stats();
  EXPECT_EQ(stats.translate_requests, 2u);
  EXPECT_GE(stats.admission.submitted, 2u);

  auto batch = handle->TranslateBatch(
      {QueryRequest::Translation(PapersInDatabasesNlq()),
       QueryRequest::Translation(PapersInDatabasesNlq())});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_TRUE(batch[1].ok());

  ASSERT_TRUE(host.RetireTenant("mas").ok());
  EXPECT_TRUE(handle->Translate(QueryRequest::Translation(PapersInDatabasesNlq()))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(handle
                  ->TranslateAsync(
                      QueryRequest::Translation(PapersInDatabasesNlq()))
                  .get()
                  .status()
                  .IsNotFound());
}

TEST_F(ServiceHostTest, ExpiredDeadlineNeverEntersQueueOrOccupiesWorker) {
  ServiceHost host(SmallHost());
  ASSERT_TRUE(host.RegisterTenant("t", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  auto handle = host.Tenant("t");
  ASSERT_TRUE(handle.ok());

  QueryRequest dead = QueryRequest::Translation(PapersInDatabasesNlq());
  dead.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  auto future = handle->TranslateAsync(std::move(dead));
  // Answered on the submitting thread: the future is ready immediately.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(future.get().status().IsDeadlineExceeded());

  ServiceStats stats = handle->Stats();
  EXPECT_EQ(stats.translate_computations, 0u) << "no pipeline work ran";
  EXPECT_EQ(stats.admission.submitted, 0u)
      << "a dead request must not consume an admission slot";
  EXPECT_EQ(stats.admission.queued, 0u);

  // Pre-cancelled requests take the same short-circuit.
  QueryRequest cancelled = QueryRequest::Translation(PapersInDatabasesNlq());
  cancelled.cancel = CancelToken::Cancellable();
  cancelled.cancel.RequestCancel();
  EXPECT_TRUE(handle->TranslateAsync(std::move(cancelled))
                  .get()
                  .status()
                  .IsCancelled());
  EXPECT_EQ(handle->Stats().admission.submitted, 0u);
}

TEST_F(ServiceHostTest, DeadlineExpiringInQueueRejectsAtDispatch) {
  // One worker, deep queue: park several cold requests ahead of a request
  // whose deadline can only survive the queue if dispatch is instant. The
  // parked request must come back kDeadlineExceeded (dispatch probe) or —
  // if this machine dispatched it in time — complete; either way it must
  // never run the pipeline after its deadline passed and the admission
  // ledger must reconcile.
  HostOptions options = SmallHost();
  options.worker_threads = 1;
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("t", db_a_.get(), model_.get(),
                                  testing::MakeMiniLog())
                  .ok());
  auto handle = host.Tenant("t");
  ASSERT_TRUE(handle.ok());

  // Cold distinct keys so each parked task does real work.
  std::vector<std::future<Result<QueryResponse>>> blockers;
  for (int i = 0; i < 4; ++i) {
    nlq::ParsedNlq nlq = PapersInDatabasesNlq();
    nlq.keywords[1].text = "value" + std::to_string(i);
    blockers.push_back(
        handle->TranslateAsync(QueryRequest::Translation(std::move(nlq))));
  }
  QueryRequest parked = QueryRequest::Translation(PapersInDatabasesNlq());
  parked.deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(50);
  auto result = handle->TranslateAsync(std::move(parked)).get();
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << result.status().ToString();
  }
  for (auto& blocker : blockers) (void)blocker.get();

  // The slot release runs on the worker after the future is satisfied;
  // wait for the ledger to quiesce before checking the contract.
  ASSERT_TRUE(EventuallyTrue([&] {
    AdmissionStats admission = handle->Stats().admission;
    return admission.completed == admission.admitted;
  }));
  AdmissionStats admission = handle->Stats().admission;
  EXPECT_EQ(admission.submitted, admission.admitted + admission.rejected);
}

TEST_F(ServiceHostTest, TranslateCacheBudgetRepartitionsWithTenantCount) {
  HostOptions options = SmallHost();
  options.translate_cache_budget = 64;
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("a", db_a_.get(), model_.get(), {}).ok());
  auto solo = host.Tenant("a");
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(solo->Stats().translate_cache.capacity, 64u);
  ASSERT_TRUE(host.RegisterTenant("b", db_b_.get(), model_.get(), {}).ok());
  EXPECT_LE(solo->Stats().translate_cache.capacity, 32u);
  ASSERT_TRUE(host.RetireTenant("b").ok());
  EXPECT_EQ(solo->Stats().translate_cache.capacity, 64u);
}

}  // namespace
}  // namespace templar::service
