// Unit tests for qfg/: fragment extraction, obscurity levels, the Query
// Fragment Graph's counts and Dice coefficient — including the paper's
// Fig. 3 worked example.

#include <gtest/gtest.h>

#include <algorithm>

#include "qfg/fragment.h"
#include "qfg/fragment_delta.h"
#include "qfg/fragment_interner.h"
#include "qfg/query_fragment_graph.h"
#include "sql/parser.h"

namespace templar::qfg {
namespace {

sql::SelectQuery MustParse(const std::string& text) {
  auto q = sql::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

bool HasFragment(const std::vector<QueryFragment>& frags,
                 FragmentContext context, const std::string& expr) {
  return std::find(frags.begin(), frags.end(),
                   QueryFragment{context, expr}) != frags.end();
}

TEST(FragmentTest, Definition3Example) {
  // The paper's Definition 3 example query.
  auto q = MustParse(
      "SELECT t.a FROM table1 t, table2 u WHERE t.b = 15 AND t.id = u.id");
  auto frags = ExtractFragments(q, ObscurityLevel::kFull);
  EXPECT_EQ(frags.size(), 4u);
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kSelect, "table1.a"));
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kFrom, "table1"));
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kFrom, "table2"));
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kWhere, "table1.b = 15"));
  // The join condition t.id = u.id is NOT a fragment.
  for (const auto& f : frags) {
    EXPECT_EQ(f.expression.find("id"), std::string::npos) << f.ToString();
  }
}

TEST(FragmentTest, ObscurityLevels) {
  sql::Predicate pred;
  pred.lhs = {"publication", "year"};
  pred.op = sql::BinaryOp::kGt;
  pred.rhs = sql::Literal::Int(2000);
  EXPECT_EQ(WhereFragment(pred, ObscurityLevel::kFull).expression,
            "publication.year > 2000");
  EXPECT_EQ(WhereFragment(pred, ObscurityLevel::kNoConst).expression,
            "publication.year > ?val");
  EXPECT_EQ(WhereFragment(pred, ObscurityLevel::kNoConstOp).expression,
            "publication.year ?op ?val");
}

TEST(FragmentTest, SelectFragmentWithAggregates) {
  QueryFragment f = SelectFragment("publication", "pid",
                                   {sql::AggFunc::kCount}, true);
  EXPECT_EQ(f.expression, "COUNT(DISTINCT publication.pid)");
  EXPECT_EQ(f.context, FragmentContext::kSelect);
}

TEST(FragmentTest, AliasResolutionInExtraction) {
  auto q = MustParse(
      "SELECT p.title FROM publication p WHERE p.year > 2000");
  auto frags = ExtractFragments(q, ObscurityLevel::kNoConstOp);
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kSelect,
                          "publication.title"));
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kWhere,
                          "publication.year ?op ?val"));
}

TEST(FragmentTest, SelfJoinInstancesCollapse) {
  auto q = MustParse(
      "SELECT p.title FROM author a1, author a2, publication p, writes w1, "
      "writes w2 WHERE a1.name = 'X' AND a2.name = 'Y' AND a1.aid = w1.aid "
      "AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid");
  auto frags = ExtractFragments(q, ObscurityLevel::kNoConstOp);
  // The two author predicates collapse into one obscured fragment; FROM
  // fragments are one per base relation.
  int author_from = 0;
  int author_pred = 0;
  for (const auto& f : frags) {
    if (f.context == FragmentContext::kFrom && f.expression == "author") {
      ++author_from;
    }
    if (f.context == FragmentContext::kWhere &&
        f.expression == "author.name ?op ?val") {
      ++author_pred;
    }
  }
  EXPECT_EQ(author_from, 1);
  EXPECT_EQ(author_pred, 1);
}

TEST(FragmentTest, GroupByHavingOrderByContexts) {
  auto q = MustParse(
      "SELECT a.name, COUNT(p.pid) FROM author a, publication p GROUP BY "
      "a.name HAVING COUNT(p.pid) > 5 ORDER BY a.name DESC");
  auto frags = ExtractFragments(q, ObscurityLevel::kNoConstOp);
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kGroupBy, "author.name"));
  EXPECT_TRUE(HasFragment(frags, FragmentContext::kHaving,
                          "COUNT(publication.pid) ?op ?val"));
  EXPECT_TRUE(
      HasFragment(frags, FragmentContext::kOrderBy, "author.name DESC"));
}

TEST(FragmentTest, KeyAndDisplayForms) {
  QueryFragment f{FragmentContext::kWhere, "x.y = 1"};
  EXPECT_EQ(f.ToString(), "(x.y = 1, WHERE)");
  QueryFragment g{FragmentContext::kSelect, "x.y = 1"};
  EXPECT_NE(f.Key(), g.Key());  // Same expression, different context.
}

// --- Fig. 3 worked example ------------------------------------------------

class Fig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    // 25x: SELECT j.name FROM journal j
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(graph_.AddQuerySql("SELECT j.name FROM journal j").ok());
    }
    // 5x: SELECT p.title FROM publication p WHERE p.year > 2003
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(graph_
                      .AddQuerySql("SELECT p.title FROM publication p WHERE "
                                   "p.year > 2003")
                      .ok());
    }
    // 3x: SELECT p.title FROM journal j, publication p WHERE
    //     j.name = 'TMC' AND p.pid = j.pid
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(graph_
                      .AddQuerySql("SELECT p.title FROM journal j, "
                                   "publication p WHERE j.name = 'TMC' AND "
                                   "p.pid = j.pid")
                      .ok());
    }
  }

  QueryFragmentGraph graph_{ObscurityLevel::kNoConstOp};
};

TEST_F(Fig3Test, OccurrenceCountsMatchPaper) {
  // Fig. 3b: 25x j.name, 8x p.title, 28x journal, 8x publication,
  // 5x p.year ?op ?val, 3x j.name ?op ?val.
  EXPECT_EQ(graph_.Occurrences({FragmentContext::kSelect, "journal.name"}),
            25u);
  EXPECT_EQ(
      graph_.Occurrences({FragmentContext::kSelect, "publication.title"}),
      8u);
  EXPECT_EQ(graph_.Occurrences(RelationFragment("journal")), 28u);
  EXPECT_EQ(graph_.Occurrences(RelationFragment("publication")), 8u);
  EXPECT_EQ(graph_.Occurrences(
                {FragmentContext::kWhere, "publication.year ?op ?val"}),
            5u);
  EXPECT_EQ(graph_.Occurrences(
                {FragmentContext::kWhere, "journal.name ?op ?val"}),
            3u);
  EXPECT_EQ(graph_.query_count(), 33u);
}

TEST_F(Fig3Test, CoOccurrenceEdges) {
  // Fig. 3c: p.title co-occurs 5x with the year predicate and 3x with the
  // journal-name predicate; j.name (SELECT) never co-occurs with either.
  QueryFragment p_title{FragmentContext::kSelect, "publication.title"};
  QueryFragment year_pred{FragmentContext::kWhere,
                          "publication.year ?op ?val"};
  QueryFragment jname_pred{FragmentContext::kWhere, "journal.name ?op ?val"};
  QueryFragment j_name{FragmentContext::kSelect, "journal.name"};
  EXPECT_EQ(graph_.CoOccurrences(p_title, year_pred), 5u);
  EXPECT_EQ(graph_.CoOccurrences(p_title, jname_pred), 3u);
  EXPECT_EQ(graph_.CoOccurrences(j_name, year_pred), 0u);
  EXPECT_EQ(graph_.CoOccurrences(j_name, jname_pred), 0u);
}

TEST_F(Fig3Test, DiceCoefficient) {
  QueryFragment p_title{FragmentContext::kSelect, "publication.title"};
  QueryFragment year_pred{FragmentContext::kWhere,
                          "publication.year ?op ?val"};
  // Dice = 2*5 / (8 + 5).
  EXPECT_DOUBLE_EQ(graph_.Dice(p_title, year_pred), 10.0 / 13.0);
  // Unseen fragment: Dice 0.
  QueryFragment unseen{FragmentContext::kSelect, "author.name"};
  EXPECT_DOUBLE_EQ(graph_.Dice(p_title, unseen), 0.0);
}

TEST_F(Fig3Test, FullLevelFragmentsAreNormalizedOnLookup) {
  // Callers hold Full-level fragments; the graph re-obscures them.
  QueryFragment full_pred{FragmentContext::kWhere,
                          "publication.year > 2003"};
  EXPECT_EQ(graph_.Occurrences(full_pred), 5u);
  QueryFragment other_const{FragmentContext::kWhere,
                            "publication.year > 1999"};
  EXPECT_EQ(graph_.Occurrences(other_const), 5u);  // Same at NoConstOp.
  EXPECT_EQ(graph_.Normalized(full_pred).Key(),
            graph_.Normalized(other_const).Key());
}

TEST_F(Fig3Test, RelationDice) {
  // journal & publication co-occur in 3 queries; nv = 28 and 8.
  EXPECT_DOUBLE_EQ(graph_.RelationDice("journal", "publication"),
                   6.0 / 36.0);
  EXPECT_DOUBLE_EQ(graph_.RelationDice("journal", "journal"), 0.0);
}

TEST_F(Fig3Test, TopFragmentsSorted) {
  auto top = graph_.TopFragments(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].second, 28u);  // (journal, FROM)
  EXPECT_GE(top[0].second, top[1].second);
  EXPECT_GE(top[1].second, top[2].second);
}

TEST(QfgLevelTest, FullLevelDistinguishesConstants) {
  QueryFragmentGraph graph(ObscurityLevel::kFull);
  ASSERT_TRUE(graph.AddQuerySql(
      "SELECT p.title FROM publication p WHERE p.year > 2003").ok());
  EXPECT_EQ(graph.Occurrences({FragmentContext::kWhere,
                               "publication.year > 2003"}), 1u);
  EXPECT_EQ(graph.Occurrences({FragmentContext::kWhere,
                               "publication.year > 1999"}), 0u);
}

TEST(QfgLevelTest, NoConstKeepsOperator) {
  QueryFragmentGraph graph(ObscurityLevel::kNoConst);
  ASSERT_TRUE(graph.AddQuerySql(
      "SELECT p.title FROM publication p WHERE p.year > 2003").ok());
  EXPECT_EQ(graph.Occurrences({FragmentContext::kWhere,
                               "publication.year > ?val"}), 1u);
  // A different operator does not match at NoConst.
  EXPECT_EQ(graph.Occurrences({FragmentContext::kWhere,
                               "publication.year < ?val"}), 0u);
  // But any operator matches at NoConstOp via normalization of the query --
  // build a second graph to confirm the distinction.
  QueryFragmentGraph loose(ObscurityLevel::kNoConstOp);
  ASSERT_TRUE(loose.AddQuerySql(
      "SELECT p.title FROM publication p WHERE p.year > 2003").ok());
  EXPECT_EQ(loose.Occurrences({FragmentContext::kWhere,
                               "publication.year < 1990"}), 1u);
}

TEST(QfgTest, MalformedLogEntryRejected) {
  QueryFragmentGraph graph;
  EXPECT_TRUE(graph.AddQuerySql("SELEC nope").IsParseError());
  EXPECT_EQ(graph.query_count(), 0u);
}

// --- FragmentInterner and the id-native interface --------------------------

TEST(FragmentInternerTest, DenseIdsInternOnceAndCarryFingerprints) {
  FragmentInterner interner;
  QueryFragment a{FragmentContext::kSelect, "author.name"};
  QueryFragment b{FragmentContext::kFrom, "author"};
  FragmentId ia = interner.Intern(a);
  FragmentId ib = interner.Intern(b);
  EXPECT_EQ(ia, 0u);
  EXPECT_EQ(ib, 1u);
  EXPECT_EQ(interner.Intern(a), ia) << "re-intern returns the same id";
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Fragment(ia), a);
  EXPECT_EQ(interner.Key(ib), b.Key());
  EXPECT_EQ(interner.Fingerprint(ia), FingerprintFragmentKey(a.Key()));
  EXPECT_EQ(interner.Find(a.Key()), ia);
  EXPECT_EQ(interner.Find("never interned"), kInvalidFragmentId);
}

TEST_F(Fig3Test, IdNativeCountsMatchStringShims) {
  QueryFragment p_title{FragmentContext::kSelect, "publication.title"};
  QueryFragment year_pred{FragmentContext::kWhere,
                          "publication.year ?op ?val"};
  FragmentId id_title = graph_.NormalizeToId(p_title);
  FragmentId id_year = graph_.NormalizeToId(year_pred);
  ASSERT_NE(id_title, kInvalidFragmentId);
  ASSERT_NE(id_year, kInvalidFragmentId);
  EXPECT_EQ(graph_.Occurrences(id_title), graph_.Occurrences(p_title));
  EXPECT_EQ(graph_.CoOccurrences(id_title, id_year),
            graph_.CoOccurrences(p_title, year_pred));
  EXPECT_DOUBLE_EQ(graph_.Dice(id_title, id_year),
                   graph_.Dice(p_title, year_pred));
  // Unseen fragments resolve to the invalid id and score 0.
  QueryFragment unseen{FragmentContext::kSelect, "author.name"};
  EXPECT_EQ(graph_.NormalizeToId(unseen), kInvalidFragmentId);
  EXPECT_EQ(graph_.Occurrences(kInvalidFragmentId), 0u);
  EXPECT_DOUBLE_EQ(graph_.Dice(id_title, kInvalidFragmentId), 0.0);
  EXPECT_DOUBLE_EQ(graph_.Dice(kInvalidFragmentId, kInvalidFragmentId), 0.0);
}

TEST_F(Fig3Test, ResolveNormalizesAndFingerprints) {
  // A Full-level predicate resolves through the graph's obscurity level.
  QueryFragment full_pred{FragmentContext::kWhere,
                          "publication.year > 2003"};
  ResolvedFragment r = graph_.Resolve(full_pred);
  ASSERT_TRUE(r.seen());
  EXPECT_EQ(r.key, "publication.year ?op ?val\x1fWHERE");
  EXPECT_EQ(r.fingerprint, graph_.Fingerprint(r.id));
  EXPECT_EQ(r.fingerprint, FingerprintFragmentKey(r.key));

  // Two different constants resolve to the same id at NoConstOp.
  QueryFragment other_const{FragmentContext::kWhere,
                            "publication.year > 1999"};
  ResolvedFragment r2 = graph_.Resolve(other_const);
  EXPECT_EQ(r2.id, r.id);
  EXPECT_TRUE(r.SameAs(r2));

  // Unseen fragments: fingerprint still defined (hash of the key), and
  // SameAs falls back to key equality.
  ResolvedFragment u1 =
      graph_.Resolve({FragmentContext::kWhere, "author.name = 'A'"});
  ResolvedFragment u2 =
      graph_.Resolve({FragmentContext::kWhere, "author.name = 'B'"});
  EXPECT_FALSE(u1.seen());
  EXPECT_TRUE(u1.SameAs(u2)) << "same fragment after obscuring";
  EXPECT_EQ(u1.fingerprint, FingerprintFragmentKey(u1.key));
  EXPECT_FALSE(u1.SameAs(r)) << "seen vs unseen are never the same";
}

TEST_F(Fig3Test, NeighborsExposeCoOccurrenceEdges) {
  QueryFragment p_title{FragmentContext::kSelect, "publication.title"};
  FragmentId id_title = graph_.NormalizeToId(p_title);
  ASSERT_NE(id_title, kInvalidFragmentId);
  auto [begin, end] = graph_.Neighbors(id_title);
  ASSERT_NE(begin, nullptr);
  // p.title co-occurs with: publication, journal, year-pred, jname-pred.
  EXPECT_EQ(static_cast<size_t>(end - begin), 4u);
  EXPECT_TRUE(std::is_sorted(begin, end));
  uint64_t via_neighbors = 0;
  FragmentId id_year = graph_.NormalizeToId(
      {FragmentContext::kWhere, "publication.year ?op ?val"});
  for (auto* it = begin; it != end; ++it) {
    if (it->first == id_year) via_neighbors = it->second;
  }
  EXPECT_EQ(via_neighbors, 5u);

  // Adjacency rebuilds after mutation.
  ASSERT_TRUE(graph_.AddQuerySql("SELECT p.title FROM publication p WHERE "
                                 "p.year > 1990")
                  .ok());
  auto [begin2, end2] = graph_.Neighbors(id_title);
  for (auto* it = begin2; it != end2; ++it) {
    if (it->first == id_year) via_neighbors = it->second;
  }
  EXPECT_EQ(via_neighbors, 6u);
  EXPECT_EQ(graph_.Neighbors(kInvalidFragmentId).first, nullptr);
}

TEST_F(Fig3Test, CanonicalVertexOrderMatchesTopFragments) {
  auto order = graph_.CanonicalVertexOrder();
  auto top = graph_.TopFragments();
  ASSERT_EQ(order.size(), top.size());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(graph_.Fragment(order[i].first), top[i].first);
    EXPECT_EQ(order[i].second, top[i].second);
  }
}

}  // namespace
}  // namespace templar::qfg
