// Differential suite for the incremental configuration-scoring engine.
//
// KeywordMapper now ranks configurations through a memoized pair-Dice
// table, odometer delta-scoring, and a bounded top-N heap — with optional
// parallel enumeration and an in-loop deadline probe. The original
// full-recompute scorer survives as KeywordMapperOptions::reference_scoring
// and is the oracle here: every case asserts the incremental engine's
// ranking — scores serialized at full double precision — is byte-identical
// to the reference, cold and after appends, sequential and parallel, with
// and without max_configurations cutoffs. The deadline cases pin the
// partial disposition's exact semantics: with checkpoint_stride=1, a probe
// that fails after C successes must yield precisely the reference ranking
// over the first C enumerated configurations, flagged partial.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/keyword_mapper.h"
#include "core/templar.h"
#include "datasets/dataset.h"
#include "service/request.h"
#include "service/scoring_executor.h"
#include "service/templar_service.h"
#include "service/thread_pool.h"

namespace templar::core {
namespace {

// Datasets are expensive to build; share one instance per process.
const datasets::Dataset& GetDataset(const std::string& name) {
  static std::map<std::string, datasets::Dataset>* cache = [] {
    auto* m = new std::map<std::string, datasets::Dataset>();
    for (const char* n : {"mas", "yelp", "imdb"}) {
      auto ds = datasets::BuildByName(n);
      if (ds.ok()) m->emplace(n, std::move(*ds));
    }
    return m;
  }();
  auto it = cache->find(name);
  EXPECT_NE(it, cache->end()) << "dataset " << name << " failed to build";
  return it->second;
}

std::string Fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Byte-exact serialization of one configuration: identity plus every score
// component at full double precision.
std::string SerializeConfiguration(const Configuration& c) {
  return c.ToString() + " sigma=" + Fmt(c.sigma_score) +
         " qfg=" + Fmt(c.qfg_score) + " score=" + Fmt(c.score);
}

std::string SerializeRanking(const std::vector<Configuration>& configs) {
  std::string out;
  for (const auto& c : configs) {
    out += SerializeConfiguration(c);
    out += "\n";
  }
  return out;
}

// A mapper sharing one Templar's index structures, with its own options —
// lets one dataset build back many reference/incremental scorer variants.
KeywordMapper MakeMapper(const datasets::Dataset& ds, const Templar& templar,
                         KeywordMapperOptions options) {
  return KeywordMapper(ds.database.get(), &templar.fulltext_index(),
                       ds.lexicon.get(), &templar.query_fragment_graph(),
                       options);
}

KeywordMapperOptions ReferenceOptions() {
  KeywordMapperOptions options;
  options.reference_scoring = true;
  return options;
}

// The number of configurations MapKeywords enumerates for `nlq` (before any
// max_configurations cap), derived from the same public KeywordCands /
// ScoreAndPrune pipeline the mapper itself runs.
size_t EnumeratedProduct(const KeywordMapper& mapper,
                         const nlq::ParsedNlq& nlq) {
  size_t product = 1;
  for (const auto& keyword : nlq.keywords) {
    size_t n = mapper.ScoreAndPrune(keyword, mapper.KeywordCands(keyword))
                   .size();
    if (n == 0) return 0;
    if (product > (static_cast<size_t>(1) << 40) / n) {
      return static_cast<size_t>(1) << 40;  // saturate; plenty for tests
    }
    product *= n;
  }
  return product;
}

// Runs both scorers on every benchmark parse and asserts byte-identical
// rankings (and matching footprint query-count sensitivity).
void ExpectDifferentialMatch(const datasets::Dataset& ds,
                             const KeywordMapper& reference,
                             const KeywordMapper& incremental,
                             const char* stage) {
  size_t compared = 0;
  for (const auto& q : ds.benchmark) {
    qfg::QfgFootprint ref_fp;
    qfg::QfgFootprint inc_fp;
    auto want = reference.MapKeywords(q.gold_parse, &ref_fp);
    auto got = incremental.MapKeywords(q.gold_parse, &inc_fp);
    ASSERT_EQ(want.ok(), got.ok())
        << stage << " '" << q.gold_parse.original << "': "
        << (want.ok() ? got.status() : want.status()).ToString();
    if (!want.ok()) continue;
    EXPECT_EQ(SerializeRanking(*got), SerializeRanking(*want))
        << stage << ": incremental ranking diverged for '"
        << q.gold_parse.original << "'";
    EXPECT_EQ(inc_fp.query_count_sensitive, ref_fp.query_count_sensitive)
        << stage << ": footprint sensitivity diverged for '"
        << q.gold_parse.original << "'";
    ++compared;
  }
  EXPECT_GE(compared, 3u) << stage << ": too few scorable benchmark parses";
}

constexpr size_t kAppendRounds = 4;
constexpr size_t kBatchSize = 3;

class ScoringDifferentialTest : public ::testing::TestWithParam<const char*> {
};

// Cold rankings and rankings after sustained appends must match the
// reference byte for byte — on all three benchmark datasets.
TEST_P(ScoringDifferentialTest, ColdAndAppendByteIdentical) {
  const datasets::Dataset& ds = GetDataset(GetParam());
  ASSERT_GE(ds.extra_log.size(), 2 * kAppendRounds * kBatchSize);

  std::vector<std::string> initial;
  for (const auto& q : ds.benchmark) initial.push_back(q.gold_sql.ToString());
  const size_t half = ds.extra_log.size() / 2;
  initial.insert(initial.end(), ds.extra_log.begin(),
                 ds.extra_log.begin() + half);

  auto templar =
      Templar::Build(ds.database.get(), ds.lexicon.get(), initial);
  ASSERT_TRUE(templar.ok()) << templar.status().ToString();
  KeywordMapper reference = MakeMapper(ds, **templar, ReferenceOptions());
  KeywordMapper incremental = MakeMapper(ds, **templar, {});

  ExpectDifferentialMatch(ds, reference, incremental, "cold");

  for (size_t round = 0; round < kAppendRounds; ++round) {
    for (size_t i = 0; i < kBatchSize; ++i) {
      const std::string& sql_text =
          ds.extra_log[(half + round * kBatchSize + i) % ds.extra_log.size()];
      ASSERT_TRUE((*templar)->AppendLogQuery(sql_text).ok()) << sql_text;
    }
    ExpectDifferentialMatch(
        ds, reference, incremental,
        ("after append round " + std::to_string(round)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, ScoringDifferentialTest,
                         ::testing::Values("mas", "imdb", "yelp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

std::unique_ptr<Templar> BuildMas() {
  const datasets::Dataset& ds = GetDataset("mas");
  std::vector<std::string> log;
  for (const auto& q : ds.benchmark) log.push_back(q.gold_sql.ToString());
  log.insert(log.end(), ds.extra_log.begin(), ds.extra_log.end());
  auto templar = Templar::Build(ds.database.get(), ds.lexicon.get(), log);
  EXPECT_TRUE(templar.ok()) << templar.status().ToString();
  return std::move(*templar);
}

// Parallel enumeration over the claim-drain pool adapter must merge to the
// exact sequential (and therefore reference) ranking.
TEST(ScoringParallelTest, ParallelMatchesSequential) {
  const datasets::Dataset& ds = GetDataset("mas");
  auto templar = BuildMas();
  KeywordMapper reference = MakeMapper(ds, *templar, ReferenceOptions());

  KeywordMapperOptions parallel_options;
  parallel_options.parallel_min_configurations = 1;  // force the fan-out
  KeywordMapper incremental = MakeMapper(ds, *templar, parallel_options);

  service::ThreadPool pool(4);
  ScoringExecutor executor = service::MakeScoringExecutor(&pool);
  ASSERT_EQ(executor.parallelism, 4u);

  MapKeywordsControls controls;
  controls.executor = &executor;

  size_t parallel_large = 0;
  for (const auto& q : ds.benchmark) {
    auto want = reference.MapKeywords(q.gold_parse);
    auto got = incremental.MapKeywords(q.gold_parse, nullptr, controls);
    ASSERT_EQ(want.ok(), got.ok()) << q.gold_parse.original;
    if (!want.ok()) continue;
    EXPECT_EQ(SerializeRanking(*got), SerializeRanking(*want))
        << "parallel merge diverged for '" << q.gold_parse.original << "'";
    if (EnumeratedProduct(reference, q.gold_parse) >= 64) ++parallel_large;
  }
  EXPECT_GE(parallel_large, 2u)
      << "benchmark has no enumerations large enough to exercise fan-out";
}

// The max_configurations cap truncates enumeration identically in both
// scorers: the incremental engine's saturating product must stop at the
// exact configuration the reference loop stops at.
TEST(ScoringCutoffTest, MaxConfigurationsByteIdentical) {
  const datasets::Dataset& ds = GetDataset("mas");
  auto templar = BuildMas();
  for (size_t cap : {size_t{1}, size_t{7}, size_t{50}, size_t{20000}}) {
    KeywordMapperOptions ref_options = ReferenceOptions();
    ref_options.max_configurations = cap;
    KeywordMapperOptions inc_options;
    inc_options.max_configurations = cap;
    KeywordMapper reference = MakeMapper(ds, *templar, ref_options);
    KeywordMapper incremental = MakeMapper(ds, *templar, inc_options);
    ExpectDifferentialMatch(ds, reference, incremental,
                            ("cap " + std::to_string(cap)).c_str());
  }
}

// A checkpoint that fails after C successful probes, with stride 1, must
// return exactly the reference ranking over the first C enumerated
// configurations — the prefix-consistency contract of the partial
// disposition. Every score in the partial ranking is exact.
TEST(ScoringDeadlineTest, PartialPrefixMatchesReferenceCutoff) {
  const datasets::Dataset& ds = GetDataset("mas");
  auto templar = BuildMas();
  KeywordMapper probe = MakeMapper(ds, *templar, ReferenceOptions());

  KeywordMapperOptions inc_options;
  inc_options.checkpoint_stride = 1;
  KeywordMapper incremental = MakeMapper(ds, *templar, inc_options);

  size_t exercised = 0;
  for (const auto& q : ds.benchmark) {
    const size_t product = EnumeratedProduct(probe, q.gold_parse);
    for (size_t cutoff : {size_t{1}, size_t{3}, size_t{10}}) {
      if (product <= cutoff) continue;  // probe would never fire

      size_t allowed = cutoff;
      bool partial = false;
      MapKeywordsControls controls;
      controls.checkpoint = [&allowed]() -> Status {
        if (allowed == 0) {
          return Status::DeadlineExceeded("differential cutoff");
        }
        --allowed;
        return Status::OK();
      };
      controls.partial = &partial;
      auto got = incremental.MapKeywords(q.gold_parse, nullptr, controls);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(partial) << q.gold_parse.original;

      KeywordMapperOptions cut = ReferenceOptions();
      cut.max_configurations = cutoff;
      KeywordMapper reference = MakeMapper(ds, *templar, cut);
      auto want = reference.MapKeywords(q.gold_parse);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      EXPECT_EQ(SerializeRanking(*got), SerializeRanking(*want))
          << "partial ranking is not the reference prefix for '"
          << q.gold_parse.original << "' at cutoff " << cutoff;
      ++exercised;
    }
  }
  EXPECT_GE(exercised, 3u) << "too few enumerations large enough to cut off";
}

// A checkpoint that fails before anything is scored must propagate its
// status — partial success with an empty ranking would be a lie.
TEST(ScoringDeadlineTest, NothingScoredPropagatesStatus) {
  const datasets::Dataset& ds = GetDataset("mas");
  auto templar = BuildMas();
  KeywordMapperOptions inc_options;
  inc_options.checkpoint_stride = 1;
  KeywordMapper incremental = MakeMapper(ds, *templar, inc_options);

  bool partial = false;
  MapKeywordsControls controls;
  controls.checkpoint = []() -> Status {
    return Status::DeadlineExceeded("expired before scoring");
  };
  controls.partial = &partial;

  bool exercised = false;
  for (const auto& q : ds.benchmark) {
    auto got = incremental.MapKeywords(q.gold_parse, nullptr, controls);
    if (got.ok()) continue;  // unscorable parse failed earlier for its own
                             // reason; the probe never ran
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
        << q.gold_parse.original << ": " << got.status().ToString();
    EXPECT_FALSE(partial);
    exercised = true;
  }
  EXPECT_TRUE(exercised);
}

// Under parallel enumeration the scored prefix is range-interleaved rather
// than contiguous, so the partial ranking's exact membership is
// nondeterministic — but every returned configuration must still carry
// byte-exact reference scores and the ranking must be properly ordered.
TEST(ScoringDeadlineTest, ParallelPartialScoresAreExact) {
  const datasets::Dataset& ds = GetDataset("mas");
  auto templar = BuildMas();

  // Reference variant returning the FULL ranked enumeration (top == cap),
  // so any valid partial ranking is a subsequence of it.
  KeywordMapperOptions full_options = ReferenceOptions();
  full_options.top_configurations = full_options.max_configurations;
  KeywordMapper full_reference = MakeMapper(ds, *templar, full_options);

  KeywordMapperOptions inc_options;
  inc_options.parallel_min_configurations = 1;
  inc_options.checkpoint_stride = 1;
  KeywordMapper incremental = MakeMapper(ds, *templar, inc_options);

  service::ThreadPool pool(4);
  ScoringExecutor executor = service::MakeScoringExecutor(&pool);

  size_t exercised = 0;
  for (const auto& q : ds.benchmark) {
    if (EnumeratedProduct(full_reference, q.gold_parse) < 32) continue;
    auto full = full_reference.MapKeywords(q.gold_parse);
    if (!full.ok()) continue;
    std::set<std::string> valid;
    for (const auto& c : *full) valid.insert(SerializeConfiguration(c));

    std::atomic<int> budget{8};
    bool partial = false;
    MapKeywordsControls controls;
    controls.checkpoint = [&budget]() -> Status {
      if (budget.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
        return Status::DeadlineExceeded("parallel cutoff");
      }
      return Status::OK();
    };
    controls.executor = &executor;
    controls.partial = &partial;

    auto got = incremental.MapKeywords(q.gold_parse, nullptr, controls);
    if (!got.ok()) {
      // Workers raced to the budget before scoring anything.
      EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
      continue;
    }
    EXPECT_TRUE(partial) << q.gold_parse.original;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_TRUE(valid.count(SerializeConfiguration((*got)[i])))
          << "parallel partial invented a score for '"
          << q.gold_parse.original << "'";
      if (i > 0) {
        EXPECT_GE((*got)[i - 1].score, (*got)[i].score)
            << "partial ranking out of order";
      }
    }
    ++exercised;
  }
  EXPECT_GE(exercised, 2u);
}

// TSan target: many caller threads share one mapper and one pool-backed
// executor, with and without failing checkpoints, while the catalog cache
// is first materialized under contention. Complete rankings must equal the
// precomputed expectation; partial rankings must be exact-score subsets.
TEST(ScoringConcurrencyTest, ConcurrentCallersShareMapperAndPool) {
  const datasets::Dataset& ds = GetDataset("mas");
  auto templar = BuildMas();
  KeywordMapper reference = MakeMapper(ds, *templar, ReferenceOptions());

  KeywordMapperOptions full_options = ReferenceOptions();
  full_options.top_configurations = full_options.max_configurations;
  KeywordMapper full_reference = MakeMapper(ds, *templar, full_options);

  KeywordMapperOptions inc_options;
  inc_options.parallel_min_configurations = 1;
  KeywordMapper incremental = MakeMapper(ds, *templar, inc_options);

  struct Probe {
    const nlq::ParsedNlq* parse;
    std::string expected;            // complete-ranking serialization
    std::set<std::string> valid;     // every exactly-scored configuration
  };
  std::vector<Probe> probes;
  for (const auto& q : ds.benchmark) {
    if (probes.size() >= 6) break;
    auto want = reference.MapKeywords(q.gold_parse);
    auto full = full_reference.MapKeywords(q.gold_parse);
    if (!want.ok() || !full.ok()) continue;
    Probe p;
    p.parse = &q.gold_parse;
    p.expected = SerializeRanking(*want);
    for (const auto& c : *full) p.valid.insert(SerializeConfiguration(c));
    probes.push_back(std::move(p));
  }
  ASSERT_GE(probes.size(), 3u);

  service::ThreadPool pool(4);
  ScoringExecutor executor = service::MakeScoringExecutor(&pool);

  constexpr size_t kThreads = 4;
  constexpr size_t kIterations = 8;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations; ++i) {
        const Probe& probe = probes[(t * kIterations + i) % probes.size()];
        const bool cut = (t + i) % 2 == 0;
        std::atomic<int> budget{16};
        bool partial = false;
        MapKeywordsControls controls;
        controls.executor = &executor;
        controls.partial = &partial;
        if (cut) {
          controls.checkpoint = [&budget]() -> Status {
            if (budget.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
              return Status::DeadlineExceeded("stress cutoff");
            }
            return Status::OK();
          };
        }
        auto got = incremental.MapKeywords(*probe.parse, nullptr, controls);
        if (!got.ok()) {
          if (got.status().code() != StatusCode::kDeadlineExceeded) {
            ++failures;
          }
          continue;
        }
        if (partial) {
          for (const auto& c : *got) {
            if (!probe.valid.count(SerializeConfiguration(c))) ++failures;
          }
        } else if (SerializeRanking(*got) != probe.expected) {
          ++failures;
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0u);
}

// Service-level partial disposition: a map-stage request whose deadline
// already expired is rejected with the typed status (nothing scored), the
// rejection leaves nothing cached, and a subsequent clean request computes
// the full ranking. A partial answer must never be served from cache.
TEST(ScoringServiceTest, ExpiredDeadlineLeavesNoPartialInCache) {
  const datasets::Dataset& ds = GetDataset("mas");
  std::vector<std::string> log;
  for (const auto& q : ds.benchmark) log.push_back(q.gold_sql.ToString());
  service::ServiceOptions options;
  options.worker_threads = 2;
  auto svc = service::TemplarService::Create(ds.database.get(),
                                             ds.lexicon.get(), log, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  auto oracle = Templar::Build(ds.database.get(), ds.lexicon.get(), log);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  KeywordMapper reference = MakeMapper(ds, **oracle, ReferenceOptions());

  size_t exercised = 0;
  for (const auto& q : ds.benchmark) {
    if (exercised >= 3) break;
    auto want = reference.MapKeywords(q.gold_parse);
    if (!want.ok()) continue;

    auto expired = service::QueryRequest::MapOnly(q.gold_parse);
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    auto rejected = (*svc)->Translate(expired);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);

    auto clean = (*svc)->Translate(service::QueryRequest::MapOnly(
        q.gold_parse));
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_FALSE(clean->partial);
    EXPECT_EQ(SerializeRanking(clean->configurations),
              SerializeRanking(*want))
        << "service ranking diverged for '" << q.gold_parse.original << "'";
    ++exercised;
  }
  EXPECT_GE(exercised, 3u);
}

// Best-effort service-level partial: race short deadlines against real
// enumerations. Whatever disposition each request lands on must satisfy the
// contract — complete answers equal the oracle, partial answers are never
// cached (the follow-up clean request recomputes the full ranking), and
// deadline rejections carry the typed status.
TEST(ScoringServiceTest, RacedDeadlinePartialsAreNeverCached) {
  const datasets::Dataset& ds = GetDataset("mas");
  std::vector<std::string> log;
  for (const auto& q : ds.benchmark) log.push_back(q.gold_sql.ToString());
  service::ServiceOptions options;
  options.worker_threads = 4;
  auto svc = service::TemplarService::Create(ds.database.get(),
                                             ds.lexicon.get(), log, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  auto oracle = Templar::Build(ds.database.get(), ds.lexicon.get(), log);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  KeywordMapper reference = MakeMapper(ds, **oracle, ReferenceOptions());

  size_t partials_seen = 0;
  for (const auto& q : ds.benchmark) {
    auto want = reference.MapKeywords(q.gold_parse);
    if (!want.ok()) continue;
    const std::string expected = SerializeRanking(*want);

    for (auto budget : {std::chrono::microseconds(30),
                        std::chrono::microseconds(120),
                        std::chrono::microseconds(400)}) {
      auto raced = service::QueryRequest::MapOnly(q.gold_parse);
      raced.deadline = std::chrono::steady_clock::now() + budget;
      auto got = (*svc)->Translate(raced);
      if (!got.ok()) {
        EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
      } else if (got->partial) {
        ++partials_seen;
        EXPECT_EQ(got->served_from, service::ServedFrom::kComputed)
            << "a partial answer was served from cache or a coalesced peer";
      } else if (got->served_from != service::ServedFrom::kCache) {
        EXPECT_EQ(SerializeRanking(got->configurations), expected);
      }

      auto clean = (*svc)->Translate(service::QueryRequest::MapOnly(
          q.gold_parse));
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      EXPECT_FALSE(clean->partial)
          << "a truncated ranking leaked into the cache for '"
          << q.gold_parse.original << "'";
      EXPECT_EQ(SerializeRanking(clean->configurations), expected);
    }
  }
  // Timing-dependent: partials may or may not occur on a given machine;
  // the invariants above hold either way.
  (void)partials_seen;
}

}  // namespace
}  // namespace templar::core
