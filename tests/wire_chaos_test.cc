// Chaos harness for the wire protocol: a sever thread kills every live TCP
// connection at random short intervals while concurrent clients pump a
// deterministic request mix through the server. The exactly-once contract
// under fire:
//
//  - every request gets exactly one response (the server's requests_accepted
//    counter equals the number of requests issued — retransmissions are
//    deduplicated, the pipeline never re-runs);
//  - every ranking is byte-identical to an unsevered control run
//    (WireResponse::RankingFingerprint, which excludes timings and cache
//    disposition — the fields that legitimately vary).
//
// The seed comes from TEMPLAR_CHAOS_SEED so CI can run distinct seeds (and
// a failure reproduces locally with the same value). This test is its own
// binary so the sanitizer matrix — TSan in particular — can target exactly
// this threaded code.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/tenant_registry.h"
#include "test_fixtures.h"

namespace templar::net {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("TEMPLAR_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 42;
  return std::strtoull(env, nullptr, 10);
}

nlq::ParsedNlq PapersInDatabasesNlq() {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  papers.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword databases;
  databases.text = "Databases";
  databases.metadata.context = qfg::FragmentContext::kWhere;
  databases.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {papers, databases};
  return parsed;
}

nlq::ParsedNlq AuthorsNlq() {
  nlq::ParsedNlq parsed;
  parsed.original = "authors at Northgate University";
  nlq::AnnotatedKeyword authors;
  authors.text = "author";
  authors.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword org;
  org.text = "Northgate University";
  org.metadata.context = qfg::FragmentContext::kWhere;
  org.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {authors, org};
  return parsed;
}

/// The deterministic request mix: all three stages, varying top_k and
/// explanation opt-in. Request r for every client is identical across the
/// control and chaos runs, so fingerprints are directly comparable.
WireRequest RequestAt(int index) {
  WireRequest request;
  switch (index % 4) {
    case 0:
      request.stage = static_cast<uint8_t>(service::Stage::kTranslate);
      request.nlq = PapersInDatabasesNlq();
      request.top_k = 1 + static_cast<uint64_t>(index % 3);
      request.want_explanation = index % 2 == 0;
      break;
    case 1:
      request.stage = static_cast<uint8_t>(service::Stage::kMapKeywords);
      request.nlq = AuthorsNlq();
      break;
    case 2:
      request.stage = static_cast<uint8_t>(service::Stage::kInferJoins);
      request.relation_bag = {"publication", "domain"};
      break;
    case 3:
      request.stage = static_cast<uint8_t>(service::Stage::kTranslate);
      request.nlq = AuthorsNlq();
      request.top_k = 2;
      break;
  }
  return request;
}

constexpr int kClients = 5;       // >= 4 concurrent clients per the harness.
constexpr int kRequestsPerClient = 100;

class WireChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniAcademicDb();
    model_ = testing::MakeMiniLexicon();
    service::HostOptions host_options;
    host_options.worker_threads = 4;
    host_ = std::make_unique<service::ServiceHost>(host_options);
    ASSERT_TRUE(host_->RegisterTenant("mas", db_.get(), model_.get(),
                                      testing::MakeMiniLog())
                    .ok());
  }

  /// Runs kClients client threads against `server`, each issuing the same
  /// deterministic request sequence; returns fingerprints[client][request].
  std::vector<std::vector<std::string>> RunClients(WireServer* server) {
    std::vector<std::vector<std::string>> fingerprints(
        kClients, std::vector<std::string>(kRequestsPerClient));
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([this, server, c, &fingerprints, &failures] {
        WireClientOptions options;
        options.port = server->port();
        options.tenant = "mas";
        options.reconnect_backoff = std::chrono::milliseconds(5);
        options.recv_poll = std::chrono::milliseconds(20);
        auto client = WireClient::Connect(options);
        if (!client.ok()) {
          ADD_FAILURE() << "client " << c << " connect: "
                        << client.status().ToString();
          failures.fetch_add(1);
          return;
        }
        for (int r = 0; r < kRequestsPerClient; ++r) {
          auto response = (*client)->Translate(RequestAt(r));
          if (!response.ok()) {
            ADD_FAILURE() << "client " << c << " request " << r << ": "
                          << response.status().ToString();
            failures.fetch_add(1);
            return;
          }
          fingerprints[c][r] = response->RankingFingerprint();
          // Mini-fixture translations are sub-millisecond; a little pacing
          // stretches the run so severs land DURING the workload instead
          // of the whole thing finishing between two chaos ticks.
          if (r % 10 == 9) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0);
    return fingerprints;
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<embed::EmbeddingModel> model_;
  std::unique_ptr<service::ServiceHost> host_;
};

TEST_F(WireChaosTest, ExactlyOnceByteIdenticalUnderConnectionChaos) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("TEMPLAR_CHAOS_SEED=" + std::to_string(seed));

  // --- Control run: no chaos. ---
  std::vector<std::vector<std::string>> control;
  {
    auto server = WireServer::Start(host_.get(), {});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    control = RunClients(server->get());
    const WireServerStats stats = (*server)->Stats();
    EXPECT_EQ(stats.requests_accepted,
              static_cast<uint64_t>(kClients * kRequestsPerClient));
  }
  if (::testing::Test::HasFailure()) return;

  // --- Chaos run: a sever thread severs every live connection at random
  // intervals (bounded well under 500ms so plenty of severs land inside
  // the run) while the same client workload replays. ---
  auto server = WireServer::Start(host_.get(), {});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> severs{0};
  std::thread chaos([&] {
    Rng rng(seed);
    while (!done.load(std::memory_order_acquire)) {
      const auto interval =
          std::chrono::milliseconds(1 + rng.NextBounded(5));
      const auto until = std::chrono::steady_clock::now() + interval;
      while (std::chrono::steady_clock::now() < until &&
             !done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (done.load(std::memory_order_acquire)) break;
      severs.fetch_add((*server)->SeverConnections());
    }
  });

  std::vector<std::vector<std::string>> chaotic = RunClients(server->get());
  done.store(true, std::memory_order_release);
  chaos.join();

  // Every request answered exactly once: the pipeline ran once per request
  // (retransmissions were deduplicated, responses replayed from the ring).
  const WireServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.requests_accepted,
            static_cast<uint64_t>(kClients * kRequestsPerClient))
      << "a retransmitted request must never re-run the pipeline";

  // Byte-identical rankings vs the unsevered control run.
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      ASSERT_EQ(chaotic[c][r], control[c][r])
          << "client " << c << " request " << r
          << " diverged under chaos (seed " << seed << ")";
    }
  }

  // The harness only proves something if connections actually died; with
  // severs every few milliseconds and the paced workload spanning tens of
  // them, severs land in every realistic run. (Logged for CI visibility.)
  EXPECT_GT(severs.load(), 0u) << "chaos thread never severed anything";
  std::fprintf(stderr,
               "[chaos] seed=%llu severs=%llu resumed=%llu replayed=%llu "
               "deduped=%llu retransmitted(client-side) ok\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(severs.load()),
               static_cast<unsigned long long>(stats.sessions_resumed),
               static_cast<unsigned long long>(stats.responses_replayed),
               static_cast<unsigned long long>(stats.requests_deduped));
}

}  // namespace
}  // namespace templar::net
