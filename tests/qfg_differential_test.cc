// Differential tests for the interned-id QFG refactor: the dense-id
// QueryFragmentGraph and the id-native scoring path must be observationally
// identical — counts, Dice, configuration rankings, footprints — to the
// seed's string-keyed implementation, across the MAS/IMDB/Yelp workloads
// and across online AppendLogQueries batches.
//
// The reference here is a deliberate re-implementation of the seed's
// string-keyed graph (Key()-keyed hash maps, "\x1e"-joined pair keys), kept
// in this test so the contract outlives the migration shims.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/templar.h"
#include "datasets/dataset.h"
#include "qfg/fragment.h"
#include "qfg/query_fragment_graph.h"
#include "sql/parser.h"

namespace templar {
namespace {

/// The seed PR-1 string-keyed QFG, verbatim semantics: every lookup
/// normalizes, materializes Key() strings, and probes string-hash maps.
class ReferenceStringQfg {
 public:
  explicit ReferenceStringQfg(qfg::ObscurityLevel level) : level_(level) {}

  void AddQuery(const sql::SelectQuery& query) {
    std::vector<qfg::QueryFragment> frags =
        qfg::ExtractFragments(query, level_);
    ++query_count_;
    std::vector<std::string> keys;
    keys.reserve(frags.size());
    for (const auto& f : frags) {
      std::string key = f.Key();
      occurrences_[key]++;
      keys.push_back(std::move(key));
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      for (size_t j = i + 1; j < keys.size(); ++j) {
        co_occurrences_[PairKey(keys[i], keys[j])]++;
      }
    }
  }

  uint64_t Occurrences(const qfg::QueryFragment& c) const {
    auto it = occurrences_.find(NormalizedKey(c));
    return it == occurrences_.end() ? 0 : it->second;
  }

  uint64_t CoOccurrences(const qfg::QueryFragment& a,
                         const qfg::QueryFragment& b) const {
    auto it =
        co_occurrences_.find(PairKey(NormalizedKey(a), NormalizedKey(b)));
    return it == co_occurrences_.end() ? 0 : it->second;
  }

  double Dice(const qfg::QueryFragment& a, const qfg::QueryFragment& b) const {
    uint64_t na = Occurrences(a);
    uint64_t nb = Occurrences(b);
    if (na + nb == 0) return 0;
    uint64_t ne = CoOccurrences(a, b);
    return 2.0 * static_cast<double>(ne) / static_cast<double>(na + nb);
  }

  std::string NormalizedKey(const qfg::QueryFragment& c) const {
    if (level_ == qfg::ObscurityLevel::kFull ||
        c.context != qfg::FragmentContext::kWhere) {
      return c.Key();
    }
    auto parsed = sql::ParsePredicate(c.expression);
    if (!parsed.ok()) return c.Key();
    return qfg::WhereFragment(*parsed, level_).Key();
  }

  uint64_t query_count() const { return query_count_; }
  size_t vertex_count() const { return occurrences_.size(); }
  size_t edge_count() const { return co_occurrences_.size(); }

 private:
  static std::string PairKey(const std::string& ka, const std::string& kb) {
    return ka <= kb ? ka + "\x1e" + kb : kb + "\x1e" + ka;
  }

  qfg::ObscurityLevel level_;
  uint64_t query_count_ = 0;
  std::unordered_map<std::string, uint64_t> occurrences_;
  std::unordered_map<std::string, uint64_t> co_occurrences_;
};

/// All distinct fragments the workload can ask the graph about: the
/// fragments of every log entry plus every benchmark item's gold fragments.
std::vector<qfg::QueryFragment> ProbeFragments(
    const datasets::Dataset& dataset, qfg::ObscurityLevel level) {
  std::vector<qfg::QueryFragment> out;
  auto add_query = [&](const sql::SelectQuery& q) {
    for (auto& f : qfg::ExtractFragments(q, level)) out.push_back(f);
  };
  for (const auto& entry : dataset.extra_log) {
    auto q = sql::Parse(entry);
    if (q.ok()) add_query(*q);
  }
  for (const auto& item : dataset.benchmark) add_query(item.gold_sql);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ExpectGraphsAgree(const qfg::QueryFragmentGraph& graph,
                       const ReferenceStringQfg& reference,
                       const std::vector<qfg::QueryFragment>& probes,
                       const std::string& label) {
  ASSERT_EQ(graph.query_count(), reference.query_count()) << label;
  ASSERT_EQ(graph.vertex_count(), reference.vertex_count()) << label;
  ASSERT_EQ(graph.edge_count(), reference.edge_count()) << label;
  for (const auto& probe : probes) {
    EXPECT_EQ(graph.Occurrences(probe), reference.Occurrences(probe))
        << label << ": " << probe.ToString();
  }
  // Pairwise Dice over a bounded window of probes (full quadratic across
  // hundreds of fragments would dominate test time without adding power —
  // the window still crosses contexts and co-occurrence structure).
  const size_t window = std::min<size_t>(probes.size(), 60);
  for (size_t i = 0; i < window; ++i) {
    for (size_t j = i + 1; j < window; ++j) {
      EXPECT_EQ(graph.Dice(probes[i], probes[j]),
                reference.Dice(probes[i], probes[j]))
          << label << ": Dice(" << probes[i].ToString() << ", "
          << probes[j].ToString() << ")";
    }
  }
}

class QfgDifferentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(QfgDifferentialTest, IdGraphMatchesStringReferenceAcrossAppends) {
  auto dataset = datasets::BuildByName(GetParam());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const qfg::ObscurityLevel level = qfg::ObscurityLevel::kNoConstOp;

  // Split the log: the first 70% builds both graphs, the rest arrives in
  // online append batches.
  std::vector<sql::SelectQuery> parsed;
  for (const auto& entry : dataset->extra_log) {
    auto q = sql::Parse(entry);
    if (q.ok()) parsed.push_back(std::move(*q));
  }
  ASSERT_GT(parsed.size(), 10u);
  const size_t initial = parsed.size() * 7 / 10;

  qfg::QueryFragmentGraph graph(level);
  ReferenceStringQfg reference(level);
  for (size_t i = 0; i < initial; ++i) {
    graph.AddQuery(parsed[i]);
    reference.AddQuery(parsed[i]);
  }

  std::vector<qfg::QueryFragment> probes = ProbeFragments(*dataset, level);
  ExpectGraphsAgree(graph, reference, probes, std::string(GetParam()) +
                                                  "/initial");

  // Append the tail in small batches, re-checking agreement after each.
  size_t pos = initial;
  int batch_no = 0;
  while (pos < parsed.size()) {
    const size_t batch_end = std::min(parsed.size(), pos + 7);
    for (; pos < batch_end; ++pos) {
      graph.AddQuery(parsed[pos]);
      reference.AddQuery(parsed[pos]);
    }
    ExpectGraphsAgree(graph, reference, probes,
                      std::string(GetParam()) + "/append-batch-" +
                          std::to_string(batch_no++));
  }
}

TEST_P(QfgDifferentialTest, RankingsMatchStringScoringPath) {
  auto dataset = datasets::BuildByName(GetParam());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  auto templar = core::Templar::Build(dataset->database.get(),
                                      dataset->lexicon.get(),
                                      dataset->extra_log);
  ASSERT_TRUE(templar.ok()) << templar.status().ToString();
  const qfg::QueryFragmentGraph& graph = (*templar)->query_fragment_graph();

  auto check_rankings = [&](const std::string& label) {
    size_t checked = 0;
    for (const auto& item : dataset->benchmark) {
      if (checked >= 25) break;  // Bounded: full sets run in the eval bench.
      qfg::QfgFootprint footprint;
      auto configs = (*templar)->MapKeywords(item.gold_parse, &footprint);
      if (!configs.ok()) continue;
      ++checked;
      const std::vector<qfg::FragmentFingerprint> fingerprints =
          footprint.Fingerprints();
      double previous_score = 1e300;
      for (const auto& config : *configs) {
        // The id-native score each ranking was ordered by must equal the
        // seed's string-shim QfgScore bit-for-bit.
        EXPECT_EQ(config.qfg_score,
                  core::KeywordMapper::QfgScore(config, graph))
            << label << ": " << item.nlq;
        EXPECT_LE(config.score, previous_score) << label;
        previous_score = config.score;
        // And the footprint must cover every non-FROM fragment the
        // configuration scored — recorded as interner fingerprints.
        for (const auto& mapping : config.mappings) {
          const qfg::QueryFragment& fragment = mapping.candidate.fragment;
          if (fragment.context == qfg::FragmentContext::kFrom) continue;
          qfg::ResolvedFragment resolved = graph.Resolve(fragment);
          EXPECT_TRUE(std::binary_search(fingerprints.begin(),
                                         fingerprints.end(),
                                         resolved.fingerprint))
              << label << ": footprint misses " << fragment.ToString();
        }
      }
    }
    EXPECT_GT(checked, 0u) << label;
  };

  check_rankings("cold");

  // Online ingestion: fold the first 20 benchmark gold queries back into
  // the log (shifting many counts), then re-verify the contract.
  size_t appended = 0;
  for (const auto& item : dataset->benchmark) {
    if (appended >= 20) break;
    (*templar)->AppendLogQuery(item.gold_sql);
    ++appended;
  }
  check_rankings("post-append");
}

INSTANTIATE_TEST_SUITE_P(Workloads, QfgDifferentialTest,
                         ::testing::Values("mas", "imdb", "yelp"));

}  // namespace
}  // namespace templar
