// Unit tests for db/: values, catalog, tables, executor.

#include <gtest/gtest.h>

#include "db/catalog.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/table.h"
#include "db/value.h"
#include "test_fixtures.h"

namespace templar::db {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Double(1.5).is_double());
  EXPECT_TRUE(Value::Text("x").is_text());
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Double(3).is_numeric());
  EXPECT_FALSE(Value::Text("3").is_numeric());
  EXPECT_EQ(Value::Int(3).as_int(), 3);
  EXPECT_DOUBLE_EQ(Value::Int(3).as_double(), 3.0);
  EXPECT_EQ(Value::Text("abc").as_text(), "abc");
}

TEST(ValueTest, NullNeverEqualsAnything) {
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_FALSE(Value::Int(0).Equals(Value::Null()));
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_TRUE(Value::Int(2).Comparable(Value::Double(2.5)));
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.5).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, TextComparison) {
  EXPECT_TRUE(Value::Text("a").Comparable(Value::Text("b")));
  EXPECT_LT(Value::Text("a").Compare(Value::Text("b")), 0);
  EXPECT_FALSE(Value::Text("1").Comparable(Value::Int(1)));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Text("hi").ToString(), "hi");
}

TEST(CatalogTest, AddAndFindRelation) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation({"t", {{"id", DataType::kInt, true, false}}})
                  .ok());
  EXPECT_NE(catalog.FindRelation("t"), nullptr);
  EXPECT_EQ(catalog.FindRelation("missing"), nullptr);
  EXPECT_TRUE(catalog.HasAttribute("t", "id"));
  EXPECT_FALSE(catalog.HasAttribute("t", "nope"));
}

TEST(CatalogTest, DuplicateRelationRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation({"t", {}}).ok());
  EXPECT_TRUE(catalog.AddRelation({"t", {}}).IsAlreadyExists());
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation({"a", {{"x", DataType::kInt, false, false}}})
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation({"b", {{"y", DataType::kInt, true, false}}})
                  .ok());
  EXPECT_TRUE(catalog.AddForeignKey({"a", "x", "b", "y"}).ok());
  EXPECT_TRUE(catalog.AddForeignKey({"missing", "x", "b", "y"})
                  .IsNotFound());
  EXPECT_TRUE(catalog.AddForeignKey({"a", "missing", "b", "y"}).IsNotFound());
  EXPECT_TRUE(catalog.AddForeignKey({"a", "x", "b", "missing"}).IsNotFound());
}

TEST(CatalogTest, AttributeEnumeration) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation({"a",
                                {{"x", DataType::kInt, false, false},
                                 {"y", DataType::kText, false, false}}})
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation({"b", {{"z", DataType::kInt, false, false}}})
                  .ok());
  EXPECT_EQ(catalog.attribute_count(), 3u);
  EXPECT_EQ(catalog.AllAttributes().size(), 3u);
}

TEST(TableTest, ArityChecked) {
  Table table({"t",
               {{"id", DataType::kInt, true, false},
                {"name", DataType::kText, false, false}}});
  EXPECT_TRUE(table.Insert({Value::Int(1)}).IsInvalidArgument());
  EXPECT_TRUE(table.Insert({Value::Int(1), Value::Text("x")}).ok());
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, TypeChecked) {
  Table table({"t", {{"id", DataType::kInt, true, false}}});
  EXPECT_TRUE(table.Insert({Value::Text("oops")}).IsTypeError());
  // NULL is allowed in any column.
  EXPECT_TRUE(table.Insert({Value::Null()}).ok());
  // Ints are accepted into DOUBLE columns but not vice versa.
  Table dbl({"d", {{"v", DataType::kDouble, false, false}}});
  EXPECT_TRUE(dbl.Insert({Value::Int(3)}).ok());
  Table intcol({"i", {{"v", DataType::kInt, false, false}}});
  EXPECT_TRUE(intcol.Insert({Value::Double(3.5)}).IsTypeError());
}

TEST(DatabaseTest, InsertAndLookup) {
  auto db = testing::MakeMiniAcademicDb();
  EXPECT_NE(db->FindTable("publication"), nullptr);
  EXPECT_EQ(db->FindTable("nope"), nullptr);
  EXPECT_GT(db->total_rows(), 10u);
  EXPECT_GT(db->ApproximateSizeBytes(), 100u);
  EXPECT_TRUE(db->Insert("nope", {}).IsNotFound());
}

struct CellCase {
  double cell;
  sql::BinaryOp op;
  int64_t rhs;
  bool expected;
};

class CellSatisfiesTest : public ::testing::TestWithParam<CellCase> {};

TEST_P(CellSatisfiesTest, NumericComparisons) {
  const auto& c = GetParam();
  EXPECT_EQ(CellSatisfies(Value::Double(c.cell), c.op, sql::Literal::Int(c.rhs)),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CellSatisfiesTest,
    ::testing::Values(CellCase{5, sql::BinaryOp::kEq, 5, true},
                      CellCase{5, sql::BinaryOp::kEq, 6, false},
                      CellCase{5, sql::BinaryOp::kNeq, 6, true},
                      CellCase{5, sql::BinaryOp::kLt, 6, true},
                      CellCase{5, sql::BinaryOp::kLt, 5, false},
                      CellCase{5, sql::BinaryOp::kLte, 5, true},
                      CellCase{5, sql::BinaryOp::kGt, 4, true},
                      CellCase{5, sql::BinaryOp::kGt, 5, false},
                      CellCase{5, sql::BinaryOp::kGte, 5, true},
                      CellCase{5, sql::BinaryOp::kGte, 6, false}));

TEST(CellSatisfiesTest, NullCellNeverMatches) {
  EXPECT_FALSE(CellSatisfies(Value::Null(), sql::BinaryOp::kEq,
                             sql::Literal::Int(0)));
  EXPECT_FALSE(CellSatisfies(Value::Null(), sql::BinaryOp::kNeq,
                             sql::Literal::Int(0)));
}

TEST(CellSatisfiesTest, PlaceholderNeverMatches) {
  EXPECT_FALSE(CellSatisfies(Value::Int(1), sql::BinaryOp::kEq,
                             sql::Literal::Placeholder()));
}

TEST(CellSatisfiesTest, LikeWildcards) {
  auto like = [](const char* text, const char* pattern) {
    return CellSatisfies(Value::Text(text), sql::BinaryOp::kLike,
                         sql::Literal::String(pattern));
  };
  EXPECT_TRUE(like("Scalable Indexing", "%Index%"));
  EXPECT_TRUE(like("Scalable Indexing", "Scalable%"));
  EXPECT_FALSE(like("Scalable Indexing", "Index%"));
  EXPECT_TRUE(like("abc", "a_c"));
  EXPECT_FALSE(like("abc", "a_d"));
  EXPECT_TRUE(like("", "%"));
}

TEST(ExecutorTest, CountMatching) {
  auto db = testing::MakeMiniAcademicDb();
  Executor ex(db.get());
  auto count = ex.CountMatching("publication", "year", sql::BinaryOp::kGt,
                                sql::Literal::Int(2000));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_TRUE(ex.CountMatching("nope", "year", sql::BinaryOp::kGt,
                               sql::Literal::Int(0))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ex.CountMatching("publication", "nope", sql::BinaryOp::kGt,
                               sql::Literal::Int(0))
                  .status()
                  .IsNotFound());
}

TEST(ExecutorTest, PredicateNonEmpty) {
  auto db = testing::MakeMiniAcademicDb();
  Executor ex(db.get());
  sql::Predicate p;
  p.lhs = {"publication", "year"};
  p.op = sql::BinaryOp::kGt;
  p.rhs = sql::Literal::Int(1990);
  EXPECT_TRUE(*ex.PredicateNonEmpty(p));
  p.rhs = sql::Literal::Int(2050);
  EXPECT_FALSE(*ex.PredicateNonEmpty(p));
  // Join conditions are rejected.
  p.rhs = sql::ColumnRef{"journal", "jid"};
  EXPECT_TRUE(ex.PredicateNonEmpty(p).status().IsInvalidArgument());
}

TEST(ExecutorTest, FindNumericAttrsSkipsKeys) {
  auto db = testing::MakeMiniAcademicDb();
  Executor ex(db.get());
  auto attrs = ex.FindNumericAttrs(1990, sql::BinaryOp::kGt);
  // year and citation_num qualify; pid/cid/jid/aid/oid/kid/did are keys.
  bool has_year = false;
  for (const auto& [rel, attr] : attrs) {
    EXPECT_NE(attr, "pid");
    EXPECT_NE(attr, "jid");
    EXPECT_NE(attr, "aid");
    if (rel == "publication" && attr == "year") has_year = true;
  }
  EXPECT_TRUE(has_year);
}

TEST(ExecutorTest, FindNumericAttrsRespectsPredicate) {
  auto db = testing::MakeMiniAcademicDb();
  Executor ex(db.get());
  // No publication has year > 2050.
  for (const auto& [rel, attr] : ex.FindNumericAttrs(2050, sql::BinaryOp::kGt)) {
    EXPECT_FALSE(rel == "publication" && attr == "year");
  }
}

TEST(ExecutorTest, DistinctValues) {
  auto db = testing::MakeMiniAcademicDb();
  Executor ex(db.get());
  auto values = ex.DistinctValues("domain", "name");
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 2u);
  auto limited = ex.DistinctValues("domain", "name", 1);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 1u);
  EXPECT_TRUE(ex.DistinctValues("nope", "x").status().IsNotFound());
}

}  // namespace
}  // namespace templar::db
