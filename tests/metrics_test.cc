// Tests for the serving-layer telemetry subsystem (metrics.h/histogram.h)
// and the adaptive control loop it feeds: rolling-window bucket semantics
// (rollover at exact boundaries, long-idle gap zeroing), log-linear
// histogram percentile accuracy against a sorted reference with the
// documented error bound, snapshot merge/delta algebra, the Prometheus text
// exporter, and the ServiceHost controller (traffic-share cache
// repartitioning with a floor, queue-wait-driven admission tuning).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/metrics.h"
#include "service/tenant_registry.h"
#include "service/thread_pool.h"
#include "test_fixtures.h"

namespace templar::service {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// A base instant aligned to every bucket width (50ms, 1s, 1min), so tests
// can reason about bucket boundaries exactly.
const MetricClock::time_point kBase{std::chrono::hours(1)};

// ---------------------------------------------------------------------------
// WindowedCounter

TEST(WindowedCounterTest, CountsWithinWindowAndRollsOverAtExactBoundary) {
  WindowedCounter counter;
  counter.Add(5, kBase);

  // Still inside the 1s window right up to the last bucket...
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase), 5u);
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase + milliseconds(950)), 5u);
  // ...and gone the instant the ring wraps past the recording bucket.
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase + milliseconds(1000)), 0u);

  // The 1m window still holds the events (independent rings).
  EXPECT_EQ(counter.Sum(Window::kOneMinute, kBase + milliseconds(1000)), 5u);
  EXPECT_EQ(counter.Sum(Window::kOneMinute, kBase + seconds(59)), 5u);
  EXPECT_EQ(counter.Sum(Window::kOneMinute, kBase + seconds(60)), 0u);
}

TEST(WindowedCounterTest, BucketsExpireIndividually) {
  WindowedCounter counter;
  counter.Add(5, kBase);
  counter.Add(3, kBase + milliseconds(500));

  // Both batches visible while both buckets are in the ring.
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase + milliseconds(950)), 8u);
  // The first batch ages out exactly one window after it was recorded; the
  // second survives half a window longer.
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase + milliseconds(1000)), 3u);
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase + milliseconds(1450)), 3u);
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase + milliseconds(1500)), 0u);
}

TEST(WindowedCounterTest, LongIdleGapReadsZeroWithoutBackgroundWork) {
  WindowedCounter counter;
  counter.Add(7, kBase);
  // A gap far longer than every window: each ring is cleared wholesale on
  // the next touch (steps >= bucket count), with no timer thread involved.
  const auto later = kBase + std::chrono::hours(3);
  EXPECT_EQ(counter.Sum(Window::kOneSecond, later), 0u);
  EXPECT_EQ(counter.Sum(Window::kOneMinute, later), 0u);
  EXPECT_EQ(counter.Sum(Window::kOneHour, later), 0u);
  // The lifetime total never windows out.
  EXPECT_EQ(counter.Total(), 7u);
}

TEST(WindowedCounterTest, SumsAndRatesAgreeAcrossWindows) {
  WindowedCounter counter;
  for (int i = 0; i < 10; ++i) {
    counter.Add(1, kBase + milliseconds(i * 100));
  }
  const auto now = kBase + milliseconds(999);
  const auto sums = counter.Sums(now);
  EXPECT_EQ(sums[static_cast<size_t>(Window::kOneSecond)], 10u);
  EXPECT_EQ(sums[static_cast<size_t>(Window::kOneMinute)], 10u);
  EXPECT_EQ(sums[static_cast<size_t>(Window::kOneHour)], 10u);
  EXPECT_DOUBLE_EQ(counter.RatePerSecond(Window::kOneSecond, now), 10.0);
  EXPECT_DOUBLE_EQ(counter.RatePerSecond(Window::kOneMinute, now),
                   10.0 / 60.0);
}

TEST(WindowedCounterTest, StaleTimePointLandsInCurrentBucketNotBackwards) {
  WindowedCounter counter;
  counter.Add(1, kBase + seconds(2));
  // An older explicit time point must not rewind the ring (under real use
  // the lock serializes advances and steady_clock is monotonic).
  counter.Add(1, kBase);
  EXPECT_EQ(counter.Sum(Window::kOneSecond, kBase + seconds(2)), 2u);
  EXPECT_EQ(counter.Total(), 2u);
}

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram hist;
  for (uint64_t v = 0; v < 16; ++v) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, 16u);
  // Values below 2^kSubBucketBits each own an exact bucket, so every
  // nearest-rank percentile is exact: rank r (1-based) -> value r-1.
  EXPECT_EQ(snap.ValueAtPercentile(0.5), 7u);
  EXPECT_EQ(snap.ValueAtPercentile(1.0), 15u);
  EXPECT_EQ(snap.Mean(), 7.5);
}

TEST(LatencyHistogramTest, PercentilesMatchSortedReferenceWithinBound) {
  // Deterministic pseudo-random latencies spanning five decades.
  LatencyHistogram hist;
  std::vector<uint64_t> reference;
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t value = (state >> 33) % 10'000'000 + 1;
    hist.Record(value);
    reference.push_back(value);
  }
  std::sort(reference.begin(), reference.end());

  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, reference.size());
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    uint64_t rank = static_cast<uint64_t>(p * reference.size());
    rank = std::clamp<uint64_t>(rank, 1, reference.size());
    const uint64_t exact = reference[rank - 1];
    const uint64_t reported = snap.ValueAtPercentile(p);
    // The documented bound: never below the exact percentile, at most one
    // sub-bucket width (2^-4 = 6.25%) above it.
    EXPECT_GE(reported, exact) << "p=" << p;
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(exact) * (1.0 + 1.0 / 16.0))
        << "p=" << p;
  }
}

TEST(LatencyHistogramTest, OversizedSamplesClampIntoTopBucket) {
  LatencyHistogram hist;
  hist.Record(uint64_t{1} << 40);  // Far beyond the ~17.9-minute max.
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.ValueAtPercentile(1.0), internal::kHistogramMax);
  EXPECT_EQ(snap.sum, internal::kHistogramMax);
}

TEST(LatencyHistogramTest, MergeAndDeltaAreInverse) {
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(10);
  const HistogramSnapshot before = hist.Snapshot();
  for (int i = 0; i < 100; ++i) hist.Record(100'000);
  const HistogramSnapshot after = hist.Snapshot();

  // The delta holds only the second batch: its p50 is the slow value.
  const HistogramSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.count, 100u);
  EXPECT_GE(delta.ValueAtPercentile(0.5), 100'000u);

  // Merging the delta back onto the old snapshot reproduces the new one.
  HistogramSnapshot rebuilt = before;
  rebuilt.MergeFrom(delta);
  EXPECT_EQ(rebuilt.count, after.count);
  EXPECT_EQ(rebuilt.sum, after.sum);
  EXPECT_EQ(rebuilt.ValueAtPercentile(0.999),
            after.ValueAtPercentile(0.999));
}

// ---------------------------------------------------------------------------
// TenantMetrics + exporter

TEST(TenantMetricsTest, CollectReportsWindowsTotalsAndLatencies) {
  TenantMetrics metrics;
  metrics.Add(Counter::kRequests, 3, kBase);
  metrics.Add(Counter::kCacheHits, 2, kBase);
  metrics.Record(LatencyPoint::kEndToEnd, uint64_t{250});
  metrics.Record(LatencyPoint::kEndToEnd, std::chrono::microseconds(750));

  TenantMetricsSnapshot snap = metrics.Collect(kBase + milliseconds(100));
  EXPECT_EQ(snap.WindowSum(Counter::kRequests, Window::kOneSecond), 3u);
  EXPECT_EQ(snap.WindowSum(Counter::kCacheHits, Window::kOneMinute), 2u);
  EXPECT_EQ(snap.totals[static_cast<size_t>(Counter::kRequests)], 3u);
  EXPECT_DOUBLE_EQ(snap.Rate(Counter::kRequests, Window::kOneSecond), 3.0);
  EXPECT_EQ(snap.Latency(LatencyPoint::kEndToEnd).count, 2u);

  // One window later the rolling sums are gone, the totals are not.
  snap = metrics.Collect(kBase + std::chrono::hours(2));
  EXPECT_EQ(snap.WindowSum(Counter::kRequests, Window::kOneHour), 0u);
  EXPECT_EQ(snap.totals[static_cast<size_t>(Counter::kRequests)], 3u);
}

TEST(RenderPrometheusTest, EmitsPerTenantSeriesAndHostAggregate) {
  TenantMetrics a;
  TenantMetrics b;
  a.Add(Counter::kRequests, 3, kBase);
  b.Add(Counter::kRequests, 4, kBase);
  a.Record(LatencyPoint::kEndToEnd, uint64_t{100});

  const auto now = kBase + milliseconds(100);
  const std::string text = RenderPrometheusText(
      {{"alpha", a.Collect(now)}, {"beta", b.Collect(now)}});

  EXPECT_NE(text.find("# TYPE templar_requests_window gauge"),
            std::string::npos);
  EXPECT_NE(text.find(
                "templar_requests_window{tenant=\"alpha\",window=\"1s\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find(
                "templar_requests_window{tenant=\"beta\",window=\"1s\"} 4"),
            std::string::npos);
  // Host aggregate row sums the tenants.
  EXPECT_NE(text.find(
                "templar_requests_window{tenant=\"_host\",window=\"1s\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("templar_requests_total{tenant=\"alpha\"} 3"),
            std::string::npos);
  // Latency summary series with quantile labels.
  EXPECT_NE(
      text.find("templar_latency_microseconds{tenant=\"alpha\","
                "point=\"end_to_end\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("templar_latency_microseconds_count{tenant=\"alpha\","
                      "point=\"end_to_end\"} 1"),
            std::string::npos);

  // A single tenant IS the host: no separate aggregate row.
  const std::string solo = RenderPrometheusText({{"alpha", a.Collect(now)}});
  EXPECT_EQ(solo.find("_host"), std::string::npos);
}

TEST(RenderPrometheusTest, EscapesLabelValues) {
  TenantMetrics metrics;
  metrics.Add(Counter::kRequests, 1, kBase);
  const std::string text = RenderPrometheusText(
      {{"we\"ird\\id", metrics.Collect(kBase + milliseconds(10))}});
  EXPECT_NE(text.find("tenant=\"we\\\"ird\\\\id\""), std::string::npos);
}

TEST(MetricsRegistryTest, AttachDetachAndRender) {
  MetricsRegistry registry;
  auto a = std::make_shared<TenantMetrics>();
  auto b = std::make_shared<TenantMetrics>();
  registry.Attach("b", b);
  registry.Attach("a", a);
  EXPECT_EQ(registry.Ids(), (std::vector<std::string>{"a", "b"}));

  a->Add(Counter::kRejected, 2);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("templar_rejected_total{tenant=\"a\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tenant=\"b\""), std::string::npos);

  registry.Detach("b");
  EXPECT_EQ(registry.Ids(), std::vector<std::string>{"a"});
  EXPECT_EQ(registry.RenderPrometheus().find("tenant=\"b\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Unified stats formatter (service_stats.h)

TEST(ServiceStatsFormatTest, ControlAbortsAlwaysRenderedAndSchedulerQueued) {
  ServiceStats stats;
  // Zero aborts are still information — the line must be present.
  EXPECT_NE(stats.ToString().find(
                "control aborts: deadline_exceeded=0 cancelled=0"),
            std::string::npos);

  stats.admission.submitted = 5;
  stats.admission.max_inflight = 4;
  stats.admission.scheduler_queued = 3;
  EXPECT_NE(stats.ToString().find("scheduler_queued=3"), std::string::npos);

  // The host rendering reuses the exact same formatter per tenant.
  HostStats host;
  stats.tenant_id = "t1";
  host.tenants.push_back(stats);
  EXPECT_NE(host.ToString().find(stats.ToString()), std::string::npos);
}

// ---------------------------------------------------------------------------
// FairShareScheduler queue-depth exposure

TEST(SchedulerQueueDepthTest, QueuedTasksForTracksBacklogPerTenant) {
  ThreadPool pool(1);
  FairShareScheduler scheduler(&pool);
  auto tenant = std::make_shared<AdmissionController>(
      AdmissionOptions{/*max_inflight=*/1, /*max_queued=*/8});

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  ASSERT_TRUE(scheduler.Submit(tenant, [gate] { gate.wait(); }));
  // Wait for the blocker to occupy the tenant's single in-flight slot.
  auto until = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (tenant->inflight() == 0 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
  ASSERT_EQ(tenant->inflight(), 1u);

  ASSERT_TRUE(scheduler.Submit(tenant, [] {}));
  ASSERT_TRUE(scheduler.Submit(tenant, [] {}));
  ASSERT_TRUE(scheduler.Submit(tenant, [] {}));
  EXPECT_EQ(scheduler.QueuedTasksFor(tenant.get()), 3u);
  EXPECT_EQ(scheduler.QueuedTasks(), 3u);

  release.set_value();
  while (scheduler.QueuedTasksFor(tenant.get()) > 0 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
  EXPECT_EQ(scheduler.QueuedTasksFor(tenant.get()), 0u);
}

// ---------------------------------------------------------------------------
// ServiceHost adaptive control

nlq::ParsedNlq MetricsNlq() {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  papers.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword databases;
  databases.text = "Databases";
  databases.metadata.context = qfg::FragmentContext::kWhere;
  databases.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {papers, databases};
  return parsed;
}

class AdaptiveHostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_a_ = testing::MakeMiniAcademicDb();
    db_b_ = testing::MakeMiniAcademicDb();
    model_ = testing::MakeMiniLexicon();
  }

  std::unique_ptr<db::Database> db_a_;
  std::unique_ptr<db::Database> db_b_;
  std::unique_ptr<embed::EmbeddingModel> model_;
};

TEST_F(AdaptiveHostTest, RequestPathFeedsWindowsAndExporter) {
  HostOptions options;
  options.worker_threads = 2;
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("t", db_a_.get(), model_.get(), {}).ok());
  auto handle = host.Tenant("t");
  ASSERT_TRUE(handle.ok());

  ASSERT_TRUE(handle->MapKeywords(MetricsNlq()).ok());  // Miss + compute.
  ASSERT_TRUE(handle->MapKeywords(MetricsNlq()).ok());  // Cache hit.

  TenantMetrics& metrics = handle->metrics();
  EXPECT_EQ(metrics.counter(Counter::kRequests).Total(), 2u);
  EXPECT_EQ(metrics.counter(Counter::kCacheHits).Total(), 1u);
  EXPECT_EQ(metrics.counter(Counter::kCacheMisses).Total(), 1u);
  EXPECT_EQ(metrics.counter(Counter::kMapComputations).Total(), 1u);
  EXPECT_EQ(
      metrics.histogram(LatencyPoint::kEndToEnd).Snapshot().count, 2u);

  const std::string text = host.RenderMetrics();
  EXPECT_NE(text.find("templar_requests_total{tenant=\"t\"} 2"),
            std::string::npos);

  // Retire detaches the tenant from the exporter.
  ASSERT_TRUE(host.RetireTenant("t").ok());
  EXPECT_EQ(host.RenderMetrics().find("tenant=\"t\""), std::string::npos);
}

TEST_F(AdaptiveHostTest, AppendSweepsFeedInvalidationWindows) {
  HostOptions options;
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("t", db_a_.get(), model_.get(), {}).ok());
  auto handle = host.Tenant("t");
  ASSERT_TRUE(handle.ok());

  ASSERT_TRUE(handle->MapKeywords(MetricsNlq()).ok());  // Populate cache.
  auto outcome = handle->AppendLogQueries(testing::MakeMiniLog());
  ASSERT_TRUE(outcome.ok());

  TenantMetrics& metrics = handle->metrics();
  EXPECT_EQ(metrics.counter(Counter::kInvalidationSweeps).Total(), 1u);
  // The mini log touches the mini schema's fragments, so the cached map
  // entry's footprint intersects the delta and the sweep evicts it.
  EXPECT_EQ(metrics.counter(Counter::kInvalidatedEntries).Total(),
            handle->Stats().map_cache.invalidated +
                handle->Stats().join_cache.invalidated +
                handle->Stats().translate_cache.invalidated);
}

TEST_F(AdaptiveHostTest, RepartitionFollowsTrafficShareWithFloor) {
  HostOptions options;
  options.worker_threads = 2;
  options.map_cache_budget = 64;
  options.join_cache_budget = 64;
  options.translate_cache_budget = 64;
  options.cache_shards = 1;
  options.adaptive.cache_floor_share = 0.25;
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("hot", db_a_.get(), model_.get(), {}).ok());
  ASSERT_TRUE(
      host.RegisterTenant("cold", db_b_.get(), model_.get(), {}).ok());

  // Equal split at registration.
  EXPECT_EQ(host.Tenant("hot")->Stats().map_cache.capacity, 32u);
  EXPECT_EQ(host.Tenant("cold")->Stats().map_cache.capacity, 32u);

  // With no traffic at all, an adaptive tick keeps the equal split.
  host.RunAdaptiveControlOnce();
  EXPECT_EQ(host.Tenant("hot")->Stats().map_cache.capacity, 32u);
  EXPECT_EQ(host.Tenant("cold")->Stats().map_cache.capacity, 32u);

  // All traffic on one tenant: its share grows, the cold tenant keeps at
  // least its floor (0.25 * 64 / 2 = 8 entries).
  auto hot = host.Tenant("hot");
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(hot->MapKeywords(MetricsNlq()).ok());
  host.RunAdaptiveControlOnce();
  const size_t hot_capacity = host.Tenant("hot")->Stats().map_cache.capacity;
  const size_t cold_capacity =
      host.Tenant("cold")->Stats().map_cache.capacity;
  EXPECT_GT(hot_capacity, 32u);
  EXPECT_LT(cold_capacity, 32u);
  EXPECT_GE(cold_capacity, 8u) << "floor share must protect the cold tenant";
  EXPECT_LE(hot_capacity + cold_capacity, 64u)
      << "shares must never sum past the budget";
}

TEST_F(AdaptiveHostTest, AdmissionCapTracksQueueWaitPercentile) {
  HostOptions options;
  options.worker_threads = 2;
  options.default_admission =
      AdmissionOptions{/*max_inflight=*/32, /*max_queued=*/128};
  options.adaptive.target_queue_wait_p99 = std::chrono::milliseconds(10);
  options.adaptive.min_samples = 8;
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("t", db_a_.get(), model_.get(), {}).ok());
  auto handle = host.Tenant("t");
  ASSERT_TRUE(handle.ok());
  TenantMetrics& metrics = handle->metrics();

  // Too few samples in the interval: the tuner must not act on noise.
  for (int i = 0; i < 3; ++i) {
    metrics.Record(LatencyPoint::kQueueWait, uint64_t{100'000});
  }
  host.RunAdaptiveControlOnce();
  EXPECT_EQ(handle->Stats().admission.max_inflight, 32u);

  // Sustained queue waits far past target: halve, then halve again.
  for (int i = 0; i < 16; ++i) {
    metrics.Record(LatencyPoint::kQueueWait, uint64_t{100'000});
  }
  host.RunAdaptiveControlOnce();
  EXPECT_EQ(handle->Stats().admission.max_inflight, 16u);
  for (int i = 0; i < 16; ++i) {
    metrics.Record(LatencyPoint::kQueueWait, uint64_t{100'000});
  }
  host.RunAdaptiveControlOnce();
  EXPECT_EQ(handle->Stats().admission.max_inflight, 8u);

  // Pressure clears (p99 below half the target): grow back toward — and
  // never past — the configured cap.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 16; ++i) {
      metrics.Record(LatencyPoint::kQueueWait, uint64_t{10});
    }
    host.RunAdaptiveControlOnce();
  }
  EXPECT_EQ(handle->Stats().admission.max_inflight, 32u);

  // In-between latencies (target/2 <= p99 <= target): hold steady.
  for (int i = 0; i < 16; ++i) {
    metrics.Record(LatencyPoint::kQueueWait, uint64_t{7'000});
  }
  host.RunAdaptiveControlOnce();
  EXPECT_EQ(handle->Stats().admission.max_inflight, 32u);
}

TEST_F(AdaptiveHostTest, BackgroundControllerRunsWithPeriodSet) {
  HostOptions options;
  options.worker_threads = 2;
  options.map_cache_budget = 64;
  options.cache_shards = 1;
  options.adaptive.period = std::chrono::milliseconds(5);
  options.adaptive.cache_floor_share = 0.25;
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("hot", db_a_.get(), model_.get(), {}).ok());
  ASSERT_TRUE(
      host.RegisterTenant("cold", db_b_.get(), model_.get(), {}).ok());
  auto hot = host.Tenant("hot");
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(hot->MapKeywords(MetricsNlq()).ok());

  // The controller thread repartitions on its own within a few periods.
  auto until = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (host.Tenant("hot")->Stats().map_cache.capacity <= 32u &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(host.Tenant("hot")->Stats().map_cache.capacity, 32u);
}  // Destructor joins the controller thread cleanly.

}  // namespace
}  // namespace templar::service
