// Property-based tests: invariants that must hold for *every* query, checked
// over a seeded random query generator (TEST_P sweep across generator seeds).
//
//  - Parse(ToString(q)) is the identity on the AST.
//  - QueriesEquivalent is reflexive, symmetric, and invariant under alias
//    renaming, FROM reordering, WHERE conjunct shuffling, and join operand
//    flipping.
//  - Fragment extraction is stable under those same rewrites and never emits
//    join conditions.
//  - QFG counts are permutation-invariant in log order; Dice is symmetric
//    and bounded.
//  - Steiner join-path scores are in (0,1] and non-increasing down the
//    ranked list.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/steiner.h"
#include "qfg/fragment.h"
#include "qfg/query_fragment_graph.h"
#include "sql/equivalence.h"
#include "sql/parser.h"
#include "test_fixtures.h"

namespace templar {
namespace {

/// Generates random single-block queries over the mini academic schema.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  sql::SelectQuery Next() {
    static const struct {
      const char* rel;
      const char* text_attr;
      const char* num_attr;
    } kRels[] = {
        {"publication", "title", "year"},
        {"journal", "name", "jid"},
        {"conference", "name", "cid"},
        {"author", "name", "aid"},
        {"domain", "name", "did"},
    };
    sql::SelectQuery q;
    size_t n_tables = 1 + rng_.NextBounded(3);
    std::set<size_t> chosen;
    for (size_t i = 0; i < n_tables; ++i) {
      size_t r = rng_.NextBounded(std::size(kRels));
      if (!chosen.insert(r).second) continue;
      sql::TableRef t;
      t.table = kRels[r].rel;
      if (rng_.NextBool(0.5)) {
        t.alias = std::string(1, 'a' + static_cast<char>(q.from.size()));
      }
      q.from.push_back(t);
    }
    auto qualifier = [&](size_t i) {
      return q.from[i].EffectiveName();
    };
    // Projection(s).
    size_t n_select = 1 + rng_.NextBounded(2);
    for (size_t i = 0; i < n_select; ++i) {
      size_t t = rng_.NextBounded(q.from.size());
      sql::SelectItem item;
      item.column =
          sql::ColumnRef{qualifier(t), TextAttrOf(q.from[t].table)};
      if (rng_.NextBool(0.2)) item.aggs = {sql::AggFunc::kCount};
      q.select.push_back(item);
    }
    // Value / numeric predicates.
    size_t n_preds = rng_.NextBounded(3);
    for (size_t i = 0; i < n_preds; ++i) {
      size_t t = rng_.NextBounded(q.from.size());
      sql::Predicate p;
      if (rng_.NextBool(0.5)) {
        p.lhs = sql::ColumnRef{qualifier(t), TextAttrOf(q.from[t].table)};
        p.op = sql::BinaryOp::kEq;
        p.rhs = sql::Literal::String("v" + std::to_string(rng_.NextBounded(9)));
      } else {
        p.lhs = sql::ColumnRef{qualifier(t), NumAttrOf(q.from[t].table)};
        p.op = rng_.NextBool() ? sql::BinaryOp::kGt : sql::BinaryOp::kLte;
        p.rhs = sql::Literal::Int(rng_.NextInt(0, 2020));
      }
      q.where.push_back(p);
    }
    // Chain join conditions between consecutive FROM entries.
    for (size_t i = 1; i < q.from.size(); ++i) {
      sql::Predicate j;
      j.lhs = sql::ColumnRef{qualifier(i - 1), "id"};
      j.op = sql::BinaryOp::kEq;
      j.rhs = sql::ColumnRef{qualifier(i), "id"};
      q.where.push_back(j);
    }
    if (rng_.NextBool(0.2)) q.limit = rng_.NextInt(1, 50);
    return q;
  }

  Rng& rng() { return rng_; }

 private:
  static const char* TextAttrOf(const std::string& rel) {
    if (rel == "publication") return "title";
    if (rel == "keyword") return "keyword";
    return "name";
  }
  static const char* NumAttrOf(const std::string& rel) {
    if (rel == "publication") return "year";
    return "id";
  }

  Rng rng_;
};

class QueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryPropertyTest, PrintParseRoundTrip) {
  QueryGenerator gen(GetParam());
  for (int i = 0; i < 25; ++i) {
    sql::SelectQuery q = gen.Next();
    auto reparsed = sql::Parse(q.ToString());
    ASSERT_TRUE(reparsed.ok()) << q.ToString() << " :: "
                               << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, q) << q.ToString();
  }
}

TEST_P(QueryPropertyTest, EquivalenceReflexiveAndAliasInvariant) {
  QueryGenerator gen(GetParam());
  for (int i = 0; i < 25; ++i) {
    sql::SelectQuery q = gen.Next();
    EXPECT_TRUE(sql::QueriesEquivalent(q, q)) << q.ToString();

    // Rename every alias; rewrite references.
    sql::SelectQuery renamed = q;
    std::map<std::string, std::string> rename;
    for (size_t t = 0; t < renamed.from.size(); ++t) {
      std::string fresh = "t" + std::to_string(t);
      rename[renamed.from[t].EffectiveName()] = fresh;
      renamed.from[t].alias = fresh;
    }
    auto fix = [&rename](sql::ColumnRef* c) {
      auto it = rename.find(c->relation);
      if (it != rename.end()) c->relation = it->second;
    };
    for (auto& s : renamed.select) fix(&s.column);
    for (auto& p : renamed.where) {
      fix(&p.lhs);
      if (p.IsJoin()) fix(&std::get<sql::ColumnRef>(p.rhs));
    }
    EXPECT_TRUE(sql::QueriesEquivalent(q, renamed))
        << q.ToString() << "\nvs\n"
        << renamed.ToString();
    EXPECT_TRUE(sql::QueriesEquivalent(renamed, q));  // Symmetry.
  }
}

TEST_P(QueryPropertyTest, EquivalenceInvariantUnderClauseShuffles) {
  QueryGenerator gen(GetParam());
  for (int i = 0; i < 25; ++i) {
    sql::SelectQuery q = gen.Next();
    sql::SelectQuery shuffled = q;
    gen.rng().Shuffle(&shuffled.where);
    for (auto& p : shuffled.where) {
      if (p.IsJoin() && gen.rng().NextBool()) {
        sql::ColumnRef tmp = p.lhs;
        p.lhs = p.rhs_column();
        p.rhs = tmp;
        p.op = sql::FlipBinaryOp(p.op);
      }
    }
    EXPECT_TRUE(sql::QueriesEquivalent(q, shuffled))
        << q.ToString() << "\nvs\n"
        << shuffled.ToString();
  }
}

TEST_P(QueryPropertyTest, ChangedLiteralBreaksEquivalence) {
  QueryGenerator gen(GetParam());
  for (int i = 0; i < 25; ++i) {
    sql::SelectQuery q = gen.Next();
    // Find a value predicate to mutate.
    for (auto& p : q.where) {
      if (p.IsJoin()) continue;
      sql::SelectQuery mutated = q;
      for (auto& mp : mutated.where) {
        if (!mp.IsJoin() && mp.ToString() == p.ToString()) {
          mp.rhs = sql::Literal::String("definitely different value");
          break;
        }
      }
      EXPECT_FALSE(sql::QueriesEquivalent(q, mutated)) << q.ToString();
      break;
    }
  }
}

TEST_P(QueryPropertyTest, FragmentsNeverContainJoinConditions) {
  QueryGenerator gen(GetParam());
  for (int i = 0; i < 25; ++i) {
    sql::SelectQuery q = gen.Next();
    for (auto level :
         {qfg::ObscurityLevel::kFull, qfg::ObscurityLevel::kNoConst,
          qfg::ObscurityLevel::kNoConstOp}) {
      for (const auto& f : qfg::ExtractFragments(q, level)) {
        if (f.context != qfg::FragmentContext::kWhere) continue;
        auto parsed = sql::ParsePredicate(f.expression);
        ASSERT_TRUE(parsed.ok()) << f.expression;
        EXPECT_FALSE(parsed->IsJoin()) << f.expression;
      }
    }
  }
}

TEST_P(QueryPropertyTest, FragmentsStableUnderAliasRenaming) {
  QueryGenerator gen(GetParam());
  for (int i = 0; i < 25; ++i) {
    sql::SelectQuery q = gen.Next();
    sql::SelectQuery renamed = q;
    std::map<std::string, std::string> rename;
    for (size_t t = 0; t < renamed.from.size(); ++t) {
      std::string fresh = "x" + std::to_string(t);
      rename[renamed.from[t].EffectiveName()] = fresh;
      renamed.from[t].alias = fresh;
    }
    auto fix = [&rename](sql::ColumnRef* c) {
      auto it = rename.find(c->relation);
      if (it != rename.end()) c->relation = it->second;
    };
    for (auto& s : renamed.select) fix(&s.column);
    for (auto& p : renamed.where) {
      fix(&p.lhs);
      if (p.IsJoin()) fix(&std::get<sql::ColumnRef>(p.rhs));
    }
    EXPECT_EQ(qfg::ExtractFragments(q, qfg::ObscurityLevel::kNoConstOp),
              qfg::ExtractFragments(renamed, qfg::ObscurityLevel::kNoConstOp))
        << q.ToString();
  }
}

TEST_P(QueryPropertyTest, QfgOrderInvariantAndDiceBounded) {
  QueryGenerator gen(GetParam());
  std::vector<sql::SelectQuery> log;
  for (int i = 0; i < 30; ++i) log.push_back(gen.Next());

  qfg::QueryFragmentGraph forward(qfg::ObscurityLevel::kNoConstOp);
  for (const auto& q : log) forward.AddQuery(q);
  qfg::QueryFragmentGraph backward(qfg::ObscurityLevel::kNoConstOp);
  for (auto it = log.rbegin(); it != log.rend(); ++it) backward.AddQuery(*it);

  EXPECT_EQ(forward.vertex_count(), backward.vertex_count());
  EXPECT_EQ(forward.edge_count(), backward.edge_count());
  auto fragments = forward.TopFragments();
  for (const auto& [fragment, count] : fragments) {
    EXPECT_EQ(backward.Occurrences(fragment), count);
  }
  // Dice symmetric and within [0,1]; Dice against self-query bound.
  for (size_t i = 0; i + 1 < fragments.size() && i < 10; ++i) {
    const auto& a = fragments[i].first;
    const auto& b = fragments[i + 1].first;
    double dice = forward.Dice(a, b);
    EXPECT_GE(dice, 0.0);
    EXPECT_LE(dice, 1.0);
    EXPECT_DOUBLE_EQ(dice, forward.Dice(b, a));
  }
}

TEST_P(QueryPropertyTest, SteinerRankedScoresMonotoneAndBounded) {
  auto db = testing::MakeMiniAcademicDb();
  auto schema = graph::SchemaGraph::FromCatalog(db->catalog());
  Rng rng(GetParam());
  std::vector<std::string> all_rels = schema.relations();
  for (int trial = 0; trial < 10; ++trial) {
    // 1-3 random terminal relations.
    std::vector<std::string> terminals;
    size_t n = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < n; ++i) {
      terminals.push_back(all_rels[rng.NextBounded(all_rels.size())]);
    }
    graph::SteinerOptions options;
    options.top_k = 5;
    auto paths = graph::FindJoinPaths(schema, terminals, options);
    ASSERT_TRUE(paths.ok());
    for (size_t i = 0; i < paths->size(); ++i) {
      const auto& jp = (*paths)[i];
      EXPECT_GT(jp.score, 0.0);
      EXPECT_LE(jp.score, 1.0);
      if (i > 0) {
        EXPECT_LE(jp.score, (*paths)[i - 1].score);
      }
      // Tree property: |edges| >= |relations| - 1 is exact for trees.
      EXPECT_EQ(jp.edges.size() + 1, jp.relations.size()) << jp.ToString();
      // Every terminal covered.
      for (const auto& t : terminals) {
        EXPECT_NE(std::find(jp.relations.begin(), jp.relations.end(), t),
                  jp.relations.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace templar
