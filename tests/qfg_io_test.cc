// Tests for qfg_io: QFG snapshot serialization round-trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "qfg/qfg_io.h"
#include "qfg/query_fragment_graph.h"

namespace templar::qfg {
namespace {

QueryFragmentGraph SampleGraph() {
  QueryFragmentGraph graph(ObscurityLevel::kNoConstOp);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(graph
                    .AddQuerySql("SELECT p.title FROM publication p WHERE "
                                 "p.year > 2003")
                    .ok());
  }
  EXPECT_TRUE(graph
                  .AddQuerySql("SELECT p.title FROM journal j, publication p "
                               "WHERE j.name = 'TMC' AND p.pid = j.pid")
                  .ok());
  EXPECT_TRUE(graph.AddQuerySql("SELECT j.name FROM journal j").ok());
  return graph;
}

TEST(QfgIoTest, RoundTripPreservesEverything) {
  QueryFragmentGraph original = SampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveQfg(original, &buffer).ok());
  auto restored = LoadQfg(&buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->level(), original.level());
  EXPECT_EQ(restored->query_count(), original.query_count());
  EXPECT_EQ(restored->vertex_count(), original.vertex_count());
  EXPECT_EQ(restored->edge_count(), original.edge_count());

  // Every count and Dice score identical.
  for (const auto& [fragment, count] : original.TopFragments()) {
    EXPECT_EQ(restored->Occurrences(fragment), count) << fragment.ToString();
  }
  for (const auto& [a, b, count] : original.CoOccurrenceRecords()) {
    EXPECT_EQ(restored->CoOccurrences(a, b), count);
    EXPECT_DOUBLE_EQ(restored->Dice(a, b), original.Dice(a, b));
  }
}

TEST(QfgIoTest, RoundTripThroughSecondSave) {
  // Save(Load(Save(g))) must be byte-identical (canonical ordering).
  QueryFragmentGraph original = SampleGraph();
  std::stringstream first;
  ASSERT_TRUE(SaveQfg(original, &first).ok());
  std::string first_text = first.str();
  std::stringstream reread(first_text);
  auto restored = LoadQfg(&reread);
  ASSERT_TRUE(restored.ok());
  std::stringstream second;
  ASSERT_TRUE(SaveQfg(*restored, &second).ok());
  EXPECT_EQ(first_text, second.str());
}

TEST(QfgIoTest, EscapesHostileExpressionText) {
  QueryFragmentGraph graph(ObscurityLevel::kFull);
  // A value containing tab, percent and newline-ish content.
  ASSERT_TRUE(graph
                  .AddQuerySql("SELECT b.name FROM business b WHERE b.name = "
                               "'50% off\tdeal'")
                  .ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveQfg(graph, &buffer).ok());
  auto restored = LoadQfg(&buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  QueryFragment pred{FragmentContext::kWhere,
                     "business.name = '50% off\tdeal'"};
  EXPECT_EQ(restored->Occurrences(pred), 1u);
}

TEST(QfgIoTest, FileRoundTrip) {
  QueryFragmentGraph original = SampleGraph();
  const std::string path = ::testing::TempDir() + "/qfg_snapshot.txt";
  ASSERT_TRUE(SaveQfgToFile(original, path).ok());
  auto restored = LoadQfgFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->vertex_count(), original.vertex_count());
}

TEST(QfgIoTest, AtomicSaveLeavesNoTempAndSurvivesOverwrite) {
  // SaveQfgToFile goes through temp+fsync+rename: after a successful save
  // the staging file is gone, and overwriting an existing snapshot is
  // all-or-nothing (the old bytes are never exposed half-replaced).
  QueryFragmentGraph original = SampleGraph();
  const std::string path = ::testing::TempDir() + "/qfg_atomic.qfg";
  ASSERT_TRUE(SaveQfgToFile(original, path).ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "staging file must be renamed away";
  // Overwrite with a different graph; a reload sees exactly the new one.
  ASSERT_TRUE(original.AddQuerySql("SELECT d.name FROM domain d").ok());
  ASSERT_TRUE(SaveQfgToFile(original, path).ok());
  auto restored = LoadQfgFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->query_count(), original.query_count());
}

TEST(QfgIoTest, TruncatedSnapshotIsParseErrorNotGarbage) {
  // Regression for the pre-atomic writer: a crash mid-save could leave a
  // prefix of a snapshot on disk. Any truncation of a valid v2 file must be
  // rejected as a parse error — never loaded as a silently smaller graph.
  QueryFragmentGraph original = SampleGraph();
  const std::string path = ::testing::TempDir() + "/qfg_truncated.qfg";
  ASSERT_TRUE(SaveQfgToFile(original, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(full.size(), 16u);
  // Cut mid-file at several depths, always mid-line (a cut exactly at a
  // newline boundary is indistinguishable from a shorter valid file only
  // if the trailer/edge sections still parse — the loader's record counts
  // catch those, which the half cut exercises).
  for (double frac : {0.2, 0.5, 0.8, 0.97}) {
    size_t cut = static_cast<size_t>(full.size() * frac);
    while (cut > 0 && full[cut - 1] == '\n') --cut;  // Force a torn line.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto loaded = LoadQfgFromFile(path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << full.size();
  }
}

TEST(QfgIoTest, WritesV2WithIndexedEdges) {
  QueryFragmentGraph graph = SampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveQfg(graph, &buffer).ok());
  std::string text = buffer.str();
  EXPECT_EQ(text.rfind("templar-qfg\tv2\tNoConstOp\t7\n", 0), 0u);
  // v2 E records are "E <count> <idx> <idx>" — 4 tab-separated fields.
  std::istringstream lines(text);
  std::string line;
  size_t v_records = 0;
  size_t e_records = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("E\t", 0) == 0) {
      ++e_records;
      EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 3) << line;
    } else if (line.rfind("V\t", 0) == 0) {
      ++v_records;
    }
  }
  EXPECT_EQ(v_records, graph.vertex_count());
  EXPECT_EQ(e_records, graph.edge_count());
}

TEST(QfgIoTest, LoadsLegacyV1Snapshots) {
  // A v1 snapshot (edges repeat endpoint fragments verbatim), as written by
  // the pre-interner serializer. Must keep loading byte-compatibly.
  std::stringstream v1(
      "templar-qfg\tv1\tNoConstOp\t5\n"
      "V\t5\tFROM\tpublication\n"
      "V\t4\tSELECT\tpublication.title\n"
      "V\t2\tWHERE\tpublication.year ?op ?val\n"
      "E\t4\tFROM\tpublication\tSELECT\tpublication.title\n"
      "E\t2\tSELECT\tpublication.title\tWHERE\tpublication.year ?op ?val\n");
  auto graph = LoadQfg(&v1);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->query_count(), 5u);
  EXPECT_EQ(graph->vertex_count(), 3u);
  EXPECT_EQ(graph->edge_count(), 2u);
  QueryFragment title{FragmentContext::kSelect, "publication.title"};
  QueryFragment year{FragmentContext::kWhere, "publication.year ?op ?val"};
  EXPECT_EQ(graph->Occurrences(title), 4u);
  EXPECT_EQ(graph->CoOccurrences(title, year), 2u);
  // Re-saving upgrades to v2 and round-trips.
  std::stringstream upgraded;
  ASSERT_TRUE(SaveQfg(*graph, &upgraded).ok());
  EXPECT_EQ(upgraded.str().rfind("templar-qfg\tv2", 0), 0u);
  auto reloaded = LoadQfg(&upgraded);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->CoOccurrences(title, year), 2u);
}

TEST(QfgIoTest, InternTableRoundTripPreservesObservablesNotIds) {
  // Property-style differential: ids are process-local and may be permuted
  // by a save/load cycle (the snapshot re-interns in canonical order, not
  // first-seen order), but every id-derived observable — counts, Dice,
  // footprint fingerprints — must be identical.
  QueryFragmentGraph original(ObscurityLevel::kNoConstOp);
  // Insertion order deliberately different from canonical (count desc, key
  // asc) order: rare fragments first.
  ASSERT_TRUE(original.AddQuerySql("SELECT j.name FROM journal j").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(original
                    .AddQuerySql("SELECT p.title FROM publication p WHERE "
                                 "p.year > " +
                                 std::to_string(1990 + i))
                    .ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(original
                    .AddQuerySql("SELECT p.title FROM journal j, "
                                 "publication p WHERE j.name = 'TMC' AND "
                                 "p.pid = j.pid")
                    .ok());
  }

  std::stringstream buffer;
  ASSERT_TRUE(SaveQfg(original, &buffer).ok());
  auto restored = LoadQfg(&buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->vertex_count(), original.vertex_count());
  ASSERT_EQ(restored->edge_count(), original.edge_count());

  bool any_id_differs = false;
  for (const auto& [fragment, count] : original.TopFragments()) {
    FragmentId original_id = original.NormalizeToId(fragment);
    FragmentId restored_id = restored->NormalizeToId(fragment);
    ASSERT_NE(restored_id, kInvalidFragmentId) << fragment.ToString();
    any_id_differs = any_id_differs || original_id != restored_id;
    // Counts and fingerprints agree fragment-by-fragment even where the id
    // values moved.
    EXPECT_EQ(restored->Occurrences(restored_id), count);
    EXPECT_EQ(restored->Fingerprint(restored_id),
              original.Fingerprint(original_id));
  }
  EXPECT_TRUE(any_id_differs)
      << "construction order was chosen so canonical order permutes ids; "
         "if this fires the test lost its point";
  for (const auto& [a, b, count] : original.CoOccurrenceRecords()) {
    EXPECT_EQ(restored->CoOccurrences(a, b), count);
    EXPECT_DOUBLE_EQ(restored->Dice(restored->NormalizeToId(a),
                                    restored->NormalizeToId(b)),
                     original.Dice(original.NormalizeToId(a),
                                   original.NormalizeToId(b)));
  }
}

TEST(QfgIoTest, RejectsV2EdgeIndexPastVertexSection) {
  std::stringstream dangling(
      "templar-qfg\tv2\tFull\t1\n"
      "V\t1\tSELECT\ta.b\n"
      "E\t1\t0\t1\n");
  EXPECT_TRUE(LoadQfg(&dangling).status().IsParseError());
  std::stringstream self_edge(
      "templar-qfg\tv2\tFull\t1\n"
      "V\t1\tSELECT\ta.b\n"
      "E\t1\t0\t0\n");
  EXPECT_TRUE(LoadQfg(&self_edge).status().IsParseError());
}

TEST(QfgIoTest, RejectsMalformedInput) {
  {
    std::stringstream empty;
    EXPECT_TRUE(LoadQfg(&empty).status().IsParseError());
  }
  {
    std::stringstream bad_header("not-a-qfg\tv1\tFull\t0\n");
    EXPECT_TRUE(LoadQfg(&bad_header).status().IsParseError());
  }
  {
    std::stringstream bad_level("templar-qfg\tv1\tSuperSecret\t0\n");
    EXPECT_TRUE(LoadQfg(&bad_level).status().IsParseError());
  }
  {
    std::stringstream bad_record(
        "templar-qfg\tv1\tFull\t1\nX\t1\tSELECT\tfoo\n");
    EXPECT_TRUE(LoadQfg(&bad_record).status().IsParseError());
  }
  {
    // Edge referencing a vertex that was never restored.
    std::stringstream dangling(
        "templar-qfg\tv1\tFull\t1\n"
        "V\t1\tSELECT\ta.b\n"
        "E\t1\tSELECT\ta.b\tWHERE\tmissing\n");
    EXPECT_TRUE(LoadQfg(&dangling).status().IsInvalidArgument());
  }
}

TEST(QfgIoTest, HostileCharactersRoundTripByteIdentical) {
  // Fragment expressions carrying literal tab, newline AND percent — the
  // three characters the '%'-escape must cover — injected directly via the
  // restore API (the SQL parser cannot produce a newline inside a literal,
  // but snapshots of hand-restored graphs can).
  QueryFragmentGraph graph(ObscurityLevel::kFull);
  QueryFragment tabby{FragmentContext::kWhere, "a.b = 'x\ty'"};
  QueryFragment liney{FragmentContext::kWhere, "a.c = 'line1\nline2'"};
  QueryFragment pct{FragmentContext::kWhere, "a.d LIKE '100%\t%0A\n%'"};
  graph.RestoreVertex(tabby, 3);
  graph.RestoreVertex(liney, 2);
  graph.RestoreVertex(pct, 5);
  ASSERT_TRUE(graph.RestoreEdge(tabby, liney, 1).ok());
  ASSERT_TRUE(graph.RestoreEdge(liney, pct, 2).ok());
  graph.set_query_count(5);

  std::stringstream first;
  ASSERT_TRUE(SaveQfg(graph, &first).ok());
  std::string first_text = first.str();
  std::stringstream reread(first_text);
  auto restored = LoadQfg(&reread);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Save -> load -> save is byte-identical.
  std::stringstream second;
  ASSERT_TRUE(SaveQfg(*restored, &second).ok());
  EXPECT_EQ(first_text, second.str());

  // And the hostile expressions restore verbatim, including the "%0A" that
  // must not be double-unescaped.
  EXPECT_EQ(restored->Occurrences(tabby), 3u);
  EXPECT_EQ(restored->Occurrences(liney), 2u);
  EXPECT_EQ(restored->Occurrences(pct), 5u);
  EXPECT_EQ(restored->CoOccurrences(tabby, liney), 1u);
  EXPECT_EQ(restored->CoOccurrences(liney, pct), 2u);
}

TEST(QfgIoTest, RejectsCorruptCounts) {
  // Non-numeric counts must be ParseError, not an uncaught exception.
  {
    std::stringstream bad_header_count("templar-qfg\tv1\tFull\tbanana\n");
    EXPECT_TRUE(LoadQfg(&bad_header_count).status().IsParseError());
  }
  {
    std::stringstream trailing_garbage(
        "templar-qfg\tv1\tFull\t1\nV\t12abc\tSELECT\ta.b\n");
    EXPECT_TRUE(LoadQfg(&trailing_garbage).status().IsParseError());
  }
  {
    std::stringstream overflow(
        "templar-qfg\tv1\tFull\t99999999999999999999999\n");
    EXPECT_TRUE(LoadQfg(&overflow).status().IsParseError());
  }
  {
    std::stringstream empty_count("templar-qfg\tv1\tFull\t\n");
    EXPECT_TRUE(LoadQfg(&empty_count).status().IsParseError());
  }
}

TEST(QfgIoTest, NullStreamRejected) {
  QueryFragmentGraph graph;
  EXPECT_TRUE(SaveQfg(graph, nullptr).IsInvalidArgument());
  EXPECT_TRUE(LoadQfg(nullptr).status().IsInvalidArgument());
}

TEST(QfgIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadQfgFromFile("/nonexistent/path/x.qfg").status().IsIOError());
}

}  // namespace
}  // namespace templar::qfg
