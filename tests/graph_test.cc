// Unit tests for graph/: schema graph, Steiner search, self-join forking.

#include <gtest/gtest.h>

#include <set>

#include "graph/fork.h"
#include "graph/schema_graph.h"
#include "graph/steiner.h"
#include "test_fixtures.h"

namespace templar::graph {
namespace {

SchemaGraph MiniGraph() {
  auto db = testing::MakeMiniAcademicDb();
  return SchemaGraph::FromCatalog(db->catalog());
}

TEST(SchemaGraphTest, BuiltFromCatalog) {
  SchemaGraph g = MiniGraph();
  EXPECT_EQ(g.relation_count(), 12u);
  EXPECT_EQ(g.edge_count(), 13u);
  EXPECT_TRUE(g.HasRelation("publication"));
  EXPECT_FALSE(g.HasRelation("nope"));
}

TEST(SchemaGraphTest, IncidentEdges) {
  SchemaGraph g = MiniGraph();
  auto edges = g.IncidentEdges("publication");
  // cid->conference, jid->journal, writes.pid->, publication_keyword.pid->.
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_TRUE(g.IncidentEdges("nope").empty());
}

TEST(SchemaGraphTest, EdgeOther) {
  SchemaEdge e{"writes", "aid", "author", "aid"};
  EXPECT_EQ(*e.Other("writes"), "author");
  EXPECT_EQ(*e.Other("author"), "writes");
  EXPECT_FALSE(e.Other("publication").has_value());
}

TEST(SchemaGraphTest, BaseRelationName) {
  EXPECT_EQ(BaseRelationName("author"), "author");
  EXPECT_EQ(BaseRelationName("author#1"), "author");
}

TEST(SteinerTest, SingleTerminalTrivial) {
  SchemaGraph g = MiniGraph();
  auto paths = FindJoinPaths(g, {"publication"});
  ASSERT_TRUE(paths.ok());
  ASSERT_GE(paths->size(), 1u);
  EXPECT_TRUE((*paths)[0].edges.empty());
  EXPECT_DOUBLE_EQ((*paths)[0].score, 1.0);
}

TEST(SteinerTest, TwoTerminalsShortestPathUnderUnitWeights) {
  SchemaGraph g = MiniGraph();
  auto paths = FindJoinPaths(g, {"author", "publication"});
  ASSERT_TRUE(paths.ok());
  // author-writes-publication: 2 edges.
  EXPECT_EQ((*paths)[0].edges.size(), 2u);
  EXPECT_DOUBLE_EQ((*paths)[0].score, 1.0 / 3.0);
}

TEST(SteinerTest, DefaultWeightsPreferConferenceDecoy) {
  // Example 6's failure mode: publication->domain has a 3-edge route via
  // conference (or journal) and the 4-edge gold route via keyword; unit
  // weights pick a short decoy.
  SchemaGraph g = MiniGraph();
  auto paths = FindJoinPaths(g, {"publication", "domain"});
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ((*paths)[0].edges.size(), 3u);
}

TEST(SteinerTest, LogWeightsCanPreferLongerRoute) {
  SchemaGraph g = MiniGraph();
  // Make keyword-route edges nearly free, conference/journal routes pricey.
  EdgeWeightFn fn = [](const std::string& a, const std::string& b) {
    std::set<std::string> pair{a, b};
    auto has = [&pair](const char* x) { return pair.count(x) > 0; };
    if (has("publication_keyword") || has("domain_keyword")) return 0.05;
    return 1.0;
  };
  SteinerOptions options;
  options.weight_fn = fn;
  auto paths = FindJoinPaths(g, {"publication", "domain"}, options);
  ASSERT_TRUE(paths.ok());
  // Gold: publication - publication_keyword - keyword - domain_keyword -
  // domain (4 edges, total weight 0.2 < 3.0).
  EXPECT_EQ((*paths)[0].edges.size(), 4u);
  std::set<std::string> rels((*paths)[0].relations.begin(),
                             (*paths)[0].relations.end());
  EXPECT_TRUE(rels.count("keyword"));
  EXPECT_FALSE(rels.count("conference"));
}

TEST(SteinerTest, RankedAlternativesAreDistinct) {
  SchemaGraph g = MiniGraph();
  SteinerOptions options;
  options.top_k = 4;
  auto paths = FindJoinPaths(g, {"publication", "domain"}, options);
  ASSERT_TRUE(paths.ok());
  ASSERT_GE(paths->size(), 2u);
  std::set<std::string> keys;
  for (const auto& p : *paths) keys.insert(p.Key());
  EXPECT_EQ(keys.size(), paths->size());
  // Scores are non-increasing.
  for (size_t i = 1; i < paths->size(); ++i) {
    EXPECT_LE((*paths)[i].score, (*paths)[i - 1].score);
  }
}

TEST(SteinerTest, ThreeTerminalsSpanningTree) {
  SchemaGraph g = MiniGraph();
  auto paths = FindJoinPaths(g, {"author", "publication", "journal"});
  ASSERT_TRUE(paths.ok());
  const JoinPath& jp = (*paths)[0];
  // writes(x2 edges) + publication-journal: 3 edges.
  EXPECT_EQ(jp.edges.size(), 3u);
  std::set<std::string> rels(jp.relations.begin(), jp.relations.end());
  EXPECT_TRUE(rels.count("author"));
  EXPECT_TRUE(rels.count("journal"));
  EXPECT_TRUE(rels.count("writes"));
}

TEST(SteinerTest, MissingTerminalFails) {
  SchemaGraph g = MiniGraph();
  EXPECT_TRUE(FindJoinPaths(g, {"publication", "nope"}).status().IsNotFound());
  EXPECT_TRUE(FindJoinPaths(g, {}).status().IsInvalidArgument());
}

TEST(SteinerTest, DisconnectedTerminalsFail) {
  SchemaGraph g;
  g.AddRelation("island_a");
  g.AddRelation("island_b");
  EXPECT_TRUE(
      FindJoinPaths(g, {"island_a", "island_b"}).status().IsNotFound());
}

TEST(SteinerTest, ScoreFormula) {
  EdgeWeightFn unit;  // null -> weight 1 everywhere
  std::vector<SchemaEdge> two = {{"a", "x", "b", "x"}, {"b", "y", "c", "y"}};
  EXPECT_DOUBLE_EQ(ScoreJoinPath({}, unit), 1.0);
  EXPECT_DOUBLE_EQ(ScoreJoinPath(two, unit), 1.0 / 3.0);
  EdgeWeightFn cheap = [](const std::string&, const std::string&) {
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(ScoreJoinPath(two, cheap), 1.0);
}

std::set<std::string> EdgeKeys(const std::vector<SchemaEdge>& edges) {
  std::set<std::string> keys;
  for (const auto& e : edges) keys.insert(e.ToString());
  return keys;
}

TEST(SteinerDecisiveTest, SupersetOfEveryReturnedTree) {
  SchemaGraph g = MiniGraph();
  SteinerOptions options;
  options.top_k = 4;
  auto paths = FindJoinPaths(g, {"publication", "domain"}, options);
  ASSERT_TRUE(paths.ok());
  ASSERT_GE(paths->size(), 2u);
  // One search, one evidence set: every path carries the same decisive
  // edges, and they cover every returned alternative's tree.
  std::set<std::string> decisive = EdgeKeys((*paths)[0].decisive_edges);
  for (const auto& p : *paths) {
    EXPECT_EQ(EdgeKeys(p.decisive_edges), decisive);
    for (const auto& e : p.edges) {
      EXPECT_TRUE(decisive.count(e.ToString())) << e.ToString();
    }
  }
}

TEST(SteinerDecisiveTest, SingleTerminalHasNoDecisiveEdges) {
  SchemaGraph g = MiniGraph();
  auto paths = FindJoinPaths(g, {"publication"});
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE((*paths)[0].decisive_edges.empty());
}

TEST(SteinerDecisiveTest, LineGraphKeepsOnlyThePathEdge) {
  // a-b-c-d-e with terminals {a,b}: the far edges are consulted by the
  // shortest-path expansion but neither lie on a terminal path, nor lose a
  // near-miss relaxation, nor appear in any banned-wave alternative (there
  // is none) — so the evidence set is exactly the one path edge.
  SchemaGraph g;
  g.AddEdge({"b", "x", "a", "x"});
  g.AddEdge({"c", "x", "b", "x"});
  g.AddEdge({"d", "x", "c", "x"});
  g.AddEdge({"e", "x", "d", "x"});
  auto paths = FindJoinPaths(g, {"a", "b"});
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ((*paths)[0].edges.size(), 1u);
  EXPECT_EQ(EdgeKeys((*paths)[0].decisive_edges),
            EdgeKeys((*paths)[0].edges));
}

TEST(SteinerDecisiveTest, CoversAlternativeRoutesButNotPendants) {
  // Diamond a-b-d / a-c-d plus pendant chain d-e-f. Both diamond routes
  // decide the ranking (the loser is the banned-wave alternative); the
  // pendant edges are consulted but can never change it.
  SchemaGraph g;
  g.AddEdge({"b", "x", "a", "x"});
  g.AddEdge({"d", "x", "b", "x"});
  g.AddEdge({"c", "x", "a", "x"});
  g.AddEdge({"d", "y", "c", "y"});
  g.AddEdge({"e", "x", "d", "z"});
  g.AddEdge({"f", "x", "e", "y"});
  SteinerOptions options;
  options.weight_fn = [](const std::string& a, const std::string& b) {
    std::set<std::string> pair{a, b};
    if (pair.count("e") || pair.count("f")) return 1.0;  // Pendants pricey.
    if (pair.count("c")) return 0.6;                     // Loser route.
    return 0.1;                                          // Winner route.
  };
  auto paths = FindJoinPaths(g, {"a", "d"}, options);
  ASSERT_TRUE(paths.ok());
  std::set<std::string> decisive = EdgeKeys((*paths)[0].decisive_edges);
  EXPECT_EQ(decisive.size(), 4u);
  for (const auto& e : g.edges()) {
    bool pendant = e.fk_relation == "e" || e.fk_relation == "f";
    EXPECT_EQ(decisive.count(e.ToString()), pendant ? 0u : 1u)
        << e.ToString();
  }
}

TEST(SteinerDecisiveTest, MarginCapturesNearMissRelaxations) {
  // Triangle a-b, b-c plus the direct chord a-c. With the chord losing the
  // two-hop route by less than the margin it is evidence even at top_k=1;
  // far beyond the margin it is still evidence here only because the
  // banned-wave re-solve discovers it as the alternative route. Assert the
  // within-margin case without relying on the waves: margin 0 vs default.
  SchemaGraph g;
  g.AddEdge({"b", "x", "a", "x"});
  g.AddEdge({"c", "x", "b", "x"});
  g.AddEdge({"c", "y", "a", "y"});
  SteinerOptions options;
  options.top_k = 1;
  options.weight_fn = [](const std::string& a, const std::string& b) {
    std::set<std::string> pair{a, b};
    if (pair.count("a") && pair.count("c")) return 0.45;  // Chord.
    return 0.2;  // Two-hop route: 0.4 total, wins by 0.05.
  };
  auto paths = FindJoinPaths(g, {"a", "c"}, options);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ((*paths)[0].edges.size(), 2u);
  std::set<std::string> decisive = EdgeKeys((*paths)[0].decisive_edges);
  EXPECT_TRUE(decisive.count(SchemaEdge{"c", "y", "a", "y"}.ToString()));
}

TEST(ForkTest, Example7Shape) {
  // Forking author must clone writes (FK arrives at author's PK) and stop
  // at publication (writes' FK points away), reproducing Fig. 4b.
  SchemaGraph g;
  g.AddEdge({"writes", "aid", "author", "aid"});
  g.AddEdge({"writes", "pid", "publication", "pid"});
  auto instance = ForkRelation(&g, "author", 1);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(*instance, "author#1");
  EXPECT_TRUE(g.HasRelation("author#1"));
  EXPECT_TRUE(g.HasRelation("writes#1"));
  EXPECT_FALSE(g.HasRelation("publication#1"));  // Shared, not cloned.
  // writes#1 connects to the original publication.
  bool shared_edge = false;
  for (const auto& e : g.edges()) {
    if (e.fk_relation == "writes#1" && e.pk_relation == "publication") {
      shared_edge = true;
    }
  }
  EXPECT_TRUE(shared_edge);
}

TEST(ForkTest, FkSideForkConnectsToOriginal) {
  // Forking a relation that is on the FK side: publication's fork connects
  // directly to conference/journal without cloning them.
  SchemaGraph g = MiniGraph();
  auto instance = ForkRelation(&g, "publication", 1);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(g.HasRelation("publication#1"));
  EXPECT_FALSE(g.HasRelation("conference#1"));
  EXPECT_FALSE(g.HasRelation("journal#1"));
  // Link tables arriving at publication are cloned.
  EXPECT_TRUE(g.HasRelation("writes#1"));
  EXPECT_TRUE(g.HasRelation("publication_keyword#1"));
}

TEST(ForkTest, SteinerOverForkedGraphSolvesSelfJoin) {
  SchemaGraph g;
  g.AddEdge({"writes", "aid", "author", "aid"});
  g.AddEdge({"writes", "pid", "publication", "pid"});
  ASSERT_TRUE(ForkRelation(&g, "author", 1).ok());
  auto paths = FindJoinPaths(g, {"author", "author#1", "publication"});
  ASSERT_TRUE(paths.ok());
  const JoinPath& jp = (*paths)[0];
  EXPECT_EQ(jp.edges.size(), 4u);
  std::set<std::string> rels(jp.relations.begin(), jp.relations.end());
  EXPECT_TRUE(rels.count("writes"));
  EXPECT_TRUE(rels.count("writes#1"));
  EXPECT_EQ(rels.count("publication"), 1u);
}

TEST(ForkTest, ErrorsOnBadInput) {
  SchemaGraph g = MiniGraph();
  EXPECT_TRUE(ForkRelation(&g, "nope", 1).status().IsNotFound());
  ASSERT_TRUE(ForkRelation(&g, "author", 1).ok());
  EXPECT_TRUE(ForkRelation(&g, "author", 1).status().IsAlreadyExists());
}

TEST(ForkTest, MultipleForksCoexist) {
  SchemaGraph g;
  g.AddEdge({"writes", "aid", "author", "aid"});
  g.AddEdge({"writes", "pid", "publication", "pid"});
  ASSERT_TRUE(ForkRelation(&g, "author", 1).ok());
  ASSERT_TRUE(ForkRelation(&g, "author", 2).ok());
  EXPECT_TRUE(g.HasRelation("author#2"));
  EXPECT_TRUE(g.HasRelation("writes#2"));
  auto paths =
      FindJoinPaths(g, {"author", "author#1", "author#2", "publication"});
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ((*paths)[0].edges.size(), 6u);
}

TEST(JoinPathTest, KeyIsOrderInsensitive) {
  JoinPath a;
  a.relations = {"x", "y"};
  a.edges = {{"x", "i", "y", "i"}};
  JoinPath b;
  b.relations = {"y", "x"};
  b.edges = {{"x", "i", "y", "i"}};
  EXPECT_EQ(a.Key(), b.Key());
}

}  // namespace
}  // namespace templar::graph
