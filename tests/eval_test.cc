// Unit tests for eval/: fold construction, translation judging, and a small
// cross-validated evaluation smoke run.

#include <gtest/gtest.h>

#include <set>

#include "eval/evaluator.h"
#include "sql/parser.h"
#include "test_fixtures.h"

namespace templar::eval {
namespace {

TEST(MakeFoldsTest, PartitionProperties) {
  for (size_t n : {1u, 7u, 100u, 194u}) {
    auto folds = MakeFolds(n, 4, 17);
    EXPECT_EQ(folds.size(), 4u);
    std::set<size_t> seen;
    size_t total = 0;
    for (const auto& fold : folds) {
      total += fold.size();
      for (size_t idx : fold) {
        EXPECT_LT(idx, n);
        EXPECT_TRUE(seen.insert(idx).second) << "index in two folds";
      }
    }
    EXPECT_EQ(total, n);
    // Balanced to within one element.
    for (const auto& fold : folds) {
      EXPECT_LE(folds[0].size() - fold.size(), 1u);
    }
  }
}

TEST(MakeFoldsTest, DeterministicInSeed) {
  EXPECT_EQ(MakeFolds(50, 4, 9), MakeFolds(50, 4, 9));
  EXPECT_NE(MakeFolds(50, 4, 9), MakeFolds(50, 4, 10));
}

datasets::BenchmarkQuery GoldFixture() {
  datasets::BenchmarkQuery gold;
  gold.nlq = "Return the papers after 2000";
  gold.gold_sql = *sql::Parse(
      "SELECT publication.title FROM publication WHERE publication.year > "
      "2000");
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  gold.gold_parse.keywords.push_back(papers);
  gold.gold_fragments["papers"] =
      qfg::SelectFragment("publication", "title").Key();
  return gold;
}

nlidb::Translation TranslationFixture(bool correct_mapping) {
  nlidb::Translation t;
  t.query = *sql::Parse(
      "SELECT publication.title FROM publication WHERE publication.year > "
      "2000");
  core::FragmentMapping m;
  m.keyword.text = "papers";
  m.candidate.kind = core::CandidateMapping::Kind::kAttribute;
  m.candidate.relation = correct_mapping ? "publication" : "journal";
  m.candidate.attribute = correct_mapping ? "title" : "name";
  m.candidate.fragment = qfg::SelectFragment(m.candidate.relation,
                                             m.candidate.attribute);
  t.configuration.mappings.push_back(m);
  return t;
}

TEST(JudgeTranslationTest, CorrectTranslationScoresBoth) {
  auto outcome = JudgeTranslation(GoldFixture(), TranslationFixture(true));
  EXPECT_TRUE(outcome.kw_correct);
  EXPECT_TRUE(outcome.fq_correct);
}

TEST(JudgeTranslationTest, WrongMappingFailsKw) {
  auto outcome = JudgeTranslation(GoldFixture(), TranslationFixture(false));
  EXPECT_FALSE(outcome.kw_correct);
  // FQ can still pass if the final SQL happens to be right.
  EXPECT_TRUE(outcome.fq_correct);
}

TEST(JudgeTranslationTest, TieCountsAsIncorrectFq) {
  nlidb::Translation t = TranslationFixture(true);
  t.tie_for_first = true;
  auto outcome = JudgeTranslation(GoldFixture(), Result<nlidb::Translation>(t));
  EXPECT_FALSE(outcome.fq_correct);
  EXPECT_TRUE(outcome.tie);
}

TEST(JudgeTranslationTest, WrongSqlFailsFq) {
  nlidb::Translation t = TranslationFixture(true);
  t.query = *sql::Parse("SELECT journal.name FROM journal");
  auto outcome = JudgeTranslation(GoldFixture(), Result<nlidb::Translation>(t));
  EXPECT_FALSE(outcome.fq_correct);
}

TEST(JudgeTranslationTest, FailedTranslationFailsBoth) {
  auto outcome = JudgeTranslation(
      GoldFixture(), Result<nlidb::Translation>(Status::NotFound("x")));
  EXPECT_FALSE(outcome.kw_correct);
  EXPECT_FALSE(outcome.fq_correct);
  EXPECT_TRUE(outcome.predicted_sql.empty());
}

TEST(SystemKindTest, Names) {
  EXPECT_STREQ(SystemKindToString(SystemKind::kNalir), "NaLIR");
  EXPECT_STREQ(SystemKindToString(SystemKind::kNalirPlus), "NaLIR+");
  EXPECT_STREQ(SystemKindToString(SystemKind::kPipeline), "Pipeline");
  EXPECT_STREQ(SystemKindToString(SystemKind::kPipelinePlus), "Pipeline+");
}

TEST(EvaluateSystemTest, SmokeRunOnMiniDataset) {
  // A tiny synthetic dataset around the mini academic DB: 8 queries.
  datasets::Dataset ds;
  ds.name = "mini";
  ds.database = testing::MakeMiniAcademicDb();
  ds.lexicon = testing::MakeMiniLexicon();
  ds.wordnet = testing::MakeMiniLexicon();
  ds.extra_log = testing::MakeMiniLog();
  for (int year : {1991, 1992, 1995, 1997, 2001, 2002}) {
    datasets::BenchmarkQuery q;
    q.nlq = "Return the papers after " + std::to_string(year);
    q.gold_sql = *sql::Parse(
        "SELECT publication.title FROM publication WHERE publication.year > " +
        std::to_string(year));
    nlq::AnnotatedKeyword papers;
    papers.text = "papers";
    papers.metadata.context = qfg::FragmentContext::kSelect;
    nlq::AnnotatedKeyword num;
    num.text = "after " + std::to_string(year);
    num.metadata.context = qfg::FragmentContext::kWhere;
    num.metadata.op = sql::BinaryOp::kGt;
    q.gold_parse.original = q.nlq;
    q.gold_parse.keywords = {papers, num};
    q.gold_fragments["papers"] =
        qfg::SelectFragment("publication", "title").Key();
    sql::Predicate p;
    p.lhs = {"publication", "year"};
    p.op = sql::BinaryOp::kGt;
    p.rhs = sql::Literal::Int(year);
    q.gold_fragments[num.text] =
        qfg::WhereFragment(p, qfg::ObscurityLevel::kFull).Key();
    ds.benchmark.push_back(std::move(q));
  }

  EvalOptions options;
  options.folds = 2;
  auto plus = EvaluateSystem(ds, SystemKind::kPipelinePlus, options);
  ASSERT_TRUE(plus.ok()) << plus.status().ToString();
  EXPECT_EQ(plus->scores.total, 6);
  // The log heavily supports publication.title with year predicates:
  // Pipeline+ should translate all of these.
  EXPECT_EQ(plus->scores.fq_correct, 6) << [&] {
    std::string s;
    for (const auto& o : plus->outcomes) s += o.predicted_sql + "\n";
    return s;
  }();
  auto base = EvaluateSystem(ds, SystemKind::kPipeline, options);
  ASSERT_TRUE(base.ok());
  EXPECT_LE(base->scores.fq_correct, plus->scores.fq_correct);
}

}  // namespace
}  // namespace templar::eval
