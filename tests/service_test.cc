// Tests for the serving layer: the sharded LRU cache (capacity, eviction
// order, sharding, footprint/epoch invalidation), single-flight coalescing,
// the fragment-delta extraction, and TemplarService behaviour (cache hits,
// batch/async APIs, online ingestion with selective invalidation, warm
// start).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "qfg/fragment_delta.h"
#include "service/lru_cache.h"
#include "service/single_flight.h"
#include "service/templar_service.h"
#include "service/thread_pool.h"
#include "sql/parser.h"
#include "test_fixtures.h"

namespace templar::service {
namespace {

using core::Configuration;
using graph::JoinPath;

// ---------------------------------------------------------------------------
// ShardedLruCache

TEST(LruCacheTest, HitAfterPut) {
  ShardedLruCache<int> cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Put("a", 1, /*computed_at=*/0);
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  EXPECT_FALSE(cache.Get("b").has_value());
  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  ShardedLruCache<int> cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put("a", 1, 0);
  cache.Put("b", 2, 0);
  // Touch "a" so "b" becomes the LRU entry.
  EXPECT_TRUE(cache.Get("a").has_value());
  cache.Put("c", 3, 0);
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value()) << "LRU entry should be gone";
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  ShardedLruCache<int> cache(2, 1);
  cache.Put("a", 1, 0);
  cache.Put("b", 2, 0);
  cache.Put("a", 10, 0);  // Refresh, not insert: no eviction.
  cache.Put("c", 3, 0);   // Evicts "b" (LRU), not "a".
  EXPECT_EQ(cache.Get("a").value_or(-1), 10);
  EXPECT_FALSE(cache.Get("b").has_value());
}

TEST(LruCacheTest, PerFragmentDeltaEvictsOnlyIntersectingFootprints) {
  ShardedLruCache<int> cache(8, 2, InvalidationPolicy::kPerFragment);
  cache.Put("touched", 1, /*computed_at=*/0, /*footprint=*/{10, 20, 30});
  cache.Put("untouched", 2, 0, {40, 50});
  cache.Put("no_deps", 3, 0, {});  // Empty footprint: no QFG dependency.

  cache.ApplyDelta(/*delta=*/{20, 60}, /*new_epoch=*/1);

  EXPECT_FALSE(cache.Get("touched").has_value())
      << "footprint {10,20,30} intersects delta {20,60}";
  EXPECT_EQ(cache.Get("untouched").value_or(-1), 2);
  EXPECT_EQ(cache.Get("no_deps").value_or(-1), 3);
  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.retained, 2u);
  EXPECT_EQ(stats.stale_drops, 0u) << "selective eviction is eager";

  // Survivors were re-stamped: they keep serving at the new epoch, and a
  // second non-intersecting delta retains them again.
  cache.ApplyDelta({999}, 2);
  EXPECT_EQ(cache.Get("untouched").value_or(-1), 2);
  EXPECT_EQ(cache.Stats().retained, 4u);
}

TEST(LruCacheTest, EpochDropPolicyDropsEverythingLazily) {
  ShardedLruCache<int> cache(8, 2, InvalidationPolicy::kEpochDrop);
  cache.Put("a", 1, 0, {10});
  cache.Put("b", 2, 0, {40});
  cache.ApplyDelta({999}, 1);  // Delta intersects neither footprint.
  EXPECT_FALSE(cache.Get("a").has_value())
      << "kEpochDrop ignores footprints: any append invalidates everything";
  EXPECT_FALSE(cache.Get("b").has_value());
  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_drops, 2u);
  EXPECT_EQ(stats.invalidated, 0u);
  EXPECT_EQ(stats.retained, 0u);
  // Re-inserting at the new epoch works.
  cache.Put("a", 2, 1);
  EXPECT_EQ(cache.Get("a").value_or(-1), 2);
}

TEST(LruCacheTest, StalePutIsRejectedAfterDelta) {
  // A value computed against the pre-append QFG must not enter the cache
  // after the append's sweep already ran — the sweep can no longer vet it.
  ShardedLruCache<int> cache(4, 1);
  cache.ApplyDelta({10}, /*new_epoch=*/1);
  cache.Put("late", 1, /*computed_at=*/0, {40});
  EXPECT_FALSE(cache.Get("late").has_value());
  EXPECT_EQ(cache.Stats().stale_put_drops, 1u);
  // A value computed at (or after) the current epoch is accepted.
  cache.Put("fresh", 2, 1);
  EXPECT_EQ(cache.Get("fresh").value_or(-1), 2);
}

TEST(LruCacheTest, PrePutEntrySweptByLaterDelta) {
  // Put lands before the sweep: the sweep itself must vet the footprint.
  ShardedLruCache<int> cache(4, 1);
  cache.Put("a", 1, 0, {10});
  cache.Put("b", 2, 0, {20});
  cache.ApplyDelta({10}, 1);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.Get("b").value_or(-1), 2);
}

TEST(LruCacheTest, ShardingSplitsCapacityAndNeverLosesKeys) {
  ShardedLruCache<int> cache(/*capacity=*/64, /*num_shards=*/8);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.capacity(), 64u);
  for (int i = 0; i < 64; ++i) cache.Put("key" + std::to_string(i), i, 0);
  // Each shard holds its own LRU list; nothing evicted until a single shard
  // exceeds its budget, and every present key round-trips.
  size_t present = 0;
  for (int i = 0; i < 64; ++i) {
    auto hit = cache.Get("key" + std::to_string(i));
    if (hit) {
      EXPECT_EQ(*hit, i);
      ++present;
    }
  }
  EXPECT_EQ(present + cache.Stats().evictions, 64u);
}

TEST(LruCacheTest, ZeroShardAndCapacityClamped) {
  ShardedLruCache<int> cache(/*capacity=*/0, /*num_shards=*/0);
  EXPECT_EQ(cache.shard_count(), 1u);
  cache.Put("a", 1, 0);
  EXPECT_TRUE(cache.Get("a").has_value()) << "minimum capacity is 1";
}

TEST(LruCacheTest, ClearDropsEntriesKeepsCounters) {
  ShardedLruCache<int> cache(4, 2);
  cache.Put("a", 1, 0);
  EXPECT_TRUE(cache.Get("a").has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// FragmentDelta / QfgFootprint

TEST(FragmentDeltaTest, DeltaIntersectsFootprintsOfTouchedFragmentsOnly) {
  auto query = sql::Parse("SELECT a.name FROM author a WHERE a.aid = 1");
  ASSERT_TRUE(query.ok());
  qfg::FragmentDelta delta;
  delta.AddQuery(*query, qfg::ObscurityLevel::kNoConstOp);
  delta.Seal();
  ASSERT_FALSE(delta.empty());

  // A footprint naming one of the query's fragments intersects...
  qfg::QfgFootprint touched;
  touched.AddKey(qfg::SelectFragment("author", "name").Key());
  touched.AddKey(qfg::SelectFragment("publication", "title").Key());
  EXPECT_TRUE(
      qfg::FingerprintsIntersect(delta.fingerprints(),
                                 touched.Fingerprints()));

  // ...one naming only other fragments does not...
  qfg::QfgFootprint untouched;
  untouched.AddKey(qfg::SelectFragment("journal", "name").Key());
  untouched.AddKey(qfg::RelationFragment("publication").Key());
  EXPECT_FALSE(
      qfg::FingerprintsIntersect(delta.fingerprints(),
                                 untouched.Fingerprints()));

  // ...unless it is query-count sensitive, which every delta touches.
  untouched.query_count_sensitive = true;
  EXPECT_TRUE(
      qfg::FingerprintsIntersect(delta.fingerprints(),
                                 untouched.Fingerprints()));
}

TEST(FragmentDeltaTest, SealIsIdempotentAndDeduplicates) {
  auto query = sql::Parse("SELECT j.name FROM journal j");
  ASSERT_TRUE(query.ok());
  qfg::FragmentDelta delta;
  delta.AddQuery(*query, qfg::ObscurityLevel::kNoConstOp);
  delta.AddQuery(*query, qfg::ObscurityLevel::kNoConstOp);  // Same fragments.
  delta.Seal();
  size_t size_once = delta.fingerprints().size();
  delta.Seal();
  EXPECT_EQ(delta.fingerprints().size(), size_once);
  // SELECT j.name, FROM journal, plus the query-count sentinel.
  EXPECT_EQ(size_once, 3u);
  EXPECT_TRUE(std::is_sorted(delta.fingerprints().begin(),
                             delta.fingerprints().end()));
}

// ---------------------------------------------------------------------------
// SingleFlight

TEST(SingleFlightTest, LeaderComputesFollowerNever) {
  SingleFlight<int> flight;
  int computations = 0;
  auto outcome = flight.Do("k", [&] {
    ++computations;
    return 42;
  });
  EXPECT_EQ(outcome.value, 42);
  EXPECT_FALSE(outcome.coalesced);
  EXPECT_EQ(computations, 1);
  EXPECT_EQ(flight.InFlight(), 0u) << "flight must land after completion";
  // A later call is a fresh flight, not a stale fan-out.
  auto second = flight.Do("k", [&] {
    ++computations;
    return 43;
  });
  EXPECT_EQ(second.value, 43);
  EXPECT_EQ(computations, 2);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToAtLeastOneWorker) {
  // worker_threads=0 means "use hardware_concurrency()", which is itself
  // allowed to be 0; either way the pool must end up with a worker, or every
  // submitted future would block forever.
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto result = pool.Submit([] { return 7; });
  EXPECT_EQ(result.get(), 7);
}

// ---------------------------------------------------------------------------
// TemplarService

nlq::ParsedNlq PapersInDatabasesNlq() {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  papers.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword databases;
  databases.text = "Databases";
  databases.metadata.context = qfg::FragmentContext::kWhere;
  databases.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {papers, databases};
  return parsed;
}

class TemplarServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniAcademicDb();
    model_ = testing::MakeMiniLexicon();
    ServiceOptions options;
    options.worker_threads = 2;
    options.map_cache_capacity = 64;
    options.join_cache_capacity = 64;
    options.cache_shards = 4;
    auto service = TemplarService::Create(db_.get(), model_.get(),
                                          testing::MakeMiniLog(), options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<embed::EmbeddingModel> model_;
  std::unique_ptr<TemplarService> service_;
};

TEST_F(TemplarServiceTest, MapKeywordsCachesRepeatedRequests) {
  auto first = service_->MapKeywords(PapersInDatabasesNlq());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->empty());
  auto second = service_->MapKeywords(PapersInDatabasesNlq());
  ASSERT_TRUE(second.ok());

  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.map_requests, 2u);
  EXPECT_EQ(stats.map_cache.hits, 1u);
  // One miss per cold request: the single-flight double-check re-probe does
  // not count a second miss.
  EXPECT_EQ(stats.map_cache.misses, 1u);
  EXPECT_EQ(stats.map_computations, 1u);

  // The cached ranking is identical to the computed one.
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_DOUBLE_EQ((*first)[i].score, (*second)[i].score);
    EXPECT_EQ((*first)[i].ToString(), (*second)[i].ToString());
  }
}

TEST_F(TemplarServiceTest, InferJoinsCachesAndIgnoresBagOrder) {
  std::vector<std::string> bag = {"publication", "domain"};
  std::vector<std::string> reversed = {"domain", "publication"};
  auto first = service_->InferJoins(bag);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = service_->InferJoins(reversed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service_->Stats().join_cache.hits, 1u)
      << "permuted bag should share the cache entry";
}

TEST_F(TemplarServiceTest, MapCacheKeyNormalizesWhitespaceOnly) {
  nlq::ParsedNlq a = PapersInDatabasesNlq();
  nlq::ParsedNlq b = PapersInDatabasesNlq();
  b.keywords[0].text = "  papers \t";
  b.original = "different surface phrasing, same keywords";
  EXPECT_EQ(TemplarService::MapCacheKey(a), TemplarService::MapCacheKey(b));
  b.keywords[0].text = "journals";
  EXPECT_NE(TemplarService::MapCacheKey(a), TemplarService::MapCacheKey(b));
  // Metadata is part of the key.
  nlq::ParsedNlq c = PapersInDatabasesNlq();
  c.keywords[1].metadata.op = sql::BinaryOp::kGt;
  EXPECT_NE(TemplarService::MapCacheKey(a), TemplarService::MapCacheKey(c));
}

TEST_F(TemplarServiceTest, JoinCacheKeySortsBag) {
  EXPECT_EQ(TemplarService::JoinCacheKey({"b", "a", "a#1"}),
            TemplarService::JoinCacheKey({"a", "a#1", "b"}));
  EXPECT_NE(TemplarService::JoinCacheKey({"a"}),
            TemplarService::JoinCacheKey({"a", "b"}));
}

TEST_F(TemplarServiceTest, CacheKeysEscapeSeparatorBytes) {
  // Keyword text is user input; embedded separator bytes must not let two
  // distinct requests collide on one key (cache poisoning).
  nlq::ParsedNlq two_keywords;
  nlq::AnnotatedKeyword a, b;
  a.text = "a";
  a.metadata.context = qfg::FragmentContext::kSelect;
  b.text = "b";
  b.metadata.context = qfg::FragmentContext::kSelect;
  two_keywords.keywords = {a, b};

  nlq::ParsedNlq one_hostile_keyword;
  nlq::AnnotatedKeyword hostile;
  // Crafted to reproduce the two-keyword serialization verbatim if the
  // separators were left unescaped. Literals are split so "\x1f" is never
  // followed by a hex digit (maximal-munch would swallow it).
  hostile.text = std::string("a\x1f") + "SELECT\x1f-\x1f\x1f" + "0\x1e" + "b";
  hostile.metadata.context = qfg::FragmentContext::kSelect;
  one_hostile_keyword.keywords = {hostile};

  EXPECT_NE(TemplarService::MapCacheKey(two_keywords),
            TemplarService::MapCacheKey(one_hostile_keyword));

  EXPECT_NE(TemplarService::JoinCacheKey({std::string("a\x1e") + "b"}),
            TemplarService::JoinCacheKey({"a", "b"}));
  // '%' in real input must not alias an escape sequence.
  EXPECT_NE(TemplarService::JoinCacheKey({"a%1E"}),
            TemplarService::JoinCacheKey({std::string("a\x1e")}));
}

TEST_F(TemplarServiceTest, AsyncMatchesSync) {
  auto sync = service_->MapKeywords(PapersInDatabasesNlq());
  ASSERT_TRUE(sync.ok());
  auto async = service_->MapKeywordsAsync(PapersInDatabasesNlq()).get();
  ASSERT_TRUE(async.ok());
  ASSERT_EQ(sync->size(), async->size());
  EXPECT_EQ(sync->front().ToString(), async->front().ToString());

  auto join_async = service_->InferJoinsAsync({"publication", "domain"}).get();
  ASSERT_TRUE(join_async.ok());
  EXPECT_FALSE(join_async->empty());
}

TEST_F(TemplarServiceTest, BatchResultsAlignWithInputs) {
  std::vector<nlq::ParsedNlq> nlqs(5, PapersInDatabasesNlq());
  nlqs[3].keywords.clear();  // An empty request fails; slots must align.
  auto results = service_->MapKeywordsBatch(nlqs);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(results[i].ok()) << i;
  }

  std::vector<std::vector<std::string>> bags = {
      {"publication", "domain"}, {"author"}, {"journal", "publication"}};
  auto join_results = service_->InferJoinsBatch(bags);
  ASSERT_EQ(join_results.size(), 3u);
  for (size_t i = 0; i < join_results.size(); ++i) {
    EXPECT_TRUE(join_results[i].ok()) << i;
  }
}

TEST_F(TemplarServiceTest, AppendLogQueriesBumpsEpochAndInvalidates) {
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());
  ASSERT_TRUE(service_->InferJoins({"publication", "domain"}).ok());
  uint64_t epoch_before = service_->epoch();
  uint64_t qfg_before = service_->Stats().qfg_query_count;

  // "author.name" is among the papers-NLQ candidate fragments, so this
  // append's delta intersects the cached map ranking's footprint; the join
  // search consulted author's log weight while exploring the schema, so the
  // join entry is touched too.
  auto outcome = service_->AppendLogQueries(
      {"SELECT a.name FROM author a WHERE a.aid = 1",
       "THIS IS NOT SQL",
       "SELECT p.title FROM publication p"});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->appended, 2u);
  EXPECT_EQ(outcome->skipped, 1u);
  EXPECT_EQ(outcome->epoch, epoch_before + 1);
  EXPECT_EQ(service_->epoch(), epoch_before + 1);

  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.qfg_query_count, qfg_before + 2);
  EXPECT_EQ(stats.appended_queries, 2u);
  EXPECT_EQ(stats.skipped_log_entries, 1u);
  // Invalidation is eager (the append's sweep), not lazy.
  EXPECT_EQ(stats.map_cache.invalidated, 1u);
  EXPECT_EQ(stats.join_cache.invalidated, 1u);

  // Cached results the append touched are recomputed, not served.
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());
  ASSERT_TRUE(service_->InferJoins({"publication", "domain"}).ok());
  stats = service_->Stats();
  EXPECT_EQ(stats.map_cache.hits, 0u);
  EXPECT_EQ(stats.join_cache.hits, 0u);
  EXPECT_EQ(stats.map_computations, 2u);
  EXPECT_EQ(stats.join_computations, 2u);

  // And the refreshed entries serve hits again at the new epoch.
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());
  EXPECT_EQ(service_->Stats().map_cache.hits, 1u);
}

TEST_F(TemplarServiceTest, AppendKeepsEntriesForUntouchedFragmentsWarm) {
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());

  // The papers-NLQ footprint covers its candidate fragments (journal.name,
  // publication.title, ... plus the Databases text predicates); an
  // organization-only query shares none of them.
  auto outcome =
      service_->AppendLogQueries({"SELECT o.name FROM organization o"});
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->appended, 1u);

  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.map_cache.invalidated, 0u);
  EXPECT_EQ(stats.map_cache.retained, 1u);

  // The entry survives the append: served as a hit, not recomputed.
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());
  stats = service_->Stats();
  EXPECT_EQ(stats.map_cache.hits, 1u);
  EXPECT_EQ(stats.map_cache.stale_drops, 0u);
  EXPECT_EQ(stats.map_computations, 1u) << "no recompute after the append";
}

TEST_F(TemplarServiceTest, SingleRelationJoinSurvivesEveryAppend) {
  // A one-terminal bag needs no Steiner search, consults no log weight, and
  // therefore has an empty footprint — no append can change its answer.
  ASSERT_TRUE(service_->InferJoins({"author"}).ok());
  ASSERT_EQ(service_
                ->AppendLogQueries(
                    {"SELECT a.name FROM author a WHERE a.aid = 1"})
                ->appended,
            1u);
  ASSERT_TRUE(service_->InferJoins({"author"}).ok());
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.join_cache.hits, 1u);
  EXPECT_EQ(stats.join_cache.invalidated, 0u);
  EXPECT_EQ(stats.join_computations, 1u);
}

TEST_F(TemplarServiceTest, DecisiveJoinFootprintSurvivesUnrelatedAppend) {
  // organization hangs off author as a pendant: it lies on no terminal
  // path, loses no near-miss relaxation, and appears in no banned-wave
  // alternative for {author, publication} — so it is not decisive, and an
  // organization-only append must keep the cached join ranking warm.
  std::vector<std::string> bag = {"author", "publication"};
  ASSERT_TRUE(service_->InferJoins(bag).ok());
  ASSERT_EQ(service_->AppendLogQueries({"SELECT o.name FROM organization o"})
                ->appended,
            1u);
  ASSERT_TRUE(service_->InferJoins(bag).ok());
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.join_cache.hits, 1u);
  EXPECT_EQ(stats.join_cache.invalidated, 0u);
  EXPECT_EQ(stats.join_computations, 1u) << "no recompute after the append";

  // The consult-everything reference records every weight the search read —
  // on this connected schema that includes organization's pendant edge, so
  // the very same append evicts the very same entry.
  ServiceOptions options;
  options.worker_threads = 1;
  options.templar.joins.consult_everything_footprint = true;
  auto consult = TemplarService::Create(db_.get(), model_.get(),
                                        testing::MakeMiniLog(), options);
  ASSERT_TRUE(consult.ok());
  ASSERT_TRUE((*consult)->InferJoins(bag).ok());
  ASSERT_EQ((*consult)
                ->AppendLogQueries({"SELECT o.name FROM organization o"})
                ->appended,
            1u);
  ASSERT_TRUE((*consult)->InferJoins(bag).ok());
  stats = (*consult)->Stats();
  EXPECT_EQ(stats.join_cache.invalidated, 1u);
  EXPECT_EQ(stats.join_computations, 2u)
      << "consult-everything recomputes on the unrelated append";
}

TEST_F(TemplarServiceTest, DecisiveTranslateFootprintSurvivesUnrelatedAppend) {
  // The translate cache unions the map footprint with the join footprints;
  // with the join side narrowed to decisive edges, an append touching
  // neither side keeps the end-to-end ranking warm.
  auto first = service_->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/3));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(service_->AppendLogQueries({"SELECT o.name FROM organization o"})
                ->appended,
            1u);
  auto second = service_->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/3));
  ASSERT_TRUE(second.ok());
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.translate_cache.hits, 1u);
  EXPECT_EQ(stats.translate_cache.invalidated, 0u);
  EXPECT_EQ(stats.translate_computations, 1u);
  ASSERT_EQ(first->translations.size(), second->translations.size());
  for (size_t i = 0; i < first->translations.size(); ++i) {
    EXPECT_EQ(first->translations[i].query.ToString(),
              second->translations[i].query.ToString());
  }
}

TEST_F(TemplarServiceTest, MalformedInstanceSuffixIsTypedErrorAtApi) {
  // Regression: these bags used to throw std::invalid_argument /
  // std::out_of_range out of std::stoi inside the worker thread.
  for (const char* inst :
       {"author#x", "author#", "author#99999999999999999999",
        "author#1000000"}) {
    auto result = service_->InferJoins({inst, "publication"});
    EXPECT_TRUE(result.status().IsInvalidArgument())
        << inst << " -> " << result.status().ToString();
  }
  // The service keeps serving afterwards.
  EXPECT_TRUE(service_->InferJoins({"author", "publication"}).ok());
}

TEST_F(TemplarServiceTest, JoinCacheWithoutLogWeightsIgnoresAppends) {
  ServiceOptions options;
  options.worker_threads = 1;
  options.templar.joins.use_log_weights = false;
  auto service = TemplarService::Create(db_.get(), model_.get(),
                                        testing::MakeMiniLog(), options);
  ASSERT_TRUE(service.ok());
  // Unit weights read nothing from the QFG: every join entry has an empty
  // footprint and stays warm across arbitrary ingestion.
  ASSERT_TRUE((*service)->InferJoins({"publication", "domain"}).ok());
  ASSERT_EQ((*service)
                ->AppendLogQueries({"SELECT p.title FROM publication p",
                                    "SELECT d.name FROM domain d"})
                ->appended,
            2u);
  ASSERT_TRUE((*service)->InferJoins({"publication", "domain"}).ok());
  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.join_cache.hits, 1u);
  EXPECT_EQ(stats.join_cache.retained, 1u);
  EXPECT_EQ(stats.join_computations, 1u);
}

TEST_F(TemplarServiceTest, EpochDropPolicyInvalidatesEverythingPerAppend) {
  ServiceOptions options;
  options.worker_threads = 1;
  options.invalidation = InvalidationPolicy::kEpochDrop;
  auto service = TemplarService::Create(db_.get(), model_.get(),
                                        testing::MakeMiniLog(), options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->MapKeywords(PapersInDatabasesNlq()).ok());
  // The same organization append that kPerFragment retains across...
  ASSERT_EQ((*service)
                ->AppendLogQueries({"SELECT o.name FROM organization o"})
                ->appended,
            1u);
  ASSERT_TRUE((*service)->MapKeywords(PapersInDatabasesNlq()).ok());
  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.map_cache.hits, 0u);
  EXPECT_EQ(stats.map_cache.stale_drops, 1u);
  EXPECT_EQ(stats.map_computations, 2u) << "legacy policy always recomputes";
}

TEST_F(TemplarServiceTest, StatsReportCoalescingCountersInToString) {
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.map_computations, 1u);
  EXPECT_EQ(stats.map_coalesced_hits, 0u);
  std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("map_computed=1"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("invalidated"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("retained"), std::string::npos) << rendered;
}

TEST_F(TemplarServiceTest, AppendOfOnlyUnparseableEntriesKeepsEpoch) {
  uint64_t epoch_before = service_->epoch();
  auto outcome = service_->AppendLogQueries({"garbage", ""});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->appended, 0u);
  EXPECT_EQ(outcome->skipped, 2u);
  EXPECT_EQ(outcome->epoch, epoch_before) << "no QFG change, no invalidation";
}

TEST_F(TemplarServiceTest, IngestionChangesJoinRanking) {
  // Before ingestion the mini log never joins author with publication, so
  // the direct writes route and any alternative rank purely by length.
  std::vector<std::string> bag = {"author", "publication"};
  auto before = service_->InferJoins(bag);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->empty());
  double score_before = before->front().score;

  // Flood the log with author-writes-publication joins: the log-driven edge
  // weights w_L = 1 - Dice drop, so the same path scores strictly higher.
  std::vector<std::string> burst(
      50,
      "SELECT a.name FROM author a, writes w, publication p "
      "WHERE a.aid = w.aid AND w.pid = p.pid");
  auto outcome = service_->AppendLogQueries(burst);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->appended, 50u);

  auto after = service_->InferJoins(bag);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->front().score, score_before)
      << "log evidence should cheapen the frequently-joined route";
}

TEST_F(TemplarServiceTest, SnapshotWarmStartRoundTrip) {
  // Ingest something so the snapshot differs from the initial log.
  ASSERT_EQ(service_
                ->AppendLogQueries(
                    {"SELECT a.name FROM author a WHERE a.aid = 1"})
                ->appended,
            1u);
  const std::string path = ::testing::TempDir() + "/service_snapshot.qfg";
  ASSERT_TRUE(service_->SaveSnapshot(path).ok());

  ServiceOptions options;
  options.worker_threads = 1;
  options.warm_start_path = path;
  auto warm = TemplarService::Create(db_.get(), model_.get(),
                                     /*query_log=*/{}, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  ServiceStats original = service_->Stats();
  ServiceStats restored = (*warm)->Stats();
  EXPECT_EQ(restored.qfg_query_count, original.qfg_query_count);
  EXPECT_EQ(restored.qfg_vertices, original.qfg_vertices);
  EXPECT_EQ(restored.qfg_edges, original.qfg_edges);

  // Rankings from the warm-started service match the live one.
  auto live = service_->MapKeywords(PapersInDatabasesNlq());
  auto warmres = (*warm)->MapKeywords(PapersInDatabasesNlq());
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(warmres.ok());
  ASSERT_EQ(live->size(), warmres->size());
  for (size_t i = 0; i < live->size(); ++i) {
    EXPECT_EQ((*live)[i].ToString(), (*warmres)[i].ToString());
    EXPECT_DOUBLE_EQ((*live)[i].score, (*warmres)[i].score);
  }
}

TEST_F(TemplarServiceTest, WarmStartWithMissingSnapshotFails) {
  ServiceOptions options;
  options.warm_start_path = "/nonexistent/dir/snapshot.qfg";
  auto service =
      TemplarService::Create(db_.get(), model_.get(), {}, options);
  EXPECT_FALSE(service.ok());
}

TEST_F(TemplarServiceTest, CreateRejectsNullDependencies) {
  auto service = TemplarService::Create(nullptr, model_.get(), {});
  EXPECT_FALSE(service.ok());
  EXPECT_TRUE(service.status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// The typed envelope: Translate end-to-end

TEST_F(TemplarServiceTest, TranslateServesEndToEndSqlAndCaches) {
  auto first = service_->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/3));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stage, Stage::kTranslate);
  ASSERT_FALSE(first->translations.empty());
  EXPECT_LE(first->translations.size(), 3u);
  // The top translation is assembled SQL, not a stage artifact.
  EXPECT_NE(first->translations.front().query.ToString().find("SELECT"),
            std::string::npos);
  EXPECT_EQ(first->served_from, ServedFrom::kComputed);
  EXPECT_GE(first->timings.total.count(), 0);

  auto second = service_->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/3));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->served_from, ServedFrom::kCache);

  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.translate_requests, 2u);
  EXPECT_EQ(stats.translate_computations, 1u);
  EXPECT_EQ(stats.translate_cache.hits, 1u);
  ASSERT_EQ(first->translations.size(), second->translations.size());
  for (size_t i = 0; i < first->translations.size(); ++i) {
    EXPECT_EQ(first->translations[i].query.ToString(),
              second->translations[i].query.ToString());
    EXPECT_DOUBLE_EQ(first->translations[i].score,
                     second->translations[i].score);
  }
}

TEST_F(TemplarServiceTest, TranslateMatchesDirectNlidbPipeline) {
  // The envelope must serve exactly what the library pipeline computes: no
  // reordering, no score drift through the cache/single-flight machinery.
  auto direct_templar =
      core::Templar::Build(db_.get(), model_.get(), testing::MakeMiniLog());
  ASSERT_TRUE(direct_templar.ok());
  auto direct =
      nlidb::TranslateAllWithTemplar(**direct_templar, PapersInDatabasesNlq());
  ASSERT_TRUE(direct.ok());

  auto served = service_->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), direct->size()));
  ASSERT_TRUE(served.ok());
  ASSERT_EQ(served->translations.size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(served->translations[i].query.ToString(),
              (*direct)[i].query.ToString());
    EXPECT_DOUBLE_EQ(served->translations[i].score, (*direct)[i].score);
    EXPECT_EQ(served->translations[i].tie_for_first,
              (*direct)[i].tie_for_first);
  }
}

TEST_F(TemplarServiceTest, LegacyShimsMatchDirectTemplarBitForBit) {
  // The pre-envelope surfaces are shims over stage-selected requests; their
  // rankings must equal a direct core::Templar call on the same inputs.
  auto direct =
      core::Templar::Build(db_.get(), model_.get(), testing::MakeMiniLog());
  ASSERT_TRUE(direct.ok());

  auto shim_configs = service_->MapKeywords(PapersInDatabasesNlq());
  auto direct_configs = (*direct)->MapKeywords(PapersInDatabasesNlq());
  ASSERT_TRUE(shim_configs.ok());
  ASSERT_TRUE(direct_configs.ok());
  ASSERT_EQ(shim_configs->size(), direct_configs->size());
  for (size_t i = 0; i < shim_configs->size(); ++i) {
    EXPECT_EQ((*shim_configs)[i].ToString(), (*direct_configs)[i].ToString());
    EXPECT_DOUBLE_EQ((*shim_configs)[i].score, (*direct_configs)[i].score);
  }

  std::vector<std::string> bag = {"publication", "domain"};
  auto shim_paths = service_->InferJoins(bag);
  auto direct_paths = (*direct)->InferJoins(bag);
  ASSERT_TRUE(shim_paths.ok());
  ASSERT_TRUE(direct_paths.ok());
  ASSERT_EQ(shim_paths->size(), direct_paths->size());
  for (size_t i = 0; i < shim_paths->size(); ++i) {
    EXPECT_EQ((*shim_paths)[i].ToString(), (*direct_paths)[i].ToString());
    EXPECT_DOUBLE_EQ((*shim_paths)[i].score, (*direct_paths)[i].score);
  }
}

TEST_F(TemplarServiceTest, LegacyStageRequestsShareCachesWithShims) {
  // A stage-selected envelope and the legacy shim are the same request:
  // one computation, one cache entry.
  ASSERT_TRUE(service_->MapKeywords(PapersInDatabasesNlq()).ok());
  auto enveloped =
      service_->Translate(QueryRequest::MapOnly(PapersInDatabasesNlq()));
  ASSERT_TRUE(enveloped.ok());
  EXPECT_EQ(enveloped->stage, Stage::kMapKeywords);
  EXPECT_FALSE(enveloped->configurations.empty());
  EXPECT_EQ(enveloped->served_from, ServedFrom::kCache);
  EXPECT_EQ(service_->Stats().map_computations, 1u);

  ASSERT_TRUE(service_->InferJoins({"publication", "domain"}).ok());
  auto joins =
      service_->Translate(QueryRequest::JoinsOnly({"domain", "publication"}));
  ASSERT_TRUE(joins.ok());
  EXPECT_EQ(joins->served_from, ServedFrom::kCache)
      << "permuted bag shares the legacy entry";
  EXPECT_EQ(service_->Stats().join_computations, 1u);
}

TEST_F(TemplarServiceTest, TranslateTopKValuesShareOneCacheEntry) {
  auto top1 =
      service_->Translate(QueryRequest::Translation(PapersInDatabasesNlq()));
  ASSERT_TRUE(top1.ok());
  EXPECT_EQ(top1->translations.size(), 1u);
  auto top3 = service_->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/3));
  ASSERT_TRUE(top3.ok());
  EXPECT_EQ(top3->served_from, ServedFrom::kCache)
      << "top_k is a serve-time slice, not part of the cache key";
  EXPECT_EQ(service_->Stats().translate_computations, 1u);
  ASSERT_FALSE(top3->translations.empty());
  EXPECT_EQ(top3->translations.front().query.ToString(),
            top1->translations.front().query.ToString());
}

TEST_F(TemplarServiceTest, TranslateExplanationsNameFragmentsVerifiedAgainstQfg) {
  QueryRequest request =
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/3);
  request.want_explanation = true;
  auto response = service_->Translate(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->explanations.size(), response->translations.size());

  // Independent reference: the same log indexed by a fresh Templar. Keys
  // and counts must agree fragment-for-fragment.
  auto reference =
      core::Templar::Build(db_.get(), model_.get(), testing::MakeMiniLog());
  ASSERT_TRUE(reference.ok());
  const qfg::QueryFragmentGraph& graph = (*reference)->query_fragment_graph();

  for (size_t i = 0; i < response->translations.size(); ++i) {
    const nlidb::Translation& t = response->translations[i];
    const Explanation& ex = response->explanations[i];
    EXPECT_EQ(ex.query_count, graph.query_count());

    // The occurrence-fallback flag agrees with the reference scorer.
    bool reference_flag = false;
    (void)core::KeywordMapper::QfgScore(t.configuration, graph,
                                        &reference_flag);
    EXPECT_EQ(ex.used_query_count, reference_flag);

    // Exactly the chosen configuration's non-FROM fragments, in order.
    size_t non_from = 0;
    for (const auto& m : t.configuration.mappings) {
      if (m.candidate.fragment.context == qfg::FragmentContext::kFrom) {
        continue;
      }
      ASSERT_LT(non_from, ex.map_fragments.size());
      EXPECT_EQ(ex.map_fragments[non_from].key,
                graph.Normalized(m.candidate.fragment).Key());
      ++non_from;
    }
    EXPECT_EQ(ex.map_fragments.size(), non_from);

    for (const auto& support : ex.map_fragments) {
      qfg::FragmentId id = graph.interner().Find(support.key);
      if (support.interned) {
        ASSERT_NE(id, qfg::kInvalidFragmentId)
            << "explanation names a fragment the log never interned: "
            << support.key;
        EXPECT_EQ(support.occurrences, graph.Occurrences(id));
        EXPECT_GT(support.occurrences, 0u);
      } else {
        EXPECT_EQ(id, qfg::kInvalidFragmentId) << support.key;
        EXPECT_EQ(support.occurrences, 0u);
      }
    }
    for (const auto& pair : ex.map_pairs) {
      qfg::FragmentId a = graph.interner().Find(pair.a);
      qfg::FragmentId b = graph.interner().Find(pair.b);
      EXPECT_EQ(pair.cooccurrences, graph.CoOccurrences(a, b));
      EXPECT_DOUBLE_EQ(pair.dice, graph.Dice(a, b));
    }

    // Join evidence is the search's decisive set: it covers every edge of
    // the returned path (plus the runner-ups whose w_L decided the
    // tie-breaks), each with the Dice behind its weight.
    EXPECT_GE(ex.join_edges.size(), t.join_path.edges.size());
    std::set<std::pair<std::string, std::string>> evidence;
    for (size_t e = 0; e < ex.join_edges.size(); ++e) {
      const auto& pair = ex.join_edges[e];
      EXPECT_DOUBLE_EQ(pair.dice, graph.RelationDice(pair.a, pair.b));
      evidence.insert({pair.a, pair.b});
    }
    for (const auto& edge : t.join_path.edges) {
      EXPECT_TRUE(evidence.count({graph::BaseRelationName(edge.fk_relation),
                                  graph::BaseRelationName(edge.pk_relation)}))
          << edge.ToString();
    }
    EXPECT_FALSE(ex.join_relations.empty());
    EXPECT_FALSE(ex.ToString().empty());
  }

  // Provenance rides the cache entry: a repeat is a hit with the same
  // explanations attached.
  auto repeat = service_->Translate(request);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->served_from, ServedFrom::kCache);
  ASSERT_EQ(repeat->explanations.size(), response->explanations.size());
  EXPECT_EQ(repeat->explanations.front().ToString(),
            response->explanations.front().ToString());

  // Explanationless traffic uses its own key: no free ride, no pollution.
  auto plain = service_->Translate(
      QueryRequest::Translation(PapersInDatabasesNlq(), /*top_k=*/3));
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->explanations.empty());
}

TEST_F(TemplarServiceTest, TranslateFootprintKeepsUntouchedEntriesWarm) {
  // Log weights off: the join side has no QFG dependency, so the translate
  // footprint is exactly the map footprint and retention is predictable.
  ServiceOptions options;
  options.worker_threads = 1;
  options.templar.joins.use_log_weights = false;
  auto built = TemplarService::Create(db_.get(), model_.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok());
  TemplarService& service = **built;

  ASSERT_TRUE(
      service.Translate(QueryRequest::Translation(PapersInDatabasesNlq()))
          .ok());
  // An organization-only append touches none of the papers-NLQ candidate
  // fragments: the cached translation must stay warm.
  ASSERT_EQ(
      service.AppendLogQueries({"SELECT o.name FROM organization o"})->appended,
      1u);
  auto warm =
      service.Translate(QueryRequest::Translation(PapersInDatabasesNlq()));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->served_from, ServedFrom::kCache);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.translate_cache.retained, 1u);
  EXPECT_EQ(stats.translate_cache.invalidated, 0u);
  EXPECT_EQ(stats.translate_computations, 1u);

  // An append touching a candidate fragment (publication.title is among the
  // papers-NLQ candidates) invalidates it eagerly and the next request
  // recomputes.
  ASSERT_EQ(service.AppendLogQueries({"SELECT p.title FROM publication p"})
                ->appended,
            1u);
  EXPECT_EQ(service.Stats().translate_cache.invalidated, 1u);
  auto recomputed =
      service.Translate(QueryRequest::Translation(PapersInDatabasesNlq()));
  ASSERT_TRUE(recomputed.ok());
  EXPECT_EQ(recomputed->served_from, ServedFrom::kComputed);
  EXPECT_EQ(service.Stats().translate_computations, 2u);
}

TEST_F(TemplarServiceTest, ExpiredDeadlineRejectsBeforeAnyComputation) {
  QueryRequest request = QueryRequest::Translation(PapersInDatabasesNlq());
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto response = service_->Translate(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.translate_computations, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);

  // Same for the stage shims' envelope path.
  request.stage = Stage::kMapKeywords;
  EXPECT_TRUE(service_->Translate(request).status().IsDeadlineExceeded());
  EXPECT_EQ(service_->Stats().map_computations, 0u);
}

TEST_F(TemplarServiceTest, CancelledTokenRejectsWithTypedStatus) {
  QueryRequest request = QueryRequest::Translation(PapersInDatabasesNlq());
  request.cancel = CancelToken::Cancellable();
  request.cancel.RequestCancel();
  auto response = service_->Translate(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsCancelled());
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.translate_computations, 0u);
  EXPECT_EQ(stats.cancelled, 1u);

  // An inert (default) token never cancels; the same request then serves.
  QueryRequest inert = QueryRequest::Translation(PapersInDatabasesNlq());
  EXPECT_FALSE(inert.cancel.can_cancel());
  EXPECT_TRUE(service_->Translate(inert).ok());
}

TEST_F(TemplarServiceTest, PipelineCheckpointAbortsBetweenStages) {
  // Drive the nlidb hooks directly for a deterministic mid-pipeline abort:
  // the first probe (after keyword mapping) passes, the second — before a
  // candidate's join inference — cancels.
  auto templar =
      core::Templar::Build(db_.get(), model_.get(), testing::MakeMiniLog());
  ASSERT_TRUE(templar.ok());

  int probes = 0;
  nlidb::PipelineHooks hooks;
  hooks.checkpoint = [&probes]() -> Status {
    return ++probes >= 2 ? Status::Cancelled("mid-stage cancel") : Status::OK();
  };
  auto aborted = nlidb::TranslateAllWithTemplar(
      **templar, PapersInDatabasesNlq(), hooks);
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsCancelled());
  EXPECT_EQ(probes, 2);

  // With passing probes, the hook-aware overload is bit-identical to the
  // plain one and reports a non-empty footprint + stage timings.
  qfg::QfgFootprint footprint;
  nlidb::PipelineTimings timings;
  nlidb::PipelineHooks full;
  full.footprint = &footprint;
  full.checkpoint = [] { return Status::OK(); };
  full.timings = &timings;
  auto hooked = nlidb::TranslateAllWithTemplar(
      **templar, PapersInDatabasesNlq(), full);
  auto plain =
      nlidb::TranslateAllWithTemplar(**templar, PapersInDatabasesNlq());
  ASSERT_TRUE(hooked.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(hooked->size(), plain->size());
  for (size_t i = 0; i < hooked->size(); ++i) {
    EXPECT_EQ((*hooked)[i].query.ToString(), (*plain)[i].query.ToString());
    EXPECT_DOUBLE_EQ((*hooked)[i].score, (*plain)[i].score);
  }
  EXPECT_FALSE(footprint.Fingerprints().empty());
  EXPECT_GE(timings.map.count(), 0);
}

TEST_F(TemplarServiceTest, TranslateAsyncMatchesSyncAndReportsQueueWait) {
  auto sync =
      service_->Translate(QueryRequest::Translation(PapersInDatabasesNlq()));
  ASSERT_TRUE(sync.ok());
  auto async =
      service_->TranslateAsync(QueryRequest::Translation(PapersInDatabasesNlq()))
          .get();
  ASSERT_TRUE(async.ok());
  ASSERT_EQ(async->translations.size(), sync->translations.size());
  EXPECT_EQ(async->translations.front().query.ToString(),
            sync->translations.front().query.ToString());
  EXPECT_GE(async->timings.queue.count(), 0);

  // An expired deadline never reaches the pool.
  QueryRequest dead = QueryRequest::Translation(PapersInDatabasesNlq());
  dead.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto rejected = service_->TranslateAsync(std::move(dead)).get();
  EXPECT_TRUE(rejected.status().IsDeadlineExceeded());
}

TEST_F(TemplarServiceTest, TranslateBatchAlignsResultsWithRequests) {
  std::vector<QueryRequest> requests(
      4, QueryRequest::Translation(PapersInDatabasesNlq()));
  requests[2].nlq.keywords.clear();  // Fails; slots must align.
  auto results = service_->TranslateBatch(requests);
  ASSERT_EQ(results.size(), 4u);
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(results[i].ok());
    } else {
      EXPECT_TRUE(results[i].ok()) << i << results[i].status().ToString();
    }
  }
}

TEST_F(TemplarServiceTest, StatsToStringReportsTranslateCounters) {
  ASSERT_TRUE(
      service_->Translate(QueryRequest::Translation(PapersInDatabasesNlq()))
          .ok());
  std::string rendered = service_->Stats().ToString();
  EXPECT_NE(rendered.find("translate=1"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("translate_computed=1"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("translate_cache"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace templar::service
