// Replication suite: delta-log codec and framing, torn-tail recovery as a
// property over every byte offset, writer crash-restart, follower tailing,
// compaction (caught-up remap and lagging reload), promotion, and the
// failover differential storm on all three benchmark datasets.
//
// The load-bearing invariant throughout: a follower that applied the log up
// to epoch E serves rankings byte-identical to the writer's at epoch E.
// Fragment interning order may differ between the two processes (the
// follower interns in log-position order, the writer in parse order), so id
// values differ — but every observable (counts, Dice, fingerprints,
// rankings) is a pure function of fragment *text*, which the log carries.
//
// Own binary so the sanitizer matrix (TSan especially) can target the
// kill-writer/promote-follower concurrency directly (the CI failover job).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datasets/dataset.h"
#include "nlidb/nlidb.h"
#include "replication/delta_log.h"
#include "replication/follower.h"
#include "replication/graph_log.h"
#include "service/templar_service.h"
#include "test_fixtures.h"

namespace templar {
namespace {

using replication::DeltaBatch;
using replication::DeltaLogHeader;
using replication::DeltaLogReader;
using replication::DeltaLogWriter;
using replication::FollowerReplicator;
using replication::GraphLog;
using service::QueryRequest;
using service::ServiceOptions;
using service::TemplarService;

std::string ScratchDir(const char* tag) {
  std::string dir = ::testing::TempDir() + "/replication_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string Fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Byte-exact serialization of a translation ranking.
std::string SerializeTranslations(const std::vector<nlidb::Translation>& ts) {
  std::string out;
  for (const auto& t : ts) {
    out += t.query.ToString();
    out += " score=" + Fmt(t.score);
    out += t.tie_for_first ? " tie\n" : "\n";
  }
  return out;
}

DeltaBatch SampleBatch(uint64_t epoch) {
  DeltaBatch batch;
  batch.epoch = epoch;
  batch.new_fragments = {
      {qfg::FragmentContext::kSelect, "p.title"},
      {qfg::FragmentContext::kWhere, "tabs\tnewlines\nand %25 escapes"},
      {qfg::FragmentContext::kOrderBy, std::string("nul\0byte", 8)},
      {qfg::FragmentContext::kFrom, ""},
  };
  batch.queries = {{0, 1, 2}, {3}, {}};
  return batch;
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(DeltaCodecTest, RoundTripsHostileFragments) {
  DeltaBatch batch = SampleBatch(17);
  std::string payload = replication::EncodeBatch(batch);
  auto decoded = replication::DecodeBatch(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 17u);
  ASSERT_EQ(decoded->new_fragments.size(), batch.new_fragments.size());
  for (size_t i = 0; i < batch.new_fragments.size(); ++i) {
    EXPECT_EQ(decoded->new_fragments[i].context,
              batch.new_fragments[i].context);
    EXPECT_EQ(decoded->new_fragments[i].expression,
              batch.new_fragments[i].expression);
  }
  EXPECT_EQ(decoded->queries, batch.queries);
}

TEST(DeltaCodecTest, RejectsEveryTruncatedPrefix) {
  std::string payload = replication::EncodeBatch(SampleBatch(3));
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(replication::DecodeBatch(payload.data(), len).ok())
        << "prefix of " << len << "/" << payload.size()
        << " bytes decoded successfully";
  }
}

TEST(DeltaCodecTest, RejectsOutOfRangeContextByte) {
  std::string payload = replication::EncodeBatch(SampleBatch(1));
  // Byte 12 is the first fragment's context (u64 epoch + u32 count = 12).
  ASSERT_GT(payload.size(), 12u);
  payload[12] = static_cast<char>(0x7f);
  EXPECT_FALSE(
      replication::DecodeBatch(payload.data(), payload.size()).ok());
}

// ---------------------------------------------------------------------------
// Framing, header corruption, torn tails
// ---------------------------------------------------------------------------

TEST(DeltaLogFileTest, WriteThenScanRoundTrips) {
  const std::string dir = ScratchDir("scan");
  const std::string path = dir + "/delta.log";
  DeltaLogHeader header;
  header.generation = 2;
  header.base_epoch = 10;
  header.base_vertex_count = 7;
  auto writer = DeltaLogWriter::Create(path, header);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (uint64_t e = 11; e <= 13; ++e) {
    ASSERT_TRUE((*writer)->Append(SampleBatch(e), /*fsync=*/false).ok());
  }
  EXPECT_EQ((*writer)->last_epoch(), 13u);
  EXPECT_EQ((*writer)->record_count(), 3u);

  auto scan = replication::ReadLog(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->first.generation, 2u);
  EXPECT_EQ(scan->first.base_epoch, 10u);
  EXPECT_EQ(scan->first.base_vertex_count, 7u);
  ASSERT_EQ(scan->second.size(), 3u);
  EXPECT_EQ(scan->second.front().epoch, 11u);
  EXPECT_EQ(scan->second.back().epoch, 13u);
}

TEST(DeltaLogFileTest, DetectsHeaderCorruptionAtEveryByte) {
  const std::string dir = ScratchDir("header");
  const std::string path = dir + "/delta.log";
  auto writer = DeltaLogWriter::Create(path, DeltaLogHeader{1, 5, 3});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(SampleBatch(6), /*fsync=*/false).ok());
  const std::string original = ReadFileBytes(path);

  for (size_t i = 0; i < replication::kDeltaLogHeaderBytes; ++i) {
    std::string corrupt = original;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    WriteFileBytes(path, corrupt);
    EXPECT_FALSE(replication::ReadLogHeader(path).ok())
        << "flipped header byte " << i << " went undetected";
  }
}

// The torn-tail property (ISSUE satellite): for EVERY byte offset within
// the last record, a log truncated there recovers to exactly the valid
// prefix — K-1 records, last epoch K-1 — and OpenForAppend can continue
// the sequence from that epoch. A cut at the exact end keeps all K.
TEST(DeltaLogFileTest, TornTailRecoversToValidPrefixAtEveryOffset) {
  const std::string dir = ScratchDir("torn");
  const std::string path = dir + "/delta.log";
  constexpr uint64_t kRecords = 3;
  auto writer = DeltaLogWriter::Create(path, DeltaLogHeader{0, 0, 0});
  ASSERT_TRUE(writer.ok());
  uint64_t last_record_start = 0;
  for (uint64_t e = 1; e <= kRecords; ++e) {
    last_record_start = (*writer)->size_bytes();
    ASSERT_TRUE((*writer)->Append(SampleBatch(e), /*fsync=*/false).ok());
  }
  writer->reset();  // Close the fd before rewriting the file underneath.
  const std::string full = ReadFileBytes(path);
  ASSERT_GT(last_record_start, replication::kDeltaLogHeaderBytes);

  for (size_t cut = last_record_start; cut <= full.size(); ++cut) {
    WriteFileBytes(path, full.substr(0, cut));
    const uint64_t want = cut == full.size() ? kRecords : kRecords - 1;

    auto scan = replication::ReadLog(path);
    ASSERT_TRUE(scan.ok()) << "cut at byte " << cut << ": "
                           << scan.status().ToString();
    ASSERT_EQ(scan->second.size(), want) << "cut at byte " << cut;
    if (want > 0) EXPECT_EQ(scan->second.back().epoch, want);

    // Recovery-side: reattach the appender (truncating the torn bytes) and
    // prove the epoch sequence continues without a gap.
    auto reopened = DeltaLogWriter::OpenForAppend(path);
    ASSERT_TRUE(reopened.ok()) << "cut at byte " << cut;
    EXPECT_EQ((*reopened)->last_epoch(), want);
    ASSERT_TRUE(
        (*reopened)->Append(SampleBatch(want + 1), /*fsync=*/false).ok());
    auto rescan = replication::ReadLog(path);
    ASSERT_TRUE(rescan.ok());
    EXPECT_EQ(rescan->second.size(), want + 1);
    EXPECT_EQ(rescan->second.back().epoch, want + 1);
  }
}

TEST(DeltaLogFileTest, TailerRetriesInProgressRecordWithoutError) {
  const std::string dir = ScratchDir("tail");
  const std::string path = dir + "/delta.log";
  auto writer = DeltaLogWriter::Create(path, DeltaLogHeader{0, 0, 0});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(SampleBatch(1), /*fsync=*/false).ok());

  DeltaLogReader reader(path);
  auto first = reader.Poll();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->generation_changed);
  ASSERT_EQ(first->batches.size(), 1u);

  // Simulate a writer mid-append: a frame whose payload is not all there
  // yet. The tailer must report nothing — and no error — until the bytes
  // complete, then deliver the record whole.
  const std::string complete = [&] {
    std::string bytes = ReadFileBytes(path);
    auto w2 = DeltaLogWriter::OpenForAppend(path);
    EXPECT_TRUE(w2.ok());
    EXPECT_TRUE((*w2)->Append(SampleBatch(2), /*fsync=*/false).ok());
    return ReadFileBytes(path);
  }();
  for (size_t cut = complete.size() - 5; cut < complete.size(); ++cut) {
    WriteFileBytes(path, complete.substr(0, cut));
    auto poll = reader.Poll();
    ASSERT_TRUE(poll.ok()) << poll.status().ToString();
    EXPECT_TRUE(poll->batches.empty()) << "cut at " << cut;
  }
  WriteFileBytes(path, complete);
  auto done = reader.Poll();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->batches.size(), 1u);
  EXPECT_EQ(done->batches[0].epoch, 2u);
  EXPECT_EQ(reader.last_seen_epoch(), 2u);
}

// ---------------------------------------------------------------------------
// Service-level: crash recovery, follower serving, compaction, promotion
// ---------------------------------------------------------------------------

class ReplicatedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniAcademicDb();
    model_ = testing::MakeMiniLexicon();
  }

  std::unique_ptr<TemplarService> Make(const std::string& dir, bool follower,
                                       std::vector<std::string> log = {}) {
    ServiceOptions options;
    options.worker_threads = 1;
    options.replication.log_dir = dir;
    options.replication.follower = follower;
    auto service =
        TemplarService::Create(db_.get(), model_.get(), log, options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return service.ok() ? std::move(*service) : nullptr;
  }

  std::string Probe(TemplarService& service) {
    auto response = service.Translate(
        QueryRequest::Translation(testing_nlq_, /*top_k=*/3));
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) return "<error>";
    return SerializeTranslations(response->translations);
  }

  static nlq::ParsedNlq MakeNlq() {
    nlq::ParsedNlq parsed;
    parsed.original = "Return the papers in the Databases domain";
    nlq::AnnotatedKeyword papers;
    papers.text = "papers";
    papers.metadata.context = qfg::FragmentContext::kSelect;
    nlq::AnnotatedKeyword databases;
    databases.text = "Databases";
    databases.metadata.context = qfg::FragmentContext::kWhere;
    databases.metadata.op = sql::BinaryOp::kEq;
    parsed.keywords = {papers, databases};
    return parsed;
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<embed::EmbeddingModel> model_;
  nlq::ParsedNlq testing_nlq_ = MakeNlq();
};

TEST_F(ReplicatedServiceTest, WriterRestartRecoversEpochAndRankings) {
  const std::string dir = ScratchDir("recover");
  std::string before;
  {
    auto writer = Make(dir, /*follower=*/false, testing::MakeMiniLog());
    ASSERT_NE(writer, nullptr);
    for (int i = 0; i < 3; ++i) {
      auto outcome = writer->AppendLogQueries(
          {"SELECT a.name FROM author a WHERE a.aid = " + std::to_string(i),
           "SELECT d.name FROM domain d"});
      ASSERT_TRUE(outcome.ok());
      EXPECT_EQ(outcome->epoch, static_cast<uint64_t>(i + 1));
    }
    before = Probe(*writer);
  }  // Writer dies with the log on disk.

  // Restart from the directory alone — note the empty query log: the delta
  // log, not the original statements, is the source of truth now.
  auto restarted = Make(dir, /*follower=*/false);
  ASSERT_NE(restarted, nullptr);
  EXPECT_EQ(restarted->epoch(), 3u);
  EXPECT_EQ(Probe(*restarted), before);
  // And it keeps accepting appends where it left off.
  auto outcome = restarted->AppendLogQueries({"SELECT j.name FROM journal j"});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->epoch, 4u);
}

TEST_F(ReplicatedServiceTest, FollowerServesWriterRankingsAtSameEpoch) {
  const std::string dir = ScratchDir("follow");
  auto writer = Make(dir, /*follower=*/false, testing::MakeMiniLog());
  ASSERT_NE(writer, nullptr);
  auto follower = Make(dir, /*follower=*/true);
  ASSERT_NE(follower, nullptr);
  EXPECT_TRUE(follower->is_follower());
  EXPECT_FALSE(writer->is_follower());

  ASSERT_TRUE(writer
                  ->AppendLogQueries(
                      {"SELECT p.title FROM publication p WHERE p.year > "
                       "2010",
                       "SELECT d.name FROM domain d"})
                  .ok());
  auto applied = follower->SyncWithLog();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, writer->epoch());
  EXPECT_EQ(follower->epoch(), writer->epoch());
  EXPECT_EQ(Probe(*follower), Probe(*writer));

  // The staleness contract: the response carries the epoch it reflects.
  auto response = follower->Translate(
      QueryRequest::Translation(testing_nlq_, /*top_k=*/1));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->epoch, writer->epoch());
}

TEST_F(ReplicatedServiceTest, FollowerRejectsAppendsUntilPromoted) {
  const std::string dir = ScratchDir("readonly");
  auto writer = Make(dir, /*follower=*/false, testing::MakeMiniLog());
  ASSERT_NE(writer, nullptr);
  auto follower = Make(dir, /*follower=*/true);
  ASSERT_NE(follower, nullptr);

  auto rejected =
      follower->AppendLogQueries({"SELECT d.name FROM domain d"});
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
  // Compaction is a writer-side operation too.
  EXPECT_FALSE(follower->CompactLog().ok());
}

TEST_F(ReplicatedServiceTest, CaughtUpFollowerCrossesCompactionInPlace) {
  const std::string dir = ScratchDir("compact_warm");
  auto writer = Make(dir, /*follower=*/false, testing::MakeMiniLog());
  ASSERT_NE(writer, nullptr);
  auto follower = Make(dir, /*follower=*/true);
  ASSERT_NE(follower, nullptr);

  ASSERT_TRUE(
      writer->AppendLogQueries({"SELECT d.name FROM domain d"}).ok());
  ASSERT_TRUE(follower->SyncWithLog().ok());

  // Compaction renumbers every position; the caught-up follower remaps from
  // its own canonical order and keeps tailing the new generation.
  ASSERT_TRUE(writer->CompactLog().ok());
  ASSERT_TRUE(
      writer
          ->AppendLogQueries({"SELECT a.name FROM author a WHERE a.aid = 7"})
          .ok());
  auto applied = follower->SyncWithLog();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, writer->epoch());
  EXPECT_EQ(Probe(*follower), Probe(*writer));
}

TEST_F(ReplicatedServiceTest, LaggingFollowerReloadsAcrossCompaction) {
  const std::string dir = ScratchDir("compact_lag");
  auto writer = Make(dir, /*follower=*/false, testing::MakeMiniLog());
  ASSERT_NE(writer, nullptr);
  auto follower = Make(dir, /*follower=*/true);
  ASSERT_NE(follower, nullptr);

  // The follower never sees these epochs as log records: the writer
  // compacts them into the base before the next poll, forcing the
  // full-reload path (the records it needed are gone).
  ASSERT_TRUE(
      writer->AppendLogQueries({"SELECT d.name FROM domain d"}).ok());
  ASSERT_TRUE(
      writer->AppendLogQueries({"SELECT j.name FROM journal j"}).ok());
  ASSERT_TRUE(writer->CompactLog().ok());
  ASSERT_TRUE(
      writer
          ->AppendLogQueries({"SELECT a.name FROM author a WHERE a.aid = 9"})
          .ok());

  auto applied = follower->SyncWithLog();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, writer->epoch());
  EXPECT_EQ(follower->epoch(), writer->epoch());
  EXPECT_EQ(Probe(*follower), Probe(*writer));
}

TEST_F(ReplicatedServiceTest, AutoCompactionTriggersOnRecordThreshold) {
  const std::string dir = ScratchDir("autocompact");
  ServiceOptions options;
  options.worker_threads = 1;
  options.replication.log_dir = dir;
  options.replication.compact_after_records = 2;
  auto writer = TemplarService::Create(db_.get(), model_.get(),
                                       testing::MakeMiniLog(), options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)
                    ->AppendLogQueries({"SELECT d.name FROM domain d"})
                    .ok());
  }
  // 5 appends with a 2-record threshold => at least two compactions ran;
  // generation-stamped bases prove it from the filesystem alone.
  EXPECT_FALSE(std::filesystem::exists(dir + "/base.0.qfg"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/base.2.qfg"));
  // And a follower can still bootstrap cleanly from the compacted state.
  auto follower = Make(dir, /*follower=*/true);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(follower->epoch(), (*writer)->epoch());
  EXPECT_EQ(Probe(*follower), Probe(**writer));
}

TEST_F(ReplicatedServiceTest, PromotionContinuesTheEpochSequence) {
  const std::string dir = ScratchDir("promote");
  uint64_t writer_epoch = 0;
  std::string writer_ranking;
  {
    auto writer = Make(dir, /*follower=*/false, testing::MakeMiniLog());
    ASSERT_NE(writer, nullptr);
    ASSERT_TRUE(
        writer->AppendLogQueries({"SELECT d.name FROM domain d"}).ok());
    ASSERT_TRUE(
        writer->AppendLogQueries({"SELECT j.name FROM journal j"}).ok());
    writer_epoch = writer->epoch();
    writer_ranking = Probe(*writer);
  }  // Kill the writer.

  auto follower = Make(dir, /*follower=*/true);
  ASSERT_NE(follower, nullptr);
  ASSERT_TRUE(follower->Promote().ok());
  EXPECT_FALSE(follower->is_follower());
  EXPECT_EQ(follower->epoch(), writer_epoch);
  EXPECT_EQ(Probe(*follower), writer_ranking);

  // First post-failover append lands at exactly writer_epoch + 1 — no gap,
  // no fork.
  auto outcome = follower->AppendLogQueries(
      {"SELECT a.name FROM author a WHERE a.aid = 3"});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->epoch, writer_epoch + 1);
  // Promote is idempotent once writer.
  EXPECT_TRUE(follower->Promote().ok());
}

// ISSUE satellite: AppendLogQueries returns the epoch *it* produced. Under
// concurrent appends every returned epoch must be distinct — a racing
// "read the counter afterwards" implementation collapses them.
TEST_F(ReplicatedServiceTest, ConcurrentAppendsReturnDistinctEpochs) {
  ServiceOptions options;
  options.worker_threads = 1;
  auto service = TemplarService::Create(db_.get(), model_.get(),
                                        testing::MakeMiniLog(), options);
  ASSERT_TRUE(service.ok());
  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 10;
  std::vector<std::vector<uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        auto outcome = (*service)->AppendLogQueries(
            {"SELECT a.name FROM author a WHERE a.aid = " +
             std::to_string(t * 100 + i)});
        if (outcome.ok()) seen[t].push_back(outcome->epoch);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<uint64_t> epochs;
  for (const auto& per_thread : seen) {
    for (uint64_t e : per_thread) {
      EXPECT_TRUE(epochs.insert(e).second) << "epoch " << e << " returned "
                                           << "by two different appends";
    }
  }
  EXPECT_EQ(epochs.size(),
            static_cast<size_t>(kThreads * kAppendsPerThread));
  EXPECT_EQ(*epochs.rbegin(), (*service)->epoch());
}

// ---------------------------------------------------------------------------
// Failover differential storm (MAS / IMDB / Yelp)
// ---------------------------------------------------------------------------

const datasets::Dataset& GetDataset(const std::string& name) {
  static std::map<std::string, datasets::Dataset>* cache = [] {
    auto* m = new std::map<std::string, datasets::Dataset>();
    for (const char* n : {"mas", "yelp", "imdb"}) {
      auto ds = datasets::BuildByName(n);
      if (ds.ok()) m->emplace(n, std::move(*ds));
    }
    return m;
  }();
  auto it = cache->find(name);
  EXPECT_NE(it, cache->end()) << "dataset " << name << " failed to build";
  return it->second;
}

constexpr size_t kStormRounds = 6;
constexpr size_t kStormBatch = 4;
constexpr size_t kTranslateProbes = 4;
constexpr size_t kTopK = 3;

class FailoverStormTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FailoverStormTest, PromotedFollowerIsByteIdenticalAtSameEpoch) {
  const datasets::Dataset& ds = GetDataset(GetParam());
  ASSERT_GE(ds.extra_log.size(), kStormRounds * kStormBatch);
  const std::string dir =
      ScratchDir(("storm_" + std::string(GetParam())).c_str());

  std::vector<std::string> initial;
  for (const auto& q : ds.benchmark) initial.push_back(q.gold_sql.ToString());

  ServiceOptions writer_options;
  writer_options.worker_threads = 2;
  writer_options.replication.log_dir = dir;
  auto writer = TemplarService::Create(ds.database.get(), ds.lexicon.get(),
                                       initial, writer_options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  ServiceOptions follower_options;
  follower_options.worker_threads = 2;
  follower_options.replication.log_dir = dir;
  follower_options.replication.follower = true;
  auto follower = TemplarService::Create(ds.database.get(), ds.lexicon.get(),
                                         {}, follower_options);
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();

  std::vector<const nlq::ParsedNlq*> probes;
  for (const auto& q : ds.benchmark) {
    if (probes.size() >= kTranslateProbes) break;
    probes.push_back(&q.gold_parse);
  }
  ASSERT_FALSE(probes.empty());

  // The storm: the writer ingests while a replicator thread tails and two
  // reader threads hammer the follower's Translate path — the TSan target.
  FollowerReplicator replicator(
      [&follower] { return (*follower)->SyncWithLog(); },
      std::chrono::milliseconds(1));
  replicator.Start();
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop_readers.load(std::memory_order_acquire)) {
        auto response = (*follower)->Translate(
            QueryRequest::Translation(*probes[i++ % probes.size()], kTopK));
        // Any answer is fine here — the differential check below is what
        // proves correctness; this thread exists to race the replicator.
        (void)response;
      }
    });
  }
  for (size_t round = 0; round < kStormRounds; ++round) {
    std::vector<std::string> batch(
        ds.extra_log.begin() + round * kStormBatch,
        ds.extra_log.begin() + (round + 1) * kStormBatch);
    auto outcome = (*writer)->AppendLogQueries(batch);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  stop_readers.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  replicator.Stop();

  // Drain the follower to the writer's epoch, then the differential check:
  // same epoch => byte-identical rankings.
  while ((*follower)->epoch() < (*writer)->epoch()) {
    auto applied = (*follower)->SyncWithLog();
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }
  ASSERT_EQ((*follower)->epoch(), (*writer)->epoch());
  std::vector<std::string> want;
  for (const nlq::ParsedNlq* parsed : probes) {
    auto w = (*writer)->Translate(QueryRequest::Translation(*parsed, kTopK));
    auto f = (*follower)->Translate(QueryRequest::Translation(*parsed, kTopK));
    ASSERT_EQ(w.ok(), f.ok()) << parsed->original;
    if (!w.ok()) {
      want.push_back("<error>");
      continue;
    }
    EXPECT_EQ(SerializeTranslations(f->translations),
              SerializeTranslations(w->translations))
        << "follower diverged from writer at epoch " << (*writer)->epoch()
        << " for '" << parsed->original << "'";
    want.push_back(SerializeTranslations(w->translations));
  }

  // Kill the writer; promote the follower; it must serve the same rankings
  // and accept the next epoch.
  const uint64_t final_epoch = (*writer)->epoch();
  writer->reset();
  ASSERT_TRUE((*follower)->Promote().ok());
  EXPECT_FALSE((*follower)->is_follower());
  EXPECT_EQ((*follower)->epoch(), final_epoch);
  for (size_t i = 0; i < probes.size(); ++i) {
    auto response =
        (*follower)->Translate(QueryRequest::Translation(*probes[i], kTopK));
    if (want[i] == "<error>") continue;
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(SerializeTranslations(response->translations), want[i])
        << "post-promotion ranking changed for '" << probes[i]->original
        << "'";
  }
  auto outcome = (*follower)->AppendLogQueries(
      {ds.extra_log[(kStormRounds * kStormBatch) % ds.extra_log.size()]});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->epoch, final_epoch + 1);
}

INSTANTIATE_TEST_SUITE_P(Datasets, FailoverStormTest,
                         ::testing::Values("mas", "imdb", "yelp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace templar
