// Unit tests for sql/: lexer, parser, printer round-trips, equivalence.

#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/equivalence.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace templar::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT t.a FROM table1 t WHERE t.b = 15");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 12u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDot);
  EXPECT_TRUE(tokens->back().Is(TokenKind::kEnd));
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select FROM Where and");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
  EXPECT_TRUE((*tokens)[3].IsKeyword("AND"));
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("'O''Brien'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "O'Brien");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("SELECT 'abc").ok());
}

TEST(LexerTest, NumbersIncludingDecimals) {
  auto tokens = Lex("3.5 42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[0].text, "3.5");
  EXPECT_EQ((*tokens)[1].text, "42");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= <> <= >= < > !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "=");
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[2].text, "<=");
  EXPECT_EQ((*tokens)[3].text, ">=");
  EXPECT_EQ((*tokens)[4].text, "<");
  EXPECT_EQ((*tokens)[5].text, ">");
  EXPECT_EQ((*tokens)[6].text, "<>");  // != normalizes.
}

TEST(LexerTest, Placeholders) {
  auto tokens = Lex("p.year ?op ?val");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kOperator);
  EXPECT_EQ((*tokens)[3].text, "?op");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[4].text, "?val");
}

TEST(LexerTest, UnknownPlaceholderFails) {
  EXPECT_FALSE(Lex("?bogus").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto q = Parse("SELECT title FROM publication");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].column.column, "title");
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].table, "publication");
  EXPECT_TRUE(q->where.empty());
}

TEST(ParserTest, AliasesAndPredicates) {
  auto q = Parse(
      "SELECT p.title FROM publication p, journal j "
      "WHERE j.name = 'TKDE' AND p.year > 1995 AND p.jid = j.jid");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from[0].alias, "p");
  ASSERT_EQ(q->where.size(), 3u);
  EXPECT_FALSE(q->where[0].IsJoin());
  EXPECT_EQ(q->where[0].rhs_literal().string_value, "TKDE");
  EXPECT_EQ(q->where[1].op, BinaryOp::kGt);
  EXPECT_EQ(q->where[1].rhs_literal().int_value, 1995);
  EXPECT_TRUE(q->where[2].IsJoin());
  EXPECT_EQ(q->where[2].rhs_column().ToString(), "j.jid");
}

TEST(ParserTest, AggregatesAndDistinct) {
  auto q = Parse("SELECT COUNT(DISTINCT p.pid) FROM publication p");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select[0].aggs.size(), 1u);
  EXPECT_EQ(q->select[0].aggs[0], AggFunc::kCount);
  EXPECT_TRUE(q->select[0].distinct);
}

TEST(ParserTest, NestedAggregates) {
  auto q = Parse("SELECT MAX(COUNT(p.pid)) FROM publication p");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select[0].aggs.size(), 2u);
  EXPECT_EQ(q->select[0].aggs[0], AggFunc::kMax);
  EXPECT_EQ(q->select[0].aggs[1], AggFunc::kCount);
}

TEST(ParserTest, CountStar) {
  auto q = Parse("SELECT COUNT(*) FROM publication");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].column.column, "*");
}

TEST(ParserTest, GroupByHavingOrderByLimit) {
  auto q = Parse(
      "SELECT a.name, COUNT(p.pid) FROM author a, publication p "
      "GROUP BY a.name HAVING COUNT(p.pid) > 5 "
      "ORDER BY COUNT(p.pid) DESC LIMIT 10");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0].ToString(), "a.name");
  ASSERT_EQ(q->having.size(), 1u);
  EXPECT_EQ(q->having[0].op, BinaryOp::kGt);
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_EQ(q->limit, 10);
}

TEST(ParserTest, ExplicitJoinFoldsIntoWhere) {
  auto q = Parse(
      "SELECT p.title FROM publication p JOIN journal j ON p.jid = j.jid "
      "WHERE j.name = 'TKDE'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from.size(), 2u);
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_TRUE(q->where[0].IsJoin());
}

TEST(ParserTest, SelectDistinct) {
  auto q = Parse("SELECT DISTINCT name FROM author");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select_distinct);
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(Parse("SELECT").status().IsParseError());
  EXPECT_TRUE(Parse("FROM t").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT a FROM t WHERE").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT a FROM t trailing garbage tokens =").status()
                  .IsParseError());
}

TEST(ParserTest, ObscuredPredicateRoundTrip) {
  auto p = ParsePredicate("p.year ?op ?val");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->op, BinaryOp::kPlaceholder);
  EXPECT_EQ(p->rhs_literal().kind, Literal::Kind::kPlaceholder);
  EXPECT_EQ(p->ToString(), "p.year ?op ?val");
}

// Printer round-trip property: Parse(ToString(Parse(q))) == Parse(q).
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParseIsIdentity) {
  auto q1 = Parse(GetParam());
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  auto q2 = Parse(q1->ToString());
  ASSERT_TRUE(q2.ok()) << "reprinted: " << q1->ToString();
  EXPECT_EQ(*q1, *q2) << q1->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "SELECT title FROM publication",
        "SELECT p.title FROM publication p WHERE p.year > 2000",
        "SELECT j.name FROM journal j, domain_journal o, domain d WHERE "
        "d.name = 'Databases' AND j.jid = o.jid AND o.did = d.did",
        "SELECT COUNT(p.pid) FROM publication p, writes w, author a WHERE "
        "a.name = 'Jane' AND w.aid = a.aid AND w.pid = p.pid",
        "SELECT a.name, COUNT(p.pid) FROM author a, publication p GROUP BY "
        "a.name HAVING COUNT(p.pid) >= 3 ORDER BY a.name ASC LIMIT 5",
        "SELECT DISTINCT b.city FROM business b WHERE b.rating >= 4.5",
        "SELECT p.title FROM author a1, author a2, publication p, writes "
        "w1, writes w2 WHERE a1.name = 'John' AND a2.name = 'Jane' AND "
        "a1.aid = w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = "
        "w2.pid",
        "SELECT p.title FROM publication p WHERE p.title LIKE '%Index%'",
        "SELECT t.a FROM table1 t, table2 u WHERE t.b = 15 AND t.id = u.id"));

TEST(EquivalenceTest, AliasInsensitive) {
  auto a = Parse("SELECT p.title FROM publication p WHERE p.year > 2000");
  auto b = Parse("SELECT x.title FROM publication x WHERE x.year > 2000");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, ConjunctOrderInsensitive) {
  auto a = Parse(
      "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' "
      "AND p.jid = j.jid");
  auto b = Parse(
      "SELECT p.title FROM journal j, publication p WHERE p.jid = j.jid AND "
      "j.name = 'TKDE'");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, JoinOrientationInsensitive) {
  auto a = Parse("SELECT p.title FROM publication p, journal j WHERE "
                 "p.jid = j.jid");
  auto b = Parse("SELECT p.title FROM publication p, journal j WHERE "
                 "j.jid = p.jid");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, CaseInsensitiveIdentifiers) {
  auto a = Parse("SELECT P.Title FROM Publication P");
  auto b = Parse("SELECT p.title FROM publication p");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, DifferentLiteralNotEquivalent) {
  auto a = Parse("SELECT p.title FROM publication p WHERE p.year > 2000");
  auto b = Parse("SELECT p.title FROM publication p WHERE p.year > 2001");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, DifferentOperatorNotEquivalent) {
  auto a = Parse("SELECT p.title FROM publication p WHERE p.year > 2000");
  auto b = Parse("SELECT p.title FROM publication p WHERE p.year >= 2000");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, DifferentRelationsNotEquivalent) {
  auto a = Parse("SELECT p.title FROM publication p");
  auto b = Parse("SELECT j.name FROM journal j");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, SelfJoinInstanceRenaming) {
  // Example 7 with the two author instances swapped.
  auto a = Parse(
      "SELECT p.title FROM author a1, author a2, publication p, writes w1, "
      "writes w2 WHERE a1.name = 'John' AND a2.name = 'Jane' AND a1.aid = "
      "w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid");
  auto b = Parse(
      "SELECT p.title FROM author x, author y, publication p, writes u, "
      "writes v WHERE y.name = 'John' AND x.name = 'Jane' AND y.aid = u.aid "
      "AND x.aid = v.aid AND p.pid = u.pid AND p.pid = v.pid");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, SelfJoinDifferentWiringNotEquivalent) {
  auto a = Parse(
      "SELECT p.title FROM author a1, author a2, publication p, writes w1, "
      "writes w2 WHERE a1.name = 'John' AND a2.name = 'Jane' AND a1.aid = "
      "w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid");
  // Both predicates wired to the same instance: different semantics.
  auto b = Parse(
      "SELECT p.title FROM author a1, author a2, publication p, writes w1, "
      "writes w2 WHERE a1.name = 'John' AND a1.name = 'Jane' AND a1.aid = "
      "w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(QueriesEquivalent(*a, *b));
}

TEST(EquivalenceTest, CanonicalFormStableForEquivalentQueries) {
  auto a = Parse("SELECT p.title FROM publication p WHERE p.year > 2000");
  auto b = Parse("SELECT q.title FROM publication q WHERE q.year > 2000");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalForm(*a), CanonicalForm(*b));
}

TEST(AstTest, OperatorHelpers) {
  EXPECT_EQ(FlipBinaryOp(BinaryOp::kLt), BinaryOp::kGt);
  EXPECT_EQ(FlipBinaryOp(BinaryOp::kGte), BinaryOp::kLte);
  EXPECT_EQ(FlipBinaryOp(BinaryOp::kEq), BinaryOp::kEq);
  EXPECT_EQ(BinaryOpFromString("<="), BinaryOp::kLte);
  EXPECT_EQ(BinaryOpFromString("like"), BinaryOp::kLike);
  EXPECT_FALSE(BinaryOpFromString("=>").has_value());
  EXPECT_EQ(AggFuncFromString("count"), AggFunc::kCount);
  EXPECT_FALSE(AggFuncFromString("median").has_value());
}

TEST(AstTest, LiteralToString) {
  EXPECT_EQ(Literal::Int(42).ToString(), "42");
  EXPECT_EQ(Literal::String("O'Brien").ToString(), "'O''Brien'");
  EXPECT_EQ(Literal::Null().ToString(), "NULL");
  EXPECT_EQ(Literal::Placeholder().ToString(), "?val");
  EXPECT_TRUE(Literal::Double(1.5).IsNumeric());
  EXPECT_DOUBLE_EQ(Literal::Int(3).AsDouble(), 3.0);
}

TEST(AstTest, ResolveAliasesSimple) {
  auto q = Parse("SELECT p.title FROM publication p WHERE p.year > 2000");
  ASSERT_TRUE(q.ok());
  sql::SelectQuery r = q->ResolveAliases();
  EXPECT_EQ(r.select[0].column.relation, "publication");
  EXPECT_EQ(r.from[0].table, "publication");
  EXPECT_TRUE(r.from[0].alias.empty());
}

TEST(AstTest, ResolveAliasesSelfJoinNumbersInstances) {
  auto q = Parse(
      "SELECT p.title FROM author a1, author a2, publication p WHERE "
      "a1.name = 'X' AND a2.name = 'Y'");
  ASSERT_TRUE(q.ok());
  sql::SelectQuery r = q->ResolveAliases();
  EXPECT_EQ(r.from[0].table, "author#0");
  EXPECT_EQ(r.from[1].table, "author#1");
  EXPECT_EQ(r.where[0].lhs.relation, "author#0");
  EXPECT_EQ(r.where[1].lhs.relation, "author#1");
}

}  // namespace
}  // namespace templar::sql
