// Tests for the wire protocol front-end (src/net): defensive serialization
// round trips over hostile inputs (truncation, byte flips, huge claimed
// counts — typed kParseError, never an over-read or OOM), frame-layer
// validation, the BackedReader/BackedWriter recovery primitives, and
// socket-level server/client integration: Translate parity with the
// in-process envelope, typed kOverloaded / kNotFound / kParseError over the
// wire, exactly-once delivery across severed connections, and the
// session-expiry regression (a late resume gets kSessionExpired, never a
// hang or a stale replay).

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/backed.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/tenant_registry.h"
#include "test_fixtures.h"

namespace templar::net {
namespace {

// ---------------------------------------------------------------------------
// Generators (seeded, deterministic)

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string s;
  const size_t len = rng.NextBounded(max_len + 1);
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Full byte range: embedded NULs and non-ASCII must round-trip.
    s.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return s;
}

WireRequest RandomRequest(Rng& rng) {
  WireRequest request;
  request.stage = static_cast<uint8_t>(rng.NextBounded(3));
  request.nlq.original = RandomBytes(rng, 64);
  const size_t n_keywords = rng.NextBounded(5);
  for (size_t i = 0; i < n_keywords; ++i) {
    nlq::AnnotatedKeyword kw;
    kw.text = RandomBytes(rng, 24);
    kw.metadata.context =
        static_cast<qfg::FragmentContext>(rng.NextBounded(6));
    if (rng.NextBounded(2) == 1) {
      kw.metadata.op = static_cast<sql::BinaryOp>(rng.NextBounded(8));
    }
    const size_t n_aggs = rng.NextBounded(3);
    for (size_t j = 0; j < n_aggs; ++j) {
      kw.metadata.aggs.push_back(
          static_cast<sql::AggFunc>(rng.NextBounded(5)));
    }
    kw.metadata.group_by = rng.NextBounded(2) == 1;
    request.nlq.keywords.push_back(std::move(kw));
  }
  const size_t n_relations = rng.NextBounded(4);
  for (size_t i = 0; i < n_relations; ++i) {
    request.relation_bag.push_back(RandomBytes(rng, 16));
  }
  request.top_k = rng.Next();  // Including huge values: the wire carries u64.
  request.want_explanation = rng.NextBounded(2) == 1;
  request.has_deadline = rng.NextBounded(2) == 1;
  request.deadline_budget_us = request.has_deadline ? rng.Next() : 0;
  return request;
}

WireResponse RandomResponse(Rng& rng) {
  WireResponse response;
  response.stage = static_cast<uint8_t>(rng.NextBounded(3));
  response.served_from = static_cast<uint8_t>(rng.NextBounded(3));
  response.epoch = rng.Next();
  response.timings = {rng.Next(), rng.Next(), rng.Next(), rng.Next(),
                      rng.Next()};
  const size_t n_translations = rng.NextBounded(4);
  for (size_t i = 0; i < n_translations; ++i) {
    response.translations.push_back(
        {RandomBytes(rng, 200), rng.NextDouble(), rng.NextBounded(2) == 1});
  }
  const size_t n_explanations = rng.NextBounded(3);
  for (size_t i = 0; i < n_explanations; ++i) {
    WireExplanation ex;
    const size_t n_frag = rng.NextBounded(4);
    for (size_t j = 0; j < n_frag; ++j) {
      ex.map_fragments.push_back({RandomBytes(rng, 32),
                                  rng.NextBounded(2) == 1,
                                  static_cast<uint32_t>(rng.Next()),
                                  rng.Next()});
      ex.join_relations.push_back({RandomBytes(rng, 32), false,
                                   static_cast<uint32_t>(rng.Next()),
                                   rng.Next()});
    }
    const size_t n_pairs = rng.NextBounded(4);
    for (size_t j = 0; j < n_pairs; ++j) {
      ex.map_pairs.push_back({RandomBytes(rng, 24), RandomBytes(rng, 24),
                              rng.Next(), rng.NextDouble()});
      ex.join_edges.push_back({RandomBytes(rng, 24), RandomBytes(rng, 24),
                               rng.Next(), rng.NextDouble()});
    }
    ex.used_query_count = rng.NextBounded(2) == 1;
    ex.query_count = rng.Next();
    response.explanations.push_back(std::move(ex));
  }
  const size_t n_configs = rng.NextBounded(4);
  for (size_t i = 0; i < n_configs; ++i) {
    response.configurations.push_back(RandomBytes(rng, 80));
  }
  const size_t n_paths = rng.NextBounded(4);
  for (size_t i = 0; i < n_paths; ++i) {
    response.join_paths.push_back(RandomBytes(rng, 80));
  }
  return response;
}

// ---------------------------------------------------------------------------
// Serialization round trips

TEST(WireSerializationTest, RequestRoundTripsIncludingEdgeFields) {
  WireRequest request;
  request.stage = static_cast<uint8_t>(service::Stage::kTranslate);
  request.nlq.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword kw;
  kw.text = "papers";
  kw.metadata.context = qfg::FragmentContext::kSelect;
  kw.metadata.op = sql::BinaryOp::kGt;
  kw.metadata.aggs = {sql::AggFunc::kCount, sql::AggFunc::kMax};
  kw.metadata.group_by = true;
  request.nlq.keywords = {kw};
  request.relation_bag = {"publication", "domain"};
  request.top_k = UINT64_MAX;  // Max top_k must survive the wire.
  request.want_explanation = true;
  request.has_deadline = true;
  request.deadline_budget_us = 123456;

  std::string payload;
  SerializeWireRequest(request, &payload);
  WireRequest decoded;
  ASSERT_TRUE(DeserializeWireRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded, request);
}

TEST(WireSerializationTest, EmptyRequestRoundTrips) {
  WireRequest request;  // No keywords, no bag, defaults everywhere.
  std::string payload;
  SerializeWireRequest(request, &payload);
  WireRequest decoded;
  ASSERT_TRUE(DeserializeWireRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded, request);
}

TEST(WireSerializationTest, ResponseWithHugeExplanationRoundTrips) {
  WireResponse response;
  response.translations.push_back({"SELECT 1", 0.5, false});
  WireExplanation ex;
  // One deliberately huge support key (1 MiB) — well under the frame cap,
  // far over any small-buffer assumption.
  ex.map_fragments.push_back({std::string(1 << 20, 'k'), true, 7, 99});
  ex.used_query_count = true;
  ex.query_count = 12345;
  response.explanations.push_back(ex);

  std::string payload;
  SerializeWireResponse(response, &payload);
  WireResponse decoded;
  ASSERT_TRUE(DeserializeWireResponse(payload, &decoded).ok());
  EXPECT_EQ(decoded, response);
}

TEST(WireSerializationTest, PropertyRandomRequestsRoundTrip) {
  Rng rng(0xF00D);
  for (int i = 0; i < 200; ++i) {
    const WireRequest request = RandomRequest(rng);
    std::string payload;
    SerializeWireRequest(request, &payload);
    WireRequest decoded;
    ASSERT_TRUE(DeserializeWireRequest(payload, &decoded).ok())
        << "iteration " << i;
    ASSERT_EQ(decoded, request) << "iteration " << i;
  }
}

TEST(WireSerializationTest, PropertyRandomResponsesRoundTrip) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 200; ++i) {
    const WireResponse response = RandomResponse(rng);
    std::string payload;
    SerializeWireResponse(response, &payload);
    WireResponse decoded;
    ASSERT_TRUE(DeserializeWireResponse(payload, &decoded).ok())
        << "iteration " << i;
    ASSERT_EQ(decoded, response) << "iteration " << i;
  }
}

// Every strict prefix of a valid payload must fail with a typed kParseError
// — never crash, never over-read (ASan/UBSan enforce the "never" part).
TEST(WireHostileInputTest, EveryTruncationIsATypedParseError) {
  Rng rng(0xCAFE);
  const WireRequest request = RandomRequest(rng);
  std::string payload;
  SerializeWireRequest(request, &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    WireRequest decoded;
    Status status =
        DeserializeWireRequest(std::string_view(payload.data(), len),
                               &decoded);
    ASSERT_FALSE(status.ok()) << "prefix length " << len;
    ASSERT_TRUE(status.IsParseError()) << status.ToString();
  }

  const WireResponse response = RandomResponse(rng);
  std::string response_payload;
  SerializeWireResponse(response, &response_payload);
  for (size_t len = 0; len < response_payload.size(); ++len) {
    WireResponse decoded;
    Status status = DeserializeWireResponse(
        std::string_view(response_payload.data(), len), &decoded);
    ASSERT_FALSE(status.ok()) << "prefix length " << len;
    ASSERT_TRUE(status.IsParseError()) << status.ToString();
  }
}

TEST(WireHostileInputTest, TrailingGarbageIsRejected) {
  std::string payload;
  SerializeWireRequest(WireRequest{}, &payload);
  payload.push_back('\0');
  WireRequest decoded;
  EXPECT_TRUE(DeserializeWireRequest(payload, &decoded).IsParseError());
}

// A hostile length prefix claiming ~4 billion elements must be rejected by
// the count-vs-remaining-bytes check before any allocation happens.
TEST(WireHostileInputTest, HugeClaimedCountRejectedBeforeAllocation) {
  std::string payload;
  PutU8(&payload, 2);                        // stage
  PutString(&payload, "q");                  // nlq.original
  PutU32(&payload, 0xFFFFFFFFu);             // keyword count: hostile
  WireRequest decoded;
  Status status = DeserializeWireRequest(payload, &decoded);
  ASSERT_TRUE(status.IsParseError()) << status.ToString();
}

TEST(WireHostileInputTest, HugeClaimedStringLengthRejected) {
  std::string payload;
  PutU8(&payload, 2);
  PutU32(&payload, 0xFFFFFFF0u);  // nlq.original length: hostile
  payload.append("abc");
  WireRequest decoded;
  EXPECT_TRUE(DeserializeWireRequest(payload, &decoded).IsParseError());
}

// Fuzz-style loop: random mutations of valid payloads must always come back
// as either ok or kParseError — anything else (crash, over-read, hang) is
// caught here or by the sanitizer configs that run this same test.
TEST(WireHostileInputTest, FuzzByteFlipsNeverCrash) {
  Rng rng(0x5EED);
  for (int i = 0; i < 300; ++i) {
    std::string payload;
    if (i % 2 == 0) {
      SerializeWireRequest(RandomRequest(rng), &payload);
    } else {
      SerializeWireResponse(RandomResponse(rng), &payload);
    }
    if (payload.empty()) continue;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      payload[rng.NextBounded(payload.size())] ^=
          static_cast<char>(1 + rng.NextBounded(255));
    }
    if (i % 2 == 0) {
      WireRequest decoded;
      Status status = DeserializeWireRequest(payload, &decoded);
      ASSERT_TRUE(status.ok() || status.IsParseError()) << status.ToString();
    } else {
      WireResponse decoded;
      Status status = DeserializeWireResponse(payload, &decoded);
      ASSERT_TRUE(status.ok() || status.IsParseError()) << status.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Deadline budget anchoring

TEST(WireRequestTest, DeadlineTravelsAsRelativeBudget) {
  const auto now = std::chrono::steady_clock::now();
  service::QueryRequest request =
      service::QueryRequest::Translation(nlq::ParsedNlq{});
  request.deadline = now + std::chrono::milliseconds(250);

  const WireRequest wire = WireRequest::FromQueryRequest(request, now);
  ASSERT_TRUE(wire.has_deadline);
  EXPECT_EQ(wire.deadline_budget_us, 250000u);

  const auto server_now = now + std::chrono::seconds(5);  // Clock skew.
  service::QueryRequest rehydrated = wire.ToQueryRequest(server_now);
  ASSERT_TRUE(rehydrated.deadline.has_value());
  EXPECT_EQ(*rehydrated.deadline,
            server_now + std::chrono::microseconds(250000));
}

TEST(WireRequestTest, ExpiredDeadlineClampsToZeroBudget) {
  const auto now = std::chrono::steady_clock::now();
  service::QueryRequest request =
      service::QueryRequest::Translation(nlq::ParsedNlq{});
  request.deadline = now - std::chrono::milliseconds(10);
  const WireRequest wire = WireRequest::FromQueryRequest(request, now);
  ASSERT_TRUE(wire.has_deadline);
  EXPECT_EQ(wire.deadline_budget_us, 0u);
}

// ---------------------------------------------------------------------------
// Frame layer

TEST(FrameTest, HeaderRoundTrips) {
  const std::string frame =
      BuildFrame(FrameType::kResponse, 42, 7, "payload-bytes");
  FrameHeader header;
  ASSERT_TRUE(
      ParseFrameHeader(std::string_view(frame).substr(0, kFrameHeaderBytes),
                       &header)
          .ok());
  EXPECT_EQ(header.type, FrameType::kResponse);
  EXPECT_EQ(header.session_id, 42u);
  EXPECT_EQ(header.seq, 7u);
  EXPECT_EQ(header.payload_len, 13u);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + 13);
}

TEST(FrameTest, RejectsBadMagicTypeAndOversizedPayload) {
  std::string frame = BuildFrame(FrameType::kHello, 1, 0, "x");
  FrameHeader header;

  std::string bad_magic = frame;
  bad_magic[0] ^= 0x01;
  EXPECT_TRUE(ParseFrameHeader(bad_magic.substr(0, kFrameHeaderBytes),
                               &header)
                  .IsParseError());

  std::string bad_type = frame;
  bad_type[4] = 99;
  EXPECT_TRUE(ParseFrameHeader(bad_type.substr(0, kFrameHeaderBytes),
                               &header)
                  .IsParseError());

  std::string huge_len = frame;
  const uint32_t hostile = kMaxFramePayload + 1;
  std::memcpy(huge_len.data() + 21, &hostile, sizeof(hostile));
  EXPECT_TRUE(ParseFrameHeader(huge_len.substr(0, kFrameHeaderBytes),
                               &header)
                  .IsParseError());
}

// ---------------------------------------------------------------------------
// Backed recovery primitives

TEST(BackedWriterTest, ReplayAckAndOverflowContracts) {
  BackedWriter writer(/*max_unacked=*/3);
  EXPECT_EQ(writer.Push("a"), 1u);
  EXPECT_EQ(writer.Push("b"), 2u);
  EXPECT_EQ(writer.Push("c"), 3u);
  EXPECT_EQ(writer.Push("overflow"), 0u) << "ring full reports failure";

  auto replay = writer.Replay(/*peer_last_seen=*/1);
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(*replay[0], "b");
  EXPECT_EQ(*replay[1], "c");

  writer.Ack(2);
  EXPECT_EQ(writer.unacked(), 1u);
  writer.Ack(2);  // Stale cumulative ack is a no-op.
  EXPECT_EQ(writer.unacked(), 1u);
  EXPECT_EQ(writer.Push("d"), 4u) << "trimmed ring accepts again";
  EXPECT_EQ(writer.Replay(0).size(), 2u);
  EXPECT_EQ(writer.last_seq(), 4u);
}

TEST(BackedReaderTest, AcceptsEachSequenceExactlyOnce) {
  BackedReader reader;
  EXPECT_TRUE(reader.Accept(1));
  EXPECT_FALSE(reader.Accept(1)) << "retransmission deduplicated";
  EXPECT_TRUE(reader.Accept(2));
  EXPECT_TRUE(reader.Accept(5));  // Gaps are fine: high-water semantics.
  EXPECT_FALSE(reader.Accept(4)) << "below high water";
  EXPECT_EQ(reader.last_accepted(), 5u);
}

// ---------------------------------------------------------------------------
// Server/client integration over real sockets

nlq::ParsedNlq PapersInDatabasesNlq() {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  papers.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword databases;
  databases.text = "Databases";
  databases.metadata.context = qfg::FragmentContext::kWhere;
  databases.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {papers, databases};
  return parsed;
}

WireRequest PapersRequest(bool want_explanation = false) {
  WireRequest request;
  request.nlq = PapersInDatabasesNlq();
  request.top_k = 3;
  request.want_explanation = want_explanation;
  return request;
}

class WireServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniAcademicDb();
    model_ = testing::MakeMiniLexicon();
    service::HostOptions host_options;
    host_options.worker_threads = 2;
    host_ = std::make_unique<service::ServiceHost>(host_options);
    ASSERT_TRUE(host_->RegisterTenant("mas", db_.get(), model_.get(),
                                      testing::MakeMiniLog())
                    .ok());
  }

  std::unique_ptr<WireServer> StartServer(WireServerOptions options = {}) {
    auto server = WireServer::Start(host_.get(), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(*server);
  }

  WireClientOptions ClientOptions(uint16_t port) {
    WireClientOptions options;
    options.port = port;
    options.tenant = "mas";
    return options;
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<embed::EmbeddingModel> model_;
  std::unique_ptr<service::ServiceHost> host_;
};

TEST_F(WireServerTest, TranslateMatchesInProcessEnvelope) {
  auto server = StartServer();
  auto client = WireClient::Connect(ClientOptions(server->port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto wire_response = (*client)->Translate(PapersRequest(true));
  ASSERT_TRUE(wire_response.ok()) << wire_response.status().ToString();
  ASSERT_FALSE(wire_response->translations.empty());
  EXPECT_FALSE(wire_response->explanations.empty())
      << "want_explanation must travel";

  // Parity: the wire result is exactly the in-process result, printed.
  auto handle = host_->Tenant("mas");
  ASSERT_TRUE(handle.ok());
  service::QueryRequest direct = service::QueryRequest::Translation(
      PapersInDatabasesNlq(), /*top_k=*/3);
  direct.want_explanation = true;
  auto in_process = handle->Translate(direct);
  ASSERT_TRUE(in_process.ok());
  const WireResponse expected = WireResponse::FromQueryResponse(*in_process);
  EXPECT_EQ(wire_response->translations, expected.translations);
  EXPECT_EQ(wire_response->explanations, expected.explanations);
  EXPECT_EQ(wire_response->RankingFingerprint(),
            expected.RankingFingerprint());
}

TEST_F(WireServerTest, UnknownTenantFailsConnectWithNotFound) {
  auto server = StartServer();
  WireClientOptions options = ClientOptions(server->port());
  options.tenant = "no-such-tenant";
  options.initial_connect_attempts = 1;
  auto client = WireClient::Connect(options);
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsNotFound()) << client.status().ToString();
}

TEST_F(WireServerTest, AdmissionRejectionTravelsAsTypedOverloaded) {
  // A drain-mode tenant ({0,0} admission) rejects every request.
  service::TenantOptions drain;
  drain.admission = service::AdmissionOptions{0, 0};
  ASSERT_TRUE(host_->RegisterTenant("drained", db_.get(), model_.get(), {},
                                    drain)
                  .ok());
  auto server = StartServer();
  WireClientOptions options = ClientOptions(server->port());
  options.tenant = "drained";
  auto client = WireClient::Connect(options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto response = (*client)->Translate(PapersRequest());
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsOverloaded())
      << response.status().ToString();
}

TEST_F(WireServerTest, MalformedRelationBagIsTypedErrorAndServerSurvives) {
  // Regression: a join-stage request whose relation bag carries a malformed
  // or absurd instance suffix used to reach std::stoi inside the worker and
  // kill the server with an uncaught exception. It must come back as a
  // typed InvalidArgument over the wire, with the connection still serving.
  auto server = StartServer();
  auto client = WireClient::Connect(ClientOptions(server->port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  for (const char* inst :
       {"author#x", "author#", "author#99999999999999999999",
        "author#1000000"}) {
    WireRequest request;
    request.stage = static_cast<uint8_t>(service::Stage::kInferJoins);
    request.relation_bag = {inst, "publication"};
    auto response = (*client)->Translate(request);
    ASSERT_FALSE(response.ok()) << inst;
    EXPECT_TRUE(response.status().IsInvalidArgument())
        << inst << " -> " << response.status().ToString();
  }

  // Same session, well-formed bag: the server is still alive and answers.
  WireRequest good;
  good.stage = static_cast<uint8_t>(service::Stage::kInferJoins);
  good.relation_bag = {"author", "publication"};
  auto response = (*client)->Translate(good);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->join_paths.empty());
}

TEST_F(WireServerTest, ExpiredWireDeadlineIsTypedDeadlineExceeded) {
  auto server = StartServer();
  auto client = WireClient::Connect(ClientOptions(server->port()));
  ASSERT_TRUE(client.ok());
  WireRequest request = PapersRequest();
  request.has_deadline = true;
  request.deadline_budget_us = 0;  // Already expired on arrival.
  auto response = (*client)->Translate(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
}

TEST_F(WireServerTest, MalformedRequestPayloadGetsTypedParseError) {
  auto server = StartServer();
  // Raw socket: speak the frame layer directly with a garbage request body.
  auto sock = TcpConnect("127.0.0.1", server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  std::string hello_payload;
  PutU32(&hello_payload, kProtocolVersion);
  PutString(&hello_payload, "mas");
  ASSERT_TRUE(WriteFully(sock->fd(),
                         BuildFrame(FrameType::kHello, 0, 0, hello_payload))
                  .ok());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(sock->fd(), &header, &payload).ok());
  ASSERT_EQ(header.type, FrameType::kHelloAck);

  ASSERT_TRUE(WriteFully(sock->fd(), BuildFrame(FrameType::kRequest,
                                                header.session_id, 1,
                                                "\xde\xad\xbe\xef"))
                  .ok());
  ASSERT_TRUE(ReadFrame(sock->fd(), &header, &payload).ok());
  ASSERT_EQ(header.type, FrameType::kResponse);
  WireReader reader(payload);
  uint64_t client_seq = 0;
  uint32_t code = 0;
  ASSERT_TRUE(reader.ReadU64(&client_seq).ok());
  ASSERT_TRUE(reader.ReadU32(&code).ok());
  EXPECT_EQ(client_seq, 1u);
  EXPECT_EQ(code, static_cast<uint32_t>(StatusCode::kParseError));

  // The server survives hostile peers: a fresh client still works.
  auto client = WireClient::Connect(ClientOptions(server->port()));
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Translate(PapersRequest()).ok());
}

TEST_F(WireServerTest, NonProtocolPeerIsRejectedServerStaysUp) {
  auto server = StartServer();
  auto sock = TcpConnect("127.0.0.1", server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  // 25 bytes of the wrong magic: parsed as a frame header and rejected.
  std::string garbage(kFrameHeaderBytes, '\x41');
  ASSERT_TRUE(WriteFully(sock->fd(), garbage).ok());
  sock->Close();

  auto client = WireClient::Connect(ClientOptions(server->port()));
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Translate(PapersRequest()).ok());
  // The garbage connection is handled on its own server thread; wait for
  // the rejection to be counted rather than racing it.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->Stats().frames_rejected == 0 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(server->Stats().frames_rejected, 1u);
}

TEST_F(WireServerTest, TranslateSurvivesSeveredConnections) {
  auto server = StartServer();
  auto client = WireClient::Connect(ClientOptions(server->port()));
  ASSERT_TRUE(client.ok());

  auto baseline = (*client)->Translate(PapersRequest());
  ASSERT_TRUE(baseline.ok());
  const std::string expected = baseline->RankingFingerprint();

  for (int i = 0; i < 5; ++i) {
    ASSERT_GE(server->SeverConnections(), 1u);
    auto response = (*client)->Translate(PapersRequest());
    ASSERT_TRUE(response.ok()) << "after sever " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(response->RankingFingerprint(), expected)
        << "ranking must be byte-identical across reconnects";
  }
  EXPECT_GE((*client)->Stats().reconnects, 1u);
  EXPECT_GE(server->Stats().sessions_resumed, 1u);
  EXPECT_EQ(server->session_count(), 1u)
      << "reconnects resume the one session, never fork a second";
}

TEST_F(WireServerTest, GoodbyeReclaimsTheSessionImmediately) {
  auto server = StartServer();
  {
    auto client = WireClient::Connect(ClientOptions(server->port()));
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Translate(PapersRequest()).ok());
    EXPECT_EQ(server->session_count(), 1u);
    (*client)->Close();
  }
  // Goodbye is processed on the server's connection thread; give it a beat.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->session_count() != 0 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server->session_count(), 0u);
}

// Regression: an idle session must be reclaimed after the TTL, and a LATE
// reconnect must get a clean typed kSessionExpired — not a hang, not a
// replay of stale state.
TEST_F(WireServerTest, IdleSessionExpiresAndLateResumeGetsTypedError) {
  WireServerOptions server_options;
  server_options.session_ttl = std::chrono::milliseconds(150);
  server_options.reaper_period = std::chrono::milliseconds(20);
  auto server = StartServer(server_options);

  WireClientOptions client_options = ClientOptions(server->port());
  // Reconnect only after the TTL has certainly elapsed.
  client_options.reconnect_delay = std::chrono::milliseconds(600);
  auto client = WireClient::Connect(client_options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Translate(PapersRequest()).ok());
  EXPECT_EQ(server->session_count(), 1u);

  server->SeverConnections();
  // The pending Translate below rides the reconnect, which lands after the
  // reaper has reclaimed the session: typed kSessionExpired, promptly.
  auto late = (*client)->Translate(PapersRequest());
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsSessionExpired()) << late.status().ToString();
  EXPECT_EQ(server->session_count(), 0u);
  EXPECT_GE(server->Stats().sessions_expired, 1u);

  // And the client is terminally dead with the same typed status.
  auto after = (*client)->Translate(PapersRequest());
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsSessionExpired());
}

// Same regression at the protocol level, no client library involved: a
// resume Hello for a reaped session id answers kError(kSessionExpired).
TEST_F(WireServerTest, ProtocolLevelLateResumeAnswersSessionExpiredFrame) {
  WireServerOptions server_options;
  server_options.session_ttl = std::chrono::milliseconds(100);
  server_options.reaper_period = std::chrono::milliseconds(20);
  auto server = StartServer(server_options);

  uint64_t session_id = 0;
  {
    auto sock = TcpConnect("127.0.0.1", server->port(),
                           std::chrono::milliseconds(2000));
    ASSERT_TRUE(sock.ok());
    std::string hello_payload;
    PutU32(&hello_payload, kProtocolVersion);
    PutString(&hello_payload, "mas");
    ASSERT_TRUE(WriteFully(sock->fd(),
                           BuildFrame(FrameType::kHello, 0, 0, hello_payload))
                    .ok());
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(ReadFrame(sock->fd(), &header, &payload).ok());
    ASSERT_EQ(header.type, FrameType::kHelloAck);
    WireReader reader(payload);
    ASSERT_TRUE(reader.ReadU64(&session_id).ok());
    ASSERT_NE(session_id, 0u);
  }  // Connection drops; the session idles.

  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->session_count() != 0 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server->session_count(), 0u) << "reaper must reclaim the idle";

  auto sock = TcpConnect("127.0.0.1", server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  std::string hello_payload;
  PutU32(&hello_payload, kProtocolVersion);
  PutString(&hello_payload, "mas");
  ASSERT_TRUE(WriteFully(sock->fd(), BuildFrame(FrameType::kHello,
                                                session_id, 0,
                                                hello_payload))
                  .ok());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(sock->fd(), &header, &payload).ok());
  ASSERT_EQ(header.type, FrameType::kError);
  WireReader reader(payload);
  uint32_t code = 0;
  ASSERT_TRUE(reader.ReadU32(&code).ok());
  EXPECT_EQ(code, static_cast<uint32_t>(StatusCode::kSessionExpired));
}

}  // namespace
}  // namespace templar::net
