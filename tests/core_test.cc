// Unit tests for core/: keyword mapper (Algorithms 1-3), configuration
// scoring, join path generator, Templar facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/join_path_generator.h"
#include "core/keyword_mapper.h"
#include "core/templar.h"
#include "sql/parser.h"
#include "test_fixtures.h"
#include "text/fulltext_index.h"

namespace templar::core {
namespace {

class KeywordMapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniAcademicDb();
    fts_ = std::make_unique<text::FulltextIndex>(
        text::FulltextIndex::Build(*db_));
    model_ = testing::MakeMiniLexicon();
    qfg_ = std::make_unique<qfg::QueryFragmentGraph>(
        qfg::ObscurityLevel::kNoConstOp);
    for (const auto& sql_text : testing::MakeMiniLog()) {
      ASSERT_TRUE(qfg_->AddQuerySql(sql_text).ok());
    }
    mapper_ = std::make_unique<KeywordMapper>(db_.get(), fts_.get(),
                                              model_.get(), qfg_.get());
  }

  nlq::AnnotatedKeyword SelectKeyword(const std::string& text) {
    nlq::AnnotatedKeyword kw;
    kw.text = text;
    kw.metadata.context = qfg::FragmentContext::kSelect;
    return kw;
  }
  nlq::AnnotatedKeyword WhereKeyword(const std::string& text,
                                     sql::BinaryOp op = sql::BinaryOp::kEq) {
    nlq::AnnotatedKeyword kw;
    kw.text = text;
    kw.metadata.context = qfg::FragmentContext::kWhere;
    kw.metadata.op = op;
    return kw;
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<text::FulltextIndex> fts_;
  std::unique_ptr<embed::EmbeddingModel> model_;
  std::unique_ptr<qfg::QueryFragmentGraph> qfg_;
  std::unique_ptr<KeywordMapper> mapper_;
};

TEST_F(KeywordMapperTest, SelectContextYieldsAttributes) {
  auto cands = mapper_->KeywordCands(SelectKeyword("papers"));
  EXPECT_FALSE(cands.empty());
  bool has_title = false;
  for (const auto& c : cands) {
    EXPECT_EQ(c.kind, CandidateMapping::Kind::kAttribute);
    // Key attributes are excluded for non-count projections.
    EXPECT_NE(c.attribute, "pid");
    EXPECT_NE(c.attribute, "jid");
    if (c.relation == "publication" && c.attribute == "title") {
      has_title = true;
    }
  }
  EXPECT_TRUE(has_title);
}

TEST_F(KeywordMapperTest, CountAggregationAllowsKeyAttributes) {
  nlq::AnnotatedKeyword kw = SelectKeyword("papers");
  kw.metadata.aggs = {sql::AggFunc::kCount};
  auto cands = mapper_->KeywordCands(kw);
  bool has_pid = false;
  for (const auto& c : cands) {
    if (c.relation == "publication" && c.attribute == "pid") has_pid = true;
    EXPECT_EQ(c.aggs, kw.metadata.aggs);
  }
  EXPECT_TRUE(has_pid);
}

TEST_F(KeywordMapperTest, FromContextYieldsRelations) {
  nlq::AnnotatedKeyword kw;
  kw.text = "papers";
  kw.metadata.context = qfg::FragmentContext::kFrom;
  auto cands = mapper_->KeywordCands(kw);
  EXPECT_EQ(cands.size(), db_->catalog().relations().size());
  for (const auto& c : cands) {
    EXPECT_EQ(c.kind, CandidateMapping::Kind::kRelation);
  }
}

TEST_F(KeywordMapperTest, NumericKeywordYieldsPredicates) {
  auto cands =
      mapper_->KeywordCands(WhereKeyword("after 2000", sql::BinaryOp::kGt));
  ASSERT_FALSE(cands.empty());
  bool has_year = false;
  for (const auto& c : cands) {
    EXPECT_EQ(c.kind, CandidateMapping::Kind::kPredicate);
    EXPECT_EQ(c.op, sql::BinaryOp::kGt);
    if (c.relation == "publication" && c.attribute == "year") has_year = true;
  }
  EXPECT_TRUE(has_year);
}

TEST_F(KeywordMapperTest, TextKeywordYieldsFulltextPredicates) {
  auto cands = mapper_->KeywordCands(WhereKeyword("TKDE"));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].relation, "journal");
  EXPECT_EQ(cands[0].value.string_value, "TKDE");
}

TEST_F(KeywordMapperTest, AmbiguousValueYieldsMultipleCandidates) {
  auto cands = mapper_->KeywordCands(WhereKeyword("Databases"));
  std::set<std::string> rels;
  for (const auto& c : cands) rels.insert(c.relation);
  EXPECT_TRUE(rels.count("domain"));
  EXPECT_TRUE(rels.count("keyword"));
  EXPECT_TRUE(rels.count("publication"));  // Title containing the token.
}

TEST_F(KeywordMapperTest, ScoreAndPruneExactMatchesCrowdOut) {
  auto kw = WhereKeyword("Databases");
  auto pruned = mapper_->ScoreAndPrune(kw, mapper_->KeywordCands(kw));
  // domain.name and keyword.keyword are exact (sigma ~ 1); the partial
  // title match must be pruned away.
  ASSERT_EQ(pruned.size(), 2u);
  for (const auto& c : pruned) {
    EXPECT_GE(c.similarity, 0.98);
    EXPECT_NE(c.relation, "publication");
  }
}

TEST_F(KeywordMapperTest, ScoreAndPruneKeepsTopKappa) {
  auto kw = SelectKeyword("papers");
  auto cands = mapper_->KeywordCands(kw);
  auto pruned = mapper_->ScoreAndPrune(kw, cands);
  EXPECT_LE(pruned.size(), cands.size());
  EXPECT_LE(pruned.size(),
            mapper_->options().kappa + 3);  // Allow tie extension.
  // Sorted by descending similarity.
  for (size_t i = 1; i < pruned.size(); ++i) {
    EXPECT_LE(pruned[i].similarity, pruned[i - 1].similarity);
  }
}

TEST_F(KeywordMapperTest, EmptyNumericPredicateGetsEpsilon) {
  auto kw = WhereKeyword("after 2050", sql::BinaryOp::kGt);
  auto cands = mapper_->KeywordCands(kw);
  // No rows satisfy year > 2050, so either no candidate exists or all score
  // at epsilon.
  auto pruned = mapper_->ScoreAndPrune(kw, cands);
  for (const auto& c : pruned) {
    if (c.relation == "publication" && c.attribute == "year") {
      EXPECT_LE(c.similarity, mapper_->options().epsilon + 1e-9);
    }
  }
}

TEST_F(KeywordMapperTest, MapKeywordsRanksTrapCorrectlyWithLog) {
  // The Example 1 flow: "papers" + "Databases" with the journal trap in the
  // lexicon. The log-driven score must put publication.title on top.
  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  parsed.keywords = {SelectKeyword("papers"), WhereKeyword("Databases")};
  auto configs = mapper_->MapKeywords(parsed);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  const Configuration& top = (*configs)[0];
  EXPECT_EQ(top.mappings[0].candidate.relation, "publication");
  EXPECT_EQ(top.mappings[0].candidate.attribute, "title");
}

TEST_F(KeywordMapperTest, WithoutLogTrapWins) {
  KeywordMapperOptions options;
  options.use_qfg = false;
  KeywordMapper baseline(db_.get(), fts_.get(), model_.get(), nullptr,
                         options);
  nlq::ParsedNlq parsed;
  parsed.original = "papers databases";
  nlq::AnnotatedKeyword papers = SelectKeyword("papers");
  parsed.keywords = {papers, WhereKeyword("Databases")};
  auto configs = baseline.MapKeywords(parsed);
  ASSERT_TRUE(configs.ok());
  EXPECT_EQ((*configs)[0].mappings[0].candidate.relation, "journal");
}

TEST_F(KeywordMapperTest, MapKeywordsFailsOnUnmappableKeyword) {
  nlq::ParsedNlq parsed;
  parsed.original = "zzz";
  parsed.keywords = {WhereKeyword("unmatchable zebra phrase")};
  EXPECT_TRUE(mapper_->MapKeywords(parsed).status().IsNotFound());
  nlq::ParsedNlq empty;
  EXPECT_TRUE(mapper_->MapKeywords(empty).status().IsInvalidArgument());
}

TEST_F(KeywordMapperTest, SigmaScoreIsGeometricMean) {
  Configuration config;
  FragmentMapping m1;
  m1.candidate.similarity = 0.5;
  FragmentMapping m2;
  m2.candidate.similarity = 0.125;
  config.mappings = {m1, m2};
  EXPECT_NEAR(KeywordMapper::SigmaScore(config), 0.25, 1e-9);
}

TEST_F(KeywordMapperTest, QfgScoreUsesDicePairs) {
  Configuration config;
  FragmentMapping select;
  select.candidate.fragment = qfg::SelectFragment("publication", "title");
  FragmentMapping pred;
  pred.candidate.kind = CandidateMapping::Kind::kPredicate;
  sql::Predicate p;
  p.lhs = {"publication", "year"};
  p.op = sql::BinaryOp::kGt;
  p.rhs = sql::Literal::Int(2001);
  pred.candidate.fragment = qfg::WhereFragment(p, qfg::ObscurityLevel::kFull);
  config.mappings = {select, pred};
  double score = KeywordMapper::QfgScore(config, *qfg_);
  EXPECT_GT(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST_F(KeywordMapperTest, QfgScoreSkipsFromFragments) {
  Configuration config;
  FragmentMapping rel;
  rel.candidate.kind = CandidateMapping::Kind::kRelation;
  rel.candidate.fragment = qfg::RelationFragment("journal");
  config.mappings = {rel};
  // Only a FROM fragment: no pair and no non-FROM occurrence -> 0.
  EXPECT_DOUBLE_EQ(KeywordMapper::QfgScore(config, *qfg_), 0.0);
}

TEST_F(KeywordMapperTest, QfgScoreDuplicateFragmentsFallBack) {
  // Two predicates identical at NoConstOp: no pair signal; occurrence
  // frequency fallback keeps the score non-zero.
  Configuration config;
  for (const char* name : {"'John'", "'Jane'"}) {
    FragmentMapping m;
    m.candidate.kind = CandidateMapping::Kind::kPredicate;
    auto pred = sql::ParsePredicate(std::string("journal.name = ") + name);
    ASSERT_TRUE(pred.ok());
    m.candidate.fragment =
        qfg::WhereFragment(*pred, qfg::ObscurityLevel::kFull);
    config.mappings.push_back(m);
  }
  double score = KeywordMapper::QfgScore(config, *qfg_);
  EXPECT_GT(score, 0.0);
}

TEST(RelationBagTest, ProjectionsCollapsePredicatesSplit) {
  Configuration config;
  auto attr = [](const char* rel, const char* a) {
    FragmentMapping m;
    m.candidate.kind = CandidateMapping::Kind::kAttribute;
    m.candidate.relation = rel;
    m.candidate.attribute = a;
    return m;
  };
  auto pred = [](const char* rel, const char* a, const char* v) {
    FragmentMapping m;
    m.candidate.kind = CandidateMapping::Kind::kPredicate;
    m.candidate.relation = rel;
    m.candidate.attribute = a;
    m.candidate.value = sql::Literal::String(v);
    return m;
  };
  // Projection + two predicates on the same attribute -> self-join bag.
  config.mappings = {attr("publication", "title"),
                     pred("author", "name", "John"),
                     pred("author", "name", "Jane")};
  EXPECT_EQ(config.RelationBag(),
            (std::vector<std::string>{"author", "author#1", "publication"}));

  // Predicates on different attributes share one instance.
  config.mappings = {attr("publication", "title"),
                     pred("publication", "year", "2000"),
                     pred("publication", "title", "X")};
  EXPECT_EQ(config.RelationBag(),
            (std::vector<std::string>{"publication"}));
}

class JoinPathGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniAcademicDb();
    schema_ = graph::SchemaGraph::FromCatalog(db_->catalog());
    qfg_ = std::make_unique<qfg::QueryFragmentGraph>(
        qfg::ObscurityLevel::kNoConstOp);
    for (const auto& sql_text : testing::MakeMiniLog()) {
      ASSERT_TRUE(qfg_->AddQuerySql(sql_text).ok());
    }
  }

  std::unique_ptr<db::Database> db_;
  graph::SchemaGraph schema_;
  std::unique_ptr<qfg::QueryFragmentGraph> qfg_;
};

TEST_F(JoinPathGeneratorTest, DefaultWeightsPickShortDecoy) {
  JoinPathGeneratorOptions options;
  options.use_log_weights = false;
  JoinPathGenerator gen(&schema_, qfg_.get(), options);
  auto paths = gen.InferJoins({"publication", "domain"});
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ((*paths)[0].edges.size(), 3u);  // Via conference or journal.
}

TEST_F(JoinPathGeneratorTest, LogWeightsPickKeywordRoute) {
  // The mini log contains publication-keyword-domain joins (Example 6's
  // desired route) and no conference joins.
  JoinPathGenerator gen(&schema_, qfg_.get());
  auto paths = gen.InferJoins({"publication", "domain"});
  ASSERT_TRUE(paths.ok());
  std::set<std::string> rels((*paths)[0].relations.begin(),
                             (*paths)[0].relations.end());
  EXPECT_TRUE(rels.count("keyword")) << (*paths)[0].ToString();
  EXPECT_TRUE(rels.count("publication_keyword"));
  EXPECT_EQ((*paths)[0].edges.size(), 4u);
}

TEST_F(JoinPathGeneratorTest, SelfJoinBagForksAutomatically) {
  JoinPathGenerator gen(&schema_, qfg_.get());
  auto paths = gen.InferJoins({"author", "author#1", "publication"});
  ASSERT_TRUE(paths.ok());
  std::set<std::string> rels((*paths)[0].relations.begin(),
                             (*paths)[0].relations.end());
  EXPECT_TRUE(rels.count("author#1"));
  EXPECT_TRUE(rels.count("writes#1") || rels.count("writes"));
}

TEST_F(JoinPathGeneratorTest, ErrorsOnBadBag) {
  JoinPathGenerator gen(&schema_, qfg_.get());
  EXPECT_TRUE(gen.InferJoins({}).status().IsInvalidArgument());
  EXPECT_TRUE(gen.InferJoins({"nope"}).status().IsNotFound());
}

TEST_F(JoinPathGeneratorTest, MalformedInstanceSuffixIsTypedError) {
  // Bags arrive verbatim over the wire; a bad suffix must be a typed
  // InvalidArgument, never an exception (std::stoi used to throw here).
  JoinPathGenerator gen(&schema_, qfg_.get());
  for (const char* bag :
       {"author#x", "author#", "author#1x", "author#-1", "author# 2",
        "author#99999999999999999999"}) {
    auto result = gen.InferJoins({bag, "publication"});
    EXPECT_TRUE(result.status().IsInvalidArgument())
        << bag << " -> " << result.status().ToString();
  }
}

TEST_F(JoinPathGeneratorTest, InstanceCountCapIsTypedError) {
  // Each extra instance forks the schema graph, so "author#1000000" would
  // clone it a million times without the cap.
  JoinPathGenerator gen(&schema_, qfg_.get());
  auto result = gen.InferJoins({"author#1000000", "publication"});
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  // At the cap boundary: "author#7" (8 instances) is the last accepted.
  JoinPathGeneratorOptions tight;
  tight.max_relation_instances = 2;
  JoinPathGenerator capped(&schema_, qfg_.get(), tight);
  EXPECT_TRUE(capped.InferJoins({"author#1", "publication"}).ok());
  EXPECT_TRUE(capped.InferJoins({"author#2", "publication"})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(JoinPathGeneratorTest, DecisiveFootprintNestedInConsultedFootprint) {
  // Property: the decisive footprint (default) is a subset of the
  // consult-everything footprint, and a superset of the returned path's
  // own edge endpoints — for every bag shape we serve.
  const std::vector<std::vector<std::string>> bags = {
      {"publication", "domain"},
      {"author", "publication"},
      {"author", "author#1", "publication"},
      {"publication", "domain", "journal"},
  };
  for (const auto& bag : bags) {
    JoinPathGenerator decisive_gen(&schema_, qfg_.get());
    qfg::QfgFootprint decisive;
    auto paths = decisive_gen.InferJoins(bag, &decisive);
    ASSERT_TRUE(paths.ok());

    JoinPathGeneratorOptions consult_options;
    consult_options.consult_everything_footprint = true;
    JoinPathGenerator consult_gen(&schema_, qfg_.get(), consult_options);
    qfg::QfgFootprint consulted;
    auto consult_paths = consult_gen.InferJoins(bag, &consulted);
    ASSERT_TRUE(consult_paths.ok());

    // Footprint mode must not change the ranking itself.
    ASSERT_EQ(paths->size(), consult_paths->size());
    for (size_t i = 0; i < paths->size(); ++i) {
      EXPECT_EQ((*paths)[i].ToString(), (*consult_paths)[i].ToString());
    }

    auto contains = [](const std::vector<qfg::FragmentFingerprint>& haystack,
                       qfg::FragmentFingerprint needle) {
      return std::find(haystack.begin(), haystack.end(), needle) !=
             haystack.end();
    };
    const auto decisive_fps = decisive.Fingerprints();
    const auto consulted_fps = consulted.Fingerprints();
    EXPECT_LE(decisive_fps.size(), consulted_fps.size());
    for (auto fp : decisive_fps) {
      EXPECT_TRUE(contains(consulted_fps, fp)) << "bag " << bag[0];
    }
    for (const auto& edge : (*paths)[0].edges) {
      for (const auto& endpoint :
           {graph::BaseRelationName(edge.fk_relation),
            graph::BaseRelationName(edge.pk_relation)}) {
        qfg::FragmentFingerprint fp =
            qfg_->Resolve(qfg::RelationFragment(endpoint)).fingerprint;
        EXPECT_TRUE(contains(decisive_fps, fp)) << endpoint;
      }
    }
  }
}

TEST_F(JoinPathGeneratorTest, SingleRelationBagHasEmptyFootprint) {
  // No join decision -> no log dependency, in both footprint modes.
  for (bool consult : {false, true}) {
    JoinPathGeneratorOptions options;
    options.consult_everything_footprint = consult;
    JoinPathGenerator gen(&schema_, qfg_.get(), options);
    qfg::QfgFootprint footprint;
    ASSERT_TRUE(gen.InferJoins({"publication"}, &footprint).ok());
    EXPECT_TRUE(footprint.Fingerprints().empty()) << "consult=" << consult;
  }
}

TEST(TemplarFacadeTest, BuildAndQuery) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  auto log = testing::MakeMiniLog();
  log.push_back("THIS IS NOT SQL");
  auto templar = Templar::Build(db.get(), model.get(), log);
  ASSERT_TRUE(templar.ok());
  EXPECT_EQ((*templar)->skipped_log_entries(), 1u);
  EXPECT_GT((*templar)->query_fragment_graph().query_count(), 30u);

  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  papers.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword value;
  value.text = "Databases";
  value.metadata.context = qfg::FragmentContext::kWhere;
  value.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {papers, value};

  auto configs = (*templar)->MapKeywords(parsed);
  ASSERT_TRUE(configs.ok());
  auto paths = (*templar)->InferJoins((*configs)[0].RelationBag());
  ASSERT_TRUE(paths.ok());
  EXPECT_FALSE(paths->empty());
}

TEST(TemplarFacadeTest, NullArgsRejected) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  EXPECT_TRUE(
      Templar::Build(nullptr, model.get(), {}).status().IsInvalidArgument());
  EXPECT_TRUE(
      Templar::Build(db.get(), nullptr, {}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace templar::core
