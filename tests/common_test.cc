// Unit tests for common/: Status, Result, string utilities, sorted
// intersection, Rng.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sorted_intersect.h"
#include "common/status.h"
#include "common/string_util.h"

namespace templar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "relation 'x'");
  EXPECT_EQ(s.ToString(), "NotFound: relation 'x'");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("m").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::ParseError("m").IsParseError());
  EXPECT_TRUE(Status::TypeError("m").IsTypeError());
  EXPECT_TRUE(Status::OutOfRange("m").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("m").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("m").IsInternal());
  EXPECT_TRUE(Status::IOError("m").IsIOError());
  EXPECT_TRUE(Status::Overloaded("m").IsOverloaded());
  EXPECT_TRUE(Status::DeadlineExceeded("m").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("m").IsCancelled());
}

TEST(StatusTest, ControlAbortCodesAreDistinctAndNamed) {
  // The serving layer's typed control aborts: a caller must be able to tell
  // "you gave up" (deadline/cancel) apart from load shedding (overloaded)
  // and from real failures.
  Status deadline = Status::DeadlineExceeded("queue timeout");
  Status cancelled = Status::Cancelled("caller cancelled");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_NE(deadline.code(), cancelled.code());
  EXPECT_FALSE(deadline.IsOverloaded());
  EXPECT_FALSE(cancelled.IsOverloaded());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: queue timeout");
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(b.message(), "boom");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TEMPLAR_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, ValuePath) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.ValueOr(-1), 5);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(8 + 1).ok());
  EXPECT_FALSE(Quarter(6).ok());  // Second Half fails (3 is odd).
}

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToUpper("AbC123"), "ABC123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, SplitIdentifierWords) {
  EXPECT_EQ(SplitIdentifierWords("domain_keyword"),
            (std::vector<std::string>{"domain", "keyword"}));
  EXPECT_EQ(SplitIdentifierWords("citationNum"),
            (std::vector<std::string>{"citation", "num"}));
  EXPECT_EQ(SplitIdentifierWords("publication.title"),
            (std::vector<std::string>{"publication", "title"}));
}

TEST(StringUtilTest, JoinStartsEndsWith) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("publication", "pub"));
  EXPECT_FALSE(StartsWith("pub", "publication"));
  EXPECT_TRUE(EndsWith("publication", "tion"));
  EXPECT_FALSE(EndsWith("tion", "publication"));
}

TEST(StringUtilTest, NumberPredicates) {
  EXPECT_TRUE(ContainsDigit("after 2000"));
  EXPECT_FALSE(ContainsDigit("after"));
  EXPECT_TRUE(IsNumber("2000"));
  EXPECT_TRUE(IsNumber("-3.5"));
  EXPECT_TRUE(IsNumber("+7"));
  EXPECT_FALSE(IsNumber("20a"));
  EXPECT_FALSE(IsNumber("."));
  EXPECT_FALSE(IsNumber(""));
  EXPECT_FALSE(IsNumber("-"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

struct EditDistanceCase {
  const char* a;
  const char* b;
  size_t expected;
};

class EditDistanceTest : public ::testing::TestWithParam<EditDistanceCase> {};

TEST_P(EditDistanceTest, MatchesExpected) {
  const auto& c = GetParam();
  EXPECT_EQ(EditDistance(c.a, c.b), c.expected);
  // Symmetry property.
  EXPECT_EQ(EditDistance(c.b, c.a), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EditDistanceTest,
    ::testing::Values(EditDistanceCase{"", "", 0},
                      EditDistanceCase{"abc", "", 3},
                      EditDistanceCase{"abc", "abc", 0},
                      EditDistanceCase{"kitten", "sitting", 3},
                      EditDistanceCase{"paper", "papers", 1},
                      EditDistanceCase{"journal", "journey", 2}));

// ---------------------------------------------------------------------------
// SortedRangesIntersect (merge walk + galloping path for skewed sizes)

TEST(SortedIntersectTest, BasicsAndEmpties) {
  std::vector<uint64_t> empty;
  std::vector<uint64_t> some = {1, 5, 9};
  EXPECT_FALSE(SortedRangesIntersect(empty, empty));
  EXPECT_FALSE(SortedRangesIntersect(empty, some));
  EXPECT_FALSE(SortedRangesIntersect(some, empty));
  EXPECT_TRUE(SortedRangesIntersect(some, some));
  EXPECT_TRUE(SortedRangesIntersect(some, std::vector<uint64_t>{9}));
  EXPECT_FALSE(SortedRangesIntersect(some, std::vector<uint64_t>{2, 4, 8}));
}

TEST(SortedIntersectTest, GallopingPathSkewedSizes) {
  // Large side well past kGallopSkewRatio x the small side, hitting first,
  // middle, last, and no element.
  std::vector<uint64_t> large;
  for (uint64_t i = 0; i < 1000; ++i) large.push_back(i * 3);  // 0,3,...,2997
  EXPECT_TRUE(SortedRangesIntersect(std::vector<uint64_t>{0}, large));
  EXPECT_TRUE(SortedRangesIntersect(std::vector<uint64_t>{1500}, large));
  EXPECT_TRUE(SortedRangesIntersect(std::vector<uint64_t>{2997}, large));
  EXPECT_FALSE(SortedRangesIntersect(std::vector<uint64_t>{1, 2998}, large));
  EXPECT_FALSE(SortedRangesIntersect(std::vector<uint64_t>{5000}, large));
  // Symmetric: small side second.
  EXPECT_TRUE(SortedRangesIntersect(large, std::vector<uint64_t>{1500}));
  EXPECT_FALSE(SortedRangesIntersect(large, std::vector<uint64_t>{1}));
}

TEST(SortedIntersectTest, MatchesBruteForceOnRandomSets) {
  // Property check across the size-skew boundary: both code paths must agree
  // with the quadratic reference on random sorted-deduplicated sets.
  Rng rng(20260727);
  for (int round = 0; round < 200; ++round) {
    const size_t na = static_cast<size_t>(rng.NextInt(0, 12));
    const size_t nb = static_cast<size_t>(rng.NextInt(0, 200));
    std::set<uint64_t> sa;
    std::set<uint64_t> sb;
    for (size_t i = 0; i < na; ++i) {
      sa.insert(static_cast<uint64_t>(rng.NextInt(0, 300)));
    }
    for (size_t i = 0; i < nb; ++i) {
      sb.insert(static_cast<uint64_t>(rng.NextInt(0, 300)));
    }
    std::vector<uint64_t> a(sa.begin(), sa.end());
    std::vector<uint64_t> b(sb.begin(), sb.end());
    bool expected = false;
    for (uint64_t x : a) expected = expected || sb.count(x) > 0;
    EXPECT_EQ(SortedRangesIntersect(a, b), expected);
    EXPECT_EQ(SortedRangesIntersect(b, a), expected);
  }
}

TEST(Fnv1aTest, StableAndSensitive) {
  EXPECT_EQ(Fnv1aHash("publication"), Fnv1aHash("publication"));
  EXPECT_NE(Fnv1aHash("publication"), Fnv1aHash("publications"));
  EXPECT_NE(Fnv1aHash("x", 1), Fnv1aHash("x", 2));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedPickFavorsHeavyWeights) {
  Rng rng(11);
  std::vector<double> weights{1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 2000; ++i) counts[rng.NextWeighted(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 3);
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += rng.NextGaussian();
  EXPECT_NEAR(sum / 5000.0, 0.0, 0.1);
}

}  // namespace
}  // namespace templar
