// Unit tests for text/: Porter stemmer, tokenizer, full-text index.

#include <gtest/gtest.h>

#include "test_fixtures.h"
#include "text/fulltext_index.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace templar::text {
namespace {

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, MatchesExpected) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem)
      << "word: " << GetParam().word;
}

// Expected outputs verified against the canonical Porter algorithm
// behaviour; includes the paper's own examples (restaurant -> restaur,
// businesses -> busi, Sec. V-A).
INSTANTIATE_TEST_SUITE_P(
    Classic, PorterStemTest,
    ::testing::Values(StemCase{"restaurant", "restaur"},
                      StemCase{"businesses", "busi"},
                      StemCase{"caresses", "caress"},
                      StemCase{"ponies", "poni"},
                      StemCase{"cats", "cat"},
                      StemCase{"feed", "feed"},
                      StemCase{"agreed", "agre"},
                      StemCase{"plastered", "plaster"},
                      StemCase{"motoring", "motor"},
                      StemCase{"conflated", "conflat"},
                      StemCase{"troubled", "troubl"},
                      StemCase{"sized", "size"},
                      StemCase{"hopping", "hop"},
                      StemCase{"falling", "fall"},
                      StemCase{"hissing", "hiss"},
                      StemCase{"failing", "fail"},
                      StemCase{"happy", "happi"},
                      StemCase{"relational", "relat"},
                      StemCase{"conditional", "condit"},
                      StemCase{"valency", "valenc"},
                      StemCase{"digitizer", "digit"},
                      StemCase{"operator", "oper"},
                      StemCase{"feudalism", "feudal"},
                      StemCase{"hopefulness", "hope"},
                      StemCase{"formality", "formal"},
                      StemCase{"triplicate", "triplic"},
                      StemCase{"formative", "form"},
                      StemCase{"formalize", "formal"},
                      StemCase{"revival", "reviv"},
                      StemCase{"allowance", "allow"},
                      StemCase{"inference", "infer"},
                      StemCase{"adjustment", "adjust"},
                      StemCase{"dependent", "depend"},
                      StemCase{"adoption", "adopt"},
                      StemCase{"probate", "probat"},
                      StemCase{"controller", "control"},
                      StemCase{"papers", "paper"},
                      StemCase{"publication", "public"}));

TEST(PorterStemTest, ShortWordsUntouched) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("be"), "be");
}

TEST(PorterStemTest, NonAlphaPassThrough) {
  EXPECT_EQ(PorterStem("2000"), "2000");
  EXPECT_EQ(PorterStem("?val"), "?val");
  EXPECT_EQ(PorterStem("TKDE"), "TKDE");  // Uppercase: untouched.
}

TEST(PorterStemTest, IdempotentOnCommonWords) {
  // (Porter is not idempotent in general — "databases" -> "databas" ->
  // "databa" — so only known fixed-point stems are checked here.)
  for (const char* w : {"citations", "reviews", "movies", "restaurants"}) {
    std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << w;
  }
}

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Saving Private Ryan!"),
            (std::vector<std::string>{"saving", "private", "ryan"}));
  EXPECT_EQ(Tokenize("O'Brien-Smith"),
            (std::vector<std::string>{"o", "brien", "smith"}));
  EXPECT_TRUE(Tokenize("  ...  ").empty());
}

TEST(TokenizerTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("after 2000"),
            (std::vector<std::string>{"after", "2000"}));
}

TEST(TokenizerTest, TokenizeAndStem) {
  EXPECT_EQ(TokenizeAndStem("restaurant businesses"),
            (std::vector<std::string>{"restaur", "busi"}));
}

TEST(TokenizerTest, Stopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("return"));
  EXPECT_FALSE(IsStopword("publication"));
}

TEST(TokenizerTest, ContentStemsDropStopwords) {
  auto stems = ContentStems("Return the papers in the Databases domain");
  EXPECT_EQ(stems,
            (std::vector<std::string>{"paper", "databas", "domain"}));
}

TEST(FulltextIndexTest, BuildsOverMarkedAttributes) {
  auto db = testing::MakeMiniAcademicDb();
  FulltextIndex index = FulltextIndex::Build(*db);
  EXPECT_GT(index.entry_count(), 5u);
}

TEST(FulltextIndexTest, ExactTokenSearch) {
  auto db = testing::MakeMiniAcademicDb();
  FulltextIndex index = FulltextIndex::Build(*db);
  auto matches = index.Search({"tkde"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].relation, "journal");
  EXPECT_EQ(matches[0].value, "TKDE");
}

TEST(FulltextIndexTest, StemmedMultiTokenAnd) {
  auto db = testing::MakeMiniAcademicDb();
  FulltextIndex index = FulltextIndex::Build(*db);
  // "Scalable Indexing for Databases" must match both stems.
  auto matches = index.Search(TokenizeAndStem("scalable indexing"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].attribute, "title");
  // A token with no match anywhere ANDs to empty.
  EXPECT_TRUE(index.Search(TokenizeAndStem("scalable zebra")).empty());
}

TEST(FulltextIndexTest, PrefixSemantics) {
  auto db = testing::MakeMiniAcademicDb();
  FulltextIndex index = FulltextIndex::Build(*db);
  // "databas" (stem of databases) prefix-matches domain, keyword and the
  // publication title containing "Databases".
  auto matches = index.Search({"databas"});
  EXPECT_GE(matches.size(), 3u);
}

TEST(FulltextIndexTest, AttributeRestriction) {
  auto db = testing::MakeMiniAcademicDb();
  FulltextIndex index = FulltextIndex::Build(*db);
  auto matches = index.Search({"databas"}, "domain", "name");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].relation, "domain");
}

TEST(FulltextIndexTest, EmptyQueryReturnsNothing) {
  auto db = testing::MakeMiniAcademicDb();
  FulltextIndex index = FulltextIndex::Build(*db);
  EXPECT_TRUE(index.Search({}).empty());
}

TEST(FulltextIndexTest, NonIndexedAttributesInvisible) {
  // author.homepage is not fulltext_indexed in the mini schema; search for
  // a URL token should find nothing.
  auto db = testing::MakeMiniAcademicDb();
  FulltextIndex index = FulltextIndex::Build(*db);
  EXPECT_TRUE(index.Search({"http"}).empty());
}

}  // namespace
}  // namespace templar::text
