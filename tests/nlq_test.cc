// Unit tests for nlq/: keyword metadata model, heuristic parser, noise.

#include <gtest/gtest.h>

#include "nlq/keyword.h"
#include "nlq/nlq_parser.h"

namespace templar::nlq {
namespace {

const AnnotatedKeyword* FindKeyword(const ParsedNlq& parsed,
                                    const std::string& text) {
  for (const auto& kw : parsed.keywords) {
    if (kw.text == text) return &kw;
  }
  return nullptr;
}

TEST(NlqParserTest, CommandWordSkippedProjectionFound) {
  NlqParser parser;
  ParsedNlq parsed = parser.Parse("Return the papers");
  ASSERT_EQ(parsed.keywords.size(), 1u);
  EXPECT_EQ(parsed.keywords[0].text, "papers");
  EXPECT_EQ(parsed.keywords[0].metadata.context,
            qfg::FragmentContext::kSelect);
}

TEST(NlqParserTest, ComparisonPhraseWithNumber) {
  NlqParser parser;
  ParsedNlq parsed = parser.Parse("Return the papers after 2000");
  const AnnotatedKeyword* kw = FindKeyword(parsed, "after 2000");
  ASSERT_NE(kw, nullptr);
  EXPECT_EQ(kw->metadata.context, qfg::FragmentContext::kWhere);
  EXPECT_EQ(kw->metadata.op, sql::BinaryOp::kGt);
}

TEST(NlqParserTest, MultiWordOperatorPhrases) {
  NlqParser parser;
  ParsedNlq parsed =
      parser.Parse("Show businesses with more than 100 reviews");
  const AnnotatedKeyword* kw = FindKeyword(parsed, "more than 100");
  ASSERT_NE(kw, nullptr);
  EXPECT_EQ(kw->metadata.op, sql::BinaryOp::kGt);
}

TEST(NlqParserTest, AggregationPhrases) {
  NlqParser parser;
  ParsedNlq parsed = parser.Parse("Return the number of papers");
  const AnnotatedKeyword* kw = FindKeyword(parsed, "papers");
  ASSERT_NE(kw, nullptr);
  ASSERT_EQ(kw->metadata.aggs.size(), 1u);
  EXPECT_EQ(kw->metadata.aggs[0], sql::AggFunc::kCount);

  parsed = parser.Parse("Show the average rating");
  kw = FindKeyword(parsed, "rating");
  ASSERT_NE(kw, nullptr);
  ASSERT_EQ(kw->metadata.aggs.size(), 1u);
  EXPECT_EQ(kw->metadata.aggs[0], sql::AggFunc::kAvg);
}

TEST(NlqParserTest, QuotedValueBecomesWhereKeyword) {
  NlqParser parser;
  ParsedNlq parsed = parser.Parse("Return the papers in 'TKDE'");
  const AnnotatedKeyword* kw = FindKeyword(parsed, "TKDE");
  ASSERT_NE(kw, nullptr);
  EXPECT_EQ(kw->metadata.context, qfg::FragmentContext::kWhere);
  EXPECT_EQ(kw->metadata.op, sql::BinaryOp::kEq);
}

TEST(NlqParserTest, CapitalizedRunIsOneEntity) {
  NlqParser parser;
  ParsedNlq parsed = parser.Parse("Return the papers written by John Smith");
  const AnnotatedKeyword* kw = FindKeyword(parsed, "John Smith");
  ASSERT_NE(kw, nullptr);
  EXPECT_EQ(kw->metadata.context, qfg::FragmentContext::kWhere);
}

TEST(NlqParserTest, GroupByMarker) {
  NlqParser parser;
  ParsedNlq parsed =
      parser.Parse("Return the number of papers for each venue");
  const AnnotatedKeyword* kw = FindKeyword(parsed, "venue");
  ASSERT_NE(kw, nullptr);
  EXPECT_TRUE(kw->metadata.group_by);
}

TEST(NlqParserTest, ConsecutiveContentWordsMerge) {
  NlqParser parser;
  ParsedNlq parsed = parser.Parse("Show the restaurant businesses");
  ASSERT_EQ(parsed.keywords.size(), 1u);
  EXPECT_EQ(parsed.keywords[0].text, "restaurant businesses");
}

TEST(NlqParserTest, BareNumberIsEqualityKeyword) {
  NlqParser parser;
  ParsedNlq parsed = parser.Parse("Return the papers from 2005");
  // "from" is a stopword; 2005 stands alone.
  const AnnotatedKeyword* kw = FindKeyword(parsed, "2005");
  ASSERT_NE(kw, nullptr);
  EXPECT_EQ(kw->metadata.op, sql::BinaryOp::kEq);
}

TEST(NlqParserTest, DeterministicAcrossCalls) {
  NlqParser parser;
  const std::string nlq = "Find papers in the Databases domain after 1995";
  EXPECT_EQ(parser.Parse(nlq), parser.Parse(nlq));
}

TEST(CorruptAnnotationsTest, ZeroNoiseIsIdentity) {
  ParsedNlq gold;
  gold.original = "test";
  AnnotatedKeyword kw;
  kw.text = "papers";
  kw.metadata.context = qfg::FragmentContext::kSelect;
  gold.keywords.push_back(kw);
  EXPECT_EQ(CorruptAnnotations(gold, 0.0, 1), gold);
}

TEST(CorruptAnnotationsTest, FullNoiseAltersSomething) {
  ParsedNlq gold;
  gold.original = "Return the papers after 2000";
  AnnotatedKeyword a;
  a.text = "papers";
  a.metadata.context = qfg::FragmentContext::kSelect;
  a.metadata.aggs = {sql::AggFunc::kCount};
  AnnotatedKeyword b;
  b.text = "after 2000";
  b.metadata.context = qfg::FragmentContext::kWhere;
  b.metadata.op = sql::BinaryOp::kGt;
  gold.keywords = {a, b};
  ParsedNlq noisy = CorruptAnnotations(gold, 1.0, 7);
  EXPECT_NE(noisy, gold);
  // Texts are never corrupted, only metadata.
  EXPECT_EQ(noisy.keywords[0].text, "papers");
  EXPECT_EQ(noisy.keywords[1].text, "after 2000");
}

TEST(CorruptAnnotationsTest, DeterministicPerSeed) {
  ParsedNlq gold;
  gold.original = "Return the papers after 2000";
  AnnotatedKeyword a;
  a.text = "papers";
  gold.keywords.push_back(a);
  EXPECT_EQ(CorruptAnnotations(gold, 0.5, 42), CorruptAnnotations(gold, 0.5, 42));
}

TEST(CorruptAnnotationsTest, SeedChangesOutcomeDistribution) {
  ParsedNlq gold;
  gold.original = "q";
  for (int i = 0; i < 20; ++i) {
    AnnotatedKeyword kw;
    kw.text = "kw" + std::to_string(i);
    kw.metadata.op = sql::BinaryOp::kGt;
    kw.metadata.aggs = {sql::AggFunc::kCount};
    gold.keywords.push_back(kw);
  }
  EXPECT_NE(CorruptAnnotations(gold, 0.8, 1), CorruptAnnotations(gold, 0.8, 2));
}

TEST(KeywordTest, ToStringIncludesMetadata) {
  AnnotatedKeyword kw;
  kw.text = "after 2000";
  kw.metadata.context = qfg::FragmentContext::kWhere;
  kw.metadata.op = sql::BinaryOp::kGt;
  std::string s = kw.ToString();
  EXPECT_NE(s.find("after 2000"), std::string::npos);
  EXPECT_NE(s.find("WHERE"), std::string::npos);
  EXPECT_NE(s.find(">"), std::string::npos);
}

}  // namespace
}  // namespace templar::nlq
