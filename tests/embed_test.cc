// Unit tests for embed/: embedding model, lexicon model, cosine.

#include <gtest/gtest.h>

#include "embed/embedding_model.h"
#include "embed/lexicon_model.h"

namespace templar::embed {
namespace {

TEST(CosineTest, BasicProperties) {
  Vector a{1, 0, 0};
  Vector b{0, 1, 0};
  Vector c{2, 0, 0};
  EXPECT_DOUBLE_EQ(Cosine(a, b), 0.0);
  EXPECT_DOUBLE_EQ(Cosine(a, c), 1.0);
  EXPECT_DOUBLE_EQ(Cosine(a, a), 1.0);
  EXPECT_DOUBLE_EQ(Cosine({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Cosine(a, {1, 0}), 0.0);  // Dim mismatch -> 0.
  EXPECT_DOUBLE_EQ(Cosine({0, 0}, {1, 1}), 0.0);  // Zero norm -> 0.
}

TEST(EmbeddingModelTest, IdenticalWordsScoreOne) {
  EmbeddingModel model;
  EXPECT_DOUBLE_EQ(model.WordSimilarity("paper", "paper"), 1.0);
  EXPECT_DOUBLE_EQ(model.WordSimilarity("Paper", "paper"), 1.0);
}

TEST(EmbeddingModelTest, StemEqualityNearOne) {
  EmbeddingModel model;
  EXPECT_DOUBLE_EQ(model.WordSimilarity("papers", "paper"), 0.98);
  EXPECT_DOUBLE_EQ(model.WordSimilarity("reviews", "review"), 0.98);
}

TEST(EmbeddingModelTest, CuratedSynonymsReturned) {
  EmbeddingModel model;
  model.AddSynonym("paper", "journal", 0.64);
  EXPECT_DOUBLE_EQ(model.WordSimilarity("paper", "journal"), 0.64);
  EXPECT_DOUBLE_EQ(model.WordSimilarity("journal", "paper"), 0.64);
}

TEST(EmbeddingModelTest, StemmedLookupCoversInflections) {
  EmbeddingModel model;
  model.AddSynonym("paper", "journal", 0.64);
  // "papers" inherits the entry through the stemmed pair index.
  EXPECT_DOUBLE_EQ(model.WordSimilarity("papers", "journal"), 0.64);
  EXPECT_DOUBLE_EQ(model.WordSimilarity("papers", "journals"), 0.64);
}

TEST(EmbeddingModelTest, FallbackBoundedBelowCurated) {
  EmbeddingModel model;
  // Unrelated word pairs must stay in the squashed fallback band so they
  // never outrank curated entries.
  const char* words[] = {"zebra", "quartz", "melon", "harbor", "title"};
  for (const char* a : words) {
    for (const char* b : words) {
      if (std::string(a) == b) continue;
      double sim = model.WordSimilarity(a, b);
      EXPECT_GE(sim, 0.0);
      EXPECT_LT(sim, 0.5) << a << " vs " << b;
    }
  }
}

TEST(EmbeddingModelTest, FallbackDeterministic) {
  EmbeddingModel a;
  EmbeddingModel b;
  EXPECT_DOUBLE_EQ(a.WordSimilarity("harbor", "title"),
                   b.WordSimilarity("harbor", "title"));
}

TEST(EmbeddingModelTest, DifferentSeedsChangeFallback) {
  EmbeddingModel a(64, 1);
  EmbeddingModel b(64, 2);
  EXPECT_NE(a.WordSimilarity("harbor", "title"),
            b.WordSimilarity("harbor", "title"));
}

TEST(EmbeddingModelTest, MorphologicalOverlapRanksHigher) {
  EmbeddingModel model;
  // Char-n-gram vectors reward shared substrings.
  EXPECT_GT(model.WordSimilarity("citation", "citations"),
            model.WordSimilarity("citation", "zebra"));
}

TEST(EmbeddingModelTest, PhraseSimilarityBestMatchAlignment) {
  EmbeddingModel model;
  model.AddSynonym("paper", "publication", 0.6);
  double sim = model.PhraseSimilarity("papers", "publication title");
  EXPECT_GT(sim, 0.25);
  EXPECT_LT(sim, 0.7);
  // Exact phrase equality.
  EXPECT_DOUBLE_EQ(model.PhraseSimilarity("databases", "Databases"), 1.0);
}

TEST(EmbeddingModelTest, PhraseSimilarityDropsStopwords) {
  EmbeddingModel model;
  EXPECT_DOUBLE_EQ(model.PhraseSimilarity("the databases", "databases"), 1.0);
}

TEST(EmbeddingModelTest, ExtraWordsDiluteSimilarity) {
  EmbeddingModel model;
  model.AddSynonym("paper", "journal", 0.64);
  double name = model.PhraseSimilarity("papers", "journal name");
  double full_name = model.PhraseSimilarity("papers", "journal full name");
  EXPECT_GT(name, full_name);
}

TEST(EmbeddingModelTest, WordVectorDims) {
  EmbeddingModel model(32);
  EXPECT_EQ(model.WordVector("anything").size(), 32u);
}

TEST(LexiconModelTest, SynsetThresholding) {
  EmbeddingModel base;
  base.AddSynonym("paper", "publication", 0.85);  // In synset.
  base.AddSynonym("paper", "journal", 0.64);      // Below threshold.
  LexiconModel lexicon(&base);
  EXPECT_DOUBLE_EQ(lexicon.WordSimilarity("paper", "publication"), 0.85);
  // Sub-threshold entries are invisible: falls to the weak lexical overlap.
  EXPECT_LT(lexicon.WordSimilarity("paper", "journal"), 0.4);
}

TEST(LexiconModelTest, ExactAndStemMatchesSurvive) {
  EmbeddingModel base;
  LexiconModel lexicon(&base);
  EXPECT_DOUBLE_EQ(lexicon.WordSimilarity("name", "name"), 1.0);
  EXPECT_DOUBLE_EQ(lexicon.WordSimilarity("papers", "paper"), 0.98);
}

TEST(LexiconModelTest, PrefixOverlapFallbackIsWeak) {
  EmbeddingModel base;
  LexiconModel lexicon(&base);
  // >= 50% shared prefix earns a weak score; less earns nothing.
  // ("organization"/"organizer" would stem-match; pick stem-distinct words.)
  double sim = lexicon.WordSimilarity("database", "dataset");
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 0.31);
  EXPECT_DOUBLE_EQ(lexicon.WordSimilarity("citation", "citing"), 0.0);
  EXPECT_DOUBLE_EQ(lexicon.WordSimilarity("zebra", "title"), 0.0);
}

TEST(LexiconModelTest, PhraseSimilarityUsesThresholdedWords) {
  EmbeddingModel base;
  base.AddSynonym("paper", "publication", 0.85);
  LexiconModel lexicon(&base);
  double via_synset = lexicon.PhraseSimilarity("papers", "publication title");
  double no_synset = lexicon.PhraseSimilarity("papers", "journal name");
  EXPECT_GT(via_synset, no_synset);
}

}  // namespace
}  // namespace templar::embed
