// Concurrency stress test for TemplarService: N client threads issue mixed
// MapKeywords / InferJoins requests while a writer thread appends new log
// queries and another thread snapshots stats and checkpoints the QFG.
//
// Built as its own binary so the dedicated TSan CMake config
// (-DTEMPLAR_SANITIZE=thread) can exercise exactly this code; it also runs
// in the normal test suite as a (weaker) functional check.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/templar_service.h"
#include "test_fixtures.h"

namespace templar::service {
namespace {

nlq::ParsedNlq MakeNlq(const std::string& select_word,
                       const std::string& where_value) {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the " + select_word + " for " + where_value;
  nlq::AnnotatedKeyword select;
  select.text = select_word;
  select.metadata.context = qfg::FragmentContext::kSelect;
  parsed.keywords.push_back(select);
  if (!where_value.empty()) {
    nlq::AnnotatedKeyword value;
    value.text = where_value;
    value.metadata.context = qfg::FragmentContext::kWhere;
    value.metadata.op = sql::BinaryOp::kEq;
    parsed.keywords.push_back(value);
  }
  return parsed;
}

TEST(ServiceStressTest, ConcurrentRequestsWithOnlineIngestion) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  options.map_cache_capacity = 32;   // Small on purpose: force evictions.
  options.join_cache_capacity = 32;
  options.cache_shards = 4;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  TemplarService& service = **built;

  constexpr int kReaders = 4;
  constexpr int kIterations = 60;
  constexpr int kAppendBatches = 15;

  const std::vector<nlq::ParsedNlq> nlqs = {
      MakeNlq("papers", "Databases"), MakeNlq("papers", "indexing"),
      MakeNlq("authors", "ICDE"), MakeNlq("journals", "")};
  const std::vector<std::vector<std::string>> bags = {
      {"publication", "domain"},
      {"author", "publication"},
      {"journal", "publication"},
      {"author", "organization"}};

  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  auto reader = [&](int seed) {
    for (int i = 0; i < kIterations; ++i) {
      int pick = (seed + i) % static_cast<int>(nlqs.size());
      if ((seed + i) % 2 == 0) {
        auto result = service.MapKeywords(nlqs[pick]);
        if (!result.ok() || result->empty()) failures.fetch_add(1);
      } else {
        auto result = service.InferJoins(bags[pick]);
        if (!result.ok() || result->empty()) failures.fetch_add(1);
      }
      // Mix in the pooled APIs so pool + caller threads contend too.
      if (i % 16 == 0) {
        auto batch = service.MapKeywordsBatch({nlqs[pick]});
        if (batch.size() != 1 || !batch[0].ok()) failures.fetch_add(1);
      }
    }
  };

  auto writer = [&] {
    for (int i = 0; i < kAppendBatches; ++i) {
      AppendOutcome outcome = service.AppendLogQueries(
          {"SELECT a.name FROM author a WHERE a.aid = " + std::to_string(i),
           "SELECT p.title FROM publication p WHERE p.year > " +
               std::to_string(1990 + i),
           "not sql at all"});
      if (outcome.appended != 2 || outcome.skipped != 1) failures.fetch_add(1);
      std::this_thread::yield();
    }
    writer_done.store(true);
  };

  auto observer = [&] {
    const std::string path =
        ::testing::TempDir() + "/stress_snapshot.qfg";
    while (!writer_done.load()) {
      ServiceStats stats = service.Stats();
      if (stats.map_requests > 0 && stats.map_cache.capacity == 0) {
        failures.fetch_add(1);
      }
      if (!service.SaveSnapshot(path).ok()) failures.fetch_add(1);
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  threads.emplace_back(observer);
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader, r);
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.epoch, static_cast<uint64_t>(kAppendBatches));
  EXPECT_EQ(stats.appended_queries, static_cast<uint64_t>(2 * kAppendBatches));
  EXPECT_GE(stats.map_requests, static_cast<uint64_t>(kReaders));
  // Epoch churn plus tiny caches: both stale drops and plain misses happen,
  // yet hits must still occur between append batches.
  EXPECT_GT(stats.map_cache.hits + stats.join_cache.hits, 0u);

  // The service still answers correctly after the storm.
  auto final_result = service.MapKeywords(MakeNlq("papers", "Databases"));
  ASSERT_TRUE(final_result.ok());
  EXPECT_FALSE(final_result->empty());
}

TEST(ServiceStressTest, ThunderingHerdCoalescesToOneComputation) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  TemplarService& service = **built;

  constexpr int kClients = 8;
  const nlq::ParsedNlq nlq = MakeNlq("papers", "Databases");

  // Spin barrier: all clients issue the same cold-key request in the same
  // instant, so every one of them misses the cache while the first is still
  // computing — the single-flight table must fan one computation out to all.
  std::atomic<int> ready{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      auto result = service.MapKeywords(nlq);
      if (!result.ok() || result->empty()) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.map_requests, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.map_computations, 1u)
      << "duplicate concurrent requests must share one computation";
  // Everyone else was served without computing: coalesced onto the flight,
  // or (having arrived a hair late) from the cache the flight filled.
  EXPECT_EQ(stats.map_coalesced_hits + stats.map_cache.hits,
            static_cast<uint64_t>(kClients - 1));
  // All clients received the same shared result object semantics: a second,
  // sequential request is now a plain cache hit.
  ASSERT_TRUE(service.MapKeywords(nlq).ok());
  EXPECT_EQ(service.Stats().map_computations, 1u);
}

TEST(ServiceStressTest, AppendsRetainEntriesForUntouchedFragments) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  TemplarService& service = **built;

  constexpr int kReaders = 4;
  constexpr int kIterations = 50;
  constexpr int kAppendBatches = 12;

  // The papers/Databases footprint never names an organization fragment, so
  // a pure-organization ingestion stream must leave its cache entry warm
  // through every append.
  const nlq::ParsedNlq nlq = MakeNlq("papers", "Databases");
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < kAppendBatches; ++i) {
      AppendOutcome outcome = service.AppendLogQueries(
          {"SELECT o.name FROM organization o WHERE o.oid = " +
           std::to_string(i)});
      if (outcome.appended != 1) failures.fetch_add(1);
      std::this_thread::yield();
    }
  });
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        auto result = service.MapKeywords(nlq);
        if (!result.ok() || result->empty()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.epoch, static_cast<uint64_t>(kAppendBatches));
  EXPECT_EQ(stats.map_cache.invalidated, 0u)
      << "organization appends must not evict the papers ranking";
  EXPECT_EQ(stats.map_cache.stale_drops, 0u);
  EXPECT_GT(stats.map_cache.hits, 0u);
  // The entry can be recomputed at most when an append races a fill (the
  // stale-put guard rejects the racing value); it must never be recomputed
  // because of an invalidation.
  EXPECT_LE(stats.map_computations,
            static_cast<uint64_t>(kAppendBatches + 1));
}

TEST(ServiceStressTest, DestructionWithInFlightAsyncWork) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok());
  std::vector<std::future<Result<std::vector<core::Configuration>>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back((*built)->MapKeywordsAsync(MakeNlq("papers", "Databases")));
  }
  // Destroying the service drains queued work; every future is satisfied.
  built->reset();
  for (auto& f : futures) {
    EXPECT_TRUE(f.valid());
    (void)f.get();
  }
}

}  // namespace
}  // namespace templar::service
