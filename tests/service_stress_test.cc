// Concurrency stress tests for the serving layer: N client threads issue
// mixed MapKeywords / InferJoins requests while a writer thread appends new
// log queries and another thread snapshots stats and checkpoints the QFG —
// against a standalone TemplarService and against a multi-tenant
// ServiceHost (concurrent map/join/append/register/retire across tenants,
// including a retire-while-in-flight race regression test). The typed
// envelope's control races run here too: cancel-while-leader-computing with
// coalesced followers, deadline storms expiring mid-pipeline under
// ingestion, and cancel-while-queued behind a saturated shared worker.
//
// Built as its own binary so the dedicated TSan CMake config
// (-DTEMPLAR_SANITIZE=thread) can exercise exactly this code; it also runs
// in the normal test suite as a (weaker) functional check, and in the
// ASan/UBSan CI jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/templar_service.h"
#include "service/tenant_registry.h"
#include "test_fixtures.h"

namespace templar::service {
namespace {

// Spin-waits (with a deadline) until `predicate` holds; returns whether it
// did. Used to cross thread-scheduling boundaries deterministically.
template <typename Fn>
bool EventuallyTrue(Fn&& predicate,
                    std::chrono::milliseconds deadline =
                        std::chrono::milliseconds(5000)) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::yield();
  }
  return true;
}

nlq::ParsedNlq MakeNlq(const std::string& select_word,
                       const std::string& where_value) {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the " + select_word + " for " + where_value;
  nlq::AnnotatedKeyword select;
  select.text = select_word;
  select.metadata.context = qfg::FragmentContext::kSelect;
  parsed.keywords.push_back(select);
  if (!where_value.empty()) {
    nlq::AnnotatedKeyword value;
    value.text = where_value;
    value.metadata.context = qfg::FragmentContext::kWhere;
    value.metadata.op = sql::BinaryOp::kEq;
    parsed.keywords.push_back(value);
  }
  return parsed;
}

TEST(ServiceStressTest, ConcurrentRequestsWithOnlineIngestion) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  options.map_cache_capacity = 32;   // Small on purpose: force evictions.
  options.join_cache_capacity = 32;
  options.cache_shards = 4;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  TemplarService& service = **built;

  constexpr int kReaders = 4;
  constexpr int kIterations = 60;
  constexpr int kAppendBatches = 15;

  const std::vector<nlq::ParsedNlq> nlqs = {
      MakeNlq("papers", "Databases"), MakeNlq("papers", "indexing"),
      MakeNlq("authors", "ICDE"), MakeNlq("journals", "")};
  const std::vector<std::vector<std::string>> bags = {
      {"publication", "domain"},
      {"author", "publication"},
      {"journal", "publication"},
      {"author", "organization"}};

  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  auto reader = [&](int seed) {
    for (int i = 0; i < kIterations; ++i) {
      int pick = (seed + i) % static_cast<int>(nlqs.size());
      if ((seed + i) % 2 == 0) {
        auto result = service.MapKeywords(nlqs[pick]);
        if (!result.ok() || result->empty()) failures.fetch_add(1);
      } else {
        auto result = service.InferJoins(bags[pick]);
        if (!result.ok() || result->empty()) failures.fetch_add(1);
      }
      // Mix in the pooled APIs so pool + caller threads contend too.
      if (i % 16 == 0) {
        auto batch = service.MapKeywordsBatch({nlqs[pick]});
        if (batch.size() != 1 || !batch[0].ok()) failures.fetch_add(1);
      }
    }
  };

  auto writer = [&] {
    for (int i = 0; i < kAppendBatches; ++i) {
      auto outcome = service.AppendLogQueries(
          {"SELECT a.name FROM author a WHERE a.aid = " + std::to_string(i),
           "SELECT p.title FROM publication p WHERE p.year > " +
               std::to_string(1990 + i),
           "not sql at all"});
      if (!outcome.ok() || outcome->appended != 2 || outcome->skipped != 1) {
        failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
    writer_done.store(true);
  };

  auto observer = [&] {
    const std::string path =
        ::testing::TempDir() + "/stress_snapshot.qfg";
    while (!writer_done.load()) {
      ServiceStats stats = service.Stats();
      if (stats.map_requests > 0 && stats.map_cache.capacity == 0) {
        failures.fetch_add(1);
      }
      if (!service.SaveSnapshot(path).ok()) failures.fetch_add(1);
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  threads.emplace_back(observer);
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader, r);
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.epoch, static_cast<uint64_t>(kAppendBatches));
  EXPECT_EQ(stats.appended_queries, static_cast<uint64_t>(2 * kAppendBatches));
  EXPECT_GE(stats.map_requests, static_cast<uint64_t>(kReaders));
  // Epoch churn plus tiny caches: both stale drops and plain misses happen,
  // yet hits must still occur between append batches.
  EXPECT_GT(stats.map_cache.hits + stats.join_cache.hits, 0u);

  // The service still answers correctly after the storm.
  auto final_result = service.MapKeywords(MakeNlq("papers", "Databases"));
  ASSERT_TRUE(final_result.ok());
  EXPECT_FALSE(final_result->empty());
}

TEST(ServiceStressTest, ThunderingHerdCoalescesToOneComputation) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  TemplarService& service = **built;

  constexpr int kClients = 8;
  const nlq::ParsedNlq nlq = MakeNlq("papers", "Databases");

  // Spin barrier: all clients issue the same cold-key request in the same
  // instant, so every one of them misses the cache while the first is still
  // computing — the single-flight table must fan one computation out to all.
  std::atomic<int> ready{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      auto result = service.MapKeywords(nlq);
      if (!result.ok() || result->empty()) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.map_requests, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.map_computations, 1u)
      << "duplicate concurrent requests must share one computation";
  // Everyone else was served without computing: coalesced onto the flight,
  // or (having arrived a hair late) from the cache the flight filled.
  EXPECT_EQ(stats.map_coalesced_hits + stats.map_cache.hits,
            static_cast<uint64_t>(kClients - 1));
  // All clients received the same shared result object semantics: a second,
  // sequential request is now a plain cache hit.
  ASSERT_TRUE(service.MapKeywords(nlq).ok());
  EXPECT_EQ(service.Stats().map_computations, 1u);
}

TEST(ServiceStressTest, AppendsRetainEntriesForUntouchedFragments) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  TemplarService& service = **built;

  constexpr int kReaders = 4;
  constexpr int kIterations = 50;
  constexpr int kAppendBatches = 12;

  // The papers/Databases footprint never names an organization fragment, so
  // a pure-organization ingestion stream must leave its cache entry warm
  // through every append.
  const nlq::ParsedNlq nlq = MakeNlq("papers", "Databases");
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < kAppendBatches; ++i) {
      auto outcome = service.AppendLogQueries(
          {"SELECT o.name FROM organization o WHERE o.oid = " +
           std::to_string(i)});
      if (!outcome.ok() || outcome->appended != 1) failures.fetch_add(1);
      std::this_thread::yield();
    }
  });
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        auto result = service.MapKeywords(nlq);
        if (!result.ok() || result->empty()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.epoch, static_cast<uint64_t>(kAppendBatches));
  EXPECT_EQ(stats.map_cache.invalidated, 0u)
      << "organization appends must not evict the papers ranking";
  EXPECT_EQ(stats.map_cache.stale_drops, 0u);
  EXPECT_GT(stats.map_cache.hits, 0u);
  // The entry can be recomputed at most when an append races a fill (the
  // stale-put guard rejects the racing value); it must never be recomputed
  // because of an invalidation.
  EXPECT_LE(stats.map_computations,
            static_cast<uint64_t>(kAppendBatches + 1));
}

// ---------------------------------------------------------------------------
// Multi-tenant host under concurrent map/join/append/register/retire.

TEST(ServiceStressTest, MultiTenantMixedOpsWithRegistryChurn) {
  constexpr int kTenants = 3;
  constexpr int kIterations = 40;
  constexpr int kChurnRounds = 8;

  std::vector<std::unique_ptr<db::Database>> dbs;
  std::vector<std::unique_ptr<embed::EmbeddingModel>> models;
  for (int t = 0; t <= kTenants; ++t) {  // One extra pair for the churn slot.
    dbs.push_back(testing::MakeMiniAcademicDb());
    models.push_back(testing::MakeMiniLexicon());
  }

  HostOptions options;
  options.worker_threads = 3;
  options.map_cache_budget = 96;
  options.join_cache_budget = 96;
  options.cache_shards = 4;
  options.default_admission = AdmissionOptions{/*max_inflight=*/16,
                                               /*max_queued=*/128};
  ServiceHost host(options);

  std::vector<TenantHandle> handles;
  for (int t = 0; t < kTenants; ++t) {
    std::string id = "tenant" + std::to_string(t);
    ASSERT_TRUE(host.RegisterTenant(id, dbs[t].get(), models[t].get(),
                                    testing::MakeMiniLog())
                    .ok());
    auto handle = host.Tenant(id);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }

  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  // Benign-status helper: churn makes Overloaded/NotFound legitimate; any
  // other failure (or a crash/sanitizer report) is a real bug.
  auto acceptable = [](const Status& status) {
    return status.ok() || status.IsOverloaded() || status.IsNotFound();
  };

  std::vector<std::thread> threads;
  // Per-tenant readers mixing sync, async, and batched traffic.
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      const std::vector<std::string> bags[] = {
          {"publication", "domain"}, {"author", "publication"}};
      for (int i = 0; i < kIterations; ++i) {
        if (i % 2 == 0) {
          auto result = handles[t].MapKeywords(MakeNlq("papers", "Databases"));
          if (!acceptable(result.status())) failures.fetch_add(1);
        } else {
          auto result = handles[t].InferJoins(bags[i % 2]);
          if (!acceptable(result.status())) failures.fetch_add(1);
        }
        if (i % 8 == 0) {
          auto future =
              handles[t].MapKeywordsAsync(MakeNlq("authors", "ICDE"));
          if (!acceptable(future.get().status())) failures.fetch_add(1);
        }
        if (i % 16 == 0) {
          auto batch = handles[t].InferJoinsBatch({bags[0], bags[1]});
          if (batch.size() != 2) failures.fetch_add(1);
          for (const auto& r : batch) {
            if (!acceptable(r.status())) failures.fetch_add(1);
          }
        }
      }
    });
  }
  // Per-tenant appenders: each tenant ingests a distinct number of batches
  // so the final epochs prove appends stayed tenant-scoped.
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5 + t; ++i) {
        auto outcome = handles[t].AppendLogQueries(
            {"SELECT a.name FROM author a WHERE a.aid = " +
             std::to_string(i)});
        if (!outcome.ok() || outcome->appended != 1) failures.fetch_add(1);
        std::this_thread::yield();
      }
    });
  }
  // Registry churn: register/serve/retire an ephemeral tenant in a loop
  // while everything above keeps running.
  threads.emplace_back([&] {
    for (int round = 0; round < kChurnRounds; ++round) {
      Status reg = host.RegisterTenant("ephemeral", dbs[kTenants].get(),
                                       models[kTenants].get(),
                                       testing::MakeMiniLog());
      if (!reg.ok()) {
        failures.fetch_add(1);
        continue;
      }
      auto handle = host.Tenant("ephemeral");
      if (!handle.ok()) {
        failures.fetch_add(1);
      } else {
        auto future = handle->MapKeywordsAsync(MakeNlq("papers", "indexing"));
        auto sync = handle->InferJoins({"journal", "publication"});
        if (!acceptable(sync.status())) failures.fetch_add(1);
        if (!acceptable(future.get().status())) failures.fetch_add(1);
      }
      if (!host.RetireTenant("ephemeral").ok()) failures.fetch_add(1);
    }
  });
  // Observer: host-wide stats (tenant list changes under it) + snapshots.
  threads.emplace_back([&] {
    const std::string path = ::testing::TempDir() + "/mt_stress_snapshot.qfg";
    while (!done.load()) {
      HostStats stats = host.Stats();
      if (stats.worker_threads != 3) failures.fetch_add(1);
      for (const auto& tenant : stats.tenants) {
        if (tenant.tenant_id.empty()) failures.fetch_add(1);
      }
      if (!handles[0].SaveSnapshot(path).ok()) failures.fetch_add(1);
      std::this_thread::yield();
    }
  });

  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  done.store(true);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(host.tenant_count(), static_cast<size_t>(kTenants));

  // A future can become ready a hair before the dispatcher releases its
  // in-flight slot; wait for the admission ledger to quiesce.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (int t = 0; t < kTenants; ++t) {
    while (std::chrono::steady_clock::now() < deadline) {
      AdmissionStats a = handles[t].Stats().admission;
      if (a.completed == a.admitted && a.inflight == 0) break;
      std::this_thread::yield();
    }
  }

  for (int t = 0; t < kTenants; ++t) {
    // Appends stayed tenant-scoped: each epoch counts only its own batches.
    EXPECT_EQ(handles[t].epoch(), static_cast<uint64_t>(5 + t)) << t;
    ServiceStats stats = handles[t].Stats();
    EXPECT_EQ(stats.admission.admitted + stats.admission.rejected,
              stats.admission.submitted)
        << t;
    EXPECT_EQ(stats.admission.completed, stats.admission.admitted) << t;
    // Every tenant still answers after the storm.
    EXPECT_TRUE(handles[t].MapKeywords(MakeNlq("papers", "Databases")).ok())
        << t;
  }
}

TEST(ServiceStressTest, RetireWhileRequestsInFlight) {
  // Regression for the retire race: a tenant retired while async requests
  // are queued/executing must satisfy every future (ok or a typed error —
  // never a crash, a use-after-free, or a broken promise), and its id must
  // be immediately reusable.
  auto db = testing::MakeMiniAcademicDb();
  auto db2 = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();

  HostOptions options;
  options.worker_threads = 2;
  ServiceHost host(options);

  constexpr int kRounds = 6;
  constexpr int kBurst = 16;
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(host.RegisterTenant("victim", db.get(), model.get(),
                                    testing::MakeMiniLog())
                    .ok());
    auto handle = host.Tenant("victim");
    ASSERT_TRUE(handle.ok());

    std::vector<std::future<Result<std::vector<core::Configuration>>>>
        futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      futures.push_back(handle->MapKeywordsAsync(
          MakeNlq("papers", i % 2 == 0 ? "Databases" : "indexing")));
    }
    // Retire with the burst still in the queue/worker pool.
    ASSERT_TRUE(host.RetireTenant("victim").ok());

    int ok_count = 0;
    for (auto& future : futures) {
      ASSERT_TRUE(future.valid());
      auto result = future.get();  // Must not hang or throw.
      if (result.ok()) {
        ++ok_count;
        EXPECT_FALSE(result->empty());
      } else {
        EXPECT_TRUE(result.status().IsNotFound() ||
                    result.status().IsOverloaded())
            << result.status().ToString();
      }
    }
    // Sync traffic through the stale handle fails typed, not undefined.
    EXPECT_TRUE(handle->MapKeywords(MakeNlq("papers", "Databases"))
                    .status()
                    .IsNotFound());
    (void)ok_count;  // Any split between ok and NotFound is legal.

    // The id is reusable right away, with fresh per-tenant state.
    ASSERT_TRUE(host.RegisterTenant("victim", db2.get(), model.get(),
                                    testing::MakeMiniLog())
                    .ok());
    auto reborn = host.Tenant("victim");
    ASSERT_TRUE(reborn.ok());
    EXPECT_TRUE(reborn->MapKeywords(MakeNlq("papers", "Databases")).ok());
    ASSERT_TRUE(host.RetireTenant("victim").ok());
  }
}

TEST(ServiceStressTest, DestructionWithInFlightAsyncWork) {
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok());
  std::vector<std::future<Result<std::vector<core::Configuration>>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back((*built)->MapKeywordsAsync(MakeNlq("papers", "Databases")));
  }
  // Destroying the service drains queued work; every future is satisfied.
  built->reset();
  for (auto& f : futures) {
    EXPECT_TRUE(f.valid());
    (void)f.get();
  }
}

// ---------------------------------------------------------------------------
// Deadline / cancellation races (the typed-envelope controls)

TEST(ServiceStressTest, CancelledLeaderDrainsCoalescedFollowersSafely) {
  // The invariant under test: a single-flight leader whose OWN token is
  // cancelled mid-computation must never hand kCancelled to followers that
  // coalesced onto its flight — they retry and compute for themselves.
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  TemplarService& service = **built;

  constexpr int kRounds = 12;
  constexpr int kFollowers = 4;
  std::atomic<int> bad_follower_status{0};
  std::atomic<int> bad_leader_status{0};

  const std::vector<nlq::ParsedNlq> nlqs = {
      MakeNlq("papers", "Databases"), MakeNlq("papers", "indexing"),
      MakeNlq("authors", "ICDE"), MakeNlq("journals", "")};
  for (int round = 0; round < kRounds; ++round) {
    const nlq::ParsedNlq& nlq = nlqs[round % nlqs.size()];
    CancelToken token = CancelToken::Cancellable();
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;

    // The would-be leader: armed token, cancelled concurrently below.
    threads.emplace_back([&] {
      QueryRequest request = QueryRequest::Translation(nlq);
      request.cancel = token;
      ready.fetch_add(1);
      while (ready.load() < kFollowers + 2) std::this_thread::yield();
      auto result = service.Translate(request);
      // Only ok or its own cancellation are acceptable.
      if (!result.ok() && !result.status().IsCancelled()) {
        bad_leader_status.fetch_add(1);
      }
    });
    // Followers with inert tokens: must NEVER observe a control abort.
    for (int f = 0; f < kFollowers; ++f) {
      threads.emplace_back([&] {
        QueryRequest request = QueryRequest::Translation(nlq);
        ready.fetch_add(1);
        while (ready.load() < kFollowers + 2) std::this_thread::yield();
        auto result = service.Translate(request);
        if (!result.ok()) bad_follower_status.fetch_add(1);
      });
    }
    // The canceller: fires while the flight is (likely) in progress.
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kFollowers + 2) std::this_thread::yield();
      token.RequestCancel();
    });
    for (auto& t : threads) t.join();
    // Re-cool the caches so the next round with the same NLQ races a real
    // flight again: these appends touch the candidate fragments of every
    // workload NLQ (entries that nonetheless survive just make a round a
    // plain cache hit, which weakens nothing).
    (void)service.AppendLogQueries(
        {"SELECT p.title FROM publication p WHERE p.year > " +
             std::to_string(1990 + round),
         "SELECT a.name FROM author a", "SELECT j.name FROM journal j"});
  }
  EXPECT_EQ(bad_follower_status.load(), 0)
      << "a follower inherited its leader's cancellation";
  EXPECT_EQ(bad_leader_status.load(), 0);

  // The service still answers, and the counters reconcile: every request
  // was served (hit / coalesced / computed) or control-aborted — a leader
  // aborted mid-compute counts under both a computation and an abort, so
  // the sum bounds the request count from above by at most the aborts.
  ServiceStats stats = service.Stats();
  const uint64_t served = stats.translate_cache.hits +
                          stats.translate_coalesced_hits +
                          stats.translate_computations;
  const uint64_t aborts = stats.cancelled + stats.deadline_exceeded;
  EXPECT_LE(stats.translate_requests, served + aborts);
  EXPECT_GE(stats.translate_requests, served);
  EXPECT_TRUE(
      service.Translate(QueryRequest::Translation(MakeNlq("papers", "Databases")))
          .ok());
}

TEST(ServiceStressTest, DeadlineStormUnderConcurrentIngestion) {
  // Tight randomized deadlines + armed tokens + online appends, all racing:
  // every outcome must be ok or a typed control abort, the counters must
  // reconcile at quiescence, and the service must serve normally afterwards.
  // (Run under TSan via -DTEMPLAR_SANITIZE=thread; mid-stage expiry lands in
  // the pipeline's boundary probes at unpredictable points.)
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  ServiceOptions options;
  options.worker_threads = 2;
  options.translate_cache_capacity = 16;  // Churn: force real computes.
  auto built = TemplarService::Create(db.get(), model.get(),
                                      testing::MakeMiniLog(), options);
  ASSERT_TRUE(built.ok());
  TemplarService& service = **built;

  constexpr int kClients = 4;
  constexpr int kIterations = 40;
  std::atomic<int> unexpected{0};
  std::atomic<bool> writer_done{false};

  const std::vector<nlq::ParsedNlq> nlqs = {
      MakeNlq("papers", "Databases"), MakeNlq("papers", "indexing"),
      MakeNlq("authors", "ICDE"), MakeNlq("journals", "")};
  auto client = [&](int seed) {
    for (int i = 0; i < kIterations; ++i) {
      QueryRequest request =
          QueryRequest::Translation(nlqs[(seed * 7 + i) % nlqs.size()]);
      // Mix: bare, tight deadline, armed token cancelled by a sibling
      // iteration pattern, both.
      const int mode = (seed + i) % 4;
      CancelToken token;
      if (mode == 1 || mode == 3) {
        request.WithTimeout(std::chrono::microseconds(100 * ((i % 30) + 1)));
      }
      if (mode == 2 || mode == 3) {
        token = CancelToken::Cancellable();
        request.cancel = token;
      }
      if (mode == 2 && i % 3 == 0) token.RequestCancel();  // Cancel-before.
      auto result = service.Translate(request);
      if (mode == 2 && i % 3 == 1) token.RequestCancel();  // Cancel-after: no-op.
      if (!result.ok() && !result.status().IsDeadlineExceeded() &&
          !result.status().IsCancelled()) {
        unexpected.fetch_add(1);
      }
    }
  };
  auto writer = [&] {
    for (int i = 0; i < 10; ++i) {
      (void)service.AppendLogQueries(
          {"SELECT p.title FROM publication p WHERE p.year > " +
           std::to_string(1990 + i)});
      std::this_thread::yield();
    }
    writer_done.store(true);
  };
  auto observer = [&] {
    while (!writer_done.load()) {
      (void)service.Stats().ToString();
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  threads.emplace_back(observer);
  for (int c = 0; c < kClients; ++c) threads.emplace_back(client, c);
  for (auto& t : threads) t.join();
  EXPECT_EQ(unexpected.load(), 0);

  ServiceStats stats = service.Stats();
  const uint64_t served = stats.translate_cache.hits +
                          stats.translate_coalesced_hits +
                          stats.translate_computations;
  const uint64_t aborts = stats.cancelled + stats.deadline_exceeded;
  EXPECT_LE(stats.translate_requests, served + aborts);
  EXPECT_GE(stats.translate_requests, served);
  auto after =
      service.Translate(QueryRequest::Translation(MakeNlq("papers", "Databases")));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->translations.empty());
}

TEST(ServiceStressTest, CancelWhileQueuedInHostRejectsWithoutPipelineWork) {
  // A single shared worker and a burst of cold async translates: later
  // requests sit in the fair-share queue while earlier ones compute.
  // Cancelling every token right after submission makes most of them hit
  // the queue-dispatch probe. Any individual request may legitimately have
  // completed first — the invariants are typed statuses only, admission
  // ledger reconciliation, and no worker running a cancelled pipeline.
  auto db = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();
  HostOptions options;
  options.worker_threads = 1;
  ServiceHost host(options);
  ASSERT_TRUE(
      host.RegisterTenant("t", db.get(), model.get(), testing::MakeMiniLog())
          .ok());
  auto handle = host.Tenant("t");
  ASSERT_TRUE(handle.ok());

  constexpr int kBurst = 12;
  const std::vector<nlq::ParsedNlq> nlqs = {
      MakeNlq("papers", "Databases"), MakeNlq("papers", "indexing"),
      MakeNlq("authors", "ICDE"), MakeNlq("journals", "")};
  std::vector<CancelToken> tokens;
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest request = QueryRequest::Translation(nlqs[i % nlqs.size()]);
    tokens.push_back(CancelToken::Cancellable());
    request.cancel = tokens.back();
    futures.push_back(handle->TranslateAsync(std::move(request)));
  }
  for (const auto& token : tokens) token.RequestCancel();

  int cancelled = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok()) continue;
    ASSERT_TRUE(result.status().IsCancelled() ||
                result.status().IsOverloaded())
        << result.status().ToString();
    if (result.status().IsCancelled()) ++cancelled;
  }
  // With 12 cold computes behind 1 worker and an immediate cancel sweep,
  // at least one request is practically guaranteed to still be queued; the
  // assertion is deliberately weak (>= 0) to stay deterministic, but the
  // path is exercised every run.
  EXPECT_GE(cancelled, 0);

  ASSERT_TRUE(EventuallyTrue([&] {
    AdmissionStats admission = handle->Stats().admission;
    return admission.completed == admission.admitted;
  }));
  AdmissionStats admission = handle->Stats().admission;
  EXPECT_EQ(admission.submitted, admission.admitted + admission.rejected);
  // The tenant still serves after the cancelled burst.
  EXPECT_TRUE(
      handle->Translate(QueryRequest::Translation(MakeNlq("papers", "Databases")))
          .ok());
}

// ---------------------------------------------------------------------------
// Telemetry under concurrency: recorders vs readers, exporter vs traffic,
// and the adaptive controller ticking against live serving.

TEST(ServiceStressTest, MetricsRecordersVersusReaders) {
  // Raw primitives first: many threads hammering one WindowedCounter and one
  // LatencyHistogram while readers snapshot continuously. The assertions are
  // conservation laws (exact totals once writers join); the real payload is
  // the data-race coverage under -DTEMPLAR_SANITIZE=thread.
  constexpr int kWriters = 4;
  constexpr int kIterations = 2000;
  TenantMetrics metrics;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIterations; ++i) {
        metrics.Add(Counter::kRequests, 1);
        metrics.Record(LatencyPoint::kEndToEnd,
                       static_cast<uint64_t>((w * kIterations + i) % 5000));
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      // A racy snapshot must still be internally consistent: the reconciled
      // count equals the bucket total, and windows never exceed lifetime.
      HistogramSnapshot snap =
          metrics.histogram(LatencyPoint::kEndToEnd).Snapshot();
      uint64_t bucket_total = 0;
      for (uint64_t b : snap.buckets) bucket_total += b;
      if (snap.count != bucket_total) failures.fetch_add(1);
      if (snap.count > 0) (void)snap.ValueAtPercentile(0.99);
      WindowedCounter& counter = metrics.counter(Counter::kRequests);
      if (counter.Sum(Window::kOneHour, MetricClock::now()) >
          counter.Total()) {
        failures.fetch_add(1);
      }
      (void)metrics.Collect();
      std::this_thread::yield();
    }
  });
  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(metrics.counter(Counter::kRequests).Total(),
            static_cast<uint64_t>(kWriters * kIterations));
  EXPECT_EQ(metrics.histogram(LatencyPoint::kEndToEnd).Snapshot().count,
            static_cast<uint64_t>(kWriters * kIterations));
}

TEST(ServiceStressTest, ExporterAndAdaptiveControllerUnderLiveTraffic) {
  // End-to-end: tenants serve mixed traffic while one thread renders the
  // Prometheus exposition in a loop and the background controller (period
  // set) repartitions caches and tunes admission against the same windows
  // the recorders are writing. Registry churn forces attach/detach races
  // with CollectAll.
  auto db_a = testing::MakeMiniAcademicDb();
  auto db_b = testing::MakeMiniAcademicDb();
  auto db_c = testing::MakeMiniAcademicDb();
  auto model = testing::MakeMiniLexicon();

  HostOptions options;
  options.worker_threads = 2;
  options.map_cache_budget = 64;
  options.cache_shards = 1;
  options.adaptive.period = std::chrono::milliseconds(2);
  ServiceHost host(options);
  ASSERT_TRUE(host.RegisterTenant("a", db_a.get(), model.get(),
                                  testing::MakeMiniLog())
                  .ok());
  ASSERT_TRUE(host.RegisterTenant("b", db_b.get(), model.get(),
                                  testing::MakeMiniLog())
                  .ok());

  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  auto acceptable = [](const Status& status) {
    return status.ok() || status.IsOverloaded() || status.IsNotFound();
  };

  std::vector<std::thread> threads;
  for (const char* id : {"a", "b"}) {
    threads.emplace_back([&, id] {
      auto handle = host.Tenant(id);
      if (!handle.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 60; ++i) {
        if (i % 3 == 0) {
          auto future = handle->MapKeywordsAsync(MakeNlq("papers", "indexing"));
          if (!acceptable(future.get().status())) failures.fetch_add(1);
        } else {
          auto result = handle->MapKeywords(MakeNlq("papers", "Databases"));
          if (!acceptable(result.status())) failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {  // Churn: attach/detach race CollectAll.
    for (int round = 0; round < 6; ++round) {
      if (!host.RegisterTenant("ephemeral", db_c.get(), model.get(),
                               testing::MakeMiniLog())
               .ok()) {
        failures.fetch_add(1);
        continue;
      }
      auto handle = host.Tenant("ephemeral");
      if (handle.ok()) (void)handle->MapKeywords(MakeNlq("journals", ""));
      if (!host.RetireTenant("ephemeral").ok()) failures.fetch_add(1);
    }
  });
  threads.emplace_back([&] {  // Exporter reader.
    while (!done.load()) {
      const std::string text = host.RenderMetrics();
      if (text.find("templar_requests_total") == std::string::npos) {
        failures.fetch_add(1);
      }
      (void)host.Stats().ToString();
      std::this_thread::yield();
    }
  });

  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  done.store(true);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  // The windows recorded every request the handles issued.
  uint64_t total_requests = 0;
  for (const char* id : {"a", "b"}) {
    total_requests += host.Tenant(id)->metrics().counter(Counter::kRequests).Total();
  }
  EXPECT_GE(total_requests, 120u);
  // Budget conservation survived every controller tick under churn.
  size_t capacity_sum = 0;
  for (const char* id : {"a", "b"}) {
    capacity_sum += host.Tenant(id)->Stats().map_cache.capacity;
  }
  EXPECT_LE(capacity_sum, 64u);
  EXPECT_GE(capacity_sum, 2u);
}

}  // namespace
}  // namespace templar::service
