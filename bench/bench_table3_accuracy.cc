// Reproduces Table III: keyword-mapping (KW) and full-query (FQ) top-1
// accuracy of NaLIR, NaLIR+, Pipeline, Pipeline+ on MAS / Yelp / IMDB under
// 4-fold cross validation with NoConstOp, kappa = 5, lambda = 0.8.
//
//   $ ./build/bench/bench_table3_accuracy [mas|yelp|imdb]
//
// Paper-reported values are printed beside the measured values; the claim
// under reproduction is the *shape* (Pipeline+ >> Pipeline, NaLIR+ > NaLIR),
// not the absolute numbers — the substrate here is synthetic (DESIGN.md).

#include <cstdio>
#include <cstring>

#include "datasets/dataset.h"
#include "eval/evaluator.h"

using namespace templar;

namespace {

struct PaperRow {
  const char* dataset;
  const char* system;
  double kw;
  double fq;
};

// Table III as published.
const PaperRow kPaperRows[] = {
    {"MAS", "NaLIR", 43.3, 33.0},    {"MAS", "NaLIR+", 45.4, 40.2},
    {"MAS", "Pipeline", 39.7, 32.0}, {"MAS", "Pipeline+", 77.8, 76.3},
    {"Yelp", "NaLIR", 52.8, 47.2},   {"Yelp", "NaLIR+", 59.8, 52.8},
    {"Yelp", "Pipeline", 56.7, 54.3}, {"Yelp", "Pipeline+", 85.0, 85.0},
    {"IMDB", "NaLIR", 40.6, 38.3},   {"IMDB", "NaLIR+", 57.8, 50.0},
    {"IMDB", "Pipeline", 32.0, 27.3}, {"IMDB", "Pipeline+", 67.2, 64.8},
};

double PaperValue(const std::string& dataset, const char* system, bool fq) {
  for (const auto& row : kPaperRows) {
    if (dataset == row.dataset && std::strcmp(system, row.system) == 0) {
      return fq ? row.fq : row.kw;
    }
  }
  return 0;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<datasets::Dataset> all;
  if (argc > 1) {
    auto ds = datasets::BuildByName(argv[1]);
    if (!ds.ok()) return Fail(ds.status());
    all.push_back(std::move(*ds));
  } else {
    auto built = datasets::BuildAll();
    if (!built.ok()) return Fail(built.status());
    all = std::move(*built);
  }

  const eval::SystemKind kSystems[] = {
      eval::SystemKind::kNalir, eval::SystemKind::kNalirPlus,
      eval::SystemKind::kPipeline, eval::SystemKind::kPipelinePlus};

  std::printf("Table III: KW and FQ top-1 accuracy (NoConstOp, kappa=5, "
              "lambda=0.8, 4-fold CV)\n");
  std::printf("%-6s %-10s %14s %14s\n", "", "", "KW (%)", "FQ (%)");
  std::printf("%-6s %-10s %6s %7s %6s %7s\n", "Data", "System", "meas",
              "paper", "meas", "paper");
  std::printf("--------------------------------------------------\n");

  eval::EvalOptions options;
  for (const auto& dataset : all) {
    for (auto kind : kSystems) {
      auto result = eval::EvaluateSystem(dataset, kind, options);
      if (!result.ok()) return Fail(result.status());
      const char* name = eval::SystemKindToString(kind);
      std::printf("%-6s %-10s %6.1f %7.1f %6.1f %7.1f\n",
                  dataset.name.c_str(), name, result->scores.KwPct(),
                  PaperValue(dataset.name, name, false),
                  result->scores.FqPct(), PaperValue(dataset.name, name, true));
    }
    std::printf("--------------------------------------------------\n");
  }
  return 0;
}
