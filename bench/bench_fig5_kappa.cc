// Reproduces Figure 5: FQ accuracy of Pipeline+ on each benchmark as a
// function of kappa (candidate mappings retained per keyword), with lambda
// fixed at 0.8. The paper reports a plateau for kappa >= 5.

#include <cstdio>
#include <vector>

#include "datasets/dataset.h"
#include "eval/evaluator.h"

using namespace templar;

int main(int argc, char** argv) {
  std::vector<datasets::Dataset> all;
  if (argc > 1) {
    auto ds = datasets::BuildByName(argv[1]);
    if (!ds.ok()) {
      std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
      return 1;
    }
    all.push_back(std::move(*ds));
  } else {
    auto built = datasets::BuildAll();
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
      return 1;
    }
    all = std::move(*built);
  }

  const std::vector<size_t> kappas = {1, 2, 3, 4, 5, 6, 8, 10};
  std::printf("Figure 5: Pipeline+ FQ accuracy (%%) vs kappa (lambda = 0.8)\n");
  std::printf("%-6s", "kappa");
  for (const auto& ds : all) std::printf(" %8s", ds.name.c_str());
  std::printf("\n------------------------------------\n");
  for (size_t kappa : kappas) {
    std::printf("%-6zu", kappa);
    for (const auto& ds : all) {
      eval::EvalOptions options;
      options.templar.mapper.kappa = kappa;
      auto result =
          eval::EvaluateSystem(ds, eval::SystemKind::kPipelinePlus, options);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf(" %8.1f", result->scores.FqPct());
    }
    std::printf("\n");
  }
  return 0;
}
