// End-to-end translation serving: QPS and p99 latency of the Translate
// envelope (NLQ -> ranked SQL) at 1/4 client threads, cold cache vs warm
// cache, with and without per-ranking explanations.
//
//   $ ./build/bench/bench_translate [seconds-per-cell] [--json <path>]
//
// Clients issue synchronous Translate envelopes from their own threads,
// cycling over the MAS benchmark's hand parses. Warm cells first touch
// every distinct request once (the translate cache then answers); cold
// cells use a degenerate 1-entry cache so every request runs the full
// KeywordMapper -> JoinPathGenerator -> AssembleSql pipeline. The explain
// cells quantify what provenance costs: on the warm path it should be
// ~free (explanations ride the cache entry); on the cold path it adds the
// evidence-resolution work on top of each pipeline run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datasets/dataset.h"
#include "service/templar_service.h"

using namespace templar;

namespace {

struct CellResult {
  int threads = 0;
  bool warm = false;
  bool explain = false;
  double qps = 0;
  double p99_ms = 0;
  double hit_rate = 0;
};

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  size_t index = static_cast<size_t>(q * (sorted_ms.size() - 1));
  return sorted_ms[index];
}

CellResult RunCell(const datasets::Dataset& dataset,
                   const std::vector<nlq::ParsedNlq>& workload, int threads,
                   bool warm, bool explain, double seconds) {
  // Fresh service per cell so one cell's cache state never leaks into
  // another. Cold cells use a degenerate 1-entry cache: the workload
  // cycles, so a real capacity would be fully warm after one lap.
  service::ServiceOptions options;
  options.worker_threads = static_cast<size_t>(threads);
  options.translate_cache_capacity = warm ? 4096 : 1;
  options.map_cache_capacity = warm ? 4096 : 1;
  options.join_cache_capacity = warm ? 4096 : 1;
  options.cache_shards = warm ? 32 : 1;
  auto built = service::TemplarService::Create(
      dataset.database.get(), dataset.lexicon.get(), dataset.extra_log,
      options);
  if (!built.ok()) {
    std::fprintf(stderr, "service: %s\n", built.status().ToString().c_str());
    std::exit(1);
  }
  service::TemplarService& service = **built;

  auto make_request = [&](size_t i) {
    service::QueryRequest request =
        service::QueryRequest::Translation(workload[i % workload.size()],
                                           /*top_k=*/1);
    request.want_explanation = explain;
    return request;
  };
  if (warm) {
    for (size_t i = 0; i < workload.size(); ++i) {
      (void)service.Translate(make_request(i));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::mutex latencies_mu;
  std::vector<double> latencies_ms;

  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<double> local_ms;
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto request = make_request(i);
        i += 1;
        auto start = std::chrono::steady_clock::now();
        auto result = service.Translate(request);
        local_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count());
        if (result.ok()) completed.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }

  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& client : clients) client.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  CellResult cell;
  cell.threads = threads;
  cell.warm = warm;
  cell.explain = explain;
  cell.qps = static_cast<double>(completed.load()) / elapsed;
  cell.p99_ms = Percentile(latencies_ms, 0.99);
  cell.hit_rate = service.Stats().translate_cache.HitRate();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (std::atof(argv[i]) > 0) {
      seconds = std::atof(argv[i]);
    }
  }

  std::printf("== Translate envelope throughput (NLQ -> SQL) ==\n");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  auto dataset = datasets::BuildMas();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  // Distinct translate cache keys only: duplicates would warm the "cold"
  // cells from inside one workload lap.
  std::vector<nlq::ParsedNlq> workload;
  {
    std::vector<std::string> seen;
    for (const auto& item : dataset->benchmark) {
      std::string key =
          service::TemplarService::TranslateCacheKey(item.gold_parse, false);
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(std::move(key));
      workload.push_back(item.gold_parse);
      if (workload.size() >= 64) break;
    }
  }
  std::printf("workload: %zu distinct NLQ translations (MAS gold parses)\n\n",
              workload.size());

  const int thread_counts[] = {1, 4};
  std::vector<CellResult> cells;
  for (bool warm : {false, true}) {
    for (bool explain : {false, true}) {
      std::printf("-- %s cache, %s explanations --\n",
                  warm ? "warm" : "cold", explain ? "with" : "without");
      for (int threads : thread_counts) {
        CellResult cell =
            RunCell(*dataset, workload, threads, warm, explain, seconds);
        cells.push_back(cell);
        std::printf(
            "  %d thread%s: %9.0f QPS  p99 %7.3f ms  (hit rate %.2f)\n",
            threads, threads == 1 ? " " : "s", cell.qps, cell.p99_ms,
            cell.hit_rate);
      }
    }
  }

  // Headline ratios for the trend diff: what provenance costs.
  double warm_plain = 0, warm_explain = 0;
  for (const CellResult& cell : cells) {
    if (cell.warm && cell.threads == 1) {
      (cell.explain ? warm_explain : warm_plain) = cell.qps;
    }
  }
  if (warm_explain > 0) {
    std::printf("\nwarm explanation overhead, 1 thread: %.2fx QPS ratio "
                "(1.0 = free)\n",
                warm_plain / warm_explain);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"translate\",\n"
                 "  \"seconds_per_cell\": %.3f,\n"
                 "  \"hardware_threads\": %u,\n  \"cells\": [\n",
                 seconds, std::thread::hardware_concurrency());
    for (size_t i = 0; i < cells.size(); ++i) {
      const CellResult& cell = cells[i];
      std::fprintf(f,
                   "    {\"threads\": %d, \"warm\": %d, \"explain\": %d, "
                   "\"qps\": %.1f, \"p99_ms\": %.3f, \"hit_rate\": %.3f}%s\n",
                   cell.threads, cell.warm ? 1 : 0, cell.explain ? 1 : 0,
                   cell.qps, cell.p99_ms, cell.hit_rate,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
