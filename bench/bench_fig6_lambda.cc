// Reproduces Figure 6: FQ accuracy of Pipeline+ on each benchmark as a
// function of lambda (weight of the word-similarity score vs the log-driven
// score), with kappa fixed at 5. The paper reports stable accuracy over
// lambda in [0.1, 0.8] and a sharp drop as lambda approaches 1 (log
// information switched off).

#include <cstdio>
#include <vector>

#include "datasets/dataset.h"
#include "eval/evaluator.h"

using namespace templar;

int main(int argc, char** argv) {
  std::vector<datasets::Dataset> all;
  if (argc > 1) {
    auto ds = datasets::BuildByName(argv[1]);
    if (!ds.ok()) {
      std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
      return 1;
    }
    all.push_back(std::move(*ds));
  } else {
    auto built = datasets::BuildAll();
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
      return 1;
    }
    all = std::move(*built);
  }

  const std::vector<double> lambdas = {0.0, 0.1, 0.2, 0.4, 0.6,
                                       0.8, 0.9, 0.95, 1.0};
  std::printf("Figure 6: Pipeline+ FQ accuracy (%%) vs lambda (kappa = 5)\n");
  std::printf("%-7s", "lambda");
  for (const auto& ds : all) std::printf(" %8s", ds.name.c_str());
  std::printf("\n------------------------------------\n");
  for (double lambda : lambdas) {
    std::printf("%-7.2f", lambda);
    for (const auto& ds : all) {
      eval::EvalOptions options;
      options.templar.mapper.lambda = lambda;
      auto result =
          eval::EvaluateSystem(ds, eval::SystemKind::kPipelinePlus, options);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf(" %8.1f", result->scores.FqPct());
    }
    std::printf("\n");
  }
  return 0;
}
