// Replication cost model: what the append-only delta log buys and what it
// charges.
//
//   $ ./build/bench/bench_replication [rounds] [--json <path>]
//
// Four cells, all on the MAS dataset:
//
//   - append overhead: AppendLogQueries batches/sec unreplicated vs with
//     every batch framed+written into the delta log inside the writer
//     section. The charge side of the ledger — framing is O(batch), so the
//     ratio should stay near 1.
//   - delta apply: a caught-up follower is parked while the writer appends
//     `rounds` batches, then one SyncWithLog drains them; batches/sec
//     through the full replay path (position translation, ApplyQueryIds,
//     FragmentDelta sweep, epoch publish).
//   - snapshot rewrite: the pre-log alternative — rewriting the full v2
//     snapshot after every batch (what followers would have to reload).
//     Per-batch cost is O(graph), so delta apply must beat it; the
//     `delta_over_snapshot_speedup` cell is gated > 1 in CI.
//   - follower tail: live tailing — a replicator thread polls at 1ms while
//     the writer appends with the ingestion pacing of the overhead arm;
//     reports end-to-end batches/sec and the worst lag the gauge saw.
//
// JSON cells feed tools/bench_trend.py, which warns when delta-apply
// throughput regresses more than 10% against the previous run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "datasets/dataset.h"
#include "replication/follower.h"
#include "service/templar_service.h"

using namespace templar;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

/// Fresh scratch directory under /tmp; removed by the caller.
std::string MakeScratchDir(const char* tag) {
  std::string tmpl = std::string("/tmp/templar_bench_rep_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return std::string(buf.data());
}

/// The `round`-th append batch: `batch_size` entries cycling the MAS extra
/// log, offset per round so consecutive batches overlap but differ.
std::vector<std::string> MakeBatch(const std::vector<std::string>& log,
                                   int round, size_t batch_size) {
  std::vector<std::string> batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch.push_back(log[(static_cast<size_t>(round) * batch_size + i) %
                        log.size()]);
  }
  return batch;
}

std::unique_ptr<service::TemplarService> MakeService(
    const datasets::Dataset& dataset, const std::string& log_dir,
    bool follower) {
  service::ServiceOptions options;
  options.worker_threads = 2;
  options.replication.log_dir = log_dir;
  options.replication.follower = follower;
  auto service = service::TemplarService::Create(
      dataset.database.get(), dataset.lexicon.get(),
      follower ? std::vector<std::string>{} : dataset.extra_log, options);
  if (!service.ok()) Die("service", service.status());
  return std::move(*service);
}

/// Appends `rounds` batches and returns batches/sec.
double TimedAppends(service::TemplarService& service,
                    const std::vector<std::string>& log, int rounds,
                    size_t batch_size) {
  const auto start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    auto outcome = service.AppendLogQueries(MakeBatch(log, round, batch_size));
    if (!outcome.ok()) Die("append", outcome.status());
  }
  return rounds / SecondsSince(start);
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 64;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      int parsed = std::atoi(argv[i]);
      if (parsed > 0) rounds = parsed;
    }
  }
  constexpr size_t kBatchSize = 8;

  std::printf("== Delta-log replication cost model ==\n");
  auto dataset = datasets::BuildMas();
  if (!dataset.ok()) Die("dataset", dataset.status());
  const std::vector<std::string>& log = dataset->extra_log;
  std::printf("%d rounds of %zu-query batches\n\n", rounds, kBatchSize);

  // --- Cell 1: append overhead -------------------------------------------
  double baseline_bps, replicated_bps;
  {
    auto plain = MakeService(*dataset, /*log_dir=*/"", /*follower=*/false);
    baseline_bps = TimedAppends(*plain, log, rounds, kBatchSize);
    const std::string dir = MakeScratchDir("overhead");
    auto replicated = MakeService(*dataset, dir, /*follower=*/false);
    replicated_bps = TimedAppends(*replicated, log, rounds, kBatchSize);
    std::filesystem::remove_all(dir);
  }
  const double overhead = baseline_bps / replicated_bps;
  std::printf("append throughput : %9.0f batches/s unreplicated\n"
              "                    %9.0f batches/s with delta log "
              "(overhead x%.2f)\n",
              baseline_bps, replicated_bps, overhead);

  // --- Cells 2+3: delta apply vs full-snapshot rewrite -------------------
  double delta_apply_bps, snapshot_bps;
  {
    const std::string dir = MakeScratchDir("apply");
    auto writer = MakeService(*dataset, dir, /*follower=*/false);
    // Boot the follower first so its bootstrap replay sees an empty log and
    // the timed SyncWithLog below is purely the `rounds` live batches.
    auto follower = MakeService(*dataset, dir, /*follower=*/true);
    for (int round = 0; round < rounds; ++round) {
      auto outcome =
          writer->AppendLogQueries(MakeBatch(log, round, kBatchSize));
      if (!outcome.ok()) Die("append", outcome.status());
    }
    auto start = Clock::now();
    auto applied = follower->SyncWithLog();
    delta_apply_bps = rounds / SecondsSince(start);
    if (!applied.ok()) Die("sync", applied.status());
    if (*applied != writer->epoch()) {
      std::fprintf(stderr, "follower stopped at epoch %llu, writer at %llu\n",
                   static_cast<unsigned long long>(*applied),
                   static_cast<unsigned long long>(writer->epoch()));
      return 1;
    }

    // The alternative the log replaces: a full v2 snapshot rewrite per
    // batch (same graph, same atomic temp+fsync+rename path).
    const std::string snapshot = dir + "/rewrite.qfg";
    start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      if (Status st = writer->SaveSnapshot(snapshot); !st.ok()) {
        Die("snapshot", st);
      }
    }
    snapshot_bps = rounds / SecondsSince(start);
    std::filesystem::remove_all(dir);
  }
  const double speedup = delta_apply_bps / snapshot_bps;
  std::printf("follower catch-up : %9.0f batches/s delta replay\n"
              "                    %9.0f batches/s full-snapshot rewrite "
              "(speedup x%.1f)\n",
              delta_apply_bps, snapshot_bps, speedup);

  // --- Cell 4: live tail --------------------------------------------------
  double tail_bps;
  uint64_t max_lag = 0;
  {
    const std::string dir = MakeScratchDir("tail");
    auto writer = MakeService(*dataset, dir, /*follower=*/false);
    auto follower = MakeService(*dataset, dir, /*follower=*/true);
    replication::FollowerReplicator replicator(
        [&follower, &max_lag] {
          auto applied = follower->SyncWithLog();
          if (applied.ok()) {
            max_lag = std::max(
                max_lag, follower->metrics().gauge(
                             service::Gauge::kFollowerLagEpochs));
          }
          return applied;
        },
        std::chrono::milliseconds(1));
    replicator.Start();
    const auto start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      auto outcome =
          writer->AppendLogQueries(MakeBatch(log, round, kBatchSize));
      if (!outcome.ok()) Die("append", outcome.status());
    }
    while (follower->epoch() < writer->epoch()) {
      if (auto st = replicator.DrainOnce(); !st.ok()) Die("tail", st.status());
    }
    tail_bps = rounds / SecondsSince(start);
    replicator.Stop();
    std::filesystem::remove_all(dir);
  }
  std::printf("live tail         : %9.0f batches/s end-to-end "
              "(max observed lag %llu epochs)\n",
              tail_bps, static_cast<unsigned long long>(max_lag));

  if (speedup <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: delta replay (%.0f batches/s) is not faster than "
                 "full-snapshot rewrite (%.0f batches/s)\n",
                 delta_apply_bps, snapshot_bps);
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"replication\",\n  \"rounds\": %d,\n"
        "  \"batch_size\": %zu,\n"
        "  \"append_baseline_batches_per_sec\": %.1f,\n"
        "  \"append_replicated_batches_per_sec\": %.1f,\n"
        "  \"append_overhead_ratio\": %.4f,\n"
        "  \"delta_apply_batches_per_sec\": %.1f,\n"
        "  \"snapshot_rewrite_batches_per_sec\": %.1f,\n"
        "  \"delta_over_snapshot_speedup\": %.4f,\n"
        "  \"follower_tail_batches_per_sec\": %.1f,\n"
        "  \"follower_max_lag_epochs\": %llu\n}\n",
        rounds, kBatchSize, baseline_bps, replicated_bps, overhead,
        delta_apply_bps, snapshot_bps, speedup, tail_bps,
        static_cast<unsigned long long>(max_lag));
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
