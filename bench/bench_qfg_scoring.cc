// QFG scoring micro/serving bench for the interned-id refactor:
//
//  - dice: raw Dice lookups/sec, string shim (per-call normalize + key
//    builds + string-hash probes — the seed hot path) vs id-native
//    (fragments resolved once, then pure id-pair lookups).
//  - scoreandprune: SCOREANDPRUNE calls/sec — exercises the cached-key sort
//    comparator (the seed built each tie-break Key() string O(n log n)
//    times inside the comparator).
//  - map_keywords: end-to-end MapKeywords through TemplarService at 1/4/8
//    threads, cold (first pass, all cache misses — every request pays the
//    id-native scoring loop) vs warm (repeat pass, cache hits).
//  - config_scoring: configuration enumeration throughput — the preserved
//    reference scorer (full QfgScoreResolved per configuration plus a
//    stable_sort of everything enumerated) vs the incremental engine
//    (memoized pair Dice, odometer delta-scoring, bounded top-N heap),
//    sequential and fanned out on a 4-thread pool. The bench asserts the
//    rankings are byte-identical before timing anything.
//  - infer_joins: uncached INFERJOINS calls/sec through core::Templar over
//    the benchmark bags — the Steiner search's Dijkstra inner loop. The
//    banned-edge probe used to build an EdgeKey string (two normalized
//    relation names + a separator) per popped edge per wave; it is now an
//    index into a flat flag vector, and this cell is where that shows up.
//
//   $ ./build/bench/bench_qfg_scoring [scale] [--json <path>]
//
// `scale` (default 1.0) multiplies iteration counts; CI smoke runs use a
// small scale — absolute numbers there are noisy, the string-vs-id ratio is
// the stable signal.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "bench_common.h"
#include "common/rng.h"
#include "core/keyword_mapper.h"
#include "core/templar.h"
#include "datasets/dataset.h"
#include "qfg/query_fragment_graph.h"
#include "service/scoring_executor.h"
#include "service/templar_service.h"
#include "service/thread_pool.h"
#include "sql/parser.h"

using namespace templar;
using bench::BuildWorkload;
using bench::Request;
using Clock = std::chrono::steady_clock;

namespace {

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Distinct fragments of the dataset's log — the population Dice probes
/// draw from.
std::vector<qfg::QueryFragment> LogFragments(const datasets::Dataset& dataset,
                                             qfg::ObscurityLevel level) {
  std::set<qfg::QueryFragment> out;
  for (const auto& entry : dataset.extra_log) {
    auto q = sql::Parse(entry);
    if (!q.ok()) continue;
    for (auto& f : qfg::ExtractFragments(*q, level)) out.insert(f);
  }
  return {out.begin(), out.end()};
}

struct DiceResult {
  size_t pairs = 0;
  double string_per_sec = 0;
  double id_per_sec = 0;
  double speedup = 0;  // id_per_sec / string_per_sec.
};

DiceResult RunDice(const qfg::QueryFragmentGraph& graph,
                   const std::vector<qfg::QueryFragment>& fragments,
                   size_t pair_count) {
  DiceResult result;
  if (fragments.size() < 2) return result;
  Rng rng(1234);
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(pair_count);
  for (size_t i = 0; i < pair_count; ++i) {
    size_t a = rng.NextBounded(fragments.size());
    size_t b = rng.NextBounded(fragments.size());
    pairs.emplace_back(a, b);
  }
  result.pairs = pairs.size();

  // String shim: what every Dice in the seed's O(k^2) scoring loop cost.
  double sink = 0;
  auto start = Clock::now();
  for (const auto& [a, b] : pairs) {
    sink += graph.Dice(fragments[a], fragments[b]);
  }
  double string_seconds = SecondsSince(start);

  // Id-native: resolve once per fragment, then id-pair lookups only.
  std::vector<qfg::FragmentId> ids;
  ids.reserve(fragments.size());
  for (const auto& f : fragments) ids.push_back(graph.NormalizeToId(f));
  double id_sink = 0;
  start = Clock::now();
  for (const auto& [a, b] : pairs) {
    id_sink += graph.Dice(ids[a], ids[b]);
  }
  double id_seconds = SecondsSince(start);

  if (sink != id_sink) {
    std::fprintf(stderr, "dice mismatch: string %.17g vs id %.17g\n", sink,
                 id_sink);
    std::exit(1);
  }
  result.string_per_sec =
      string_seconds > 0 ? static_cast<double>(pairs.size()) / string_seconds
                         : 0;
  result.id_per_sec =
      id_seconds > 0 ? static_cast<double>(pairs.size()) / id_seconds : 0;
  result.speedup = result.string_per_sec > 0
                       ? result.id_per_sec / result.string_per_sec
                       : 0;
  return result;
}

struct ScoreAndPruneResult {
  size_t calls = 0;
  double per_sec = 0;
};

ScoreAndPruneResult RunScoreAndPrune(const core::Templar& templar,
                                     const datasets::Dataset& dataset,
                                     size_t rounds) {
  const core::KeywordMapper& mapper = templar.keyword_mapper();
  // Pre-retrieve candidates once; the timed loop copies + scores + sorts,
  // which is exactly the path the cached-key comparator fix targets.
  std::vector<std::pair<nlq::AnnotatedKeyword,
                        std::vector<core::CandidateMapping>>> work;
  for (const auto& item : dataset.benchmark) {
    if (work.size() >= 24) break;
    for (const auto& kw : item.gold_parse.keywords) {
      auto cands = mapper.KeywordCands(kw);
      if (cands.size() >= 4) work.emplace_back(kw, std::move(cands));
    }
  }
  ScoreAndPruneResult result;
  if (work.empty()) return result;
  auto start = Clock::now();
  size_t sink = 0;
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& [kw, cands] : work) {
      sink += mapper.ScoreAndPrune(kw, cands).size();
    }
  }
  double seconds = SecondsSince(start);
  result.calls = rounds * work.size() + (sink == SIZE_MAX ? 1 : 0);
  result.per_sec =
      seconds > 0 ? static_cast<double>(result.calls) / seconds : 0;
  return result;
}

struct InferJoinsResult {
  size_t bags = 0;
  size_t calls = 0;
  double per_sec = 0;
};

/// Uncached join inference over the workload's distinct bags: every call
/// runs the full Steiner search (Dijkstra per terminal, banned-edge waves
/// for ranked alternatives), so the banned-set probe cost is on the clock.
InferJoinsResult RunInferJoins(const core::Templar& templar,
                               const std::vector<Request>& requests,
                               size_t rounds) {
  InferJoinsResult result;
  std::vector<const std::vector<std::string>*> bags;
  for (const auto& r : requests) {
    if (r.kind == Request::Kind::kJoin && r.bag.size() >= 2) {
      bags.push_back(&r.bag);
    }
  }
  result.bags = bags.size();
  if (bags.empty()) return result;
  size_t sink = 0;
  auto start = Clock::now();
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto* bag : bags) {
      auto paths = templar.InferJoins(*bag);
      if (paths.ok()) sink += paths->size();
    }
  }
  double seconds = SecondsSince(start);
  result.calls = rounds * bags.size() + (sink == SIZE_MAX ? 1 : 0);
  result.per_sec =
      seconds > 0 ? static_cast<double>(result.calls) / seconds : 0;
  return result;
}

struct ConfigScoringResult {
  size_t probes = 0;
  size_t configurations = 0;  // enumerated per full pass over the probes
  double reference_per_sec = 0;
  double incremental_per_sec = 0;
  double incremental_4t_per_sec = 0;
  double speedup = 0;  // incremental_per_sec / reference_per_sec.
};

/// Byte-exact ranking serialization (identity + full-precision scores) —
/// the bench refuses to time an incremental engine that diverges from the
/// reference scorer.
std::string SerializeRanking(const std::vector<core::Configuration>& configs) {
  std::string out;
  char buf[128];
  for (const auto& c : configs) {
    out += c.ToString();
    std::snprintf(buf, sizeof(buf), " sigma=%.17g qfg=%.17g score=%.17g\n",
                  c.sigma_score, c.qfg_score, c.score);
    out += buf;
  }
  return out;
}

/// Configuration enumeration throughput: the preserved reference scorer
/// (one full QfgScoreResolved + stable_sort of everything) vs the
/// incremental engine (memoized pair Dice, odometer delta-scoring, bounded
/// heap), sequential and on a 4-thread pool. Probes are benchmark parses
/// with >= 3 keywords whose pruned candidate product is large enough that
/// enumeration dominates retrieval; kappa is raised to 8 on both sides to
/// exercise realistic products.
ConfigScoringResult RunConfigScoring(const datasets::Dataset& dataset,
                                     const core::Templar& templar,
                                     size_t rounds) {
  // max_configurations is raised well past the serving default so the
  // enumeration loop — the thing this cell measures — dominates the fixed
  // per-call retrieval prefix (KeywordCands + ScoreAndPrune, identical in
  // both scorers) instead of being amortized away by it.
  core::KeywordMapperOptions ref_options;
  ref_options.kappa = 8;
  ref_options.max_configurations = 200000;
  ref_options.reference_scoring = true;
  core::KeywordMapperOptions inc_options;
  inc_options.kappa = 8;
  inc_options.max_configurations = 200000;
  inc_options.parallel_min_configurations = 256;
  core::KeywordMapper reference(dataset.database.get(),
                                &templar.fulltext_index(),
                                dataset.lexicon.get(),
                                &templar.query_fragment_graph(), ref_options);
  core::KeywordMapper incremental(dataset.database.get(),
                                  &templar.fulltext_index(),
                                  dataset.lexicon.get(),
                                  &templar.query_fragment_graph(),
                                  inc_options);

  // Gold parses top out around K=3 with pruned products of a few hundred
  // — too shallow for the enumeration loop to dominate the clock. Merge
  // the widest scorable parses pairwise into synthetic K>=6 probes whose
  // pruned products hit the max_configurations cap: exactly the
  // combinatorial regime the incremental engine exists for, and still
  // real candidate sets from the real retrieval pipeline.
  std::vector<std::pair<const nlq::ParsedNlq*, size_t>> scorable;
  for (const auto& item : dataset.benchmark) {
    const nlq::ParsedNlq& parse = item.gold_parse;
    if (parse.keywords.size() < 3) continue;
    size_t product = 1;
    for (const auto& kw : parse.keywords) {
      size_t n =
          reference.ScoreAndPrune(kw, reference.KeywordCands(kw)).size();
      product = std::min(product * n, ref_options.max_configurations);
      if (n == 0) {
        product = 0;
        break;
      }
    }
    if (product >= 40) scorable.emplace_back(&parse, product);
  }

  std::stable_sort(scorable.begin(), scorable.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  struct Probe {
    const nlq::ParsedNlq* parse;
    size_t configs;
  };
  std::vector<Probe> probes;
  std::vector<nlq::ParsedNlq> merged;
  merged.reserve(scorable.size() / 2 + 1);
  ConfigScoringResult result;
  for (size_t i = 0; i + 2 < scorable.size() && probes.size() < 3; i += 3) {
    size_t product = scorable[i].second;
    nlq::ParsedNlq parse = *scorable[i].first;
    for (size_t j = 1; j < 3; ++j) {
      product = std::min(product * scorable[i + j].second,
                         ref_options.max_configurations);
      parse.original += " | " + scorable[i + j].first->original;
      parse.keywords.insert(parse.keywords.end(),
                            scorable[i + j].first->keywords.begin(),
                            scorable[i + j].first->keywords.end());
    }
    if (product < 65536) continue;
    merged.push_back(std::move(parse));
    probes.push_back({&merged.back(), product});
    result.configurations += product;
  }
  result.probes = probes.size();
  if (probes.empty()) return result;

  service::ThreadPool pool(4);
  core::ScoringExecutor executor = service::MakeScoringExecutor(&pool);
  core::MapKeywordsControls parallel_controls;
  parallel_controls.executor = &executor;

  for (const Probe& probe : probes) {
    auto want = reference.MapKeywords(*probe.parse);
    auto seq = incremental.MapKeywords(*probe.parse);
    auto par = incremental.MapKeywords(*probe.parse, nullptr,
                                       parallel_controls);
    if (!want.ok() || !seq.ok() || !par.ok()) {
      std::fprintf(stderr, "config_scoring probe failed: %s\n",
                   (!want.ok() ? want.status() : !seq.ok() ? seq.status()
                                                           : par.status())
                       .ToString()
                       .c_str());
      std::exit(1);
    }
    const std::string expected = SerializeRanking(*want);
    if (SerializeRanking(*seq) != expected ||
        SerializeRanking(*par) != expected) {
      std::fprintf(stderr,
                   "config_scoring mismatch: incremental ranking diverged "
                   "from reference for '%s'\n",
                   probe.parse->original.c_str());
      std::exit(1);
    }
  }

  auto time_pass = [&](auto&& call) {
    auto start = Clock::now();
    for (size_t r = 0; r < rounds; ++r) {
      for (const Probe& probe : probes) call(*probe.parse);
    }
    double seconds = SecondsSince(start);
    double total =
        static_cast<double>(result.configurations) * static_cast<double>(rounds);
    return seconds > 0 ? total / seconds : 0.0;
  };
  result.reference_per_sec = time_pass([&](const nlq::ParsedNlq& parse) {
    (void)reference.MapKeywords(parse);
  });
  result.incremental_per_sec = time_pass([&](const nlq::ParsedNlq& parse) {
    (void)incremental.MapKeywords(parse);
  });
  result.incremental_4t_per_sec = time_pass([&](const nlq::ParsedNlq& parse) {
    (void)incremental.MapKeywords(parse, nullptr, parallel_controls);
  });
  result.speedup = result.reference_per_sec > 0
                       ? result.incremental_per_sec / result.reference_per_sec
                       : 0;
  return result;
}

struct MapCell {
  int threads = 0;
  double cold_qps = 0;
  double warm_qps = 0;
};

MapCell RunMapKeywords(const datasets::Dataset& dataset,
                       const std::vector<Request>& requests, int threads,
                       int warm_passes) {
  MapCell cell;
  cell.threads = threads;
  service::ServiceOptions options;
  options.worker_threads = static_cast<size_t>(threads);
  auto service = service::TemplarService::Create(
      dataset.database.get(), dataset.lexicon.get(), dataset.extra_log,
      options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    std::exit(1);
  }

  auto replay_pass = [&]() {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t i = static_cast<size_t>(t); i < requests.size();
             i += static_cast<size_t>(threads)) {
          const Request& request = requests[i];
          if (request.is_map) {
            (void)(*service)->MapKeywords(request.nlq);
          } else {
            (void)(*service)->InferJoins(request.bag);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  };

  auto start = Clock::now();
  replay_pass();
  double cold_seconds = SecondsSince(start);
  cell.cold_qps = cold_seconds > 0
                      ? static_cast<double>(requests.size()) / cold_seconds
                      : 0;

  start = Clock::now();
  for (int p = 0; p < warm_passes; ++p) replay_pass();
  double warm_seconds = SecondsSince(start);
  cell.warm_qps =
      warm_seconds > 0
          ? static_cast<double>(requests.size() * warm_passes) / warm_seconds
          : 0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      double parsed = std::atof(argv[i]);
      if (parsed > 0) scale = parsed;
    }
  }

  std::printf("== QFG scoring: string shim vs interned ids ==\n");
  auto dataset = datasets::BuildMas();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto templar = core::Templar::Build(dataset->database.get(),
                                      dataset->lexicon.get(),
                                      dataset->extra_log);
  if (!templar.ok()) {
    std::fprintf(stderr, "templar: %s\n", templar.status().ToString().c_str());
    return 1;
  }
  const qfg::QueryFragmentGraph& graph = (*templar)->query_fragment_graph();

  std::vector<qfg::QueryFragment> fragments =
      LogFragments(*dataset, graph.level());
  const size_t pair_count =
      static_cast<size_t>(200000 * scale) + 1000;
  DiceResult dice = RunDice(graph, fragments, pair_count);
  std::printf(
      "dice (%zu fragments, %zu random pairs):\n"
      "  string shim: %12.0f lookups/sec\n"
      "  id-native:   %12.0f lookups/sec   (%.2fx)\n",
      fragments.size(), dice.pairs, dice.string_per_sec, dice.id_per_sec,
      dice.speedup);

  const size_t sp_rounds = static_cast<size_t>(40 * scale) + 2;
  ScoreAndPruneResult sp = RunScoreAndPrune(**templar, *dataset, sp_rounds);
  std::printf("scoreandprune: %zu calls, %10.0f calls/sec\n", sp.calls,
              sp.per_sec);

  std::vector<Request> requests =
      BuildWorkload(*dataset, 64, /*distinct_cache_keys=*/true);

  const size_t ij_rounds = static_cast<size_t>(20 * scale) + 2;
  InferJoinsResult ij = RunInferJoins(**templar, requests, ij_rounds);
  std::printf("infer_joins: %zu bags, %zu calls, %10.0f calls/sec\n", ij.bags,
              ij.calls, ij.per_sec);

  const size_t cs_rounds = static_cast<size_t>(2 * scale) + 1;
  ConfigScoringResult cs = RunConfigScoring(*dataset, **templar, cs_rounds);
  std::printf(
      "config_scoring (%zu probes, %zu configurations/pass):\n"
      "  reference:        %12.0f configurations/sec\n"
      "  incremental:      %12.0f configurations/sec   (%.2fx)\n"
      "  incremental (4t): %12.0f configurations/sec\n",
      cs.probes, cs.configurations, cs.reference_per_sec,
      cs.incremental_per_sec, cs.speedup, cs.incremental_4t_per_sec);

  const int warm_passes = std::max(1, static_cast<int>(4 * scale));
  std::vector<MapCell> cells;
  for (int threads : {1, 4, 8}) {
    MapCell cell = RunMapKeywords(*dataset, requests, threads, warm_passes);
    std::printf(
        "map_keywords %d thread(s): cold %8.1f qps   warm %10.1f qps\n",
        cell.threads, cell.cold_qps, cell.warm_qps);
    cells.push_back(cell);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"qfg_scoring\",\n  \"scale\": %.3f,\n"
        "  \"dice\": {\"fragments\": %zu, \"pairs\": %zu,\n"
        "    \"string_lookups_per_sec\": %.0f,\n"
        "    \"id_lookups_per_sec\": %.0f,\n"
        "    \"id_over_string_speedup\": %.3f},\n"
        "  \"scoreandprune\": {\"calls\": %zu, \"calls_per_sec\": %.0f},\n"
        "  \"infer_joins\": {\"bags\": %zu, \"calls\": %zu, "
        "\"calls_per_sec\": %.0f},\n"
        "  \"config_scoring\": {\"probes\": %zu, \"configurations\": %zu,\n"
        "    \"reference_configurations_per_sec\": %.0f,\n"
        "    \"incremental_configurations_per_sec\": %.0f,\n"
        "    \"incremental_configurations_per_sec_4t\": %.0f,\n"
        "    \"incremental_over_reference_speedup\": %.3f},\n"
        "  \"map_keywords\": [\n",
        scale, fragments.size(), dice.pairs, dice.string_per_sec,
        dice.id_per_sec, dice.speedup, sp.calls, sp.per_sec, ij.bags, ij.calls,
        ij.per_sec, cs.probes, cs.configurations, cs.reference_per_sec,
        cs.incremental_per_sec, cs.incremental_4t_per_sec, cs.speedup);
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(f,
                   "    {\"threads\": %d, \"cold_qps\": %.1f, "
                   "\"warm_qps\": %.1f}%s\n",
                   cells[i].threads, cells[i].cold_qps, cells[i].warm_qps,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
