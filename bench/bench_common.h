#ifndef TEMPLAR_BENCH_BENCH_COMMON_H_
#define TEMPLAR_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// \brief Workload setup shared by the serving-layer benches
/// (bench_service_throughput, bench_invalidation, bench_multitenant): the
/// request representation, benchmark-derived workload construction, and a
/// replay helper.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "datasets/dataset.h"
#include "service/templar_service.h"

namespace templar::bench {

/// \brief One serving-layer request: a MAPKEYWORDS NLQ, an INFERJOINS bag,
/// or an end-to-end Translate envelope.
struct Request {
  enum class Kind { kMap, kJoin, kTranslate };
  Kind kind = Kind::kMap;
  bool is_map = true;  ///< Convenience mirror of kind == kMap.
  nlq::ParsedNlq nlq;
  std::vector<std::string> bag;
};

/// \brief Builds a request workload from a dataset's benchmark items: the
/// gold hand-parse as a map request plus the gold FROM clause (deduplicated
/// — the bag API names self-join duplicates "rel#1", which the gold SQL
/// expresses via aliases) as a join request. With `include_translate`, the
/// gold parse is additionally issued as an end-to-end Translate request, so
/// the translate cache (whose footprint unions map and join dependencies)
/// sees traffic too.
///
/// With `distinct_cache_keys`, requests that would share a serving-layer
/// cache key are emitted once: duplicates would hit the cache even under
/// kEpochDrop (within one replay pass) and blur invalidation-policy
/// comparisons — with every request distinct, the legacy policy's
/// post-append hit rate is exactly its retained-entry rate: zero.
inline std::vector<Request> BuildWorkload(const datasets::Dataset& dataset,
                                          size_t max_requests,
                                          bool distinct_cache_keys = false,
                                          bool include_translate = false) {
  std::vector<Request> requests;
  std::set<std::string> seen;
  auto admit = [&](const std::string& key) {
    return !distinct_cache_keys || seen.insert(key).second;
  };
  for (const auto& item : dataset.benchmark) {
    if (requests.size() >= max_requests) break;
    Request map_request;
    map_request.kind = Request::Kind::kMap;
    map_request.is_map = true;
    map_request.nlq = item.gold_parse;
    if (admit("m" + service::TemplarService::MapCacheKey(map_request.nlq))) {
      requests.push_back(std::move(map_request));
    }

    Request join_request;
    join_request.kind = Request::Kind::kJoin;
    join_request.is_map = false;
    for (const auto& rel : item.gold_sql.from) {
      if (std::find(join_request.bag.begin(), join_request.bag.end(),
                    rel.table) == join_request.bag.end()) {
        join_request.bag.push_back(rel.table);
      }
    }
    if (!join_request.bag.empty() &&
        admit("j" + service::TemplarService::JoinCacheKey(join_request.bag))) {
      requests.push_back(std::move(join_request));
    }

    if (include_translate) {
      Request translate_request;
      translate_request.kind = Request::Kind::kTranslate;
      translate_request.is_map = false;
      translate_request.nlq = item.gold_parse;
      if (admit("t" + service::TemplarService::MapCacheKey(
                          translate_request.nlq))) {
        requests.push_back(std::move(translate_request));
      }
    }
  }
  return requests;
}

/// \brief Replays every request once, synchronously, discarding results.
/// Works against anything with the MapKeywords/InferJoins/Translate request
/// API (TemplarService, ServiceCore, TenantHandle).
template <typename ServiceT>
void IssueAll(ServiceT& service, const std::vector<Request>& requests) {
  for (const auto& request : requests) {
    switch (request.kind) {
      case Request::Kind::kMap:
        (void)service.MapKeywords(request.nlq);
        break;
      case Request::Kind::kJoin:
        (void)service.InferJoins(request.bag);
        break;
      case Request::Kind::kTranslate:
        (void)service.Translate(
            service::QueryRequest::Translation(request.nlq, /*top_k=*/1));
        break;
    }
  }
}

}  // namespace templar::bench

#endif  // TEMPLAR_BENCH_BENCH_COMMON_H_
