// Serving-layer throughput: QPS of TemplarService at 1/4/8 client threads,
// cold cache (every request computed) vs warm cache (every request a hit).
//
//   $ ./build/bench/bench_service_throughput [seconds-per-cell] [--json <path>]
//
// Clients issue the synchronous MapKeywords/InferJoins calls directly from
// their own threads, cycling over the MAS benchmark's hand parses; a warm
// run first touches every distinct request once. Scaling headroom depends
// on the hardware: warm-cache hits are lock-light (sharded LRU, shared QFG
// lock never taken), so QPS should scale near-linearly with cores.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datasets/dataset.h"
#include "service/templar_service.h"

using namespace templar;
using bench::BuildWorkload;
using bench::Request;

namespace {

double RunCell(service::TemplarService& service,
               const std::vector<Request>& requests, int threads,
               double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> errors{0};

  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Request& request = requests[i % requests.size()];
        i += 1;
        bool ok;
        if (request.is_map) {
          ok = service.MapKeywords(request.nlq).ok();
        } else {
          ok = service.InferJoins(request.bag).ok();
        }
        if (!ok) errors.fetch_add(1, std::memory_order_relaxed);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& client : clients) client.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (errors.load() > 0) {
    std::fprintf(stderr, "warning: %llu request errors\n",
                 static_cast<unsigned long long>(errors.load()));
  }
  return static_cast<double>(completed.load()) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (std::atof(argv[i]) > 0) {
      seconds = std::atof(argv[i]);
    }
  }

  std::printf("== TemplarService throughput ==\n");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  auto dataset = datasets::BuildMas();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::vector<Request> requests = BuildWorkload(*dataset, 64);
  std::printf("workload: %zu distinct requests (MAS gold parses + bags)\n",
              requests.size());

  const int thread_counts[] = {1, 4, 8};
  double warm_qps[3] = {0, 0, 0};
  double cold_qps[3] = {0, 0, 0};

  for (int warm = 0; warm <= 1; ++warm) {
    std::printf("\n-- %s cache --\n", warm ? "warm" : "cold");
    for (int cell = 0; cell < 3; ++cell) {
      int threads = thread_counts[cell];
      // Fresh service per cell so one cell's cache state never leaks into
      // another. Cold cells use a degenerate 1-entry cache: the workload
      // cycles, so a real capacity would be fully warm after one lap —
      // this way every cold request exercises the compute path.
      service::ServiceOptions options;
      options.worker_threads = static_cast<size_t>(threads);
      options.map_cache_capacity = warm ? 4096 : 1;
      options.join_cache_capacity = warm ? 4096 : 1;
      options.cache_shards = warm ? 32 : 1;
      auto service = service::TemplarService::Create(
          dataset->database.get(), dataset->lexicon.get(),
          dataset->extra_log, options);
      if (!service.ok()) {
        std::fprintf(stderr, "service: %s\n",
                     service.status().ToString().c_str());
        return 1;
      }
      if (warm) bench::IssueAll(**service, requests);
      double qps = RunCell(**service, requests, threads, seconds);
      if (warm) {
        warm_qps[cell] = qps;
      } else {
        cold_qps[cell] = qps;
      }
      service::ServiceStats stats = (*service)->Stats();
      double hit_rate =
          (stats.map_cache.HitRate() + stats.join_cache.HitRate()) / 2;
      std::printf("  %d thread%s: %10.0f QPS  (cache hit rate %.2f)\n",
                  threads, threads == 1 ? " " : "s", qps, hit_rate);
    }
  }

  if (warm_qps[0] > 0) {
    double speedup = warm_qps[2] / warm_qps[0];
    std::printf("\nwarm-cache speedup, 8 threads vs 1: %.2fx", speedup);
    if (std::thread::hardware_concurrency() < 8) {
      std::printf("  (only %u hardware threads available)",
                  std::thread::hardware_concurrency());
    }
    std::printf("\n");
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"service_throughput\",\n"
                 "  \"seconds_per_cell\": %.3f,\n"
                 "  \"hardware_threads\": %u,\n  \"cells\": [\n",
                 seconds, std::thread::hardware_concurrency());
    for (int cell = 0; cell < 3; ++cell) {
      std::fprintf(f,
                   "    {\"threads\": %d, \"cold_qps\": %.1f, "
                   "\"warm_qps\": %.1f}%s\n",
                   thread_counts[cell], cold_qps[cell], warm_qps[cell],
                   cell < 2 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
