// Wire-protocol serving throughput: QPS and p99 latency of Translate
// through REAL sockets — frame encode, TCP round trip, admission, the
// pipeline, frame decode — at 1 and 4 concurrent client connections.
//
//   $ ./build/bench/bench_wire [seconds-per-cell] [--json <path>]
//
// Comparing against bench_service_throughput (same workload, in-process
// calls) isolates the wire tax: serialization + loopback TCP + the
// session bookkeeping (sequence numbers, replay ring, acks). Each client
// owns one WireClient (one TCP connection, one session), issues requests
// synchronously, and records per-request latency; the p99 is computed over
// all clients' samples.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datasets/dataset.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/tenant_registry.h"

using namespace templar;

namespace {

struct CellResult {
  int clients = 0;
  double qps = 0;
  double p99_ms = 0;
};

std::vector<net::WireRequest> BuildWireWorkload(
    const datasets::Dataset& dataset) {
  std::vector<net::WireRequest> requests;
  for (const bench::Request& request : bench::BuildWorkload(dataset, 64)) {
    net::WireRequest wire;
    if (request.is_map) {
      wire.stage = static_cast<uint8_t>(service::Stage::kMapKeywords);
      wire.nlq = request.nlq;
    } else {
      wire.stage = static_cast<uint8_t>(service::Stage::kInferJoins);
      wire.relation_bag = request.bag;
    }
    requests.push_back(std::move(wire));
  }
  return requests;
}

CellResult RunCell(uint16_t port, const std::vector<net::WireRequest>& requests,
                   int clients, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<uint64_t>> latencies_us(clients);

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::WireClientOptions options;
      options.port = port;
      options.tenant = "mas";
      auto client = net::WireClient::Connect(options);
      if (!client.ok()) {
        std::fprintf(stderr, "client %d connect: %s\n", c,
                     client.status().ToString().c_str());
        errors.fetch_add(1);
        return;
      }
      size_t i = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = std::chrono::steady_clock::now();
        auto response = (*client)->Translate(requests[i % requests.size()]);
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                       start);
        i += 1;
        if (!response.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          latencies_us[c].push_back(
              static_cast<uint64_t>(elapsed.count()));
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (errors.load() > 0) {
    std::fprintf(stderr, "warning: %llu request errors\n",
                 static_cast<unsigned long long>(errors.load()));
  }

  std::vector<uint64_t> all;
  for (const auto& per_client : latencies_us) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  CellResult result;
  result.clients = clients;
  result.qps = static_cast<double>(completed.load()) / elapsed;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    const size_t index =
        std::min(all.size() - 1,
                 static_cast<size_t>(static_cast<double>(all.size()) * 0.99));
    result.p99_ms = static_cast<double>(all[index]) / 1000.0;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (std::atof(argv[i]) > 0) {
      seconds = std::atof(argv[i]);
    }
  }

  std::printf("== Wire-protocol serving throughput ==\n");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  auto dataset = datasets::BuildMas();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::vector<net::WireRequest> requests = BuildWireWorkload(*dataset);
  std::printf("workload: %zu distinct wire requests (MAS gold parses + "
              "bags), loopback TCP\n",
              requests.size());

  service::HostOptions host_options;
  host_options.worker_threads = 4;
  service::ServiceHost host(host_options);
  if (Status status = host.RegisterTenant("mas", dataset->database.get(),
                                          dataset->lexicon.get(),
                                          dataset->extra_log);
      !status.ok()) {
    std::fprintf(stderr, "tenant: %s\n", status.ToString().c_str());
    return 1;
  }
  auto server = net::WireServer::Start(&host, {});
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  const int client_counts[] = {1, 4};
  std::vector<CellResult> cells;
  for (int clients : client_counts) {
    CellResult cell =
        RunCell((*server)->port(), requests, clients, seconds);
    cells.push_back(cell);
    std::printf("  %d client%s: %10.0f QPS   p99 %.3f ms\n", cell.clients,
                cell.clients == 1 ? " " : "s", cell.qps, cell.p99_ms);
  }
  (*server)->Stop();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"wire\",\n"
                 "  \"seconds_per_cell\": %.3f,\n"
                 "  \"hardware_threads\": %u,\n  \"cells\": [\n",
                 seconds, std::thread::hardware_concurrency());
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(f,
                   "    {\"clients\": %d, \"qps\": %.1f, "
                   "\"p99_ms\": %.3f}%s\n",
                   cells[i].clients, cells[i].qps, cells[i].p99_ms,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
