// Multi-tenant serving: aggregate QPS and p99 latency of a ServiceHost at
// 1/4/8 tenants sharing one worker pool and cache budget, plus a hot-tenant
// isolation cell: a victim tenant's latency and success rate while a
// neighbour floods the host, with admission control capping the aggressor.
//
//   $ ./build/bench/bench_multitenant [seconds-per-cell] [--json <path>]
//                                     [--mode=static|adaptive|both]
//
// Every tenant serves the same MAS workload (one client thread each,
// synchronous requests, warm caches), so aggregate throughput across the
// tenant counts shows the cost of tenancy itself: per-tenant caches stay
// independent, the pool and cache budget are shared. The isolation cell
// runs two tenants — a victim issuing steady sync traffic and an aggressor
// burst-submitting async work under a small admission cap — and reports the
// victim's p99 against its tenants=1 baseline plus the aggressor's
// admitted/rejected split.
//
// The hot-tenant *partitioning* cell (--mode) compares static equal cache
// shares against the measurement-driven adaptive controller: a hot tenant
// cycles a working set larger than its static half of the cache budget (so
// equal shares thrash: cyclic LRU over 32 keys in a 24-entry cache never
// hits), while a throttled victim shares the two-worker pool. Statically,
// every hot request recomputes and the victim's async requests queue behind
// those computations; adaptively, the controller grows the hot tenant's
// share past its working set (the victim's floor share still covers ITS
// working set), hot traffic collapses to cache hits, and the victim's p99
// and the aggregate hit rate both improve. Reported per mode so the claim
// is measured, not asserted.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datasets/dataset.h"
#include "service/tenant_registry.h"

using namespace templar;
using bench::BuildWorkload;
using bench::IssueAll;
using bench::Request;

namespace {

double Percentile(std::vector<double>& latencies_us, double p) {
  if (latencies_us.empty()) return 0;
  const size_t rank = std::min(
      latencies_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies_us.size())));
  std::nth_element(latencies_us.begin(), latencies_us.begin() + rank,
                   latencies_us.end());
  return latencies_us[rank];
}

struct CellResult {
  int tenants = 0;
  double aggregate_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// One client thread per tenant, each replaying the workload against its
/// own handle for `seconds`; returns aggregate QPS plus pooled latency
/// percentiles.
CellResult RunTenantCell(const datasets::Dataset& dataset,
                         const std::vector<Request>& requests, int tenants,
                         double seconds) {
  service::HostOptions options;
  options.worker_threads = 4;
  options.map_cache_budget = 4096;
  options.join_cache_budget = 4096;
  service::ServiceHost host(options);
  std::vector<service::TenantHandle> handles;
  for (int t = 0; t < tenants; ++t) {
    std::string id = "tenant" + std::to_string(t);
    Status status = host.RegisterTenant(id, dataset.database.get(),
                                        dataset.lexicon.get(),
                                        dataset.extra_log);
    if (!status.ok()) {
      std::fprintf(stderr, "register: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    auto handle = host.Tenant(id);
    if (!handle.ok()) std::exit(1);
    IssueAll(*handle, requests);  // Warm this tenant's cache share.
    handles.push_back(*handle);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::vector<double>> latencies(tenants);
  std::vector<std::thread> clients;
  clients.reserve(tenants);
  for (int t = 0; t < tenants; ++t) {
    clients.emplace_back([&, t] {
      auto& local = latencies[t];
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Request& request = requests[i++ % requests.size()];
        auto begin = std::chrono::steady_clock::now();
        if (request.is_map) {
          (void)handles[t].MapKeywords(request.nlq);
        } else {
          (void)handles[t].InferJoins(request.bag);
        }
        local.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - begin)
                            .count());
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& client : clients) client.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> pooled;
  for (auto& local : latencies) {
    pooled.insert(pooled.end(), local.begin(), local.end());
  }
  CellResult result;
  result.tenants = tenants;
  result.aggregate_qps = static_cast<double>(completed.load()) / elapsed;
  result.p50_us = Percentile(pooled, 0.50);
  result.p99_us = Percentile(pooled, 0.99);
  return result;
}

struct IsolationResult {
  double victim_alone_p99_us = 0;  ///< Victim's p99 with no neighbour.
  double victim_p99_us = 0;        ///< Victim's p99 under the flood.
  uint64_t victim_errors = 0;
  uint64_t aggressor_admitted = 0;
  uint64_t aggressor_rejected = 0;
};

/// Victim: steady sync traffic. Aggressor: a flood of async submissions
/// under a tight admission cap. Reported: the victim's p99 (vs running
/// alone) and how much of the flood admission control turned away.
IsolationResult RunIsolationCell(const datasets::Dataset& dataset,
                                 const std::vector<Request>& requests,
                                 double seconds) {
  IsolationResult result;
  for (int with_aggressor = 0; with_aggressor <= 1; ++with_aggressor) {
    service::HostOptions options;
    options.worker_threads = 2;
    service::ServiceHost host(options);
    if (!host.RegisterTenant("victim", dataset.database.get(),
                             dataset.lexicon.get(), dataset.extra_log)
             .ok()) {
      std::exit(1);
    }
    service::TenantOptions aggressor_options;
    aggressor_options.admission = service::AdmissionOptions{
        /*max_inflight=*/1, /*max_queued=*/8};
    if (with_aggressor &&
        !host.RegisterTenant("aggressor", dataset.database.get(),
                             dataset.lexicon.get(), dataset.extra_log,
                             aggressor_options)
             .ok()) {
      std::exit(1);
    }
    auto victim = host.Tenant("victim");
    if (!victim.ok()) std::exit(1);
    IssueAll(*victim, requests);

    std::atomic<bool> stop{false};
    std::thread aggressor_thread;
    if (with_aggressor) {
      aggressor_thread = std::thread([&] {
        auto handle = host.Tenant("aggressor");
        if (!handle.ok()) return;
        size_t i = 0;
        std::vector<std::future<Result<std::vector<core::Configuration>>>>
            inflight;
        while (!stop.load(std::memory_order_relaxed)) {
          const Request& request = requests[i++ % requests.size()];
          if (request.is_map) {
            inflight.push_back(handle->MapKeywordsAsync(request.nlq));
          }
          if (inflight.size() >= 16) {
            for (auto& f : inflight) (void)f.get();
            inflight.clear();
            // Keep the flood expensive: appending to *itself* sweeps the
            // aggressor's caches (and only those — invalidation is
            // tenant-scoped), so admitted requests keep recomputing while
            // the victim's cache stays warm next door.
            (void)handle->AppendLogQueries(
                {dataset.extra_log[i % dataset.extra_log.size()]});
          }
        }
        for (auto& f : inflight) (void)f.get();
      });
    }

    std::vector<double> victim_latencies;
    uint64_t errors = 0;
    std::thread victim_thread([&] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Request& request = requests[i++ % requests.size()];
        auto begin = std::chrono::steady_clock::now();
        bool ok = request.is_map
                      ? victim->MapKeywords(request.nlq).ok()
                      : victim->InferJoins(request.bag).ok();
        victim_latencies.push_back(std::chrono::duration<double, std::micro>(
                                       std::chrono::steady_clock::now() -
                                       begin)
                                       .count());
        if (!ok) ++errors;
      }
    });
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true);
    victim_thread.join();
    if (aggressor_thread.joinable()) aggressor_thread.join();

    if (with_aggressor) {
      result.victim_p99_us = Percentile(victim_latencies, 0.99);
      result.victim_errors = errors;
      auto aggressor = host.Tenant("aggressor");
      if (aggressor.ok()) {
        service::AdmissionStats stats = aggressor->Stats().admission;
        result.aggressor_admitted = stats.admitted;
        result.aggressor_rejected = stats.rejected;
      }
    } else {
      result.victim_alone_p99_us = Percentile(victim_latencies, 0.99);
    }
  }
  return result;
}

struct HotTenantResult {
  bool ran = false;
  double victim_p99_us = 0;       ///< Victim async p99 over the window.
  double aggregate_hit_rate = 0;  ///< Both tenants' map-cache delta.
  double hot_hit_rate = 0;
  size_t hot_cache_capacity = 0;  ///< Hot tenant's map-cache share at end.
  uint64_t victim_samples = 0;
};

/// Runs the hot-tenant partitioning cell in one mode. `map_requests` must
/// hold distinct-cache-key map requests; the hot tenant cycles the first
/// `hot_n`, the victim the first `victim_n` (separate tenants, so shared
/// keys never share cache entries).
HotTenantResult RunHotTenantCell(const datasets::Dataset& dataset,
                                 const std::vector<Request>& map_requests,
                                 bool adaptive, double seconds) {
  HotTenantResult result;
  const size_t victim_n = 4;
  if (map_requests.size() < victim_n + 8) {
    std::fprintf(stderr, "hot-tenant cell: workload too small (%zu)\n",
                 map_requests.size());
    return result;
  }
  const size_t hot_n = std::min<size_t>(32, map_requests.size() - victim_n);
  // Budget chosen so the static half-share thrashes (budget/2 < hot_n) and
  // the adaptive share clears the working set (floor 25% leaves 75% to
  // split by traffic; hot traffic dominates, so its share approaches
  // 0.125*budget + 0.75*budget > hot_n).
  const size_t budget = hot_n + hot_n / 2;

  service::HostOptions options;
  options.worker_threads = 2;
  options.map_cache_budget = budget;
  options.join_cache_budget = budget;
  options.translate_cache_budget = budget;
  // One shard: SetCapacity's per-shard floor (>=1 entry per shard) would
  // otherwise round tiny shares up and blur the static/adaptive contrast.
  options.cache_shards = 1;
  options.default_admission =
      service::AdmissionOptions{/*max_inflight=*/32, /*max_queued=*/256};
  if (adaptive) {
    options.adaptive.period = std::chrono::milliseconds(25);
    options.adaptive.cache_floor_share = 0.25;
    options.adaptive.target_queue_wait_p99 = std::chrono::milliseconds(2);
  }
  service::ServiceHost host(options);
  for (const char* id : {"hot", "victim"}) {
    if (!host.RegisterTenant(id, dataset.database.get(),
                             dataset.lexicon.get(), dataset.extra_log)
             .ok()) {
      std::exit(1);
    }
  }
  auto hot = host.Tenant("hot");
  auto victim = host.Tenant("victim");
  if (!hot.ok() || !victim.ok()) std::exit(1);

  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};

  // Hot tenant: batches of async map requests cycling a working set the
  // static share cannot hold.
  std::thread hot_thread([&] {
    size_t i = 0;
    std::vector<std::future<Result<std::vector<core::Configuration>>>>
        inflight;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int b = 0; b < 16; ++b) {
        inflight.push_back(
            hot->MapKeywordsAsync(map_requests[i++ % hot_n].nlq));
      }
      for (auto& f : inflight) (void)f.get();
      inflight.clear();
    }
  });

  // Victim: one throttled async request at a time; its latency (submit to
  // future-ready) includes the queue wait behind the hot tenant's work.
  std::vector<double> victim_latencies;
  std::thread victim_thread([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Request& request = map_requests[i++ % victim_n];
      auto begin = std::chrono::steady_clock::now();
      (void)victim->MapKeywordsAsync(request.nlq).get();
      double us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
      if (measuring.load(std::memory_order_relaxed)) {
        victim_latencies.push_back(us);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Warm-up: caches fill and (in adaptive mode) the controller converges.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::max(0.5, seconds * 0.5)));
  auto window_start_hot = hot->Stats().map_cache;
  auto window_start_victim = victim->Stats().map_cache;
  measuring.store(true);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  hot_thread.join();
  victim_thread.join();

  auto window_end_hot = hot->Stats().map_cache;
  auto window_end_victim = victim->Stats().map_cache;
  const double hot_hits =
      static_cast<double>(window_end_hot.hits - window_start_hot.hits);
  const double hot_misses =
      static_cast<double>(window_end_hot.misses - window_start_hot.misses);
  const double victim_hits =
      static_cast<double>(window_end_victim.hits - window_start_victim.hits);
  const double victim_misses = static_cast<double>(
      window_end_victim.misses - window_start_victim.misses);
  const double total = hot_hits + hot_misses + victim_hits + victim_misses;

  result.ran = true;
  result.victim_p99_us = Percentile(victim_latencies, 0.99);
  result.aggregate_hit_rate =
      total == 0 ? 0.0 : (hot_hits + victim_hits) / total;
  result.hot_hit_rate = (hot_hits + hot_misses) == 0
                            ? 0.0
                            : hot_hits / (hot_hits + hot_misses);
  result.hot_cache_capacity = window_end_hot.capacity;
  result.victim_samples = victim_latencies.size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  std::string json_path;
  bool run_static = true;
  bool run_adaptive = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      const char* mode = argv[i] + 7;
      run_static = std::strcmp(mode, "static") == 0 ||
                   std::strcmp(mode, "both") == 0;
      run_adaptive = std::strcmp(mode, "adaptive") == 0 ||
                     std::strcmp(mode, "both") == 0;
      if (!run_static && !run_adaptive) {
        std::fprintf(stderr, "--mode must be static, adaptive, or both\n");
        return 2;
      }
    } else if (std::atof(argv[i]) > 0) {
      seconds = std::atof(argv[i]);
    }
  }

  std::printf("== ServiceHost multi-tenant throughput ==\n");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  auto dataset = datasets::BuildMas();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::vector<Request> requests = BuildWorkload(*dataset, 64);
  std::printf("workload: %zu requests (MAS gold parses + bags), "
              "%.2fs per cell\n\n",
              requests.size(), seconds);

  const int tenant_counts[] = {1, 4, 8};
  std::vector<CellResult> cells;
  for (int tenants : tenant_counts) {
    CellResult cell = RunTenantCell(*dataset, requests, tenants, seconds);
    std::printf(
        "  %d tenant%s: %10.0f aggregate QPS   p50 %7.1f us   p99 %8.1f us\n",
        tenants, tenants == 1 ? " " : "s", cell.aggregate_qps, cell.p50_us,
        cell.p99_us);
    cells.push_back(cell);
  }

  // Distinct map-only requests for the partitioning cell: the hot tenant's
  // thrash construction needs every key to be a distinct cache entry.
  std::vector<Request> distinct_requests =
      BuildWorkload(*dataset, 256, /*distinct_cache_keys=*/true);
  std::vector<Request> map_requests;
  for (const Request& request : distinct_requests) {
    if (request.is_map) map_requests.push_back(request);
  }

  HotTenantResult hot_static;
  HotTenantResult hot_adaptive;
  std::printf("\nhot-tenant cache partitioning (hot cycles a working set "
              "larger than its\nstatic half-share; victim throttled on the "
              "shared 2-worker pool):\n");
  auto print_hot = [](const char* label, const HotTenantResult& r) {
    std::printf("  %-8s victim p99 %9.1f us (%llu samples) | aggregate hit "
                "rate %5.1f%% | hot hit rate %5.1f%% | hot cache %zu "
                "entries\n",
                label, r.victim_p99_us,
                static_cast<unsigned long long>(r.victim_samples),
                100.0 * r.aggregate_hit_rate, 100.0 * r.hot_hit_rate,
                r.hot_cache_capacity);
  };
  if (run_static) {
    hot_static = RunHotTenantCell(*dataset, map_requests,
                                  /*adaptive=*/false, seconds);
    if (hot_static.ran) print_hot("static", hot_static);
  }
  if (run_adaptive) {
    hot_adaptive = RunHotTenantCell(*dataset, map_requests,
                                    /*adaptive=*/true, seconds);
    if (hot_adaptive.ran) print_hot("adaptive", hot_adaptive);
  }
  if (hot_static.ran && hot_adaptive.ran) {
    const bool p99_better =
        hot_adaptive.victim_p99_us < hot_static.victim_p99_us;
    const bool hits_better =
        hot_adaptive.aggregate_hit_rate > hot_static.aggregate_hit_rate;
    std::printf("  adaptive vs static: victim p99 %s, aggregate hit rate "
                "%s\n",
                p99_better ? "improved" : "NOT improved",
                hits_better ? "improved" : "NOT improved");
  }

  IsolationResult isolation = RunIsolationCell(*dataset, requests, seconds);
  std::printf(
      "\nhot-tenant isolation (victim p99, cap on aggressor 1 in-flight / "
      "8 queued):\n"
      "  alone %8.1f us | flooded %8.1f us | victim errors %llu\n"
      "  aggressor admitted %llu, rejected %llu (%.0f%% turned away)\n",
      isolation.victim_alone_p99_us, isolation.victim_p99_us,
      static_cast<unsigned long long>(isolation.victim_errors),
      static_cast<unsigned long long>(isolation.aggressor_admitted),
      static_cast<unsigned long long>(isolation.aggressor_rejected),
      isolation.aggressor_admitted + isolation.aggressor_rejected == 0
          ? 0.0
          : 100.0 * static_cast<double>(isolation.aggressor_rejected) /
                static_cast<double>(isolation.aggressor_admitted +
                                    isolation.aggressor_rejected));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"multitenant\",\n"
                 "  \"seconds_per_cell\": %.3f,\n"
                 "  \"hardware_threads\": %u,\n  \"cells\": [\n",
                 seconds, std::thread::hardware_concurrency());
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(f,
                   "    {\"tenants\": %d, \"aggregate_qps\": %.1f, "
                   "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   cells[i].tenants, cells[i].aggregate_qps, cells[i].p50_us,
                   cells[i].p99_us, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"isolation\": {\"victim_alone_p99_us\": %.1f, "
                 "\"victim_flooded_p99_us\": %.1f, \"victim_errors\": %llu, "
                 "\"aggressor_admitted\": %llu, \"aggressor_rejected\": "
                 "%llu},\n",
                 isolation.victim_alone_p99_us, isolation.victim_p99_us,
                 static_cast<unsigned long long>(isolation.victim_errors),
                 static_cast<unsigned long long>(isolation.aggressor_admitted),
                 static_cast<unsigned long long>(isolation.aggressor_rejected));
    std::fprintf(f, "  \"hot_tenant\": {");
    auto hot_json = [f](const char* mode, const HotTenantResult& r,
                        const char* suffix) {
      std::fprintf(f,
                   "\n    \"%s\": {\"victim_p99_us\": %.1f, "
                   "\"aggregate_hit_rate\": %.4f, \"hot_hit_rate\": %.4f, "
                   "\"hot_cache_capacity\": %zu, \"victim_samples\": "
                   "%llu}%s",
                   mode, r.victim_p99_us, r.aggregate_hit_rate,
                   r.hot_hit_rate, r.hot_cache_capacity,
                   static_cast<unsigned long long>(r.victim_samples), suffix);
    };
    if (hot_static.ran) {
      hot_json("static", hot_static, hot_adaptive.ran ? "," : "");
    }
    if (hot_adaptive.ran) hot_json("adaptive", hot_adaptive, "");
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
