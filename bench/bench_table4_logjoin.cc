// Reproduces Table IV: FQ accuracy of Pipeline+ with the log-driven Join
// Path Generator deactivated (LogJoin = N: unit edge weights, i.e. shortest
// join paths) vs activated (LogJoin = Y: w_L = 1 - Dice).

#include <cstdio>

#include "datasets/dataset.h"
#include "eval/evaluator.h"

using namespace templar;

int main(int argc, char** argv) {
  std::vector<datasets::Dataset> all;
  if (argc > 1) {
    auto ds = datasets::BuildByName(argv[1]);
    if (!ds.ok()) {
      std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
      return 1;
    }
    all.push_back(std::move(*ds));
  } else {
    auto built = datasets::BuildAll();
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
      return 1;
    }
    all = std::move(*built);
  }

  struct PaperRow {
    const char* dataset;
    double no;
    double yes;
  };
  const PaperRow kPaper[] = {
      {"MAS", 68.6, 76.3}, {"Yelp", 68.5, 85.0}, {"IMDB", 60.9, 64.8}};

  std::printf(
      "Table IV: improvement from activating log-based joins in Pipeline+\n");
  std::printf("%-6s %-8s %8s %8s\n", "Data", "LogJoin", "FQ meas", "FQ paper");
  std::printf("----------------------------------\n");
  for (const auto& ds : all) {
    for (bool logjoin : {false, true}) {
      eval::EvalOptions options;
      options.logjoin = logjoin;
      auto result =
          eval::EvaluateSystem(ds, eval::SystemKind::kPipelinePlus, options);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      double paper = 0;
      for (const auto& row : kPaper) {
        if (ds.name == row.dataset) paper = logjoin ? row.yes : row.no;
      }
      std::printf("%-6s %-8s %8.1f %8.1f\n", ds.name.c_str(),
                  logjoin ? "Y" : "N", result->scores.FqPct(), paper);
    }
    std::printf("----------------------------------\n");
  }
  return 0;
}
