// Ablation over the query-fragment obscurity level (Sec. IV). The paper
// states all three levels improve on the baseline and reports only
// NoConstOp (its best); this bench quantifies the spread.

#include <cstdio>

#include "datasets/dataset.h"
#include "eval/evaluator.h"

using namespace templar;

int main(int argc, char** argv) {
  std::vector<datasets::Dataset> all;
  if (argc > 1) {
    auto ds = datasets::BuildByName(argv[1]);
    if (!ds.ok()) {
      std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
      return 1;
    }
    all.push_back(std::move(*ds));
  } else {
    auto built = datasets::BuildAll();
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
      return 1;
    }
    all = std::move(*built);
  }

  std::printf("Ablation: Pipeline+ FQ accuracy (%%) per obscurity level\n");
  std::printf("(paper: all levels improve on the baseline; NoConstOp best)\n");
  std::printf("%-6s %10s %10s %10s %10s\n", "Data", "baseline", "Full",
              "NoConst", "NoConstOp");
  std::printf("--------------------------------------------------\n");
  for (const auto& ds : all) {
    eval::EvalOptions base_options;
    auto baseline =
        eval::EvaluateSystem(ds, eval::SystemKind::kPipeline, base_options);
    if (!baseline.ok()) return 1;
    std::printf("%-6s %10.1f", ds.name.c_str(), baseline->scores.FqPct());
    for (auto level :
         {qfg::ObscurityLevel::kFull, qfg::ObscurityLevel::kNoConst,
          qfg::ObscurityLevel::kNoConstOp}) {
      eval::EvalOptions options;
      options.templar.obscurity = level;
      auto result =
          eval::EvaluateSystem(ds, eval::SystemKind::kPipelinePlus, options);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf(" %10.1f", result->scores.FqPct());
    }
    std::printf("\n");
  }
  return 0;
}
