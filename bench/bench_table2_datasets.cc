// Reproduces Table II: statistics of each benchmark dataset, printed beside
// the paper's values. Size differs by construction (the paper's databases
// are multi-GB production dumps; ours are synthetic in-memory equivalents —
// DESIGN.md documents the substitution); the schema statistics and query
// counts match exactly.

#include <cstdio>

#include "datasets/dataset.h"

using namespace templar;

int main() {
  auto all = datasets::BuildAll();
  if (!all.ok()) {
    std::fprintf(stderr, "error: %s\n", all.status().ToString().c_str());
    return 1;
  }
  std::printf("Table II: statistics of each benchmark dataset\n");
  std::printf("%-6s %14s %6s %6s %6s %8s   %s\n", "Data", "Size", "Rels",
              "Attrs", "FK-PK", "Queries", "(paper: size/rels/attrs/fk/q)");
  std::printf("---------------------------------------------------------------"
              "----------\n");
  for (const auto& ds : *all) {
    double size_mb =
        static_cast<double>(ds.database->ApproximateSizeBytes()) / 1e6;
    std::printf("%-6s %11.2f MB %6zu %6zu %6zu %8zu   (%.1f GB / %d / %d / %d "
                "/ %d)\n",
                ds.name.c_str(), size_mb,
                ds.database->catalog().relations().size(),
                ds.database->catalog().attribute_count(),
                ds.database->catalog().foreign_keys().size(),
                ds.benchmark.size(), ds.paper.size_gb, ds.paper.relations,
                ds.paper.attributes, ds.paper.fk_pk, ds.paper.queries);
  }
  return 0;
}
