// Microbenchmarks (google-benchmark): the per-component costs behind
// Templar's end-to-end latency — SQL parsing, fragment extraction, QFG
// construction and Dice lookup, Steiner search, schema forking, keyword
// mapping, and full translation.

#include <benchmark/benchmark.h>

#include "core/templar.h"
#include "datasets/dataset.h"
#include "graph/fork.h"
#include "graph/steiner.h"
#include "nlidb/nlidb.h"
#include "qfg/query_fragment_graph.h"
#include "sql/parser.h"

namespace {

using namespace templar;

const datasets::Dataset& Mas() {
  static datasets::Dataset* ds = [] {
    auto built = datasets::BuildMas();
    if (!built.ok()) std::abort();
    return new datasets::Dataset(std::move(*built));
  }();
  return *ds;
}

const char* kSampleSql =
    "SELECT p.title FROM publication p, publication_keyword pk, keyword k, "
    "domain_keyword dk, domain d WHERE d.name = 'Databases' AND p.pid = "
    "pk.pid AND k.kid = pk.kid AND dk.kid = k.kid AND dk.did = d.did";

void BM_SqlParse(benchmark::State& state) {
  for (auto _ : state) {
    auto q = sql::Parse(kSampleSql);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_SqlParse);

void BM_FragmentExtraction(benchmark::State& state) {
  auto q = sql::Parse(kSampleSql);
  for (auto _ : state) {
    auto frags =
        qfg::ExtractFragments(*q, qfg::ObscurityLevel::kNoConstOp);
    benchmark::DoNotOptimize(frags);
  }
}
BENCHMARK(BM_FragmentExtraction);

void BM_QfgBuild(benchmark::State& state) {
  const auto& log = Mas().extra_log;
  for (auto _ : state) {
    qfg::QueryFragmentGraph graph(qfg::ObscurityLevel::kNoConstOp);
    for (const auto& entry : log) {
      benchmark::DoNotOptimize(graph.AddQuerySql(entry));
    }
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_QfgBuild);

void BM_DiceLookup(benchmark::State& state) {
  qfg::QueryFragmentGraph graph(qfg::ObscurityLevel::kNoConstOp);
  for (const auto& entry : Mas().extra_log) {
    (void)graph.AddQuerySql(entry);
  }
  qfg::QueryFragment a = qfg::SelectFragment("publication", "title");
  qfg::QueryFragment b{qfg::FragmentContext::kWhere,
                       "domain.name ?op ?val"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.Dice(a, b));
  }
}
BENCHMARK(BM_DiceLookup);

void BM_SteinerUnitWeights(benchmark::State& state) {
  auto schema = graph::SchemaGraph::FromCatalog(Mas().database->catalog());
  for (auto _ : state) {
    auto paths =
        graph::FindJoinPaths(schema, {"publication", "domain", "author"});
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_SteinerUnitWeights);

void BM_SchemaFork(benchmark::State& state) {
  auto schema = graph::SchemaGraph::FromCatalog(Mas().database->catalog());
  for (auto _ : state) {
    graph::SchemaGraph working = schema;
    benchmark::DoNotOptimize(graph::ForkRelation(&working, "author", 1));
  }
}
BENCHMARK(BM_SchemaFork);

void BM_FulltextSearch(benchmark::State& state) {
  auto index = text::FulltextIndex::Build(*Mas().database);
  std::vector<std::string> stems = {"databas"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(stems));
  }
}
BENCHMARK(BM_FulltextSearch);

std::unique_ptr<nlidb::PipelineSystem>& AugmentedSystem() {
  static auto* sys = [] {
    nlidb::PipelineConfig config;
    config.templar_keywords = true;
    config.templar_joins = true;
    auto built = nlidb::PipelineSystem::Build(
        Mas().database.get(), Mas().lexicon.get(), Mas().extra_log, config);
    if (!built.ok()) std::abort();
    return new std::unique_ptr<nlidb::PipelineSystem>(std::move(*built));
  }();
  return *sys;
}

nlq::ParsedNlq SampleNlq() {
  nlq::ParsedNlq parsed;
  parsed.original = "Return the papers in the Databases domain";
  nlq::AnnotatedKeyword papers;
  papers.text = "papers";
  papers.metadata.context = qfg::FragmentContext::kSelect;
  nlq::AnnotatedKeyword value;
  value.text = "Databases";
  value.metadata.context = qfg::FragmentContext::kWhere;
  value.metadata.op = sql::BinaryOp::kEq;
  parsed.keywords = {papers, value};
  return parsed;
}

void BM_MapKeywords(benchmark::State& state) {
  const auto& sys = AugmentedSystem();
  auto parsed = SampleNlq();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->templar().MapKeywords(parsed));
  }
}
BENCHMARK(BM_MapKeywords);

void BM_InferJoins(benchmark::State& state) {
  const auto& sys = AugmentedSystem();
  std::vector<std::string> bag = {"publication", "domain"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->templar().InferJoins(bag));
  }
}
BENCHMARK(BM_InferJoins);

void BM_EndToEndTranslate(benchmark::State& state) {
  const auto& sys = AugmentedSystem();
  auto parsed = SampleNlq();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->Translate(parsed));
  }
}
BENCHMARK(BM_EndToEndTranslate);

}  // namespace

BENCHMARK_MAIN();
