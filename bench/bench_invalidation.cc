// Cache invalidation under online ingestion: interleaves AppendLogQueries
// batches with the MAS request workload (map + join + end-to-end translate
// traffic) and measures how much of the warm cache each invalidation policy
// preserves across an append, plus the single-flight coalescing behaviour
// on a duplicate burst.
//
//   $ ./build/bench/bench_invalidation [rounds] [--json <path>]
//
// Three arms:
//   - epoch_drop: every append invalidates every cache entry (the legacy
//     policy) — post-append hit rate 0 by construction.
//   - per_fragment_consulted: selective invalidation, but with join
//     footprints recording every relation whose w_L the Steiner search
//     *consulted* — on a connected schema nearly the whole graph, so join
//     and translate entries still die on almost every append. This was the
//     default before decisive-edge footprints; it survives as the
//     conservative reference.
//   - per_fragment: selective invalidation with *decisive-edge* join
//     footprints (the default): entries record only the endpoints of the
//     edges that decided their ranking, so appends elsewhere in the schema
//     keep them warm.
//
// Per-cache retained rates (retained / (retained + invalidated) across all
// append sweeps) are the headline cells: map-cache retention is the same in
// both per_fragment arms; join and translate retention is where decisive
// footprints move the number.
//
// Two append streams bound the effect: a *narrow* stream of key-only
// queries that almost no ranking depends on, and the *workload* stream of
// realistic MAS log entries.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datasets/dataset.h"
#include "service/templar_service.h"

using namespace templar;
using bench::BuildWorkload;
using bench::IssueAll;
using bench::Request;

namespace {

uint64_t TotalHits(const service::ServiceStats& stats) {
  return stats.map_cache.hits + stats.join_cache.hits +
         stats.translate_cache.hits;
}

struct CacheCell {
  uint64_t invalidated = 0;
  uint64_t retained = 0;
  double retained_rate = 0;  // retained / (retained + invalidated).
};

CacheCell MakeCacheCell(const service::LruCacheStats& stats) {
  CacheCell cell;
  cell.invalidated = stats.invalidated;
  cell.retained = stats.retained;
  const uint64_t swept = stats.invalidated + stats.retained;
  cell.retained_rate =
      swept == 0 ? 0 : static_cast<double>(stats.retained) / swept;
  return cell;
}

struct PolicyResult {
  double post_append_hit_rate = 0;  // Hits per request in post-append passes.
  // Aggregates across the three caches (legacy cells, kept for trends).
  uint64_t invalidated = 0;
  uint64_t retained = 0;
  uint64_t computations = 0;
  // Per-cache sweep outcomes.
  CacheCell map;
  CacheCell join;
  CacheCell translate;
};

/// Warm every request once, then `rounds` times: append a batch, replay the
/// whole request set, and count how many replies still came from the cache.
PolicyResult RunPolicy(const datasets::Dataset& dataset,
                       const std::vector<Request>& requests,
                       const std::vector<std::string>& append_stream,
                       service::InvalidationPolicy policy,
                       bool consult_everything, int rounds,
                       size_t append_batch) {
  if (append_stream.empty()) return {};
  service::ServiceOptions options;
  options.worker_threads = 2;
  options.invalidation = policy;
  options.templar.joins.consult_everything_footprint = consult_everything;
  auto service = service::TemplarService::Create(
      dataset.database.get(), dataset.lexicon.get(), dataset.extra_log,
      options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    std::exit(1);
  }
  IssueAll(**service, requests);  // Warm pass.

  uint64_t post_append_hits = 0;
  uint64_t post_append_requests = 0;
  size_t stream_pos = 0;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::string> batch;
    for (size_t i = 0; i < append_batch; ++i) {
      batch.push_back(append_stream[stream_pos++ % append_stream.size()]);
    }
    (void)(*service)->AppendLogQueries(batch);

    uint64_t hits_before = TotalHits((*service)->Stats());
    IssueAll(**service, requests);
    post_append_hits += TotalHits((*service)->Stats()) - hits_before;
    post_append_requests += requests.size();
  }

  service::ServiceStats stats = (*service)->Stats();
  PolicyResult result;
  result.post_append_hit_rate =
      post_append_requests == 0
          ? 0
          : static_cast<double>(post_append_hits) /
                static_cast<double>(post_append_requests);
  result.map = MakeCacheCell(stats.map_cache);
  result.join = MakeCacheCell(stats.join_cache);
  result.translate = MakeCacheCell(stats.translate_cache);
  result.invalidated = result.map.invalidated + result.join.invalidated +
                       result.translate.invalidated;
  result.retained =
      result.map.retained + result.join.retained + result.translate.retained;
  result.computations = stats.map_computations + stats.join_computations +
                        stats.translate_computations;
  return result;
}

struct CoalesceResult {
  int clients = 0;
  uint64_t computations = 0;
  uint64_t coalesced_hits = 0;
  uint64_t cache_hits = 0;
};

/// Duplicate burst on a cold key: all clients request the same NLQ at once.
CoalesceResult RunCoalesceBurst(const datasets::Dataset& dataset,
                                const std::vector<Request>& requests) {
  CoalesceResult result;
  result.clients = 8;
  service::ServiceOptions options;
  options.worker_threads = 2;
  auto service = service::TemplarService::Create(
      dataset.database.get(), dataset.lexicon.get(), dataset.extra_log,
      options);
  if (!service.ok()) std::exit(1);

  const Request* map_request = nullptr;
  for (const auto& r : requests) {
    if (r.kind == Request::Kind::kMap) {
      map_request = &r;
      break;
    }
  }
  if (map_request == nullptr) return result;

  std::atomic<int> ready{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < result.clients; ++c) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < result.clients) std::this_thread::yield();
      (void)(*service)->MapKeywords(map_request->nlq);
    });
  }
  for (auto& t : clients) t.join();

  service::ServiceStats stats = (*service)->Stats();
  result.computations = stats.map_computations;
  result.coalesced_hits = stats.map_coalesced_hits;
  result.cache_hits = stats.map_cache.hits;
  return result;
}

void PrintCacheCell(const char* name, const CacheCell& cell) {
  std::printf("      %-9s retained %5llu / invalidated %5llu  rate %.3f\n",
              name, static_cast<unsigned long long>(cell.retained),
              static_cast<unsigned long long>(cell.invalidated),
              cell.retained_rate);
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 8;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      int parsed = std::atoi(argv[i]);
      if (parsed > 0) rounds = parsed;
    }
  }

  std::printf("== TemplarService cache invalidation ==\n");
  auto dataset = datasets::BuildMas();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  // Distinct-by-cache-key: see bench_common.h on why duplicates would blur
  // the policy comparison. Translate traffic included: its union footprint
  // is where narrowed join footprints pay off end-to-end.
  std::vector<Request> requests =
      BuildWorkload(*dataset, 96, /*distinct_cache_keys=*/true,
                    /*include_translate=*/true);
  std::printf("workload: %zu distinct requests, %d append rounds\n\n",
              requests.size(), rounds);

  // Narrow stream: key scans over the pendant profile tables
  // (author_profile, conference_instance) that no gold ranking's decisive
  // edge set touches — a realistic "side-table traffic" ingest pattern.
  // (The earlier choice, cite scans, turned out not to be narrow at all:
  // cite edges are publication<->publication detours, so the banned-wave
  // alternatives of almost every gold bag genuinely traverse them.)
  // Workload stream: realistic MAS log entries that overlap many footprints.
  std::vector<std::string> narrow_stream;
  for (int i = 0; i < 16; ++i) {
    narrow_stream.push_back(
        i % 2 == 0
            ? "SELECT p.email FROM author_profile p WHERE p.aid = " +
                  std::to_string(i)
            : "SELECT ci.year FROM conference_instance ci WHERE ci.cid = " +
                  std::to_string(i));
  }
  const std::vector<std::string>& workload_stream = dataset->extra_log;

  struct Cell {
    const char* stream;
    const char* policy;
    PolicyResult result;
  };
  std::vector<Cell> cells;
  const std::pair<const char*, const std::vector<std::string>*> streams[] = {
      {"narrow", &narrow_stream}, {"workload", &workload_stream}};
  struct PolicyArm {
    const char* name;
    service::InvalidationPolicy policy;
    bool consult_everything;
  };
  const PolicyArm policies[] = {
      {"epoch_drop", service::InvalidationPolicy::kEpochDrop, false},
      {"per_fragment_consulted", service::InvalidationPolicy::kPerFragment,
       true},
      {"per_fragment", service::InvalidationPolicy::kPerFragment, false},
  };
  for (const auto& [stream_name, stream] : streams) {
    for (const auto& arm : policies) {
      PolicyResult r =
          RunPolicy(*dataset, requests, *stream, arm.policy,
                    arm.consult_everything, rounds, /*append_batch=*/4);
      std::printf(
          "  %-8s appends, %-22s: post-append hit rate %.3f  "
          "(invalidated %llu, retained %llu, computations %llu)\n",
          stream_name, arm.name, r.post_append_hit_rate,
          static_cast<unsigned long long>(r.invalidated),
          static_cast<unsigned long long>(r.retained),
          static_cast<unsigned long long>(r.computations));
      if (arm.policy == service::InvalidationPolicy::kPerFragment) {
        PrintCacheCell("map", r.map);
        PrintCacheCell("join", r.join);
        PrintCacheCell("translate", r.translate);
      }
      cells.push_back({stream_name, arm.name, r});
    }
  }

  CoalesceResult burst = RunCoalesceBurst(*dataset, requests);
  std::printf(
      "\nduplicate burst (%d clients, 1 cold key): %llu computation(s), "
      "%llu coalesced, %llu cache hits\n",
      burst.clients, static_cast<unsigned long long>(burst.computations),
      static_cast<unsigned long long>(burst.coalesced_hits),
      static_cast<unsigned long long>(burst.cache_hits));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"invalidation\",\n  \"rounds\": %d,\n"
                 "  \"requests\": %zu,\n  \"cells\": [\n",
                 rounds, requests.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(
          f,
          "    {\"append_stream\": \"%s\", \"policy\": \"%s\", "
          "\"post_append_hit_rate\": %.4f, \"invalidated\": %llu, "
          "\"retained\": %llu, \"computations\": %llu,\n"
          "     \"map_retained_rate\": %.4f, "
          "\"join_retained_rate\": %.4f, "
          "\"translate_retained_rate\": %.4f,\n"
          "     \"map_retained\": %llu, \"map_invalidated\": %llu, "
          "\"join_retained\": %llu, \"join_invalidated\": %llu, "
          "\"translate_retained\": %llu, \"translate_invalidated\": "
          "%llu}%s\n",
          c.stream, c.policy, c.result.post_append_hit_rate,
          static_cast<unsigned long long>(c.result.invalidated),
          static_cast<unsigned long long>(c.result.retained),
          static_cast<unsigned long long>(c.result.computations),
          c.result.map.retained_rate, c.result.join.retained_rate,
          c.result.translate.retained_rate,
          static_cast<unsigned long long>(c.result.map.retained),
          static_cast<unsigned long long>(c.result.map.invalidated),
          static_cast<unsigned long long>(c.result.join.retained),
          static_cast<unsigned long long>(c.result.join.invalidated),
          static_cast<unsigned long long>(c.result.translate.retained),
          static_cast<unsigned long long>(c.result.translate.invalidated),
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"coalescing\": {\"clients\": %d, "
                 "\"computations\": %llu, \"coalesced_hits\": %llu, "
                 "\"cache_hits\": %llu}\n}\n",
                 burst.clients,
                 static_cast<unsigned long long>(burst.computations),
                 static_cast<unsigned long long>(burst.coalesced_hits),
                 static_cast<unsigned long long>(burst.cache_hits));
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
