#include "eval/evaluator.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "sql/equivalence.h"

namespace templar::eval {

const char* SystemKindToString(SystemKind kind) {
  switch (kind) {
    case SystemKind::kNalir:
      return "NaLIR";
    case SystemKind::kNalirPlus:
      return "NaLIR+";
    case SystemKind::kPipeline:
      return "Pipeline";
    case SystemKind::kPipelinePlus:
      return "Pipeline+";
  }
  return "?";
}

std::vector<std::vector<size_t>> MakeFolds(size_t n, size_t folds,
                                           uint64_t seed) {
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&indices);
  std::vector<std::vector<size_t>> out(folds);
  for (size_t i = 0; i < n; ++i) {
    out[i % folds].push_back(indices[i]);
  }
  return out;
}

QueryOutcome JudgeTranslation(const datasets::BenchmarkQuery& gold,
                              const Result<nlidb::Translation>& translation) {
  QueryOutcome outcome;
  outcome.nlq = gold.nlq;
  outcome.shape_id = gold.shape_id;
  if (!translation.ok()) {
    return outcome;  // Failed translation: KW and FQ both wrong.
  }
  const nlidb::Translation& t = *translation;
  outcome.predicted_sql = t.query.ToString();
  outcome.tie = t.tie_for_first;

  // KW: every non-relation keyword must map to its gold fragment. Keywords
  // are matched by text (NaLIR's noise model perturbs metadata, not text).
  bool kw_ok = true;
  for (const auto& [kw_text, gold_fragment_key] : gold.gold_fragments) {
    bool found = false;
    for (const auto& m : t.configuration.mappings) {
      if (m.keyword.text != kw_text) continue;
      if (m.candidate.fragment.context == qfg::FragmentContext::kFrom) {
        continue;  // Relation keywords excluded from the KW metric.
      }
      found = m.candidate.fragment.Key() == gold_fragment_key;
      break;
    }
    if (!found) {
      kw_ok = false;
      break;
    }
  }
  outcome.kw_correct = kw_ok;

  // FQ: semantic equivalence, ties count as wrong (Sec. VII-A5).
  outcome.fq_correct =
      !t.tie_for_first && sql::QueriesEquivalent(t.query, gold.gold_sql);
  return outcome;
}

namespace {

/// Builds the query log for one trial: gold SQL of the training folds plus
/// the dataset's workload-consistent extra log.
std::vector<std::string> TrialLog(const datasets::Dataset& dataset,
                                  const std::vector<std::vector<size_t>>& folds,
                                  size_t test_fold, bool use_extra_log) {
  std::vector<std::string> log;
  for (size_t f = 0; f < folds.size(); ++f) {
    if (f == test_fold) continue;
    for (size_t idx : folds[f]) {
      log.push_back(dataset.benchmark[idx].gold_sql.ToString());
    }
  }
  if (use_extra_log) {
    log.insert(log.end(), dataset.extra_log.begin(), dataset.extra_log.end());
  }
  return log;
}

}  // namespace

Result<EvalResult> EvaluateSystem(const datasets::Dataset& dataset,
                                  SystemKind kind,
                                  const EvalOptions& options) {
  EvalResult result;
  result.system = kind;
  result.dataset = dataset.name;

  const auto folds =
      MakeFolds(dataset.benchmark.size(), options.folds, options.shuffle_seed);

  for (size_t test_fold = 0; test_fold < folds.size(); ++test_fold) {
    std::vector<std::string> log =
        TrialLog(dataset, folds, test_fold, options.use_extra_log);

    // Build the system under test for this trial.
    std::unique_ptr<nlidb::PipelineSystem> pipeline;
    std::unique_ptr<nlidb::NalirSystem> nalir;
    if (kind == SystemKind::kPipeline || kind == SystemKind::kPipelinePlus) {
      nlidb::PipelineConfig config;
      config.templar = options.templar;
      config.templar_keywords = kind == SystemKind::kPipelinePlus;
      config.templar_joins =
          kind == SystemKind::kPipelinePlus && options.logjoin;
      TEMPLAR_ASSIGN_OR_RETURN(
          pipeline, nlidb::PipelineSystem::Build(
                        dataset.database.get(), dataset.lexicon.get(), log,
                        config));
    } else {
      nlidb::NalirConfig config;
      config.templar = options.templar;
      config.templar_keywords = kind == SystemKind::kNalirPlus;
      config.templar_joins = kind == SystemKind::kNalirPlus && options.logjoin;
      config.parser_noise = options.nalir_parser_noise;
      TEMPLAR_ASSIGN_OR_RETURN(
          nalir, nlidb::NalirSystem::Build(dataset.database.get(),
                                           dataset.wordnet.get(), log, config));
    }

    for (size_t idx : folds[test_fold]) {
      const datasets::BenchmarkQuery& gold = dataset.benchmark[idx];
      Result<nlidb::Translation> translation =
          pipeline ? pipeline->Translate(gold.gold_parse)
                   : nalir->TranslateParsed(gold.gold_parse);
      QueryOutcome outcome = JudgeTranslation(gold, translation);
      result.scores.total++;
      if (!translation.ok()) result.scores.errors++;
      if (outcome.kw_correct) result.scores.kw_correct++;
      if (outcome.fq_correct) result.scores.fq_correct++;
      result.outcomes.push_back(std::move(outcome));
    }
  }
  return result;
}

}  // namespace templar::eval
