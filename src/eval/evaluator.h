#ifndef TEMPLAR_EVAL_EVALUATOR_H_
#define TEMPLAR_EVAL_EVALUATOR_H_

/// \file evaluator.h
/// \brief The experimental protocol of Sec. VII: 4-fold cross validation
/// over each benchmark, measuring top-1 keyword-mapping (KW) and full-query
/// (FQ) accuracy for each system.
///
/// KW (Sec. VII-B2): correct iff every non-relation keyword of the NLQ is
/// mapped to its gold fragment by the top-ranked configuration.
/// FQ (Sec. VII-B1): correct iff the top-ranked SQL is semantically
/// equivalent to the gold SQL, with any tie for first place counted as
/// incorrect (Sec. VII-A5).

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "datasets/dataset.h"
#include "nlidb/nlidb.h"

namespace templar::eval {

/// \brief The four evaluated systems of Table III.
enum class SystemKind {
  kNalir,
  kNalirPlus,
  kPipeline,
  kPipelinePlus,
};

/// \brief Returns "NaLIR", "NaLIR+", "Pipeline" or "Pipeline+".
const char* SystemKindToString(SystemKind kind);

/// \brief Protocol + system tunables for one evaluation run.
struct EvalOptions {
  size_t folds = 4;           ///< Cross-validation folds (Sec. VII-A4).
  uint64_t shuffle_seed = 17; ///< Fold assignment shuffle.
  /// Templar settings (κ=5, λ=0.8, NoConstOp by default, as in Sec. VII-B).
  core::TemplarOptions templar;
  /// Pipeline+ LogJoin toggle (Table IV rows); keyword side stays on.
  bool logjoin = true;
  /// NaLIR parser noise (Sec. VII-C error model).
  double nalir_parser_noise = 0.45;
  /// Include the workload-consistent extra log (Sec. VII-A3 assumption).
  bool use_extra_log = true;
};

/// \brief Aggregate accuracy over all folds.
struct Scores {
  int total = 0;
  int kw_correct = 0;
  int fq_correct = 0;
  int errors = 0;  ///< Translations that failed outright (count as wrong).

  double KwPct() const {
    return total == 0 ? 0 : 100.0 * kw_correct / total;
  }
  double FqPct() const {
    return total == 0 ? 0 : 100.0 * fq_correct / total;
  }
};

/// \brief Per-query outcome, for error analysis.
struct QueryOutcome {
  std::string nlq;
  std::string shape_id;
  bool kw_correct = false;
  bool fq_correct = false;
  bool tie = false;
  std::string predicted_sql;  ///< Empty when translation failed.
};

/// \brief Detailed result of one evaluation run.
struct EvalResult {
  SystemKind system;
  std::string dataset;
  Scores scores;
  std::vector<QueryOutcome> outcomes;
};

/// \brief Runs the full cross-validated protocol for one system on one
/// dataset.
Result<EvalResult> EvaluateSystem(const datasets::Dataset& dataset,
                                  SystemKind kind, const EvalOptions& options);

/// \brief Judges one translation against the gold annotation.
QueryOutcome JudgeTranslation(const datasets::BenchmarkQuery& gold,
                              const Result<nlidb::Translation>& translation);

/// \brief Splits [0, n) into `folds` disjoint index sets after a seeded
/// shuffle; every index lands in exactly one fold.
std::vector<std::vector<size_t>> MakeFolds(size_t n, size_t folds,
                                           uint64_t seed);

}  // namespace templar::eval

#endif  // TEMPLAR_EVAL_EVALUATOR_H_
