#include "replication/graph_log.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "qfg/qfg_io.h"

namespace templar::replication {

std::string GraphLog::BasePath(const std::string& dir, uint64_t generation) {
  return dir + "/base." + std::to_string(generation) + ".qfg";
}

std::string GraphLog::LogPath(const std::string& dir) {
  return dir + "/delta.log";
}

void GraphLog::RebuildPositions(const qfg::QueryFragmentGraph& graph) {
  const auto order = graph.CanonicalVertexOrder();
  id_of_position_.clear();
  position_of_id_.clear();
  id_of_position_.reserve(order.size());
  position_of_id_.reserve(order.size());
  for (const auto& [id, count] : order) {
    (void)count;
    position_of_id_.emplace(id, static_cast<uint32_t>(id_of_position_.size()));
    id_of_position_.push_back(id);
  }
}

Result<qfg::QueryFragmentGraph> GraphLog::LoadAndReplay() {
  // Log first: its header names the base generation this directory is at.
  TEMPLAR_ASSIGN_OR_RETURN(auto log_contents, ReadLog(LogPath(dir_)));
  const DeltaLogHeader& header = log_contents.first;
  TEMPLAR_ASSIGN_OR_RETURN(
      qfg::QueryFragmentGraph graph,
      qfg::LoadQfgFromFile(BasePath(dir_, header.generation)));
  if (graph.vertex_count() != header.base_vertex_count) {
    return Status::Internal(
        "base snapshot / delta log mismatch: base has " +
        std::to_string(graph.vertex_count()) + " vertices, log expects " +
        std::to_string(header.base_vertex_count));
  }
  header_ = header;
  applied_epoch_ = header.base_epoch;
  RebuildPositions(graph);
  for (const DeltaBatch& batch : log_contents.second) {
    TEMPLAR_ASSIGN_OR_RETURN(auto touched, ApplyBatch(batch, &graph));
    (void)touched;
  }
  return graph;
}

Result<std::unique_ptr<GraphLog>> GraphLog::CreateFresh(
    const std::string& dir, const qfg::QueryFragmentGraph& graph,
    uint64_t epoch, Options options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create replication dir '" + dir + "': " +
                           std::strerror(errno));
  }
  auto log = std::unique_ptr<GraphLog>(new GraphLog(dir, options));
  DeltaLogHeader header;
  header.generation = 0;
  header.base_epoch = epoch;
  header.base_vertex_count = graph.vertex_count();
  TEMPLAR_RETURN_NOT_OK(qfg::SaveQfgToFile(graph, BasePath(dir, 0)));
  TEMPLAR_ASSIGN_OR_RETURN(log->writer_,
                           DeltaLogWriter::Create(LogPath(dir), header));
  log->header_ = header;
  log->applied_epoch_ = epoch;
  log->RebuildPositions(graph);
  return log;
}

Result<GraphLog::Recovered> GraphLog::Recover(const std::string& dir,
                                              Options options) {
  auto log = std::unique_ptr<GraphLog>(new GraphLog(dir, options));
  TEMPLAR_ASSIGN_OR_RETURN(qfg::QueryFragmentGraph graph,
                           log->LoadAndReplay());
  // OpenForAppend truncates any torn tail — exactly the records LoadAndReplay
  // already refused to apply.
  TEMPLAR_ASSIGN_OR_RETURN(log->writer_,
                           DeltaLogWriter::OpenForAppend(LogPath(dir)));
  if (log->writer_->last_epoch() != log->applied_epoch_) {
    return Status::Internal("delta log recovery mismatch: appender at epoch " +
                            std::to_string(log->writer_->last_epoch()) +
                            ", replay reached " +
                            std::to_string(log->applied_epoch_));
  }
  Recovered out;
  out.epoch = log->applied_epoch_;
  out.graph = std::move(graph);
  out.log = std::move(log);
  return out;
}

Result<GraphLog::Recovered> GraphLog::Follow(const std::string& dir,
                                             Options options) {
  auto log = std::unique_ptr<GraphLog>(new GraphLog(dir, options));
  TEMPLAR_ASSIGN_OR_RETURN(qfg::QueryFragmentGraph graph,
                           log->LoadAndReplay());
  log->reader_ = std::make_unique<DeltaLogReader>(LogPath(dir));
  Recovered out;
  out.epoch = log->applied_epoch_;
  out.graph = std::move(graph);
  out.log = std::move(log);
  return out;
}

Status GraphLog::AppendBatch(
    uint64_t epoch, const std::vector<std::vector<qfg::FragmentId>>& queries,
    const qfg::QueryFragmentGraph& graph) {
  if (!writer_) {
    return Status::InvalidArgument(
        "GraphLog::AppendBatch: no appender attached (follower role)");
  }
  if (epoch != applied_epoch_ + 1) {
    return Status::Internal("delta log append epoch " + std::to_string(epoch) +
                            " does not follow " +
                            std::to_string(applied_epoch_));
  }
  DeltaBatch batch;
  batch.epoch = epoch;
  for (const std::vector<qfg::FragmentId>& ids : queries) {
    std::vector<uint32_t> positions;
    positions.reserve(ids.size());
    for (qfg::FragmentId id : ids) {
      auto it = position_of_id_.find(id);
      uint32_t position;
      if (it == position_of_id_.end()) {
        // First appearance in the log: assign the next position and ship the
        // fragment definition with this record.
        position = static_cast<uint32_t>(id_of_position_.size());
        position_of_id_.emplace(id, position);
        id_of_position_.push_back(id);
        batch.new_fragments.push_back(graph.Fragment(id));
      } else {
        position = it->second;
      }
      positions.push_back(position);
    }
    batch.queries.push_back(std::move(positions));
  }
  TEMPLAR_RETURN_NOT_OK(writer_->Append(batch, options_.fsync_appends));
  applied_epoch_ = epoch;
  return Status::OK();
}

Status GraphLog::Compact(const qfg::QueryFragmentGraph& graph,
                         uint64_t epoch) {
  if (!writer_) {
    return Status::InvalidArgument(
        "GraphLog::Compact: no appender attached (follower role)");
  }
  if (epoch != applied_epoch_) {
    return Status::Internal(
        "compaction epoch " + std::to_string(epoch) +
        " is not the last appended epoch " + std::to_string(applied_epoch_));
  }
  DeltaLogHeader next;
  next.generation = header_.generation + 1;
  next.base_epoch = epoch;
  next.base_vertex_count = graph.vertex_count();
  // New base first, then swap the log: a crash in between leaves the old
  // (base, log) pair fully intact and only orphans the new base file.
  TEMPLAR_RETURN_NOT_OK(
      qfg::SaveQfgToFile(graph, BasePath(dir_, next.generation)));
  const std::string staging = LogPath(dir_) + ".next";
  TEMPLAR_ASSIGN_OR_RETURN(auto next_writer,
                           DeltaLogWriter::Create(staging, next));
  if (std::rename(staging.c_str(), LogPath(dir_).c_str()) != 0) {
    Status st = Status::IOError("swap compacted delta log: " +
                                std::string(std::strerror(errno)));
    std::remove(staging.c_str());
    return st;
  }
  // The staged writer's descriptor names the inode, not the path, so it
  // survives the rename and is now appending to <dir>/delta.log.
  writer_ = std::move(next_writer);
  std::remove(BasePath(dir_, header_.generation).c_str());
  header_ = next;
  RebuildPositions(graph);
  return Status::OK();
}

Result<GraphLog::PollOutcome> GraphLog::Poll(
    const qfg::QueryFragmentGraph& graph) {
  if (!reader_) {
    return Status::InvalidArgument(
        "GraphLog::Poll: no tailer attached (writer role)");
  }
  TEMPLAR_ASSIGN_OR_RETURN(TailResult tail, reader_->Poll());
  PollOutcome out;
  if (tail.generation_changed &&
      tail.header.generation != header_.generation) {
    if (applied_epoch_ < tail.header.base_epoch) {
      // Compacted past us: the records we still needed are folded into the
      // new base. (The tailed batches are discarded; ReloadFromBase resets
      // the tailer, so nothing is lost.)
      out.needs_reload = true;
      return out;
    }
    if (applied_epoch_ > tail.header.base_epoch) {
      return Status::Internal(
          "follower at epoch " + std::to_string(applied_epoch_) +
          " is ahead of compacted base epoch " +
          std::to_string(tail.header.base_epoch));
    }
    // Caught up through the compaction point: our graph content equals the
    // new base, so its canonical order IS the new position space.
    header_ = tail.header;
    RebuildPositions(graph);
  }
  out.batches = std::move(tail.batches);
  return out;
}

Result<std::vector<qfg::FragmentId>> GraphLog::ApplyBatch(
    const DeltaBatch& batch, qfg::QueryFragmentGraph* graph) {
  if (batch.epoch <= applied_epoch_) return std::vector<qfg::FragmentId>{};
  if (batch.epoch != applied_epoch_ + 1) {
    return Status::Internal("delta log epoch gap: applied " +
                            std::to_string(applied_epoch_) + ", record is " +
                            std::to_string(batch.epoch));
  }
  for (const qfg::QueryFragment& fragment : batch.new_fragments) {
    qfg::FragmentId id = graph->InternFragment(fragment);
    position_of_id_.emplace(id, static_cast<uint32_t>(id_of_position_.size()));
    id_of_position_.push_back(id);
  }
  // Validate every position before mutating any count, so a (CRC-defying)
  // corrupt record cannot leave the graph half-applied.
  for (const std::vector<uint32_t>& query : batch.queries) {
    for (uint32_t position : query) {
      if (position >= id_of_position_.size()) {
        return Status::ParseError(
            "delta record position " + std::to_string(position) +
            " out of range (" + std::to_string(id_of_position_.size()) + ")");
      }
    }
  }
  std::vector<qfg::FragmentId> touched;
  std::vector<qfg::FragmentId> ids;
  for (const std::vector<uint32_t>& query : batch.queries) {
    ids.clear();
    ids.reserve(query.size());
    for (uint32_t position : query) ids.push_back(id_of_position_[position]);
    graph->ApplyQueryIds(ids);
    touched.insert(touched.end(), ids.begin(), ids.end());
  }
  applied_epoch_ = batch.epoch;
  return touched;
}

Result<GraphLog::Recovered> GraphLog::ReloadFromBase() {
  TEMPLAR_ASSIGN_OR_RETURN(qfg::QueryFragmentGraph graph, LoadAndReplay());
  // Fresh tailer: offset back to the top of the generation we just replayed;
  // already-applied records are skipped by epoch on the next poll.
  reader_ = std::make_unique<DeltaLogReader>(LogPath(dir_));
  Recovered out;
  out.epoch = applied_epoch_;
  out.graph = std::move(graph);
  return out;
}

Status GraphLog::Promote() {
  if (writer_) return Status::OK();  // Already the writer.
  TEMPLAR_ASSIGN_OR_RETURN(auto writer,
                           DeltaLogWriter::OpenForAppend(LogPath(dir_)));
  if (writer->header().generation != header_.generation) {
    return Status::Internal(
        "log generation changed under promotion; poll to catch up first");
  }
  if (writer->last_epoch() != applied_epoch_) {
    return Status::Internal(
        "follower not caught up for promotion: log ends at epoch " +
        std::to_string(writer->last_epoch()) + ", applied " +
        std::to_string(applied_epoch_));
  }
  writer_ = std::move(writer);
  reader_.reset();
  return Status::OK();
}

}  // namespace templar::replication
