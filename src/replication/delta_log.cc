#include "replication/delta_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"

namespace templar::replication {

namespace {

constexpr char kMagic[8] = {'T', 'Q', 'D', 'L', 'O', 'G', '1', '\n'};
constexpr size_t kFrameBytes = 8;  // u32 len + u32 crc.

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::string EncodeHeader(const DeltaLogHeader& header) {
  std::string out;
  out.reserve(kDeltaLogHeaderBytes);
  out.append(kMagic, sizeof(kMagic));
  PutU64(&out, header.generation);
  PutU64(&out, header.base_epoch);
  PutU64(&out, header.base_vertex_count);
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

Result<DeltaLogHeader> DecodeHeader(const char* data, size_t len) {
  if (len < kDeltaLogHeaderBytes) {
    return Status::ParseError("delta log shorter than its header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("bad delta log magic");
  }
  const uint32_t stored = GetU32(data + 32);
  if (stored != Crc32(data, 32)) {
    return Status::ParseError("delta log header CRC mismatch");
  }
  DeltaLogHeader header;
  header.generation = GetU64(data + 8);
  header.base_epoch = GetU64(data + 16);
  header.base_vertex_count = GetU64(data + 24);
  return header;
}

Status WriteFully(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("delta log write: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads the whole file at `path`. IOError when it cannot be opened.
Result<std::string> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read '" + path + "': " + std::strerror(errno));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

/// Scans records in `data[offset..)`. Every CRC-valid record is decoded and
/// appended to `batches`; the scan stops at the first incomplete or invalid
/// frame (the torn tail) and reports the offset of the valid prefix end.
/// Only a *decode* failure of a CRC-valid payload is an error.
Status ScanRecords(const std::string& data, size_t offset,
                   std::vector<DeltaBatch>* batches, size_t* valid_end) {
  while (offset + kFrameBytes <= data.size()) {
    const uint32_t len = GetU32(data.data() + offset);
    const uint32_t crc = GetU32(data.data() + offset + 4);
    if (len > kMaxDeltaPayloadBytes) break;  // Corrupt length: torn tail.
    if (offset + kFrameBytes + len > data.size()) break;  // Incomplete.
    const char* payload = data.data() + offset + kFrameBytes;
    if (Crc32(payload, len) != crc) break;  // Torn or in-flight record.
    auto batch = DecodeBatch(payload, len);
    if (!batch.ok()) return batch.status();
    batches->push_back(std::move(*batch));
    offset += kFrameBytes + len;
  }
  *valid_end = offset;
  return Status::OK();
}

}  // namespace

std::string EncodeBatch(const DeltaBatch& batch) {
  std::string out;
  PutU64(&out, batch.epoch);
  PutU32(&out, static_cast<uint32_t>(batch.new_fragments.size()));
  for (const qfg::QueryFragment& f : batch.new_fragments) {
    out.push_back(static_cast<char>(f.context));
    PutU32(&out, static_cast<uint32_t>(f.expression.size()));
    out.append(f.expression);
  }
  PutU32(&out, static_cast<uint32_t>(batch.queries.size()));
  for (const std::vector<uint32_t>& query : batch.queries) {
    PutU32(&out, static_cast<uint32_t>(query.size()));
    for (uint32_t position : query) PutU32(&out, position);
  }
  return out;
}

Result<DeltaBatch> DecodeBatch(const char* data, size_t len) {
  size_t off = 0;
  auto need = [&](size_t n) { return off + n <= len; };
  if (!need(12)) return Status::ParseError("delta batch truncated");
  DeltaBatch batch;
  batch.epoch = GetU64(data);
  off = 8;
  const uint32_t new_frags = GetU32(data + off);
  off += 4;
  batch.new_fragments.reserve(new_frags);
  for (uint32_t i = 0; i < new_frags; ++i) {
    if (!need(5)) return Status::ParseError("delta batch fragment truncated");
    const auto raw_context = static_cast<unsigned char>(data[off]);
    if (raw_context > static_cast<unsigned char>(qfg::FragmentContext::kOrderBy)) {
      return Status::ParseError("delta batch fragment context out of range");
    }
    const uint32_t expr_len = GetU32(data + off + 1);
    off += 5;
    if (!need(expr_len)) {
      return Status::ParseError("delta batch expression truncated");
    }
    batch.new_fragments.push_back(
        qfg::QueryFragment{static_cast<qfg::FragmentContext>(raw_context),
                           std::string(data + off, expr_len)});
    off += expr_len;
  }
  if (!need(4)) return Status::ParseError("delta batch query count truncated");
  const uint32_t queries = GetU32(data + off);
  off += 4;
  batch.queries.reserve(queries);
  for (uint32_t q = 0; q < queries; ++q) {
    if (!need(4)) return Status::ParseError("delta batch query truncated");
    const uint32_t n = GetU32(data + off);
    off += 4;
    if (!need(static_cast<size_t>(n) * 4)) {
      return Status::ParseError("delta batch positions truncated");
    }
    std::vector<uint32_t> positions;
    positions.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      positions.push_back(GetU32(data + off));
      off += 4;
    }
    batch.queries.push_back(std::move(positions));
  }
  if (off != len) {
    return Status::ParseError("delta batch has trailing bytes");
  }
  return batch;
}

// ---------------------------------------------------------------------------
// DeltaLogWriter

DeltaLogWriter::DeltaLogWriter(int fd, DeltaLogHeader header,
                               uint64_t size_bytes, uint64_t last_epoch,
                               uint64_t record_count)
    : fd_(fd),
      header_(header),
      size_bytes_(size_bytes),
      last_epoch_(last_epoch),
      record_count_(record_count) {}

DeltaLogWriter::~DeltaLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<DeltaLogWriter>> DeltaLogWriter::Create(
    const std::string& path, const DeltaLogHeader& header) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create delta log '" + path + "': " +
                           std::strerror(errno));
  }
  const std::string encoded = EncodeHeader(header);
  Status st = WriteFully(fd, encoded.data(), encoded.size());
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IOError("fsync delta log header: " +
                         std::string(std::strerror(errno)));
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  return std::unique_ptr<DeltaLogWriter>(new DeltaLogWriter(
      fd, header, encoded.size(), header.base_epoch, /*record_count=*/0));
}

Result<std::unique_ptr<DeltaLogWriter>> DeltaLogWriter::OpenForAppend(
    const std::string& path) {
  TEMPLAR_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  TEMPLAR_ASSIGN_OR_RETURN(DeltaLogHeader header,
                           DecodeHeader(data.data(), data.size()));
  std::vector<DeltaBatch> batches;
  size_t valid_end = 0;
  TEMPLAR_RETURN_NOT_OK(
      ScanRecords(data, kDeltaLogHeaderBytes, &batches, &valid_end));
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError("cannot reopen delta log '" + path + "': " +
                           std::strerror(errno));
  }
  // Drop the torn tail (if any) so the next append starts on a record
  // boundary — a reader must never see a valid record spliced onto half of
  // a dead one.
  if (valid_end < data.size() &&
      ::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    ::close(fd);
    return Status::IOError("truncate torn delta log tail: " +
                           std::string(std::strerror(errno)));
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    ::close(fd);
    return Status::IOError("seek delta log end: " +
                           std::string(std::strerror(errno)));
  }
  const uint64_t last_epoch =
      batches.empty() ? header.base_epoch : batches.back().epoch;
  return std::unique_ptr<DeltaLogWriter>(new DeltaLogWriter(
      fd, header, valid_end, last_epoch, batches.size()));
}

Status DeltaLogWriter::Append(const DeltaBatch& batch, bool fsync) {
  const std::string payload = EncodeBatch(batch);
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  // One write call per record: a tailing reader sees the record either
  // whole or (transiently) CRC-incomplete, never interleaved with another.
  TEMPLAR_RETURN_NOT_OK(WriteFully(fd_, frame.data(), frame.size()));
  if (fsync && ::fsync(fd_) != 0) {
    return Status::IOError("fsync delta log: " +
                           std::string(std::strerror(errno)));
  }
  size_bytes_ += frame.size();
  last_epoch_ = batch.epoch;
  ++record_count_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DeltaLogReader

Result<TailResult> DeltaLogReader::Poll() {
  TailResult out;
  auto data = ReadFile(path_);
  if (!data.ok()) {
    // A missing log is "nothing yet", not corruption: compaction renames a
    // fresh file into place and a poll can land in the gap.
    out.header = header_;
    return out;
  }
  TEMPLAR_ASSIGN_OR_RETURN(DeltaLogHeader header,
                           DecodeHeader(data->data(), data->size()));
  if (!have_header_ || header.generation != header_.generation) {
    header_ = header;
    have_header_ = true;
    offset_ = kDeltaLogHeaderBytes;
    out.generation_changed = true;
  }
  out.header = header_;
  size_t valid_end = 0;
  TEMPLAR_RETURN_NOT_OK(
      ScanRecords(*data, offset_, &out.batches, &valid_end));
  offset_ = valid_end;
  if (!out.batches.empty() &&
      out.batches.back().epoch > last_seen_epoch_) {
    last_seen_epoch_ = out.batches.back().epoch;
  }
  return out;
}

Result<DeltaLogHeader> ReadLogHeader(const std::string& path) {
  TEMPLAR_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  return DecodeHeader(data.data(), data.size());
}

Result<std::pair<DeltaLogHeader, std::vector<DeltaBatch>>> ReadLog(
    const std::string& path) {
  TEMPLAR_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  TEMPLAR_ASSIGN_OR_RETURN(DeltaLogHeader header,
                           DecodeHeader(data.data(), data.size()));
  std::vector<DeltaBatch> batches;
  size_t valid_end = 0;
  TEMPLAR_RETURN_NOT_OK(
      ScanRecords(data, kDeltaLogHeaderBytes, &batches, &valid_end));
  return std::make_pair(header, std::move(batches));
}

}  // namespace templar::replication
