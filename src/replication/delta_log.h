#ifndef TEMPLAR_REPLICATION_DELTA_LOG_H_
#define TEMPLAR_REPLICATION_DELTA_LOG_H_

/// \file delta_log.h
/// \brief The append-only QFG delta log: framing, codec, writer, tailer.
///
/// Full qfg_io snapshots rewrite the whole graph per checkpoint — fine for
/// thousands of statements, hopeless for millions. The delta log persists
/// each AppendLogQueries batch instead, as one CRC-framed record:
///
///   file   := header record*
///   header := magic[8]="TQDLOG1\n" u64 generation u64 base_epoch
///             u64 base_vertex_count u32 crc32(bytes 0..32)      (36 bytes)
///   record := u32 payload_len  u32 crc32(payload)  payload
///
/// All integers little-endian. The payload of a batch record:
///
///   u64 epoch
///   u32 new_fragment_count   { u8 context  u32 len  bytes[len] }*
///   u32 query_count          { u32 n  u32 position[n] }*
///
/// **Positions, not ids.** Fragment ids are process-local; the log instead
/// speaks the *positional intern table* of the base snapshot (qfg_io v2):
/// position p < base_vertex_count is the p-th V record of base.qfg
/// (canonical order — count desc, key asc), and each new fragment a batch
/// introduces takes the next position in introduction order. Writer and
/// follower each keep their own position<->id maps (graph_log.h); the wire
/// format never mentions an id.
///
/// **Torn tails are data, not errors.** A record that fails its length or
/// CRC check is where the valid prefix ends: a crashed writer left a torn
/// tail (recovery truncates it), or a live writer is mid-append (the tailer
/// simply retries from the same offset next poll). Neither is fatal.
///
/// **Generations.** Compaction folds the applied prefix into a fresh
/// base.qfg and restarts the log with generation+1 — positions renumber, so
/// a tailer that observes a generation change must re-derive its position
/// map (cheap when it was caught up: canonical order is a pure function of
/// graph content) or reload from the new base snapshot when it was behind.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "qfg/fragment.h"

namespace templar::replication {

/// \brief Fixed-size file header identifying one log generation.
struct DeltaLogHeader {
  uint64_t generation = 0;         ///< Bumped by every compaction.
  uint64_t base_epoch = 0;         ///< Epoch the base snapshot captures.
  uint64_t base_vertex_count = 0;  ///< V records in base.qfg = first
                                   ///  position new fragments extend from.
};

/// \brief Serialized size of the file header (magic + 3 u64 + crc).
inline constexpr size_t kDeltaLogHeaderBytes = 36;

/// \brief Refuse absurd record lengths before allocating (a corrupt length
/// field must not become a 4 GiB allocation).
inline constexpr uint32_t kMaxDeltaPayloadBytes = 64u * 1024 * 1024;

/// \brief One decoded append batch: the epoch it produced, the fragments it
/// introduced (taking positions sequentially from the reader's high-water
/// position), and each applied query as a list of positions.
struct DeltaBatch {
  uint64_t epoch = 0;
  std::vector<qfg::QueryFragment> new_fragments;
  std::vector<std::vector<uint32_t>> queries;
};

/// \brief Encodes a batch payload (framing is the writer's job).
std::string EncodeBatch(const DeltaBatch& batch);

/// \brief Decodes a batch payload. ParseError on malformed input — callers
/// frame-check with the CRC first, so a ParseError here means a format bug
/// or version skew, not a torn write.
Result<DeltaBatch> DecodeBatch(const char* data, size_t len);

/// \brief Appends CRC-framed batch records to one log generation.
///
/// Not thread-safe: the service calls Append under the same exclusive lock
/// that mutates the QFG, which already serializes writers.
class DeltaLogWriter {
 public:
  /// \brief Starts a fresh log at `path` (truncating) with `header`.
  static Result<std::unique_ptr<DeltaLogWriter>> Create(
      const std::string& path, const DeltaLogHeader& header);

  /// \brief Reopens an existing log for appending: validates the header,
  /// scans to the end of the valid record prefix, truncates any torn tail
  /// (CRC/length failure — dropped, never fatal), and resumes after the
  /// last valid record. Used by writer restart and follower promotion.
  static Result<std::unique_ptr<DeltaLogWriter>> OpenForAppend(
      const std::string& path);

  ~DeltaLogWriter();
  DeltaLogWriter(const DeltaLogWriter&) = delete;
  DeltaLogWriter& operator=(const DeltaLogWriter&) = delete;

  /// \brief Frames and appends one batch in a single write call.
  /// `fsync=true` makes the record durable before returning.
  Status Append(const DeltaBatch& batch, bool fsync);

  const DeltaLogHeader& header() const { return header_; }
  /// \brief Epoch of the last record appended or scanned; header.base_epoch
  /// when the log has no records.
  uint64_t last_epoch() const { return last_epoch_; }
  /// \brief Current log size in bytes (header included).
  uint64_t size_bytes() const { return size_bytes_; }
  /// \brief Records appended or scanned this generation.
  uint64_t record_count() const { return record_count_; }

 private:
  DeltaLogWriter(int fd, DeltaLogHeader header, uint64_t size_bytes,
                 uint64_t last_epoch, uint64_t record_count);

  int fd_;
  DeltaLogHeader header_;
  uint64_t size_bytes_;
  uint64_t last_epoch_;
  uint64_t record_count_;
};

/// \brief What one tail poll observed.
struct TailResult {
  /// Complete, CRC-valid records beyond the previous offset, in order.
  std::vector<DeltaBatch> batches;
  /// True when the log was compacted since the last poll (or on the first
  /// poll ever): `header` describes the new generation and `batches` are
  /// its records from the beginning. The caller must re-derive its position
  /// map before applying them.
  bool generation_changed = false;
  DeltaLogHeader header;
};

/// \brief Incremental reader over a (possibly live) delta log file.
///
/// Poll() opens the file fresh each time — compaction atomically replaces
/// the path, and a held descriptor would keep tailing the dead generation.
/// An incomplete or CRC-failing tail record leaves the offset where it is:
/// if the writer was mid-append the next poll reads it whole. Not
/// thread-safe (one tailer thread per follower).
class DeltaLogReader {
 public:
  explicit DeltaLogReader(std::string path) : path_(std::move(path)) {}

  /// \brief Reads everything new. A missing file is kOk with no batches
  /// (the writer may not have started this generation yet); a malformed
  /// header is an error.
  Result<TailResult> Poll();

  /// \brief Epoch of the newest record ever observed (0 before the first
  /// record) — the "how far ahead is the log" half of the lag gauge.
  uint64_t last_seen_epoch() const { return last_seen_epoch_; }

 private:
  std::string path_;
  bool have_header_ = false;
  DeltaLogHeader header_;
  uint64_t offset_ = 0;  ///< Next unread byte of the current generation.
  uint64_t last_seen_epoch_ = 0;
};

/// \brief Reads the header. IOError when the file cannot be opened;
/// ParseError on a malformed/corrupt header.
Result<DeltaLogHeader> ReadLogHeader(const std::string& path);

/// \brief Offline scan: header plus every valid record; the torn tail (if
/// any) is dropped. The recovery path for writer restart and follower
/// bootstrap.
Result<std::pair<DeltaLogHeader, std::vector<DeltaBatch>>> ReadLog(
    const std::string& path);

}  // namespace templar::replication

#endif  // TEMPLAR_REPLICATION_DELTA_LOG_H_
