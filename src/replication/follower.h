#ifndef TEMPLAR_REPLICATION_FOLLOWER_H_
#define TEMPLAR_REPLICATION_FOLLOWER_H_

/// \file follower.h
/// \brief The follower's tailing loop: a periodic driver for "sync with the
/// delta log once".
///
/// Generic over a `std::function` so the replication layer never depends on
/// the service layer: a ServiceCore hands its SyncWithLog as the callback
/// and the replicator just paces it. The callback itself is responsible for
/// thread-safety (SyncWithLog takes the core's exclusive lock), so DrainOnce
/// may be called concurrently with a running loop — promotion uses that to
/// catch up synchronously before taking over the log.

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "common/result.h"

namespace templar::replication {

class FollowerReplicator {
 public:
  /// \brief One sync pass; returns the epoch the follower is at afterwards.
  using SyncFn = std::function<Result<uint64_t>()>;

  FollowerReplicator(SyncFn sync, std::chrono::milliseconds interval)
      : sync_(std::move(sync)), interval_(interval) {}

  ~FollowerReplicator() { Stop(); }
  FollowerReplicator(const FollowerReplicator&) = delete;
  FollowerReplicator& operator=(const FollowerReplicator&) = delete;

  /// \brief Starts the tailing thread (no-op when already running).
  void Start() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (thread_.joinable()) return;
    stop_ = false;
    thread_ = std::thread([this] { Loop(); });
  }

  /// \brief Stops and joins the tailing thread (idempotent; called by the
  /// destructor).
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!thread_.joinable()) return;
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    thread_ = std::thread();
  }

  /// \brief Runs one sync pass on the calling thread, immediately. Safe
  /// while the loop is running; promotion drains with this.
  Result<uint64_t> DrainOnce() { return sync_(); }

  /// \brief Epoch reported by the most recent successful pass.
  uint64_t last_applied_epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_applied_epoch_;
  }

  /// \brief Status of the most recent pass (sticky errors clear on the next
  /// successful pass — transient tail errors self-heal by design).
  Status last_status() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_status_;
  }

  /// \brief Passes attempted since Start.
  uint64_t polls() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return polls_;
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      lock.unlock();
      Result<uint64_t> r = sync_();
      lock.lock();
      ++polls_;
      if (r.ok()) {
        last_applied_epoch_ = *r;
        last_status_ = Status::OK();
      } else {
        last_status_ = r.status();
      }
      cv_.wait_for(lock, interval_, [this] { return stop_; });
    }
  }

  SyncFn sync_;
  std::chrono::milliseconds interval_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
  uint64_t last_applied_epoch_ = 0;
  uint64_t polls_ = 0;
  Status last_status_;
};

}  // namespace templar::replication

#endif  // TEMPLAR_REPLICATION_FOLLOWER_H_
