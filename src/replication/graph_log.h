#ifndef TEMPLAR_REPLICATION_GRAPH_LOG_H_
#define TEMPLAR_REPLICATION_GRAPH_LOG_H_

/// \file graph_log.h
/// \brief The QFG-aware layer over the delta log: position<->id translation,
/// base-snapshot management, compaction, recovery, and promotion.
///
/// One replication directory holds one replicated graph:
///
///   <dir>/base.<gen>.qfg   qfg_io v2 snapshot generation <gen>'s positions
///                          refer to (older generations are unlinked after a
///                          successful compaction swap)
///   <dir>/delta.log        current-generation delta log (delta_log.h framing)
///
/// The base filename carries the generation because base and log cannot be
/// renamed atomically *together*: compaction writes base.<g+1>.qfg first,
/// then swaps the log — a crash in between leaves generation g's pair fully
/// intact, and the orphaned g+1 base is simply overwritten next time.
///
/// A GraphLog instance plays one of two roles:
///
///  - **Writer** (CreateFresh / Recover): AppendBatch translates the ids a
///    ServiceCore append just produced into log positions (emitting fragment
///    definitions for first appearances) and appends one record per epoch.
///    Compact folds the live graph into a fresh base.qfg and swaps in a
///    generation+1 log, both via atomic rename.
///  - **Follower** (Follow): Poll tails the log; ApplyBatch replays one
///    record onto the local graph through InternFragment/ApplyQueryIds,
///    returning the touched ids so the caller can run the same
///    FragmentDelta cache-invalidation sweep the writer runs. Promote
///    attaches an appender (truncating any torn tail), turning the follower
///    into the writer at the epoch it last applied.
///
/// Not thread-safe: the owning ServiceCore serializes all calls under its
/// exclusive QFG lock.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "qfg/query_fragment_graph.h"
#include "replication/delta_log.h"

namespace templar::replication {

/// \brief GraphLog tunables (namespace scope so it is complete when used as
/// a default argument inside the class).
struct GraphLogOptions {
  /// fsync every appended record (durability over append latency).
  bool fsync_appends = false;
};

class GraphLog {
 public:
  using Options = GraphLogOptions;

  /// \brief `<dir>/base.<generation>.qfg`.
  static std::string BasePath(const std::string& dir, uint64_t generation);
  /// \brief `<dir>/delta.log`.
  static std::string LogPath(const std::string& dir);

  /// \brief A bootstrapped log plus the graph state it represents.
  struct Recovered {
    std::unique_ptr<GraphLog> log;
    qfg::QueryFragmentGraph graph;
    /// Epoch the graph is at: base_epoch plus every replayed record.
    uint64_t epoch = 0;
  };

  /// \name Writer role
  ///@{

  /// \brief Starts replication for an existing graph: writes `<dir>/base.qfg`
  /// atomically and creates a generation-0 log whose base epoch is `epoch`
  /// (the owning service's current epoch).
  static Result<std::unique_ptr<GraphLog>> CreateFresh(
      const std::string& dir, const qfg::QueryFragmentGraph& graph,
      uint64_t epoch, Options options = {});

  /// \brief Writer restart: loads base.qfg, replays the log's valid record
  /// prefix onto it, truncates any torn tail, and attaches the appender
  /// after the last valid record.
  static Result<Recovered> Recover(const std::string& dir,
                                   Options options = {});

  /// \brief Appends one batch at `epoch`: the per-query id lists exactly as
  /// AppendLogQuery returned them, against `graph` (which already contains
  /// the mutation). Ids never logged before are assigned the next positions
  /// and their fragment definitions ride in the record.
  Status AppendBatch(uint64_t epoch,
                     const std::vector<std::vector<qfg::FragmentId>>& queries,
                     const qfg::QueryFragmentGraph& graph);

  /// \brief Folds the applied prefix away: atomically rewrites base.qfg from
  /// `graph` (at `epoch`) and swaps in an empty generation+1 log. Tailing
  /// followers observe the generation change on their next poll.
  Status Compact(const qfg::QueryFragmentGraph& graph, uint64_t epoch);
  ///@}

  /// \name Follower role
  ///@{

  /// \brief Follower bootstrap: loads base.qfg, replays the valid record
  /// prefix, and starts a tailer. Never writes to the directory.
  static Result<Recovered> Follow(const std::string& dir,
                                  Options options = {});

  /// \brief What one follower poll asks of the caller.
  struct PollOutcome {
    /// Records to replay, oldest first, via ApplyBatch.
    std::vector<DeltaBatch> batches;
    /// The writer compacted past this follower's epoch: the local graph can
    /// no longer be caught up incrementally. The caller must ReloadFromBase
    /// and rebuild its serving state (caches, indexes) from the result.
    bool needs_reload = false;
  };

  /// \brief Tails the log. On a generation change (compaction) with the
  /// follower fully caught up, the position map is rebuilt in place from
  /// `graph`'s canonical order — content-identical graphs order identically,
  /// so no file read is needed. A follower that was behind gets
  /// `needs_reload` instead.
  Result<PollOutcome> Poll(const qfg::QueryFragmentGraph& graph);

  /// \brief Replays one record onto `graph`: interns new fragment
  /// definitions, translates positions to local ids, and applies each query
  /// through ApplyQueryIds. Returns every id the record touched (with
  /// duplicates across queries) for the caller's invalidation sweep; empty
  /// when the record's epoch was already applied. Errors on an epoch gap.
  Result<std::vector<qfg::FragmentId>> ApplyBatch(
      const DeltaBatch& batch, qfg::QueryFragmentGraph* graph);

  /// \brief Full catch-up for a follower behind compaction: loads the
  /// current base.qfg, replays the current log prefix, and resets the
  /// tailer. The returned graph replaces the caller's; `this` keeps serving
  /// as its log.
  Result<Recovered> ReloadFromBase();

  /// \brief Turns this follower into the writer: truncates any torn tail
  /// and attaches the appender. The follower must be fully caught up (drain
  /// Poll/ApplyBatch first) — promotion at a stale epoch would fork history.
  Status Promote();
  ///@}

  /// \brief True once an appender is attached (writer role, or a promoted
  /// follower).
  bool can_append() const { return writer_ != nullptr; }

  /// \brief Last epoch appended (writer) or applied (follower).
  uint64_t applied_epoch() const { return applied_epoch_; }

  /// \brief Newest epoch ever observed in the log by the tailer — the
  /// numerator of the follower lag gauge. 0 in writer role.
  uint64_t last_seen_epoch() const {
    return reader_ ? reader_->last_seen_epoch() : 0;
  }

  /// \brief Current log generation.
  uint64_t generation() const { return header_.generation; }

  /// \brief Appender-side compaction policy inputs; 0 without an appender.
  uint64_t log_size_bytes() const {
    return writer_ ? writer_->size_bytes() : 0;
  }
  uint64_t log_record_count() const {
    return writer_ ? writer_->record_count() : 0;
  }

 private:
  GraphLog(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  /// Rebuilds the position map as the canonical vertex order of `graph` —
  /// the order the current base snapshot lists (or would list) them in.
  void RebuildPositions(const qfg::QueryFragmentGraph& graph);

  /// Loads base.qfg + replays the current log prefix into a fresh graph,
  /// updating this instance's maps/epoch/header. Shared by Recover, Follow,
  /// and ReloadFromBase.
  Result<qfg::QueryFragmentGraph> LoadAndReplay();

  std::string dir_;
  Options options_;
  std::unique_ptr<DeltaLogWriter> writer_;  ///< Writer role only.
  std::unique_ptr<DeltaLogReader> reader_;  ///< Follower role only.
  DeltaLogHeader header_;
  uint64_t applied_epoch_ = 0;
  /// position -> local id; index < header_.base_vertex_count is a base
  /// snapshot position, the rest were introduced by log records in order.
  std::vector<qfg::FragmentId> id_of_position_;
  std::unordered_map<qfg::FragmentId, uint32_t> position_of_id_;
};

}  // namespace templar::replication

#endif  // TEMPLAR_REPLICATION_GRAPH_LOG_H_
