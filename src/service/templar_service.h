#ifndef TEMPLAR_SERVICE_TEMPLAR_SERVICE_H_
#define TEMPLAR_SERVICE_TEMPLAR_SERVICE_H_

/// \file templar_service.h
/// \brief The concurrent Templar serving layer.
///
/// The core library (core/templar.h) is a single-threaded facade: an
/// instance is frozen at Build time and its two interface calls are const.
/// This file turns that into a servable system, split into two layers:
///
/// **ServiceCore** is the per-(database, query-log) serving engine — exactly
/// the state a multi-tenant host replicates per tenant (tenant_registry.h).
/// Its public request surface is ONE call:
///
///     Result<QueryResponse> Translate(const QueryRequest&)
///
/// which runs the stage the envelope selects — full NLQ -> SQL translation
/// (KeywordMapper -> JoinPathGenerator -> nlidb::AssembleSql), or one of the
/// paper's two mid-pipeline interface calls — under the same serving
/// machinery:
///
///  - **Concurrency.** Translate may be called from any number of threads;
///    readers score under a shared `std::shared_mutex` lock.
///  - **Result caching.** Repeated requests are answered from three sharded
///    LRU caches (lru_cache.h) keyed on the canonicalized NLQ / relation
///    bag: one per stage, plus a translation cache whose entries carry the
///    *union* footprint (map ∪ join fingerprints), so appends invalidate
///    cached translations exactly as precisely as stage results.
///  - **Single-flight coalescing.** Identical requests that miss the cache
///    *concurrently* share one underlying computation (single_flight.h). A
///    leader whose own deadline/cancellation aborts the computation never
///    poisons its followers: they observe the typed abort, re-check their
///    own controls, and start a fresh flight — coalesced followers drain
///    safely.
///  - **Deadlines & cancellation.** QueryRequest carries an absolute
///    deadline and a CancelToken; both are probed on entry, on every
///    single-flight retry, and at pipeline stage boundaries
///    (nlidb::PipelineHooks), producing typed kDeadlineExceeded/kCancelled
///    statuses. The multi-tenant host additionally probes at queue dispatch
///    so an expired parked request never runs the pipeline.
///  - **Explanations.** want_explanation attaches per-ranking provenance
///    (request.h Explanation) built from the same interned-fragment
///    machinery the footprints use: which log fragments and Dice values
///    supported each returned translation.
///  - **Online QFG ingestion with per-fragment invalidation.**
///    AppendLogQueries folds freshly-observed SQL into the
///    QueryFragmentGraph while the service keeps answering; each batch
///    bumps an *epoch*, carries its fragment delta (qfg/fragment_delta.h),
///    and sweeps all three caches, evicting exactly the entries whose
///    footprint the new evidence could change.
///  - **Warm start / checkpoint.** SaveSnapshot writes the QFG in the
///    qfg_io snapshot format; ServiceOptions::warm_start_path restores it
///    at Create time, skipping the log re-parse.
///  - **Replication.** ServiceOptions::replication turns the core into the
///    writer of an append-only delta log (each append batch framed onto
///    disk inside the same exclusive section that swept the caches, the
///    log periodically compacted into a fresh base snapshot) or into a
///    read-only follower that tails the log, applies batches through the
///    identical invalidation path, and can be promoted to writer when the
///    writer dies. See replication/graph_log.h.
///
/// The pre-envelope surfaces — MapKeywords/InferJoins sync, async, and
/// batch — survive as thin shims over stage-selected requests: same cache
/// entries, same single-flight keys, bit-identical rankings.
///
/// **TemplarService** is the standalone single-tenant server: a ServiceCore
/// plus its own fixed-size worker pool for the Async/Batch request
/// variants. Multi-tenant deployments use ServiceHost instead, which shares
/// one pool (and one cache-memory budget) across many cores.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/templar.h"
#include "nlidb/nlidb.h"
#include "service/lru_cache.h"
#include "service/metrics.h"
#include "service/request.h"
#include "service/service_stats.h"
#include "service/single_flight.h"
#include "service/thread_pool.h"

namespace templar::replication {
class GraphLog;
}  // namespace templar::replication

namespace templar::service {

namespace internal {

/// Shared batch shape of TemplarService and TenantHandle: fan each input
/// out through `submit` (which returns a future), then join in order, so
/// results are positionally aligned with the inputs.
template <typename Input, typename SubmitFn>
auto FanOutAligned(const std::vector<Input>& inputs, SubmitFn&& submit) {
  using Future = std::invoke_result_t<SubmitFn, const Input&>;
  std::vector<Future> futures;
  futures.reserve(inputs.size());
  for (const auto& input : inputs) futures.push_back(submit(input));
  std::vector<decltype(futures.front().get())> results;
  results.reserve(inputs.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

/// \brief A future already holding `result`.
template <typename T>
std::future<Result<T>> ReadyFuture(Result<T> result) {
  std::promise<Result<T>> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

/// Shared queue-dispatch shape of TemplarService::TranslateAsync and
/// TenantHandle::TranslateAsync — runs on the worker at dispatch time:
/// re-probes the request's controls (a deadline that expired, or a token
/// that fired, while the task was parked rejects here, before any pipeline
/// work), then stamps the measured queue wait into the response timings.
/// `metrics` (never null) records the wait into the queue-dispatch latency
/// histogram — including for requests the gate rejects, whose queue time is
/// exactly the signal the adaptive controller tunes admission caps from —
/// and counts gate rejections in the deadline/cancel rolling windows (the
/// core never sees those requests, so nothing else would).
template <typename RunFn>
Result<QueryResponse> RunDispatched(
    const QueryRequest& request,
    std::chrono::steady_clock::time_point submitted, TenantMetrics* metrics,
    RunFn&& run) {
  const auto queue_wait =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - submitted);
  metrics->Record(LatencyPoint::kQueueWait, queue_wait);
  if (Status gate = request.CheckRunnable(); !gate.ok()) {
    metrics->Add(gate.IsCancelled() ? Counter::kCancelled
                                    : Counter::kDeadlineExceeded,
                 1);
    return gate;
  }
  Result<QueryResponse> response = run(request);
  if (response.ok()) {
    response->timings.queue = queue_wait;
    response->timings.total += queue_wait;
  }
  return response;
}

}  // namespace internal

/// \brief Delta-log replication settings (replication/graph_log.h).
struct ReplicationOptions {
  /// When non-empty, the core replicates its QFG through this directory: a
  /// writer snapshots the graph to a base file and appends every ingestion
  /// batch to the delta log; a follower bootstraps from base+log and tails.
  /// Empty disables replication entirely.
  std::string log_dir;
  /// Serve as a read-only follower: the QFG is built from the directory
  /// (query_log/warm_start_path are ignored), AppendLogQueries is rejected,
  /// and SyncWithLog/Promote drive the replica.
  bool follower = false;
  /// Writer auto-compaction triggers, checked after each append while the
  /// exclusive lock is still held (0 = disabled): fold the log into a fresh
  /// base snapshot once it holds this many records / bytes.
  uint64_t compact_after_records = 0;
  uint64_t compact_after_bytes = 0;
  /// fsync every appended record before the append returns.
  bool fsync_appends = false;
};

/// \brief Serving-layer tunables on top of the core TemplarOptions.
struct ServiceOptions {
  core::TemplarOptions templar;
  /// Worker threads for Async/Batch requests; 0 = hardware concurrency.
  /// (TemplarService only — a ServiceCore runs on its callers' threads.)
  size_t worker_threads = 4;
  /// Total entries per result cache (split across shards).
  size_t map_cache_capacity = 4096;
  size_t join_cache_capacity = 4096;
  /// End-to-end translation cache (full rankings; top_k slices at serve).
  size_t translate_cache_capacity = 4096;
  /// Independent lock shards per cache.
  size_t cache_shards = 8;
  /// How appends invalidate cached rankings (see lru_cache.h). kPerFragment
  /// keeps entries whose fragment footprint the append did not touch;
  /// kEpochDrop is the legacy cold-cache-per-append behaviour.
  InvalidationPolicy invalidation = InvalidationPolicy::kPerFragment;
  /// When non-empty, restore the QFG from this qfg_io snapshot instead of
  /// parsing `query_log` (which is then ignored).
  std::string warm_start_path;
  /// Delta-log replication. With a log_dir and an existing delta log, the
  /// directory is the source of truth and query_log/warm_start_path are
  /// ignored (writer restart / follower bootstrap both recover from it).
  ReplicationOptions replication;
};

/// \brief Outcome of one AppendLogQueries batch.
struct AppendOutcome {
  size_t appended = 0;  ///< Entries folded into the QFG.
  size_t skipped = 0;   ///< Unparseable entries.
  uint64_t epoch = 0;   ///< Epoch after the batch (caches older than this
                        ///  are stale).
};

/// \brief The per-tenant serving engine: one Templar instance behind
/// tenant-scoped caches, single-flight tables, and an ingestion epoch.
///
/// All public methods are safe to call concurrently from any thread. The
/// core owns no threads — callers (client threads, a TemplarService pool,
/// or a ServiceHost's shared pool) bring their own.
class ServiceCore {
 public:
  /// \brief Builds the engine. `db` and `model` must outlive it.
  /// `options.worker_threads` is ignored (the core owns no pool).
  static Result<std::unique_ptr<ServiceCore>> Create(
      const db::Database* db, const embed::SimilarityModel* model,
      const std::vector<std::string>& query_log,
      const ServiceOptions& options = {});

  ~ServiceCore();

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  /// \brief The single typed entry point: serves the envelope's stage
  /// through the cache -> single-flight -> compute path, honouring the
  /// request's deadline/cancellation at every boundary. Runs on the
  /// caller's thread.
  Result<QueryResponse> Translate(const QueryRequest& request);

  /// \name Legacy stage surfaces (shims over stage-selected envelopes)
  /// Same caches, same single-flight keys, bit-identical rankings.
  ///@{
  Result<std::vector<core::Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq);
  Result<std::vector<graph::JoinPath>> InferJoins(
      const std::vector<std::string>& relation_bag);
  ///@}

  /// \brief Folds new SQL log entries into the QFG while serving continues.
  ///
  /// Entries are parsed — and their fragment delta extracted — outside the
  /// write lock; the exclusive section applies the pre-parsed queries, bumps
  /// the epoch, and sweeps all three caches against the delta, so readers
  /// are blocked for the minimum time and an entry the append could have
  /// changed is never served afterwards. Unparseable entries are skipped
  /// and counted.
  ///
  /// The returned AppendOutcome::epoch is *this batch's* epoch, read from
  /// the same bump that stamped the invalidation sweep — callers correlate
  /// appends with sweeps from it directly, without racing a second read of
  /// the epoch counter. When the core replicates, the batch is also framed
  /// into the delta log before the lock is released. On a read-only
  /// follower the call is rejected with kInvalidArgument and nothing is
  /// applied — appends go to the writer (or Promote this replica first).
  Result<AppendOutcome> AppendLogQueries(
      const std::vector<std::string>& sql_entries);

  /// \name Replication (no-ops unless ServiceOptions::replication is set)
  ///@{

  /// \brief Follower: one tail pass over the delta log. Applies every new
  /// record through the same FragmentDelta cache-invalidation sweep the
  /// writer's appends run, advances the serving epoch, and — when the
  /// writer compacted past this replica — reloads wholesale from the new
  /// base snapshot (dropping the caches, which per-fragment deltas can no
  /// longer validate). Returns the epoch the replica serves at afterwards;
  /// updates the follower-lag gauge. Pair with
  /// replication::FollowerReplicator for a periodic loop.
  Result<uint64_t> SyncWithLog();

  /// \brief Promotes this follower to writer: drains the log to its end,
  /// attaches the appender (truncating any torn tail the dead writer left),
  /// and starts accepting AppendLogQueries at the epoch it last applied.
  /// The old writer must be stopped first — two appenders would fork the
  /// log. Idempotent on a core that already accepts appends.
  Status Promote();

  /// \brief Writer: folds the delta log into a fresh base snapshot now
  /// (auto-compaction runs off ReplicationOptions thresholds; this is the
  /// explicit trigger).
  Status CompactLog();

  /// \brief True while this core rejects appends and tails the log.
  bool is_follower() const {
    return follower_.load(std::memory_order_acquire);
  }
  /// \brief True when a replication directory is attached (either role).
  bool is_replicated() const { return graph_log_ != nullptr; }
  ///@}

  /// \brief Checkpoints the current QFG in the qfg_io snapshot format
  /// (restorable via ServiceOptions::warm_start_path).
  Status SaveSnapshot(const std::string& path) const;

  /// \brief Consistent counter snapshot (worker/tenant/admission fields are
  /// left for the owning layer to fill).
  ServiceStats Stats() const;

  /// \brief This engine's windowed telemetry (rolling rates + latency
  /// histograms), recorded inline on the request path.
  TenantMetrics& metrics() { return *metrics_; }
  /// \brief The shared handle a MetricsRegistry attaches (keeps renders
  /// racing a tenant retire safe).
  const std::shared_ptr<TenantMetrics>& metrics_ptr() const {
    return metrics_;
  }

  /// \brief Current ingestion epoch (bumped once per append batch).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// \brief Re-budgets the result caches (multi-tenant hosts partition one
  /// global entry budget across live tenants). Over-budget entries are
  /// evicted LRU-first.
  void SetCacheCapacities(size_t map_entries, size_t join_entries,
                          size_t translate_entries);

  /// \brief Hands the core a thread pool for parallel configuration
  /// scoring: large enumeration products inside MAPKEYWORDS fan out over
  /// it (see core::ScoringExecutor / service/scoring_executor.h), with
  /// rankings byte-identical to sequential scoring. Pools of size <= 1 (or
  /// nullptr) disable fan-out. `pool` must outlive the core's last request.
  /// NOT thread-safe against in-flight requests — wire it up right after
  /// Create, before serving begins (TemplarService and ServiceHost do).
  void SetScoringPool(ThreadPool* pool);

  /// \brief Canonical cache key for an NLQ: whitespace-normalized keyword
  /// texts with their metadata, order-preserving. Exposed for tests.
  static std::string MapCacheKey(const nlq::ParsedNlq& nlq);
  /// \brief Canonical cache key for a relation bag: sorted instance names
  /// (bag order does not affect the Steiner terminals). Exposed for tests.
  static std::string JoinCacheKey(const std::vector<std::string>& bag);
  /// \brief Canonical cache key for a full translation. top_k is NOT part
  /// of the key (the full ranking is cached once and sliced at serve);
  /// want_explanation is (explanationless traffic never pays for
  /// provenance). Exposed for tests.
  static std::string TranslateCacheKey(const nlq::ParsedNlq& nlq,
                                       bool want_explanation);

 private:
  ServiceCore(const db::Database* db, const embed::SimilarityModel* model,
              std::unique_ptr<core::Templar> templar,
              const ServiceOptions& options);

  /// SyncWithLog body; requires the exclusive QFG lock to be held.
  Result<uint64_t> SyncLocked();

  /// One cached end-to-end translation: the full ranking plus (when the
  /// computing request asked) aligned explanations and the compute-time
  /// stage timings.
  struct TranslationBundle {
    std::vector<nlidb::Translation> translations;
    std::vector<Explanation> explanations;
    nlidb::PipelineTimings timings;
  };

  using ConfigResult = std::shared_ptr<const std::vector<core::Configuration>>;
  using JoinResult = std::shared_ptr<const std::vector<graph::JoinPath>>;
  using TranslateResult = std::shared_ptr<const TranslationBundle>;
  /// What a single flight lands with: an error status or a shared pointer
  /// to the result (fan-out to followers copies the pointer), plus the
  /// epoch it was computed at — a follower that joined the flight after an
  /// intervening append re-checks freshness against it — and whether the
  /// leader's in-flight double-check served it from the cache.
  template <typename V>
  struct FlightValue {
    Status status;
    V result;
    uint64_t computed_at = 0;
    bool from_cache = false;
    /// The leader's deadline truncated enumeration (map stage): valid for
    /// the leader, but never cached and never handed to followers — their
    /// own controls decide whether *they* should settle for a prefix.
    bool partial = false;
  };

  /// Shared cache -> single-flight -> compute path of every stage (defined
  /// in the .cc; only instantiated there). `core_call(&footprint, &partial)`
  /// runs the underlying computation; it is invoked under the shared QFG
  /// lock with the footprint recorder to fill, and may set `partial` when
  /// the request's own controls truncated the computation (map stage).
  /// Partial results are returned to the computing caller but never cached;
  /// coalesced followers of a partial leader retry with their own controls.
  /// `request` supplies the deadline/cancellation probes; `served_from` /
  /// `served_partial` (nullable) report the disposition.
  template <typename V, typename CoreFn>
  Result<V> ServeCached(const QueryRequest& request, const std::string& key,
                        ShardedLruCache<V>& cache,
                        SingleFlight<FlightValue<V>>& flight,
                        std::atomic<uint64_t>& computations,
                        std::atomic<uint64_t>& coalesced_hits,
                        ServedFrom* served_from, bool* served_partial,
                        CoreFn&& core_call);

  /// Records the windowed counters and stage histograms for one successful
  /// Translate (defined in the .cc).
  void RecordServed(const QueryRequest& request,
                    const QueryResponse& response);

  /// Stage bodies of Translate (defined in the .cc).
  Result<QueryResponse> ServeMapStage(const QueryRequest& request);
  Result<QueryResponse> ServeJoinStage(const QueryRequest& request);
  Result<QueryResponse> ServeTranslateStage(const QueryRequest& request);

  /// The parallel scoring executor SetScoringPool installed (run is empty —
  /// and scoring stays sequential — until then).
  const core::ScoringExecutor* scoring_executor() const {
    return scoring_executor_.run ? &scoring_executor_ : nullptr;
  }

  /// Retained for follower full reloads (Templar::BuildFromQfg needs them).
  const db::Database* db_ = nullptr;
  const embed::SimilarityModel* model_ = nullptr;
  core::TemplarOptions templar_options_;
  ReplicationOptions replication_;

  std::unique_ptr<core::Templar> templar_;
  core::ScoringExecutor scoring_executor_;

  /// Delta-log replication state; guarded by qfg_mutex_ (exclusive), null
  /// when replication is off.
  std::unique_ptr<replication::GraphLog> graph_log_;
  std::atomic<bool> follower_{false};

  /// Windowed rates + latency histograms; shared so a metrics registry can
  /// keep rendering safely while the core is torn down.
  std::shared_ptr<TenantMetrics> metrics_ = std::make_shared<TenantMetrics>();

  /// Guards the QFG: shared for scoring reads, exclusive for ingestion.
  mutable std::shared_mutex qfg_mutex_;
  std::atomic<uint64_t> epoch_{0};

  ShardedLruCache<ConfigResult> map_cache_;
  ShardedLruCache<JoinResult> join_cache_;
  ShardedLruCache<TranslateResult> translate_cache_;

  SingleFlight<FlightValue<ConfigResult>> map_flight_;
  SingleFlight<FlightValue<JoinResult>> join_flight_;
  SingleFlight<FlightValue<TranslateResult>> translate_flight_;

  std::atomic<uint64_t> map_requests_{0};
  std::atomic<uint64_t> join_requests_{0};
  std::atomic<uint64_t> translate_requests_{0};
  std::atomic<uint64_t> map_computations_{0};
  std::atomic<uint64_t> join_computations_{0};
  std::atomic<uint64_t> translate_computations_{0};
  std::atomic<uint64_t> map_coalesced_{0};
  std::atomic<uint64_t> join_coalesced_{0};
  std::atomic<uint64_t> translate_coalesced_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> append_batches_{0};
  std::atomic<uint64_t> appended_queries_{0};
  std::atomic<uint64_t> skipped_appends_{0};
};

/// \brief A thread-safe, caching Templar server bound to one database: a
/// ServiceCore plus a private worker pool for Async/Batch requests.
///
/// All public methods are safe to call concurrently from any thread.
class TemplarService {
 public:
  /// \brief Builds the service. `db` and `model` must outlive it.
  static Result<std::unique_ptr<TemplarService>> Create(
      const db::Database* db, const embed::SimilarityModel* model,
      const std::vector<std::string>& query_log, ServiceOptions options = {});

  ~TemplarService();

  TemplarService(const TemplarService&) = delete;
  TemplarService& operator=(const TemplarService&) = delete;

  /// \name Typed envelope API
  ///@{

  /// \brief Synchronous Translate (runs on the caller's thread).
  Result<QueryResponse> Translate(const QueryRequest& request) {
    return core_->Translate(request);
  }

  /// \brief Asynchronous Translate: the request runs on the worker pool. A
  /// deadline already expired at submission returns a ready future without
  /// queueing; one expiring while queued is rejected at dispatch before any
  /// pipeline work. QueryResponse::timings.queue reports the pool wait.
  std::future<Result<QueryResponse>> TranslateAsync(QueryRequest request);

  /// \brief Batched Translate: fans out over the pool; results are
  /// positionally aligned with the inputs.
  std::vector<Result<QueryResponse>> TranslateBatch(
      const std::vector<QueryRequest>& requests);
  ///@}

  /// \name Legacy stage surfaces (shims over stage-selected envelopes)
  ///@{
  Result<std::vector<core::Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq) {
    return core_->MapKeywords(nlq);
  }
  Result<std::vector<graph::JoinPath>> InferJoins(
      const std::vector<std::string>& relation_bag) {
    return core_->InferJoins(relation_bag);
  }
  std::future<Result<std::vector<core::Configuration>>> MapKeywordsAsync(
      nlq::ParsedNlq nlq);
  std::future<Result<std::vector<graph::JoinPath>>> InferJoinsAsync(
      std::vector<std::string> relation_bag);
  /// Fans the batch out over the worker pool and waits for every element;
  /// results are positionally aligned with the inputs.
  std::vector<Result<std::vector<core::Configuration>>> MapKeywordsBatch(
      const std::vector<nlq::ParsedNlq>& nlqs);
  std::vector<Result<std::vector<graph::JoinPath>>> InferJoinsBatch(
      const std::vector<std::vector<std::string>>& relation_bags);
  ///@}

  /// \brief See ServiceCore::AppendLogQueries.
  Result<AppendOutcome> AppendLogQueries(
      const std::vector<std::string>& sql_entries) {
    return core_->AppendLogQueries(sql_entries);
  }

  /// \name Replication passthroughs (see ServiceCore)
  ///@{
  Result<uint64_t> SyncWithLog() { return core_->SyncWithLog(); }
  Status Promote() { return core_->Promote(); }
  Status CompactLog() { return core_->CompactLog(); }
  bool is_follower() const { return core_->is_follower(); }
  bool is_replicated() const { return core_->is_replicated(); }
  ///@}

  /// \brief See ServiceCore::SaveSnapshot.
  Status SaveSnapshot(const std::string& path) const {
    return core_->SaveSnapshot(path);
  }

  /// \brief Consistent counter snapshot.
  ServiceStats Stats() const;

  /// \brief Windowed telemetry of this service's core.
  TenantMetrics& metrics() { return core_->metrics(); }

  /// \brief Prometheus text exposition of every rolling window and latency
  /// histogram (single tenant, labeled tenant="service").
  std::string RenderMetrics() const {
    return RenderPrometheusText({{"service", core_->metrics().Collect()}});
  }

  /// \brief Current ingestion epoch (bumped once per append batch).
  uint64_t epoch() const { return core_->epoch(); }

  /// \brief See ServiceCore::MapCacheKey / JoinCacheKey / TranslateCacheKey.
  static std::string MapCacheKey(const nlq::ParsedNlq& nlq) {
    return ServiceCore::MapCacheKey(nlq);
  }
  static std::string JoinCacheKey(const std::vector<std::string>& bag) {
    return ServiceCore::JoinCacheKey(bag);
  }
  static std::string TranslateCacheKey(const nlq::ParsedNlq& nlq,
                                       bool want_explanation) {
    return ServiceCore::TranslateCacheKey(nlq, want_explanation);
  }

 private:
  TemplarService(std::unique_ptr<ServiceCore> core, size_t worker_threads);

  std::unique_ptr<ServiceCore> core_;
  // Declared last: workers must stop before members they touch are torn down.
  ThreadPool pool_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_TEMPLAR_SERVICE_H_
