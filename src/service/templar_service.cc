#include "service/templar_service.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "graph/schema_graph.h"
#include "qfg/fragment_delta.h"
#include "qfg/qfg_io.h"
#include "replication/graph_log.h"
#include "service/scoring_executor.h"
#include "sql/parser.h"

namespace templar::service {

namespace {

/// Collapses runs of whitespace to single spaces and trims the ends, so two
/// NLQs differing only in spacing share a cache entry.
std::string NormalizeSpace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Leading whitespace is dropped.
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out += ' ';
    in_space = false;
    out += c;
  }
  return out;
}

constexpr char kFieldSep = '\x1f';   // Within one keyword record.
constexpr char kRecordSep = '\x1e';  // Between keyword records.

/// Escapes the separator bytes (and the escape char itself) in free-form
/// fields: keyword text and relation names are user/NLIDB input, and an
/// embedded \x1e/\x1f would otherwise let two distinct requests collide on
/// one cache key and serve each other's rankings.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case kFieldSep:
        out += "%1F";
        break;
      case kRecordSep:
        out += "%1E";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::chrono::microseconds Since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
}

/// True for statuses produced by the *requester's* controls rather than by
/// the computation itself — a coalesced follower must not inherit them.
bool IsControlAbort(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsCancelled();
}

/// Builds the provenance record of one ranked translation against the QFG
/// it was scored on. Must run under the shared QFG lock (reads counts and
/// the interner). Mirrors the scoring semantics exactly: map pairs follow
/// QfgScore's skip-identical-after-obscuring rule; join evidence is the
/// relation Dice behind the returned path's edge weights w_L = 1 - Dice.
Explanation ExplainTranslation(const qfg::QueryFragmentGraph& graph,
                               const nlidb::Translation& t) {
  Explanation ex;
  ex.query_count = graph.query_count();

  // Map side: the chosen configuration's non-FROM fragments, resolved once.
  std::vector<qfg::ResolvedFragment> resolved;
  for (const auto& m : t.configuration.mappings) {
    if (m.candidate.fragment.context == qfg::FragmentContext::kFrom) continue;
    resolved.push_back(graph.Resolve(m.candidate.fragment));
  }
  ex.map_fragments.reserve(resolved.size());
  for (const auto& r : resolved) {
    Explanation::FragmentSupport support;
    support.key = r.key;
    support.interned = r.seen();
    support.id = r.id;
    support.occurrences = graph.Occurrences(r.id);
    ex.map_fragments.push_back(std::move(support));
  }
  for (size_t i = 0; i < resolved.size(); ++i) {
    for (size_t j = i + 1; j < resolved.size(); ++j) {
      if (resolved[i].SameAs(resolved[j])) continue;  // Skipped in scoring.
      Explanation::PairSupport pair;
      pair.a = resolved[i].key;
      pair.b = resolved[j].key;
      pair.cooccurrences = graph.CoOccurrences(resolved[i].id, resolved[j].id);
      pair.dice = graph.Dice(resolved[i].id, resolved[j].id);
      ex.map_pairs.push_back(std::move(pair));
    }
  }
  // The occurrence-fallback flag, derived from the evidence just gathered
  // exactly as QfgScoreResolved computes it: no usable pair (fewer than two
  // non-FROM fragments, or every pair identical after obscuring) and a
  // non-zero occurrence of the first fragment divided by query_count().
  ex.used_query_count = ex.map_pairs.empty() && !resolved.empty() &&
                        graph.query_count() > 0 &&
                        graph.Occurrences(resolved[0].id) > 0;

  // Join side: base relations of the returned path and, as edge evidence,
  // the search's *decisive* set (JoinPath::decisive_edges) — the path's own
  // tree edges plus the runner-ups whose w_L decided the tie-breaks. This
  // is exactly the dependency set the cache footprint records, so the
  // explanation names precisely the evidence whose change would invalidate
  // the entry — not everything the optimizer glanced at.
  std::vector<std::string> bases;
  for (const auto& instance : t.join_path.relations) {
    std::string base = graph::BaseRelationName(instance);
    if (std::find(bases.begin(), bases.end(), base) == bases.end()) {
      bases.push_back(std::move(base));
    }
  }
  ex.join_relations.reserve(bases.size());
  for (const auto& base : bases) {
    qfg::ResolvedFragment r = graph.Resolve(qfg::RelationFragment(base));
    Explanation::FragmentSupport support;
    support.key = r.key;
    support.interned = r.seen();
    support.id = r.id;
    support.occurrences = graph.Occurrences(r.id);
    ex.join_relations.push_back(std::move(support));
  }
  const std::vector<graph::SchemaEdge>& evidence =
      t.join_path.decisive_edges.empty() ? t.join_path.edges
                                         : t.join_path.decisive_edges;
  ex.join_edges.reserve(evidence.size());
  for (const auto& edge : evidence) {
    Explanation::PairSupport pair;
    pair.a = graph::BaseRelationName(edge.fk_relation);
    pair.b = graph::BaseRelationName(edge.pk_relation);
    pair.cooccurrences =
        graph.CoOccurrences(graph.Resolve(qfg::RelationFragment(pair.a)).id,
                            graph.Resolve(qfg::RelationFragment(pair.b)).id);
    pair.dice = graph.RelationDice(pair.a, pair.b);
    ex.join_edges.push_back(std::move(pair));
  }
  return ex;
}

}  // namespace

// ---------------------------------------------------------------------------
// ServiceCore

std::string ServiceCore::MapCacheKey(const nlq::ParsedNlq& nlq) {
  std::string key;
  for (const auto& kw : nlq.keywords) {
    key += EscapeField(NormalizeSpace(kw.text));
    key += kFieldSep;
    key += qfg::FragmentContextToString(kw.metadata.context);
    key += kFieldSep;
    key += kw.metadata.op ? sql::BinaryOpToString(*kw.metadata.op) : "-";
    key += kFieldSep;
    for (sql::AggFunc f : kw.metadata.aggs) {
      key += sql::AggFuncToString(f);
      key += ',';
    }
    key += kFieldSep;
    key += kw.metadata.group_by ? '1' : '0';
    key += kRecordSep;
  }
  return key;
}

std::string ServiceCore::JoinCacheKey(const std::vector<std::string>& bag) {
  // Terminal order does not change the Steiner problem; sort so permuted
  // bags share an entry.
  std::vector<std::string> sorted = bag;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& instance : sorted) {
    key += EscapeField(instance);
    key += kRecordSep;
  }
  return key;
}

std::string ServiceCore::TranslateCacheKey(const nlq::ParsedNlq& nlq,
                                           bool want_explanation) {
  // Keys are only meaningful within the translate cache (each cache and
  // single-flight table is its own object and key space); the prefix keeps
  // explained and unexplained rankings from sharing an entry.
  std::string key = want_explanation ? "t1" : "t0";
  key += MapCacheKey(nlq);
  return key;
}

Result<std::unique_ptr<ServiceCore>> ServiceCore::Create(
    const db::Database* db, const embed::SimilarityModel* model,
    const std::vector<std::string>& query_log, const ServiceOptions& options) {
  const ReplicationOptions& rep = options.replication;
  replication::GraphLogOptions log_options;
  log_options.fsync_appends = rep.fsync_appends;

  // Follower: the replication directory is the only source of truth —
  // bootstrap the graph from base snapshot + delta log and tail from there.
  if (!rep.log_dir.empty() && rep.follower) {
    auto recovered = replication::GraphLog::Follow(rep.log_dir, log_options);
    if (!recovered.ok()) return recovered.status();
    auto templar = core::Templar::BuildFromQfg(
        db, model, std::move(recovered->graph), options.templar);
    if (!templar.ok()) return templar.status();
    auto core = std::unique_ptr<ServiceCore>(
        new ServiceCore(db, model, std::move(*templar), options));
    core->graph_log_ = std::move(recovered->log);
    core->epoch_.store(recovered->epoch, std::memory_order_release);
    core->follower_.store(true, std::memory_order_release);
    return core;
  }

  // Writer restart: an existing delta log outranks query_log /
  // warm_start_path — it holds everything the previous writer ingested
  // after its last compaction, which a stale snapshot would silently lose.
  if (!rep.log_dir.empty() &&
      ::access(replication::GraphLog::LogPath(rep.log_dir).c_str(), F_OK) ==
          0) {
    auto recovered = replication::GraphLog::Recover(rep.log_dir, log_options);
    if (!recovered.ok()) return recovered.status();
    auto templar = core::Templar::BuildFromQfg(
        db, model, std::move(recovered->graph), options.templar);
    if (!templar.ok()) return templar.status();
    auto core = std::unique_ptr<ServiceCore>(
        new ServiceCore(db, model, std::move(*templar), options));
    core->graph_log_ = std::move(recovered->log);
    core->epoch_.store(recovered->epoch, std::memory_order_release);
    return core;
  }

  Result<std::unique_ptr<core::Templar>> templar = [&] {
    if (!options.warm_start_path.empty()) {
      auto snapshot = qfg::LoadQfgFromFile(options.warm_start_path);
      if (!snapshot.ok()) {
        return Result<std::unique_ptr<core::Templar>>(snapshot.status());
      }
      return core::Templar::BuildFromQfg(db, model, std::move(*snapshot),
                                         options.templar);
    }
    return core::Templar::Build(db, model, query_log, options.templar);
  }();
  if (!templar.ok()) return templar.status();
  auto core = std::unique_ptr<ServiceCore>(
      new ServiceCore(db, model, std::move(*templar), options));
  if (!rep.log_dir.empty()) {
    // Fresh writer: checkpoint the just-built graph as the log's base.
    auto graph_log = replication::GraphLog::CreateFresh(
        rep.log_dir, core->templar_->query_fragment_graph(), core->epoch(),
        log_options);
    if (!graph_log.ok()) return graph_log.status();
    core->graph_log_ = std::move(*graph_log);
  }
  return core;
}

ServiceCore::ServiceCore(const db::Database* db,
                         const embed::SimilarityModel* model,
                         std::unique_ptr<core::Templar> templar,
                         const ServiceOptions& options)
    : db_(db),
      model_(model),
      templar_options_(options.templar),
      replication_(options.replication),
      templar_(std::move(templar)),
      map_cache_(options.map_cache_capacity, options.cache_shards,
                 options.invalidation),
      join_cache_(options.join_cache_capacity, options.cache_shards,
                  options.invalidation),
      translate_cache_(options.translate_cache_capacity, options.cache_shards,
                       options.invalidation) {}

ServiceCore::~ServiceCore() = default;

void ServiceCore::SetCacheCapacities(size_t map_entries, size_t join_entries,
                                     size_t translate_entries) {
  map_cache_.SetCapacity(map_entries);
  join_cache_.SetCapacity(join_entries);
  translate_cache_.SetCapacity(translate_entries);
}

void ServiceCore::SetScoringPool(ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    // A single worker could only serialize the batch with extra hops.
    scoring_executor_ = core::ScoringExecutor{};
    return;
  }
  scoring_executor_ = MakeScoringExecutor(pool);
}

template <typename V, typename CoreFn>
Result<V> ServiceCore::ServeCached(const QueryRequest& request,
                                   const std::string& key,
                                   ShardedLruCache<V>& cache,
                                   SingleFlight<FlightValue<V>>& flight,
                                   std::atomic<uint64_t>& computations,
                                   std::atomic<uint64_t>& coalesced_hits,
                                   ServedFrom* served_from,
                                   bool* served_partial, CoreFn&& core_call) {
  // Only the first probe records a miss: retries (stale-follower loop) and
  // the in-flight double-check are re-probes of one logical request, and
  // counting them would deflate the reported hit rate.
  for (bool first_probe = true;; first_probe = false) {
    // The request's own controls gate every pass — entry, and each retry a
    // stale or leader-aborted flight sends it back around — so an expired
    // or cancelled request never starts (or re-starts) a computation.
    TEMPLAR_RETURN_NOT_OK(request.CheckRunnable());
    if (auto hit = cache.Get(key, /*record_miss=*/first_probe)) {
      *served_from = ServedFrom::kCache;
      return *hit;
    }

    // Cache miss: coalesce with any identical in-flight request; the leader
    // computes under a shared QFG lock, records the ranking's fragment
    // footprint, and publishes to the cache.
    auto outcome = flight.Do(key, [&]() -> FlightValue<V> {
      // Double check under the flight: a previous flight may have landed
      // between this caller's miss and its takeoff — serve its (current)
      // entry instead of recomputing. The stamp is read *before* the probe:
      // an append completing in between would make a fresher stamp claim
      // validity the entry no longer has; the conservative stamp at worst
      // sends a follower back around the retry loop.
      const uint64_t probed_at = epoch();
      if (auto hit = cache.Get(key, /*record_miss=*/false)) {
        return {Status::OK(), *hit, probed_at, /*from_cache=*/true};
      }
      computations.fetch_add(1, std::memory_order_relaxed);
      std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
      // Read under the lock: this is exactly the QFG state being scored, so
      // the entry is stamped with the epoch it was computed in.
      const uint64_t computed_at = epoch();
      qfg::QfgFootprint footprint;
      bool partial = false;
      auto result = core_call(&footprint, &partial);
      lock.unlock();

      if (!result.ok()) {
        return {result.status(), nullptr, computed_at, /*from_cache=*/false};
      }
      auto value =
          std::make_shared<typename V::element_type>(std::move(*result));
      // A partial ranking is this leader's deadline-shaped prefix, not the
      // answer: publishing it would serve truncated rankings to unhurried
      // callers for as long as the entry survived.
      if (!partial) {
        cache.Put(key, value, computed_at, footprint.Fingerprints());
      }
      return {Status::OK(), value, computed_at, /*from_cache=*/false, partial};
    });
    if (outcome.coalesced) {
      // A leader that aborted on ITS deadline or cancellation says nothing
      // about this follower's request: retry, re-checking this request's
      // own controls at the top of the loop — a fresh flight (with this
      // caller as the likely leader) then computes. This is what lets a
      // cancelled leader drain its coalesced followers safely instead of
      // propagating a kCancelled none of them asked for.
      if (IsControlAbort(outcome.value.status)) continue;
      // A partial ranking is likewise shaped by the LEADER's controls; a
      // follower retries so its own deadline decides whether it computes a
      // full ranking or truncates at its own probe.
      if (outcome.value.status.ok() && outcome.value.partial) continue;
      // A follower may also have joined a flight whose computation predates
      // an append that *completed before this request began* — serving it
      // would hand out a ranking the append already invalidated. Retry: if
      // the append retained the entry the cache answers, otherwise a fresh
      // flight recomputes. (The leader itself is always linearizable: its
      // request overlaps any append that races its computation.)
      if (outcome.value.status.ok() && outcome.value.computed_at < epoch()) {
        continue;
      }
      coalesced_hits.fetch_add(1, std::memory_order_relaxed);
    }
    if (!outcome.value.status.ok()) return outcome.value.status;
    *served_from = outcome.coalesced        ? ServedFrom::kCoalesced
                   : outcome.value.from_cache ? ServedFrom::kCache
                                              : ServedFrom::kComputed;
    if (served_partial != nullptr) *served_partial = outcome.value.partial;
    return outcome.value.result;
  }
}

Result<QueryResponse> ServiceCore::Translate(const QueryRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  metrics_->Add(Counter::kRequests, 1);
  Result<QueryResponse> response = [&]() -> Result<QueryResponse> {
    switch (request.stage) {
      case Stage::kMapKeywords:
        return ServeMapStage(request);
      case Stage::kInferJoins:
        return ServeJoinStage(request);
      case Stage::kTranslate:
        return ServeTranslateStage(request);
    }
    return Status::InvalidArgument("unknown request stage");
  }();
  if (response.ok()) {
    response->timings.total = Since(start);
    RecordServed(request, *response);
  } else if (response.status().IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    metrics_->Add(Counter::kDeadlineExceeded, 1);
  } else if (response.status().IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    metrics_->Add(Counter::kCancelled, 1);
  }
  return response;
}

void ServiceCore::RecordServed(const QueryRequest& request,
                               const QueryResponse& response) {
  metrics_->Record(LatencyPoint::kEndToEnd, response.timings.total);
  switch (response.served_from) {
    case ServedFrom::kCache:
      metrics_->Add(Counter::kCacheHits, 1);
      return;
    case ServedFrom::kCoalesced:
      metrics_->Add(Counter::kCacheMisses, 1);
      metrics_->Add(Counter::kCoalesced, 1);
      return;
    case ServedFrom::kComputed:
      break;
  }
  metrics_->Add(Counter::kCacheMisses, 1);
  // Stage latencies are only meaningful on the computing request (cache and
  // coalesced answers carry the computing request's numbers or zeros), and
  // only for the stages the envelope actually ran.
  switch (request.stage) {
    case Stage::kMapKeywords:
      metrics_->Add(Counter::kMapComputations, 1);
      metrics_->Record(LatencyPoint::kMapStage, response.timings.map);
      break;
    case Stage::kInferJoins:
      metrics_->Add(Counter::kJoinComputations, 1);
      metrics_->Record(LatencyPoint::kJoinStage, response.timings.join);
      break;
    case Stage::kTranslate:
      metrics_->Add(Counter::kTranslateComputations, 1);
      metrics_->Record(LatencyPoint::kMapStage, response.timings.map);
      metrics_->Record(LatencyPoint::kJoinStage, response.timings.join);
      metrics_->Record(LatencyPoint::kAssembleStage,
                       response.timings.assemble);
      break;
  }
}

Result<QueryResponse> ServiceCore::ServeMapStage(const QueryRequest& request) {
  map_requests_.fetch_add(1, std::memory_order_relaxed);
  QueryResponse response;
  response.stage = Stage::kMapKeywords;
  std::chrono::microseconds map_time{0};
  auto value = ServeCached(
      request, MapCacheKey(request.nlq), map_cache_, map_flight_,
      map_computations_, map_coalesced_, &response.served_from,
      &response.partial,
      [&](qfg::QfgFootprint* footprint, bool* partial) {
        const auto stage_start = std::chrono::steady_clock::now();
        // Enumeration-loop controls: the request's own deadline/cancel
        // probe (so a deadline cuts scoring short mid-enumeration, not at
        // the next stage boundary), the shared scoring pool, and the
        // partial sink — a truncated run returns the best-so-far ranking
        // flagged partial instead of an error.
        core::MapKeywordsControls controls;
        controls.checkpoint = [&request] { return request.CheckRunnable(); };
        controls.executor = scoring_executor();
        controls.partial = partial;
        auto result = templar_->MapKeywords(request.nlq, footprint, controls);
        map_time = Since(stage_start);
        return result;
      });
  if (!value.ok()) return value.status();
  response.configurations = **value;
  response.timings.map = map_time;  // Zero unless this request computed.
  response.epoch = epoch();
  return response;
}

Result<QueryResponse> ServiceCore::ServeJoinStage(const QueryRequest& request) {
  join_requests_.fetch_add(1, std::memory_order_relaxed);
  QueryResponse response;
  response.stage = Stage::kInferJoins;
  std::chrono::microseconds join_time{0};
  auto value = ServeCached(
      request, JoinCacheKey(request.relation_bag), join_cache_, join_flight_,
      join_computations_, join_coalesced_, &response.served_from,
      /*served_partial=*/nullptr,
      [&](qfg::QfgFootprint* footprint, bool* /*partial*/) {
        const auto stage_start = std::chrono::steady_clock::now();
        auto result = templar_->InferJoins(request.relation_bag, footprint);
        join_time = Since(stage_start);
        return result;
      });
  if (!value.ok()) return value.status();
  response.join_paths = **value;
  response.timings.join = join_time;  // Zero unless this request computed.
  response.epoch = epoch();
  return response;
}

Result<QueryResponse> ServiceCore::ServeTranslateStage(
    const QueryRequest& request) {
  translate_requests_.fetch_add(1, std::memory_order_relaxed);
  QueryResponse response;
  response.stage = Stage::kTranslate;
  auto value = ServeCached(
      request, TranslateCacheKey(request.nlq, request.want_explanation),
      translate_cache_, translate_flight_, translate_computations_,
      translate_coalesced_, &response.served_from,
      /*served_partial=*/nullptr,
      [&](qfg::QfgFootprint* footprint,
          bool* /*partial*/) -> Result<TranslationBundle> {
        TranslationBundle bundle;
        nlidb::PipelineHooks hooks;
        // One footprint accumulates map ∪ join fingerprints: exactly the
        // QFG dependency set of every returned translation, so the cached
        // bundle is invalidated by precisely the appends that could change
        // any of them.
        hooks.footprint = footprint;
        hooks.checkpoint = [&request] { return request.CheckRunnable(); };
        hooks.timings = &bundle.timings;
        hooks.scoring_executor = scoring_executor();
        auto ranked =
            nlidb::TranslateAllWithTemplar(*templar_, request.nlq, hooks);
        if (!ranked.ok()) return ranked.status();
        bundle.translations = std::move(*ranked);
        if (request.want_explanation) {
          // Built here, under the shared QFG lock ServeCached holds around
          // this call: the evidence names exactly the graph state the
          // ranking was scored on, and rides the cache entry so hits get
          // provenance for free.
          const qfg::QueryFragmentGraph& graph =
              templar_->query_fragment_graph();
          bundle.explanations.reserve(bundle.translations.size());
          for (const auto& t : bundle.translations) {
            bundle.explanations.push_back(ExplainTranslation(graph, t));
          }
        }
        return bundle;
      });
  if (!value.ok()) return value.status();
  const TranslationBundle& bundle = **value;
  const size_t top_k =
      std::min(std::max<size_t>(1, request.top_k), bundle.translations.size());
  response.translations.assign(bundle.translations.begin(),
                               bundle.translations.begin() + top_k);
  if (!bundle.explanations.empty()) {
    response.explanations.assign(
        bundle.explanations.begin(),
        bundle.explanations.begin() +
            std::min(top_k, bundle.explanations.size()));
  }
  if (response.served_from == ServedFrom::kComputed) {
    response.timings.map = bundle.timings.map;
    response.timings.join = bundle.timings.joins;
    response.timings.assemble = bundle.timings.assemble;
  }
  response.epoch = epoch();
  return response;
}

Result<std::vector<core::Configuration>> ServiceCore::MapKeywords(
    const nlq::ParsedNlq& nlq) {
  auto response = Translate(QueryRequest::MapOnly(nlq));
  if (!response.ok()) return response.status();
  return std::move(response->configurations);
}

Result<std::vector<graph::JoinPath>> ServiceCore::InferJoins(
    const std::vector<std::string>& relation_bag) {
  auto response = Translate(QueryRequest::JoinsOnly(relation_bag));
  if (!response.ok()) return response.status();
  return std::move(response->join_paths);
}

Result<AppendOutcome> ServiceCore::AppendLogQueries(
    const std::vector<std::string>& sql_entries) {
  if (is_follower()) {
    return Status::InvalidArgument(
        "read-only follower: appends must go to the writer (or Promote this "
        "replica first)");
  }
  // Parse outside any lock: parsing dominates ingestion cost and must not
  // block readers. The fragment delta is built *inside* the writer section,
  // from the interned ids each AddQuery returns — the interner already
  // computed every fingerprint, so the delta costs O(fragments) integer
  // appends and the batch's fragments are extracted exactly once (the seed
  // implementation extracted them twice: once for the delta, once to
  // apply).
  std::vector<sql::SelectQuery> parsed;
  parsed.reserve(sql_entries.size());
  size_t skipped = 0;
  for (const auto& entry : sql_entries) {
    auto query = sql::Parse(entry);
    if (query.ok()) {
      parsed.push_back(std::move(*query));
    } else {
      ++skipped;
    }
  }

  AppendOutcome outcome;
  outcome.skipped = skipped;
  outcome.appended = parsed.size();
  append_batches_.fetch_add(1, std::memory_order_relaxed);
  skipped_appends_.fetch_add(skipped, std::memory_order_relaxed);

  if (parsed.empty()) {
    // Nothing changed; existing cache entries remain valid.
    outcome.epoch = epoch();
    return outcome;
  }

  {
    std::unique_lock<std::shared_mutex> lock(qfg_mutex_);
    qfg::FragmentDelta delta;
    const qfg::QueryFragmentGraph& graph = templar_->query_fragment_graph();
    std::vector<std::vector<qfg::FragmentId>> batch_ids;
    batch_ids.reserve(parsed.size());
    for (const auto& query : parsed) {
      batch_ids.push_back(templar_->AppendLogQuery(query));
      for (qfg::FragmentId id : batch_ids.back()) {
        delta.AddFingerprint(graph.Fingerprint(id));
      }
      delta.MarkQueryApplied();
    }
    delta.Seal();
    // Bump inside the exclusive section: readers acquiring the shared lock
    // afterwards observe both the new counts and the new epoch.
    outcome.epoch =
        epoch_.fetch_add(1, std::memory_order_release) + 1;
    // Sweep the caches before releasing the writer lock: entries the delta
    // touches are evicted (or, under kEpochDrop, everything is aged out),
    // the rest re-stamped to the new epoch — so once this append returns, no
    // ranking it could have changed is ever served. In-flight computations
    // that started before the bump publish with an older epoch and are
    // rejected by the cache's stale-put check. Translation entries carry
    // the union (map ∪ join) footprint, so the same sweep invalidates them
    // exactly as precisely.
    size_t swept = map_cache_.ApplyDelta(delta.fingerprints(), outcome.epoch);
    swept += join_cache_.ApplyDelta(delta.fingerprints(), outcome.epoch);
    swept += translate_cache_.ApplyDelta(delta.fingerprints(), outcome.epoch);
    metrics_->Add(Counter::kInvalidationSweeps, 1);
    metrics_->Add(Counter::kInvalidatedEntries, swept);
    if (graph_log_ != nullptr) {
      // Frame the batch into the delta log before releasing the lock, so
      // the log's epoch order is the epoch counter's order. An I/O failure
      // here is returned to the caller: the in-memory graph HAS the batch
      // (readers keep a consistent view) but followers will not see it —
      // the writer should be restarted from the log before trusting
      // replication again.
      TEMPLAR_RETURN_NOT_OK(
          graph_log_->AppendBatch(outcome.epoch, batch_ids, graph));
      const bool records_trip =
          replication_.compact_after_records > 0 &&
          graph_log_->log_record_count() >= replication_.compact_after_records;
      const bool bytes_trip =
          replication_.compact_after_bytes > 0 &&
          graph_log_->log_size_bytes() >= replication_.compact_after_bytes;
      if (records_trip || bytes_trip) {
        TEMPLAR_RETURN_NOT_OK(graph_log_->Compact(graph, outcome.epoch));
      }
    }
  }
  appended_queries_.fetch_add(parsed.size(), std::memory_order_relaxed);
  return outcome;
}

Result<uint64_t> ServiceCore::SyncWithLog() {
  std::unique_lock<std::shared_mutex> lock(qfg_mutex_);
  return SyncLocked();
}

Result<uint64_t> ServiceCore::SyncLocked() {
  if (graph_log_ == nullptr) {
    return Status::InvalidArgument("core is not replicated");
  }
  TEMPLAR_ASSIGN_OR_RETURN(replication::GraphLog::PollOutcome outcome,
                           graph_log_->Poll(templar_->query_fragment_graph()));
  if (outcome.needs_reload) {
    // The writer compacted past this replica: the records it still needed
    // are folded into the new base, so incremental per-fragment
    // invalidation has no delta to work from. Rebuild wholesale and drop
    // the caches.
    TEMPLAR_ASSIGN_OR_RETURN(replication::GraphLog::Recovered reloaded,
                             graph_log_->ReloadFromBase());
    TEMPLAR_ASSIGN_OR_RETURN(
        std::unique_ptr<core::Templar> rebuilt,
        core::Templar::BuildFromQfg(db_, model_, std::move(reloaded.graph),
                                    templar_options_));
    templar_ = std::move(rebuilt);
    epoch_.store(reloaded.epoch, std::memory_order_release);
    map_cache_.Clear();
    join_cache_.Clear();
    translate_cache_.Clear();
    // Advance the shard epochs so an in-flight computation from before the
    // reload cannot publish a pre-reload ranking afterwards.
    map_cache_.ApplyDelta({}, reloaded.epoch);
    join_cache_.ApplyDelta({}, reloaded.epoch);
    translate_cache_.ApplyDelta({}, reloaded.epoch);
    metrics_->Add(Counter::kInvalidationSweeps, 1);
  }
  for (const replication::DeltaBatch& batch : outcome.batches) {
    TEMPLAR_ASSIGN_OR_RETURN(
        std::vector<qfg::FragmentId> touched,
        graph_log_->ApplyBatch(batch, templar_->mutable_query_fragment_graph()));
    if (batch.epoch <= epoch()) continue;  // Already applied (bootstrap re-read).
    // The same invalidation sweep the writer ran for this epoch, rebuilt
    // from the replayed ids: interned fingerprints are a pure function of
    // fragment text, so the swept set is identical on both sides.
    qfg::FragmentDelta delta;
    const qfg::QueryFragmentGraph& graph = templar_->query_fragment_graph();
    for (qfg::FragmentId id : touched) {
      delta.AddFingerprint(graph.Fingerprint(id));
    }
    delta.MarkQueryApplied();
    delta.Seal();
    epoch_.store(batch.epoch, std::memory_order_release);
    size_t swept = map_cache_.ApplyDelta(delta.fingerprints(), batch.epoch);
    swept += join_cache_.ApplyDelta(delta.fingerprints(), batch.epoch);
    swept += translate_cache_.ApplyDelta(delta.fingerprints(), batch.epoch);
    metrics_->Add(Counter::kInvalidationSweeps, 1);
    metrics_->Add(Counter::kInvalidatedEntries, swept);
    append_batches_.fetch_add(1, std::memory_order_relaxed);
    appended_queries_.fetch_add(batch.queries.size(),
                                std::memory_order_relaxed);
  }
  const uint64_t applied = graph_log_->applied_epoch();
  const uint64_t seen = graph_log_->last_seen_epoch();
  metrics_->SetGauge(Gauge::kFollowerLagEpochs,
                     seen > applied ? seen - applied : 0);
  return applied;
}

Status ServiceCore::Promote() {
  std::unique_lock<std::shared_mutex> lock(qfg_mutex_);
  if (graph_log_ == nullptr) {
    return Status::InvalidArgument("core is not replicated");
  }
  if (!follower_.load(std::memory_order_acquire)) return Status::OK();
  // Drain to the end of the log: a sync pass that makes no progress has
  // applied every durable record (a reload pass jumps the epoch, so the
  // loop naturally runs again to tail the new generation).
  for (;;) {
    const uint64_t before = graph_log_->applied_epoch();
    TEMPLAR_ASSIGN_OR_RETURN(uint64_t after, SyncLocked());
    if (after == before) break;
  }
  TEMPLAR_RETURN_NOT_OK(graph_log_->Promote());
  follower_.store(false, std::memory_order_release);
  metrics_->SetGauge(Gauge::kFollowerLagEpochs, 0);
  return Status::OK();
}

Status ServiceCore::CompactLog() {
  std::unique_lock<std::shared_mutex> lock(qfg_mutex_);
  if (graph_log_ == nullptr) {
    return Status::InvalidArgument("core is not replicated");
  }
  if (!graph_log_->can_append()) {
    return Status::InvalidArgument(
        "read-only follower cannot compact the log it tails");
  }
  return graph_log_->Compact(templar_->query_fragment_graph(), epoch());
}

Status ServiceCore::SaveSnapshot(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
  return qfg::SaveQfgToFile(templar_->query_fragment_graph(), path);
}

ServiceStats ServiceCore::Stats() const {
  ServiceStats stats;
  stats.map_requests = map_requests_.load(std::memory_order_relaxed);
  stats.join_requests = join_requests_.load(std::memory_order_relaxed);
  stats.translate_requests =
      translate_requests_.load(std::memory_order_relaxed);
  stats.map_computations = map_computations_.load(std::memory_order_relaxed);
  stats.join_computations = join_computations_.load(std::memory_order_relaxed);
  stats.translate_computations =
      translate_computations_.load(std::memory_order_relaxed);
  stats.map_coalesced_hits = map_coalesced_.load(std::memory_order_relaxed);
  stats.join_coalesced_hits = join_coalesced_.load(std::memory_order_relaxed);
  stats.translate_coalesced_hits =
      translate_coalesced_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.map_cache = map_cache_.Stats();
  stats.join_cache = join_cache_.Stats();
  stats.translate_cache = translate_cache_.Stats();
  stats.append_batches = append_batches_.load(std::memory_order_relaxed);
  stats.appended_queries = appended_queries_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
    // Under the lock so the reported epoch matches the QFG counts (appends
    // hold the exclusive lock while bumping).
    stats.epoch = epoch();
    const auto& qfg = templar_->query_fragment_graph();
    stats.qfg_query_count = qfg.query_count();
    stats.qfg_vertices = qfg.vertex_count();
    stats.qfg_edges = qfg.edge_count();
    stats.skipped_log_entries =
        templar_->skipped_log_entries() +
        skipped_appends_.load(std::memory_order_relaxed);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// TemplarService

Result<std::unique_ptr<TemplarService>> TemplarService::Create(
    const db::Database* db, const embed::SimilarityModel* model,
    const std::vector<std::string>& query_log, ServiceOptions options) {
  auto core = ServiceCore::Create(db, model, query_log, options);
  if (!core.ok()) return core.status();
  return std::unique_ptr<TemplarService>(
      new TemplarService(std::move(*core), options.worker_threads));
}

TemplarService::TemplarService(std::unique_ptr<ServiceCore> core,
                               size_t worker_threads)
    : core_(std::move(core)), pool_(worker_threads) {
  // The Async/Batch pool doubles as the parallel configuration-scoring
  // pool. Safe ordering: pool_ is declared after core_, so workers stop
  // before the core (and the executor they drain through) is torn down.
  core_->SetScoringPool(&pool_);
}

TemplarService::~TemplarService() = default;

std::future<Result<QueryResponse>> TemplarService::TranslateAsync(
    QueryRequest request) {
  // Already dead at submission: answer without queueing at all.
  if (Status gate = request.CheckRunnable(); !gate.ok()) {
    return internal::ReadyFuture<QueryResponse>(std::move(gate));
  }
  const auto submitted = std::chrono::steady_clock::now();
  return pool_.Submit([this, request = std::move(request), submitted] {
    return internal::RunDispatched(
        request, submitted, &core_->metrics(),
        [this](const QueryRequest& r) { return core_->Translate(r); });
  });
}

std::vector<Result<QueryResponse>> TemplarService::TranslateBatch(
    const std::vector<QueryRequest>& requests) {
  return internal::FanOutAligned(requests, [&](const QueryRequest& request) {
    return TranslateAsync(request);
  });
}

std::future<Result<std::vector<core::Configuration>>>
TemplarService::MapKeywordsAsync(nlq::ParsedNlq nlq) {
  return pool_.Submit(
      [this, nlq = std::move(nlq)] { return core_->MapKeywords(nlq); });
}

std::future<Result<std::vector<graph::JoinPath>>>
TemplarService::InferJoinsAsync(std::vector<std::string> relation_bag) {
  return pool_.Submit([this, relation_bag = std::move(relation_bag)] {
    return core_->InferJoins(relation_bag);
  });
}

std::vector<Result<std::vector<core::Configuration>>>
TemplarService::MapKeywordsBatch(const std::vector<nlq::ParsedNlq>& nlqs) {
  return internal::FanOutAligned(nlqs, [&](const nlq::ParsedNlq& nlq) {
    return pool_.Submit([this, &nlq] { return core_->MapKeywords(nlq); });
  });
}

std::vector<Result<std::vector<graph::JoinPath>>>
TemplarService::InferJoinsBatch(
    const std::vector<std::vector<std::string>>& relation_bags) {
  return internal::FanOutAligned(
      relation_bags, [&](const std::vector<std::string>& bag) {
        return pool_.Submit([this, &bag] { return core_->InferJoins(bag); });
      });
}

ServiceStats TemplarService::Stats() const {
  ServiceStats stats = core_->Stats();
  stats.worker_threads = pool_.size();
  return stats;
}

}  // namespace templar::service
