#include "service/templar_service.h"

#include <algorithm>

#include "qfg/fragment_delta.h"
#include "qfg/qfg_io.h"
#include "sql/parser.h"

namespace templar::service {

namespace {

/// Collapses runs of whitespace to single spaces and trims the ends, so two
/// NLQs differing only in spacing share a cache entry.
std::string NormalizeSpace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Leading whitespace is dropped.
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out += ' ';
    in_space = false;
    out += c;
  }
  return out;
}

constexpr char kFieldSep = '\x1f';   // Within one keyword record.
constexpr char kRecordSep = '\x1e';  // Between keyword records.

/// Escapes the separator bytes (and the escape char itself) in free-form
/// fields: keyword text and relation names are user/NLIDB input, and an
/// embedded \x1e/\x1f would otherwise let two distinct requests collide on
/// one cache key and serve each other's rankings.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case kFieldSep:
        out += "%1F";
        break;
      case kRecordSep:
        out += "%1E";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ServiceCore

std::string ServiceCore::MapCacheKey(const nlq::ParsedNlq& nlq) {
  std::string key;
  for (const auto& kw : nlq.keywords) {
    key += EscapeField(NormalizeSpace(kw.text));
    key += kFieldSep;
    key += qfg::FragmentContextToString(kw.metadata.context);
    key += kFieldSep;
    key += kw.metadata.op ? sql::BinaryOpToString(*kw.metadata.op) : "-";
    key += kFieldSep;
    for (sql::AggFunc f : kw.metadata.aggs) {
      key += sql::AggFuncToString(f);
      key += ',';
    }
    key += kFieldSep;
    key += kw.metadata.group_by ? '1' : '0';
    key += kRecordSep;
  }
  return key;
}

std::string ServiceCore::JoinCacheKey(const std::vector<std::string>& bag) {
  // Terminal order does not change the Steiner problem; sort so permuted
  // bags share an entry.
  std::vector<std::string> sorted = bag;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& instance : sorted) {
    key += EscapeField(instance);
    key += kRecordSep;
  }
  return key;
}

Result<std::unique_ptr<ServiceCore>> ServiceCore::Create(
    const db::Database* db, const embed::SimilarityModel* model,
    const std::vector<std::string>& query_log, const ServiceOptions& options) {
  Result<std::unique_ptr<core::Templar>> templar = [&] {
    if (!options.warm_start_path.empty()) {
      auto snapshot = qfg::LoadQfgFromFile(options.warm_start_path);
      if (!snapshot.ok()) {
        return Result<std::unique_ptr<core::Templar>>(snapshot.status());
      }
      return core::Templar::BuildFromQfg(db, model, std::move(*snapshot),
                                         options.templar);
    }
    return core::Templar::Build(db, model, query_log, options.templar);
  }();
  if (!templar.ok()) return templar.status();
  return std::unique_ptr<ServiceCore>(
      new ServiceCore(std::move(*templar), options));
}

ServiceCore::ServiceCore(std::unique_ptr<core::Templar> templar,
                         const ServiceOptions& options)
    : templar_(std::move(templar)),
      map_cache_(options.map_cache_capacity, options.cache_shards,
                 options.invalidation),
      join_cache_(options.join_cache_capacity, options.cache_shards,
                  options.invalidation) {}

void ServiceCore::SetCacheCapacities(size_t map_entries, size_t join_entries) {
  map_cache_.SetCapacity(map_entries);
  join_cache_.SetCapacity(join_entries);
}

template <typename V, typename CoreFn>
Result<std::remove_const_t<typename V::element_type>>
ServiceCore::ServeCached(const std::string& key, ShardedLruCache<V>& cache,
                         SingleFlight<FlightValue<V>>& flight,
                         std::atomic<uint64_t>& computations,
                         std::atomic<uint64_t>& coalesced_hits,
                         CoreFn&& core_call) {
  // Only the first probe records a miss: retries (stale-follower loop) and
  // the in-flight double-check are re-probes of one logical request, and
  // counting them would deflate the reported hit rate.
  for (bool first_probe = true;; first_probe = false) {
    if (auto hit = cache.Get(key, /*record_miss=*/first_probe)) return **hit;

    // Cache miss: coalesce with any identical in-flight request; the leader
    // computes under a shared QFG lock, records the ranking's fragment
    // footprint, and publishes to the cache.
    auto outcome = flight.Do(key, [&]() -> FlightValue<V> {
      // Double check under the flight: a previous flight may have landed
      // between this caller's miss and its takeoff — serve its (current)
      // entry instead of recomputing. The stamp is read *before* the probe:
      // an append completing in between would make a fresher stamp claim
      // validity the entry no longer has; the conservative stamp at worst
      // sends a follower back around the retry loop.
      const uint64_t probed_at = epoch();
      if (auto hit = cache.Get(key, /*record_miss=*/false)) {
        return {Status::OK(), *hit, probed_at};
      }
      computations.fetch_add(1, std::memory_order_relaxed);
      std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
      // Read under the lock: this is exactly the QFG state being scored, so
      // the entry is stamped with the epoch it was computed in.
      const uint64_t computed_at = epoch();
      qfg::QfgFootprint footprint;
      auto result = core_call(&footprint);
      lock.unlock();

      if (!result.ok()) return {result.status(), nullptr, computed_at};
      auto value = std::make_shared<typename V::element_type>(
          std::move(*result));
      cache.Put(key, value, computed_at, footprint.Fingerprints());
      return {Status::OK(), value, computed_at};
    });
    // A follower may have joined a flight whose computation predates an
    // append that *completed before this request began* — serving it would
    // hand out a ranking the append already invalidated. Retry: if the
    // append retained the entry the cache answers, otherwise a fresh flight
    // recomputes. (The leader itself is always linearizable: its request
    // overlaps any append that races its computation.)
    if (outcome.coalesced && outcome.value.status.ok() &&
        outcome.value.computed_at < epoch()) {
      continue;
    }
    if (outcome.coalesced) {
      coalesced_hits.fetch_add(1, std::memory_order_relaxed);
    }
    if (!outcome.value.status.ok()) return outcome.value.status;
    return *outcome.value.result;
  }
}

Result<std::vector<core::Configuration>> ServiceCore::MapKeywords(
    const nlq::ParsedNlq& nlq) {
  map_requests_.fetch_add(1, std::memory_order_relaxed);
  return ServeCached(MapCacheKey(nlq), map_cache_, map_flight_,
                     map_computations_, map_coalesced_,
                     [&](qfg::QfgFootprint* footprint) {
                       return templar_->MapKeywords(nlq, footprint);
                     });
}

Result<std::vector<graph::JoinPath>> ServiceCore::InferJoins(
    const std::vector<std::string>& relation_bag) {
  join_requests_.fetch_add(1, std::memory_order_relaxed);
  return ServeCached(JoinCacheKey(relation_bag), join_cache_, join_flight_,
                     join_computations_, join_coalesced_,
                     [&](qfg::QfgFootprint* footprint) {
                       return templar_->InferJoins(relation_bag, footprint);
                     });
}

AppendOutcome ServiceCore::AppendLogQueries(
    const std::vector<std::string>& sql_entries) {
  // Parse outside any lock: parsing dominates ingestion cost and must not
  // block readers. The fragment delta is built *inside* the writer section,
  // from the interned ids each AddQuery returns — the interner already
  // computed every fingerprint, so the delta costs O(fragments) integer
  // appends and the batch's fragments are extracted exactly once (the seed
  // implementation extracted them twice: once for the delta, once to
  // apply).
  std::vector<sql::SelectQuery> parsed;
  parsed.reserve(sql_entries.size());
  size_t skipped = 0;
  for (const auto& entry : sql_entries) {
    auto query = sql::Parse(entry);
    if (query.ok()) {
      parsed.push_back(std::move(*query));
    } else {
      ++skipped;
    }
  }

  AppendOutcome outcome;
  outcome.skipped = skipped;
  outcome.appended = parsed.size();
  append_batches_.fetch_add(1, std::memory_order_relaxed);
  skipped_appends_.fetch_add(skipped, std::memory_order_relaxed);

  if (parsed.empty()) {
    // Nothing changed; existing cache entries remain valid.
    outcome.epoch = epoch();
    return outcome;
  }

  {
    std::unique_lock<std::shared_mutex> lock(qfg_mutex_);
    qfg::FragmentDelta delta;
    const qfg::QueryFragmentGraph& graph = templar_->query_fragment_graph();
    for (const auto& query : parsed) {
      for (qfg::FragmentId id : templar_->AppendLogQuery(query)) {
        delta.AddFingerprint(graph.Fingerprint(id));
      }
      delta.MarkQueryApplied();
    }
    delta.Seal();
    // Bump inside the exclusive section: readers acquiring the shared lock
    // afterwards observe both the new counts and the new epoch.
    outcome.epoch =
        epoch_.fetch_add(1, std::memory_order_release) + 1;
    // Sweep the caches before releasing the writer lock: entries the delta
    // touches are evicted (or, under kEpochDrop, everything is aged out),
    // the rest re-stamped to the new epoch — so once this append returns, no
    // ranking it could have changed is ever served. In-flight computations
    // that started before the bump publish with an older epoch and are
    // rejected by the cache's stale-put check.
    map_cache_.ApplyDelta(delta.fingerprints(), outcome.epoch);
    join_cache_.ApplyDelta(delta.fingerprints(), outcome.epoch);
  }
  appended_queries_.fetch_add(parsed.size(), std::memory_order_relaxed);
  return outcome;
}

Status ServiceCore::SaveSnapshot(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
  return qfg::SaveQfgToFile(templar_->query_fragment_graph(), path);
}

ServiceStats ServiceCore::Stats() const {
  ServiceStats stats;
  stats.map_requests = map_requests_.load(std::memory_order_relaxed);
  stats.join_requests = join_requests_.load(std::memory_order_relaxed);
  stats.map_computations = map_computations_.load(std::memory_order_relaxed);
  stats.join_computations = join_computations_.load(std::memory_order_relaxed);
  stats.map_coalesced_hits = map_coalesced_.load(std::memory_order_relaxed);
  stats.join_coalesced_hits = join_coalesced_.load(std::memory_order_relaxed);
  stats.map_cache = map_cache_.Stats();
  stats.join_cache = join_cache_.Stats();
  stats.append_batches = append_batches_.load(std::memory_order_relaxed);
  stats.appended_queries = appended_queries_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
    // Under the lock so the reported epoch matches the QFG counts (appends
    // hold the exclusive lock while bumping).
    stats.epoch = epoch();
    const auto& qfg = templar_->query_fragment_graph();
    stats.qfg_query_count = qfg.query_count();
    stats.qfg_vertices = qfg.vertex_count();
    stats.qfg_edges = qfg.edge_count();
    stats.skipped_log_entries =
        templar_->skipped_log_entries() +
        skipped_appends_.load(std::memory_order_relaxed);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// TemplarService

Result<std::unique_ptr<TemplarService>> TemplarService::Create(
    const db::Database* db, const embed::SimilarityModel* model,
    const std::vector<std::string>& query_log, ServiceOptions options) {
  auto core = ServiceCore::Create(db, model, query_log, options);
  if (!core.ok()) return core.status();
  return std::unique_ptr<TemplarService>(
      new TemplarService(std::move(*core), options.worker_threads));
}

TemplarService::TemplarService(std::unique_ptr<ServiceCore> core,
                               size_t worker_threads)
    : core_(std::move(core)), pool_(worker_threads) {}

TemplarService::~TemplarService() = default;

std::future<Result<std::vector<core::Configuration>>>
TemplarService::MapKeywordsAsync(nlq::ParsedNlq nlq) {
  return pool_.Submit(
      [this, nlq = std::move(nlq)] { return core_->MapKeywords(nlq); });
}

std::future<Result<std::vector<graph::JoinPath>>>
TemplarService::InferJoinsAsync(std::vector<std::string> relation_bag) {
  return pool_.Submit([this, relation_bag = std::move(relation_bag)] {
    return core_->InferJoins(relation_bag);
  });
}

std::vector<Result<std::vector<core::Configuration>>>
TemplarService::MapKeywordsBatch(const std::vector<nlq::ParsedNlq>& nlqs) {
  return internal::FanOutAligned(nlqs, [&](const nlq::ParsedNlq& nlq) {
    return pool_.Submit([this, &nlq] { return core_->MapKeywords(nlq); });
  });
}

std::vector<Result<std::vector<graph::JoinPath>>>
TemplarService::InferJoinsBatch(
    const std::vector<std::vector<std::string>>& relation_bags) {
  return internal::FanOutAligned(
      relation_bags, [&](const std::vector<std::string>& bag) {
        return pool_.Submit([this, &bag] { return core_->InferJoins(bag); });
      });
}

ServiceStats TemplarService::Stats() const {
  ServiceStats stats = core_->Stats();
  stats.worker_threads = pool_.size();
  return stats;
}

}  // namespace templar::service
