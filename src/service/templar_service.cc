#include "service/templar_service.h"

#include <algorithm>

#include "qfg/qfg_io.h"
#include "sql/parser.h"

namespace templar::service {

namespace {

/// Collapses runs of whitespace to single spaces and trims the ends, so two
/// NLQs differing only in spacing share a cache entry.
std::string NormalizeSpace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Leading whitespace is dropped.
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out += ' ';
    in_space = false;
    out += c;
  }
  return out;
}

constexpr char kFieldSep = '\x1f';   // Within one keyword record.
constexpr char kRecordSep = '\x1e';  // Between keyword records.

/// Escapes the separator bytes (and the escape char itself) in free-form
/// fields: keyword text and relation names are user/NLIDB input, and an
/// embedded \x1e/\x1f would otherwise let two distinct requests collide on
/// one cache key and serve each other's rankings.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case kFieldSep:
        out += "%1F";
        break;
      case kRecordSep:
        out += "%1E";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string TemplarService::MapCacheKey(const nlq::ParsedNlq& nlq) {
  std::string key;
  for (const auto& kw : nlq.keywords) {
    key += EscapeField(NormalizeSpace(kw.text));
    key += kFieldSep;
    key += qfg::FragmentContextToString(kw.metadata.context);
    key += kFieldSep;
    key += kw.metadata.op ? sql::BinaryOpToString(*kw.metadata.op) : "-";
    key += kFieldSep;
    for (sql::AggFunc f : kw.metadata.aggs) {
      key += sql::AggFuncToString(f);
      key += ',';
    }
    key += kFieldSep;
    key += kw.metadata.group_by ? '1' : '0';
    key += kRecordSep;
  }
  return key;
}

std::string TemplarService::JoinCacheKey(const std::vector<std::string>& bag) {
  // Terminal order does not change the Steiner problem; sort so permuted
  // bags share an entry.
  std::vector<std::string> sorted = bag;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& instance : sorted) {
    key += EscapeField(instance);
    key += kRecordSep;
  }
  return key;
}

Result<std::unique_ptr<TemplarService>> TemplarService::Create(
    const db::Database* db, const embed::SimilarityModel* model,
    const std::vector<std::string>& query_log, ServiceOptions options) {
  Result<std::unique_ptr<core::Templar>> templar = [&] {
    if (!options.warm_start_path.empty()) {
      auto snapshot = qfg::LoadQfgFromFile(options.warm_start_path);
      if (!snapshot.ok()) {
        return Result<std::unique_ptr<core::Templar>>(snapshot.status());
      }
      return core::Templar::BuildFromQfg(db, model, std::move(*snapshot),
                                         options.templar);
    }
    return core::Templar::Build(db, model, query_log, options.templar);
  }();
  if (!templar.ok()) return templar.status();
  return std::unique_ptr<TemplarService>(
      new TemplarService(std::move(*templar), options));
}

TemplarService::TemplarService(std::unique_ptr<core::Templar> templar,
                               const ServiceOptions& options)
    : templar_(std::move(templar)),
      map_cache_(options.map_cache_capacity, options.cache_shards),
      join_cache_(options.join_cache_capacity, options.cache_shards),
      pool_(options.worker_threads) {}

TemplarService::~TemplarService() = default;

Result<std::vector<core::Configuration>> TemplarService::MapKeywords(
    const nlq::ParsedNlq& nlq) {
  map_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string key = MapCacheKey(nlq);
  if (auto hit = map_cache_.Get(key, epoch())) return **hit;

  std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
  // Re-read under the lock: this is exactly the QFG state being scored, so
  // the entry is stamped with the epoch it was computed in.
  const uint64_t computed_at = epoch();
  auto result = templar_->MapKeywords(nlq);
  lock.unlock();

  if (!result.ok()) return result.status();
  auto value = std::make_shared<const std::vector<core::Configuration>>(
      std::move(*result));
  map_cache_.Put(key, value, computed_at);
  return *value;
}

Result<std::vector<graph::JoinPath>> TemplarService::InferJoins(
    const std::vector<std::string>& relation_bag) {
  join_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string key = JoinCacheKey(relation_bag);
  if (auto hit = join_cache_.Get(key, epoch())) return **hit;

  std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
  const uint64_t computed_at = epoch();
  auto result = templar_->InferJoins(relation_bag);
  lock.unlock();

  if (!result.ok()) return result.status();
  auto value = std::make_shared<const std::vector<graph::JoinPath>>(
      std::move(*result));
  join_cache_.Put(key, value, computed_at);
  return *value;
}

std::future<Result<std::vector<core::Configuration>>>
TemplarService::MapKeywordsAsync(nlq::ParsedNlq nlq) {
  return pool_.Submit(
      [this, nlq = std::move(nlq)] { return MapKeywords(nlq); });
}

std::future<Result<std::vector<graph::JoinPath>>>
TemplarService::InferJoinsAsync(std::vector<std::string> relation_bag) {
  return pool_.Submit([this, relation_bag = std::move(relation_bag)] {
    return InferJoins(relation_bag);
  });
}

std::vector<Result<std::vector<core::Configuration>>>
TemplarService::MapKeywordsBatch(const std::vector<nlq::ParsedNlq>& nlqs) {
  std::vector<std::future<Result<std::vector<core::Configuration>>>> futures;
  futures.reserve(nlqs.size());
  for (const auto& nlq : nlqs) {
    futures.push_back(
        pool_.Submit([this, &nlq] { return MapKeywords(nlq); }));
  }
  std::vector<Result<std::vector<core::Configuration>>> results;
  results.reserve(nlqs.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

std::vector<Result<std::vector<graph::JoinPath>>>
TemplarService::InferJoinsBatch(
    const std::vector<std::vector<std::string>>& relation_bags) {
  std::vector<std::future<Result<std::vector<graph::JoinPath>>>> futures;
  futures.reserve(relation_bags.size());
  for (const auto& bag : relation_bags) {
    futures.push_back(pool_.Submit([this, &bag] { return InferJoins(bag); }));
  }
  std::vector<Result<std::vector<graph::JoinPath>>> results;
  results.reserve(relation_bags.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

AppendOutcome TemplarService::AppendLogQueries(
    const std::vector<std::string>& sql_entries) {
  // Parse outside any lock — parsing dominates ingestion cost and must not
  // block readers.
  std::vector<sql::SelectQuery> parsed;
  parsed.reserve(sql_entries.size());
  size_t skipped = 0;
  for (const auto& entry : sql_entries) {
    auto query = sql::Parse(entry);
    if (query.ok()) {
      parsed.push_back(std::move(*query));
    } else {
      ++skipped;
    }
  }

  AppendOutcome outcome;
  outcome.skipped = skipped;
  outcome.appended = parsed.size();
  append_batches_.fetch_add(1, std::memory_order_relaxed);
  skipped_appends_.fetch_add(skipped, std::memory_order_relaxed);

  if (parsed.empty()) {
    // Nothing changed; existing cache entries remain valid.
    outcome.epoch = epoch();
    return outcome;
  }

  {
    std::unique_lock<std::shared_mutex> lock(qfg_mutex_);
    for (const auto& query : parsed) templar_->AppendLogQuery(query);
    // Bump inside the exclusive section: readers acquiring the shared lock
    // afterwards observe both the new counts and the new epoch.
    outcome.epoch =
        epoch_.fetch_add(1, std::memory_order_release) + 1;
  }
  appended_queries_.fetch_add(parsed.size(), std::memory_order_relaxed);
  return outcome;
}

Status TemplarService::SaveSnapshot(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
  return qfg::SaveQfgToFile(templar_->query_fragment_graph(), path);
}

ServiceStats TemplarService::Stats() const {
  ServiceStats stats;
  stats.map_requests = map_requests_.load(std::memory_order_relaxed);
  stats.join_requests = join_requests_.load(std::memory_order_relaxed);
  stats.map_cache = map_cache_.Stats();
  stats.join_cache = join_cache_.Stats();
  stats.append_batches = append_batches_.load(std::memory_order_relaxed);
  stats.appended_queries = appended_queries_.load(std::memory_order_relaxed);
  stats.worker_threads = pool_.size();
  {
    std::shared_lock<std::shared_mutex> lock(qfg_mutex_);
    // Under the lock so the reported epoch matches the QFG counts (appends
    // hold the exclusive lock while bumping).
    stats.epoch = epoch();
    const auto& qfg = templar_->query_fragment_graph();
    stats.qfg_query_count = qfg.query_count();
    stats.qfg_vertices = qfg.vertex_count();
    stats.qfg_edges = qfg.edge_count();
    stats.skipped_log_entries =
        templar_->skipped_log_entries() +
        skipped_appends_.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace templar::service
