#ifndef TEMPLAR_SERVICE_LRU_CACHE_H_
#define TEMPLAR_SERVICE_LRU_CACHE_H_

/// \file lru_cache.h
/// \brief A sharded, thread-safe LRU cache with fragment-aware invalidation.
///
/// The serving layer answers repeated MAPKEYWORDS / INFERJOINS requests from
/// this cache. Keys are canonicalized request strings; values are the ranked
/// result vectors, held by shared_ptr so the shard's critical section only
/// copies a pointer (the service copies the vector out after releasing the
/// lock, to keep its API a drop-in for core::Templar's by-value returns).
/// The key space is split across independent shards, each with its
/// own mutex and LRU list, so concurrent clients touching different keys do
/// not serialize on one lock.
///
/// Staleness: the QFG only changes at AppendLogQueries epochs, and a cached
/// ranking only depends on the fragment counts it consulted (its
/// *footprint*, recorded at Put as sorted 64-bit fingerprints). On each
/// append the service calls ApplyDelta with the fingerprint set the batch
/// touched; behaviour then depends on the policy:
///
///  - kPerFragment (default): entries whose footprint intersects the delta
///    are evicted immediately (`invalidated`); every other entry is
///    re-stamped to the new epoch and stays warm (`retained`). An online
///    ingestion workload keeps its hit rate instead of going cold.
///  - kEpochDrop: the legacy behaviour — ApplyDelta only advances the shard
///    epoch, and every older entry is lazily dropped on its next touch
///    (`stale_drops`). Kept for comparison (bench_invalidation) and as a
///    safety valve.
///
/// In both policies a Put whose `computed_at` epoch is behind the shard is
/// rejected (`stale_put_drops`): the value was computed against a QFG that
/// an append has since changed, and the sweep that would have vetted it has
/// already run. Entries present in a shard are therefore always valid for
/// the shard's epoch, and Get never serves a ranking across an append that
/// could have changed it.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sorted_intersect.h"

namespace templar::service {

/// \brief How ApplyDelta treats entries that predate an append.
enum class InvalidationPolicy {
  kEpochDrop,    ///< Any append invalidates every older entry (legacy).
  kPerFragment,  ///< Only entries whose footprint intersects the delta.
};

/// \brief Counters describing one cache (aggregated over shards).
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       ///< Includes stale drops.
  uint64_t stale_drops = 0;  ///< Lazy epoch-drop misses (kEpochDrop only).
  uint64_t stale_put_drops = 0;  ///< Puts rejected for predating an append.
  uint64_t evictions = 0;    ///< Capacity evictions (LRU tail).
  uint64_t invalidated = 0;  ///< Selective evictions: footprint hit a delta.
  uint64_t retained = 0;     ///< Entries kept warm across an append.
  size_t entries = 0;
  size_t capacity = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Sharded LRU map from std::string keys to `Value`.
///
/// `Value` should be cheap to copy (the service uses
/// `std::shared_ptr<const std::vector<...>>`). All methods are thread-safe.
template <typename Value>
class ShardedLruCache {
 public:
  using Footprint = std::vector<uint64_t>;  ///< Sorted, deduplicated.

  /// \param capacity total entry budget, split evenly across shards
  ///        (rounded up; each shard holds at least one entry).
  /// \param num_shards number of independent shards; clamped to >= 1.
  /// \param policy how ApplyDelta invalidates (see InvalidationPolicy).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8,
                           InvalidationPolicy policy =
                               InvalidationPolicy::kPerFragment)
      : per_shard_capacity_(
            std::max<size_t>(1, (capacity + std::max<size_t>(1, num_shards) -
                                 1) /
                                    std::max<size_t>(1, num_shards))),
        policy_(policy),
        shards_(std::max<size_t>(1, num_shards)) {}

  /// \brief Looks up `key`. Under kEpochDrop, an entry stamped before the
  /// shard's epoch is dropped and reported as a stale miss; under
  /// kPerFragment the sweep keeps shard entries current, so no such drop
  /// occurs.
  ///
  /// `record_miss=false` suppresses the miss-side counters (hits still
  /// count): the service's single-flight double-check re-probes a key whose
  /// miss was already recorded, and counting it twice would halve the
  /// reported hit rate of a cold workload.
  std::optional<Value> Get(const std::string& key, bool record_miss = true) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      if (record_miss) ++shard.misses;
      return std::nullopt;
    }
    if (it->second->epoch < shard.epoch) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      if (record_miss) {
        ++shard.misses;
        ++shard.stale_drops;
      }
      return std::nullopt;
    }
    // Move to front (most recently used).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->value;
  }

  /// \brief Inserts or refreshes `key`, computed at epoch `computed_at` with
  /// the given fragment footprint. Rejected when the shard has already moved
  /// past `computed_at` (the value may reflect a pre-append QFG and the
  /// sweep that would have vetted its footprint already ran). Evicts the
  /// least-recently-used entry of the shard when over budget.
  void Put(const std::string& key, Value value, uint64_t computed_at,
           Footprint footprint = {}) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (computed_at < shard.epoch) {
      ++shard.stale_put_drops;
      return;
    }
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      it->second->epoch = computed_at;
      it->second->footprint = std::move(footprint);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(
        Entry{key, std::move(value), computed_at, std::move(footprint)});
    shard.index.emplace(key, shard.lru.begin());
    EvictOverflowLocked(shard,
                        per_shard_capacity_.load(std::memory_order_relaxed));
  }

  /// \brief Applies one append's fragment delta (sorted fingerprints) and
  /// advances every shard to `new_epoch`. Under kPerFragment, entries whose
  /// footprint intersects `delta` are evicted and the rest re-stamped; under
  /// kEpochDrop the epoch alone advances and staleness is shed lazily.
  ///
  /// The caller (TemplarService) invokes this inside the same exclusive
  /// section that mutated the QFG, so by the time the append returns, no
  /// shard can serve a ranking the append invalidated.
  ///
  /// \return Entries this sweep evicted (0 under kEpochDrop, where
  /// staleness is shed lazily on later Gets) — the telemetry layer feeds
  /// this into the invalidated-entries rolling window.
  size_t ApplyDelta(const Footprint& delta, uint64_t new_epoch) {
    size_t swept = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (new_epoch <= shard.epoch) continue;
      if (policy_ == InvalidationPolicy::kPerFragment) {
        for (auto it = shard.lru.begin(); it != shard.lru.end();) {
          if (it->epoch >= new_epoch) {  // Already computed post-append.
            ++it;
            continue;
          }
          if (SortedRangesIntersect(it->footprint, delta)) {
            shard.index.erase(it->key);
            it = shard.lru.erase(it);
            ++shard.invalidated;
            ++swept;
          } else {
            it->epoch = new_epoch;
            ++shard.retained;
            ++it;
          }
        }
      }
      shard.epoch = new_epoch;
    }
    return swept;
  }

  /// \brief Re-budgets the cache to at most `capacity` total entries.
  /// Unlike the constructor's round-up split, the per-shard share rounds
  /// *down* (clamped to one entry per shard), so re-budgeted caches never
  /// exceed `capacity` — the multi-tenant host partitions one global entry
  /// budget across live tenants on every register/retire, and the tenant
  /// shares must not sum past it. Shards over the new budget evict from
  /// their LRU tail immediately.
  void SetCapacity(size_t capacity) {
    const size_t per_shard = std::max<size_t>(1, capacity / shards_.size());
    per_shard_capacity_.store(per_shard, std::memory_order_relaxed);
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      EvictOverflowLocked(shard, per_shard);
    }
  }

  /// \brief Drops every entry (counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  /// \brief Aggregated counters over all shards.
  LruCacheStats Stats() const {
    LruCacheStats stats;
    stats.capacity =
        per_shard_capacity_.load(std::memory_order_relaxed) * shards_.size();
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.hits += shard.hits;
      stats.misses += shard.misses;
      stats.stale_drops += shard.stale_drops;
      stats.stale_put_drops += shard.stale_put_drops;
      stats.evictions += shard.evictions;
      stats.invalidated += shard.invalidated;
      stats.retained += shard.retained;
      stats.entries += shard.lru.size();
    }
    return stats;
  }

  size_t shard_count() const { return shards_.size(); }
  size_t capacity() const {
    return per_shard_capacity_.load(std::memory_order_relaxed) *
           shards_.size();
  }
  InvalidationPolicy policy() const { return policy_; }

 private:
  struct Entry {
    std::string key;
    Value value;
    uint64_t epoch;
    Footprint footprint;  // Sorted fingerprints; empty = no QFG dependency.
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
    uint64_t epoch = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_drops = 0;
    uint64_t stale_put_drops = 0;
    uint64_t evictions = 0;
    uint64_t invalidated = 0;
    uint64_t retained = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  /// Evicts `shard`'s LRU tail down to `limit` entries. Caller holds the
  /// shard lock.
  static void EvictOverflowLocked(Shard& shard, size_t limit) {
    while (shard.lru.size() > limit) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  /// Atomic: SetCapacity re-budgets at runtime while Puts on other shards
  /// read the limit without any shared lock.
  std::atomic<size_t> per_shard_capacity_;
  InvalidationPolicy policy_;
  std::vector<Shard> shards_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_LRU_CACHE_H_
