#ifndef TEMPLAR_SERVICE_LRU_CACHE_H_
#define TEMPLAR_SERVICE_LRU_CACHE_H_

/// \file lru_cache.h
/// \brief A sharded, thread-safe LRU cache with epoch-based invalidation.
///
/// The serving layer answers repeated MAPKEYWORDS / INFERJOINS requests from
/// this cache. Keys are canonicalized request strings; values are the ranked
/// result vectors, held by shared_ptr so the shard's critical section only
/// copies a pointer (the service copies the vector out after releasing the
/// lock, to keep its API a drop-in for core::Templar's by-value returns).
/// The key space is split across independent shards, each with its
/// own mutex and LRU list, so concurrent clients touching different keys do
/// not serialize on one lock.
///
/// Staleness: every entry is stamped with the QFG *epoch* current when it
/// was computed. `Get` takes the caller's current epoch and treats any entry
/// from an older epoch as a miss (dropping it), so cached rankings computed
/// before an `AppendLogQueries` batch are never served afterwards. This
/// makes invalidation O(1) per append — no cache sweep — at the cost of
/// lazily shedding stale entries on their next touch.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace templar::service {

/// \brief Counters describing one cache (aggregated over shards).
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       ///< Includes stale drops.
  uint64_t stale_drops = 0;  ///< Misses caused by an epoch change.
  uint64_t evictions = 0;    ///< Capacity evictions (LRU tail).
  size_t entries = 0;
  size_t capacity = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Sharded LRU map from std::string keys to `Value`.
///
/// `Value` should be cheap to copy (the service uses
/// `std::shared_ptr<const std::vector<...>>`). All methods are thread-safe.
template <typename Value>
class ShardedLruCache {
 public:
  /// \param capacity total entry budget, split evenly across shards
  ///        (rounded up; each shard holds at least one entry).
  /// \param num_shards number of independent shards; clamped to >= 1.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8)
      : per_shard_capacity_(
            std::max<size_t>(1, (capacity + std::max<size_t>(1, num_shards) -
                                 1) /
                                    std::max<size_t>(1, num_shards))),
        shards_(std::max<size_t>(1, num_shards)) {}

  /// \brief Looks up `key`. An entry stamped with an epoch older than
  /// `epoch` is dropped and reported as a miss.
  std::optional<Value> Get(const std::string& key, uint64_t epoch) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    // Only an OLDER entry is stale. A newer-stamped entry (another thread
    // recomputed after an append this caller hasn't observed yet) is fresher
    // than what the caller would compute — serving it is always safe.
    if (it->second->epoch < epoch) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.misses;
      ++shard.stale_drops;
      return std::nullopt;
    }
    // Move to front (most recently used).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->value;
  }

  /// \brief Inserts or refreshes `key`, stamped with `epoch`. Evicts the
  /// least-recently-used entry of the shard when over budget.
  void Put(const std::string& key, Value value, uint64_t epoch) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      it->second->epoch = epoch;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, std::move(value), epoch});
    shard.index.emplace(key, shard.lru.begin());
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  /// \brief Drops every entry (counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  /// \brief Aggregated counters over all shards.
  LruCacheStats Stats() const {
    LruCacheStats stats;
    stats.capacity = per_shard_capacity_ * shards_.size();
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.hits += shard.hits;
      stats.misses += shard.misses;
      stats.stale_drops += shard.stale_drops;
      stats.evictions += shard.evictions;
      stats.entries += shard.lru.size();
    }
    return stats;
  }

  size_t shard_count() const { return shards_.size(); }
  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    std::string key;
    Value value;
    uint64_t epoch;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_drops = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_LRU_CACHE_H_
