#ifndef TEMPLAR_SERVICE_SCORING_EXECUTOR_H_
#define TEMPLAR_SERVICE_SCORING_EXECUTOR_H_

/// \file scoring_executor.h
/// \brief Adapts a service ThreadPool to core::ScoringExecutor.
///
/// The core's contract is simple — "run this batch of tasks, return when
/// all are done" — but a naive pool adapter deadlocks: a Translate request
/// already running *on* a pool worker that submits subtasks to the same
/// pool and blocks on them can exhaust every worker with blocked parents.
/// The adapter below is a claim-based drain instead: tasks live in a shared
/// batch with an atomic claim counter, the caller claims-and-runs tasks
/// inline until none are left, and pool workers are *helpers* submitted via
/// Execute that claim-or-no-op. The caller therefore always makes progress
/// by itself (worst case it runs the whole batch sequentially), helpers
/// only add parallelism, and a helper silently dropped by a shutting-down
/// pool claims nothing — so the wait below can never hang on work nobody
/// owns.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/keyword_mapper.h"
#include "service/thread_pool.h"

namespace templar::service {

namespace internal {

/// One batch being drained. shared_ptr-owned so a helper that runs after
/// the caller already returned (all tasks were claimed inline) still
/// touches live memory.
struct ScoringBatch {
  explicit ScoringBatch(std::vector<std::function<void()>> batch)
      : tasks(std::move(batch)) {}

  /// Claims and runs tasks until the batch is exhausted.
  void Drain() {
    for (;;) {
      const size_t claimed = next.fetch_add(1, std::memory_order_relaxed);
      if (claimed >= tasks.size()) return;
      tasks[claimed]();
      std::lock_guard<std::mutex> lock(mutex);
      if (++completed == tasks.size()) all_done.notify_all();
    }
  }

  /// Blocks until every task has completed (on any thread).
  void AwaitAll() {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [this] { return completed == tasks.size(); });
  }

  std::vector<std::function<void()>> tasks;
  std::atomic<size_t> next{0};
  std::mutex mutex;
  std::condition_variable all_done;
  size_t completed = 0;  // Guarded by mutex.
};

}  // namespace internal

/// \brief A ScoringExecutor that fans batches out over `pool`, with the
/// calling thread draining inline (see the file comment for why this cannot
/// deadlock). `pool` must outlive every use of the returned executor.
inline core::ScoringExecutor MakeScoringExecutor(ThreadPool* pool) {
  core::ScoringExecutor executor;
  executor.parallelism = pool->size();
  executor.run = [pool](std::vector<std::function<void()>> tasks) {
    if (tasks.empty()) return;
    if (tasks.size() == 1) {
      tasks[0]();
      return;
    }
    auto batch = std::make_shared<internal::ScoringBatch>(std::move(tasks));
    // One helper per task beyond the caller's own; each is claim-or-no-op.
    for (size_t i = 1; i < batch->tasks.size(); ++i) {
      pool->Execute([batch] { batch->Drain(); });
    }
    batch->Drain();
    batch->AwaitAll();
  };
  return executor;
}

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_SCORING_EXECUTOR_H_
