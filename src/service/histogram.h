#ifndef TEMPLAR_SERVICE_HISTOGRAM_H_
#define TEMPLAR_SERVICE_HISTOGRAM_H_

/// \file histogram.h
/// \brief Bounded-memory log-linear latency histograms for the serving
/// layer's telemetry (metrics.h).
///
/// A LatencyHistogram records microsecond durations into a fixed array of
/// buckets laid out log-linearly: values below 2^kSubBucketBits land in
/// their own exact bucket; above that, each power-of-two magnitude is split
/// into 2^kSubBucketBits linear sub-buckets. Memory is a compile-time
/// constant (~4 KB of atomics) regardless of how many samples are recorded,
/// and any reported percentile is the *upper edge* of the bucket holding
/// that rank — so it never under-reports, and over-reports by at most the
/// bucket's relative width:
///
///     exact <= ValueAtPercentile(p) <= exact * (1 + 2^-kSubBucketBits)
///
/// (with kSubBucketBits = 4: at most 6.25% high — tight enough for p99
/// dashboards and control loops, verified against a sorted reference in the
/// metrics tests).
///
/// Record() is three relaxed atomic increments — safe from any number of
/// threads with no locks; Snapshot() copies the counters into a plain
/// HistogramSnapshot that supports percentile queries and merging (the
/// multi-tenant host aggregates per-tenant histograms by summing their
/// snapshots' buckets).

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace templar::service {

namespace internal {

/// Sub-bucket resolution: 2^4 = 16 linear slices per power of two.
inline constexpr uint32_t kSubBucketBits = 4;
inline constexpr uint64_t kSubBucketCount = uint64_t{1} << kSubBucketBits;
/// Largest recordable value (~17.9 minutes in microseconds); larger samples
/// clamp into the top bucket rather than overflowing the index math.
inline constexpr uint64_t kHistogramMax = (uint64_t{1} << 30) - 1;
/// Magnitudes 2^kSubBucketBits .. 2^30, each contributing kSubBucketCount
/// sub-buckets, plus the exact low range [0, kSubBucketCount).
inline constexpr size_t kHistogramBuckets =
    kSubBucketCount + (30 - kSubBucketBits) * kSubBucketCount;

/// Maps a clamped value to its bucket index. Values < kSubBucketCount are
/// exact; above, the top kSubBucketBits bits below the leading bit select
/// the linear sub-bucket within the magnitude.
inline size_t HistogramBucketIndex(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - static_cast<int>(kSubBucketBits);
  const uint64_t sub = (value >> shift) & (kSubBucketCount - 1);
  return static_cast<size_t>(
      (static_cast<uint64_t>(msb - kSubBucketBits) * kSubBucketCount) +
      kSubBucketCount + sub);
}

/// Inclusive upper edge of bucket `index` — the value percentile queries
/// report for ranks landing in the bucket.
inline uint64_t HistogramBucketUpper(size_t index) {
  if (index < kSubBucketCount) return static_cast<uint64_t>(index);
  const size_t scaled = index - kSubBucketCount;
  const int msb =
      static_cast<int>(scaled / kSubBucketCount) + static_cast<int>(kSubBucketBits);
  const uint64_t sub = scaled % kSubBucketCount;
  const int shift = msb - static_cast<int>(kSubBucketBits);
  const uint64_t low =
      (uint64_t{1} << msb) + (sub << shift);
  return low + ((uint64_t{1} << shift) - 1);
}

}  // namespace internal

/// \brief A plain (non-atomic) copy of a histogram's state: percentile
/// queries, merging, and rendering all work on snapshots.
struct HistogramSnapshot {
  std::array<uint64_t, internal::kHistogramBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;  ///< Sum of recorded values (clamped), for averages.

  /// \brief Upper edge of the bucket containing the `p`-th percentile rank
  /// (p in [0, 1]); 0 when empty. Never below the exact percentile; at most
  /// (1 + 2^-kSubBucketBits) times it.
  uint64_t ValueAtPercentile(double p) const {
    if (count == 0) return 0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the percentile sample, 1-based ceiling (nearest-rank method):
    // p50 of 2 samples is the 1st, p99 of 100 samples the 99th.
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      seen += buckets[i];
      if (seen >= rank) return internal::HistogramBucketUpper(i);
    }
    return internal::HistogramBucketUpper(buckets.size() - 1);
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// \brief Adds `other`'s samples (host-level aggregation across tenants).
  void MergeFrom(const HistogramSnapshot& other) {
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
  }

  /// \brief Samples in `other` but not in this snapshot — valid because
  /// every counter is monotonic, so an older snapshot of the same histogram
  /// is a pointwise lower bound. The adaptive controller uses this to get
  /// interval (not lifetime) queue-wait percentiles.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& older) const {
    HistogramSnapshot delta;
    for (size_t i = 0; i < buckets.size(); ++i) {
      delta.buckets[i] = buckets[i] - older.buckets[i];
    }
    delta.count = count - older.count;
    delta.sum = sum - older.sum;
    return delta;
  }
};

/// \brief Lock-free log-linear histogram of microsecond latencies.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// \brief Records one sample. Wait-free; safe from any thread.
  void Record(uint64_t micros) {
    const uint64_t clamped = std::min(micros, internal::kHistogramMax);
    buckets_[internal::HistogramBucketIndex(clamped)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(clamped, std::memory_order_relaxed);
  }

  /// \brief Copies the counters out. Concurrent Record()s may or may not be
  /// included (each sample is atomic; the set of included samples is racy by
  /// design — this is telemetry, not accounting).
  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    // A snapshot racing recorders can observe a bucket increment whose
    // count_ increment it missed (or vice versa). Percentile math divides
    // by the bucket total, so reconcile count to what the buckets actually
    // hold.
    uint64_t total = 0;
    for (uint64_t b : snap.buckets) total += b;
    snap.count = total;
    return snap;
  }

 private:
  std::array<std::atomic<uint64_t>, internal::kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_HISTOGRAM_H_
