#ifndef TEMPLAR_SERVICE_REQUEST_H_
#define TEMPLAR_SERVICE_REQUEST_H_

/// \file request.h
/// \brief The typed serving envelope: QueryRequest in, QueryResponse out.
///
/// Every request to the serving layer — full NLQ-to-SQL translation or one
/// of the two mid-pipeline stages the paper exposes as interface calls — is
/// one `QueryRequest`: the input plus the per-request controls every real
/// query service needs (deadline, cancellation, top-k, explanation opt-in).
/// Every answer is one `QueryResponse`: ranked results plus the serving
/// metadata (per-stage timings, cache/coalescing disposition, epoch) and,
/// when asked for, an `Explanation` naming the interned log fragments and
/// Dice evidence behind each ranking — built from the same PR-2/4 footprint
/// machinery the caches use for selective invalidation, so provenance is
/// essentially free to surface.
///
/// Deadlines and cancellation are *cooperative*: the pipeline probes them at
/// stage boundaries (map -> per-configuration join inference -> assembly)
/// and in the admission queue, so an abandoned request stops consuming CPU
/// at the next boundary and an expired request parked in a queue is rejected
/// without ever occupying a worker. Both produce typed Status codes
/// (kDeadlineExceeded / kCancelled) so callers can distinguish "you gave up"
/// from "the service failed".

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/mapping.h"
#include "graph/schema_graph.h"
#include "nlidb/nlidb.h"
#include "nlq/keyword.h"
#include "qfg/fragment_interner.h"

namespace templar::service {

/// \brief Which pipeline prefix a request runs. The legacy
/// MapKeywords/InferJoins surfaces are thin shims over the two stage
/// selections, so their rankings (and cache entries) are exactly the
/// pre-envelope ones.
enum class Stage {
  kMapKeywords,  ///< MAPKEYWORDS only; response carries `configurations`.
  kInferJoins,   ///< INFERJOINS only; response carries `join_paths`.
  kTranslate,    ///< Full NLQ -> SQL; response carries `translations`.
};

/// \brief Returns "MapKeywords" / "InferJoins" / "Translate".
const char* StageToString(Stage stage);

/// \brief Cooperative cancellation handle. Copies share one flag: hand one
/// copy to the request, keep another, call RequestCancel() from any thread.
///
/// A default-constructed token is *inert* — cancelled() is always false and
/// it costs nothing — so requests that never cancel pay no allocation.
/// Cancellation is a pure flag flip: it never interrupts a running stage,
/// it makes the next stage-boundary probe return kCancelled.
class CancelToken {
 public:
  CancelToken() = default;

  /// \brief An armed token backed by a shared flag.
  static CancelToken Cancellable() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// \brief Requests cancellation. No-op on an inert token. Idempotent and
  /// safe from any thread.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  /// \brief True once RequestCancel() has been called on any copy.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  /// \brief True when this token can ever be cancelled (non-inert).
  bool can_cancel() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief One serving request: the input for the selected stage plus the
/// per-request controls.
struct QueryRequest {
  Stage stage = Stage::kTranslate;

  /// The parsed NLQ (kTranslate / kMapKeywords). NLIDBs hand-parse or run
  /// their own parser (nlq::NlqParser) — the envelope consumes keywords +
  /// metadata as the paper's interface calls do.
  nlq::ParsedNlq nlq;
  /// The relation-instance bag (kInferJoins only).
  std::vector<std::string> relation_bag;

  /// Ranked translations returned (kTranslate; clamped to >= 1). The full
  /// ranking is cached once, so requests differing only in top_k share one
  /// entry and one computation.
  size_t top_k = 1;
  /// Attach per-ranking provenance (kTranslate only; see Explanation).
  bool want_explanation = false;

  /// Absolute deadline; unset = no deadline. Probed at stage boundaries and
  /// at queue dispatch.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Cooperative cancellation; inert by default.
  CancelToken cancel;

  /// \name Envelope constructors
  ///@{
  static QueryRequest Translation(nlq::ParsedNlq parsed, size_t top_k = 1) {
    QueryRequest request;
    request.stage = Stage::kTranslate;
    request.nlq = std::move(parsed);
    request.top_k = top_k;
    return request;
  }
  static QueryRequest MapOnly(nlq::ParsedNlq parsed) {
    QueryRequest request;
    request.stage = Stage::kMapKeywords;
    request.nlq = std::move(parsed);
    return request;
  }
  static QueryRequest JoinsOnly(std::vector<std::string> bag) {
    QueryRequest request;
    request.stage = Stage::kInferJoins;
    request.relation_bag = std::move(bag);
    return request;
  }
  ///@}

  /// \brief Sets the deadline to now + `budget` and returns *this (builder
  /// style: `QueryRequest::Translation(nlq).WithTimeout(50ms)`).
  QueryRequest& WithTimeout(std::chrono::nanoseconds budget) {
    deadline = std::chrono::steady_clock::now() + budget;
    return *this;
  }

  /// \brief The stage-boundary / queue-dispatch probe: OK while the request
  /// should keep running, kCancelled once its token fired, kDeadlineExceeded
  /// once its deadline passed (cancellation wins when both hold — it is the
  /// caller's explicit word).
  Status CheckRunnable() const {
    if (cancel.cancelled()) {
      return Status::Cancelled("request cancelled by caller");
    }
    if (deadline.has_value() &&
        std::chrono::steady_clock::now() >= *deadline) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }
};

/// \brief Provenance of one ranked translation: the interned log fragments
/// and Dice evidence its scores consulted, resolved against the QFG at the
/// epoch the ranking was computed.
///
/// The map side mirrors ScoreQFG (Sec. V-C2): the chosen configuration's
/// non-FROM fragments with their occurrence counts n_v, and every scored
/// pair with its co-occurrence count n_e and Dice value (pairs identical
/// after obscuring are skipped, exactly as in scoring). The join side
/// mirrors the log-driven edge weights w_L = 1 - Dice (Sec. VI-A2): the
/// FROM fragments of the returned path's base relations, and as edge
/// evidence the search's *decisive* set (JoinPath::decisive_edges) — the
/// path's own tree edges plus every runner-up edge whose weight decided a
/// tie-break within the configured margin. That is exactly the dependency
/// set the cache footprint records, so join_edges names precisely the
/// evidence whose change would invalidate the cached ranking. Fragments
/// the log has never seen report interned=false with zero counts — naming
/// them documents that the ranking ran on similarity evidence alone there.
struct Explanation {
  /// One fragment the ranking depended on.
  struct FragmentSupport {
    std::string key;  ///< Normalized fragment key (graph identity).
    bool interned = false;              ///< Seen by the log (has a dense id).
    qfg::FragmentId id = qfg::kInvalidFragmentId;
    uint64_t occurrences = 0;  ///< n_v at explanation time.
  };
  /// One scored fragment pair (map) or one decisive edge (join).
  struct PairSupport {
    std::string a;  ///< Normalized keys (join: base relation names).
    std::string b;
    uint64_t cooccurrences = 0;  ///< n_e.
    double dice = 0;             ///< 2*n_e / (n_v(a) + n_v(b)).
  };

  std::vector<FragmentSupport> map_fragments;
  std::vector<PairSupport> map_pairs;
  std::vector<FragmentSupport> join_relations;
  std::vector<PairSupport> join_edges;

  /// True when the configuration score used the occurrence fallback with a
  /// non-zero numerator — the ranking then depends on query_count() and is
  /// honestly invalidated by *any* append.
  bool used_query_count = false;
  /// Log size the evidence was read at (the Dice denominators' context).
  uint64_t query_count = 0;

  std::string ToString() const;
};

/// \brief Where the answer came from: a fresh computation, the result
/// cache, or another in-flight request's computation (single-flight).
enum class ServedFrom {
  kComputed,
  kCache,
  kCoalesced,
};

/// \brief Returns "computed" / "cache" / "coalesced".
const char* ServedFromToString(ServedFrom served);

/// \brief Wall-clock breakdown of one served request. Stage times are the
/// *computing* request's (zero on a cache hit — nothing ran); `queue` is
/// time parked in the admission queue (host/async paths; zero for sync
/// calls); `total` is always this caller's end-to-end time.
struct StageTimings {
  std::chrono::microseconds queue{0};
  std::chrono::microseconds map{0};
  std::chrono::microseconds join{0};
  std::chrono::microseconds assemble{0};
  std::chrono::microseconds total{0};
};

/// \brief One serving answer. Exactly one of the three result vectors is
/// populated, per the request's stage.
struct QueryResponse {
  Stage stage = Stage::kTranslate;

  /// Ranked translations, best first (kTranslate; at most top_k).
  std::vector<nlidb::Translation> translations;
  /// Per-translation provenance, positionally aligned with `translations`
  /// (kTranslate with want_explanation only).
  std::vector<Explanation> explanations;
  /// Ranked configurations (kMapKeywords).
  std::vector<core::Configuration> configurations;
  /// Ranked join paths (kInferJoins).
  std::vector<graph::JoinPath> join_paths;

  ServedFrom served_from = ServedFrom::kComputed;
  StageTimings timings;
  /// Ingestion epoch the answer is valid for.
  uint64_t epoch = 0;
  /// True when the request's deadline (or cancellation) cut configuration
  /// enumeration short and `configurations` is the best-so-far ranking over
  /// the prefix scored before the probe fired, not the full ranking
  /// (kMapKeywords only). Every score in a partial ranking is exact; only
  /// coverage is truncated. Partial answers are never cached and never
  /// served to coalesced followers — each caller decides for itself whether
  /// a truncated ranking beats a kDeadlineExceeded error.
  bool partial = false;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_REQUEST_H_
