#include "service/metrics.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <iterator>

namespace templar::service {

namespace {

/// The quantiles the exporter publishes for every latency point.
constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99", "0.999"};

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf)));
}

/// Escapes a label value per the Prometheus exposition format (backslash,
/// double quote, newline).
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const char* CounterName(Counter counter) {
  switch (counter) {
    case Counter::kRequests:
      return "requests";
    case Counter::kMapComputations:
      return "map_computations";
    case Counter::kJoinComputations:
      return "join_computations";
    case Counter::kTranslateComputations:
      return "translate_computations";
    case Counter::kCacheHits:
      return "cache_hits";
    case Counter::kCacheMisses:
      return "cache_misses";
    case Counter::kCoalesced:
      return "coalesced";
    case Counter::kRejected:
      return "rejected";
    case Counter::kDeadlineExceeded:
      return "deadline_exceeded";
    case Counter::kCancelled:
      return "cancelled";
    case Counter::kInvalidationSweeps:
      return "invalidation_sweeps";
    case Counter::kInvalidatedEntries:
      return "invalidated_entries";
  }
  return "unknown";
}

const char* GaugeName(Gauge gauge) {
  switch (gauge) {
    case Gauge::kFollowerLagEpochs:
      return "follower_lag_epochs";
  }
  return "unknown";
}

const char* LatencyPointName(LatencyPoint point) {
  switch (point) {
    case LatencyPoint::kQueueWait:
      return "queue_wait";
    case LatencyPoint::kMapStage:
      return "map_stage";
    case LatencyPoint::kJoinStage:
      return "join_stage";
    case LatencyPoint::kAssembleStage:
      return "assemble_stage";
    case LatencyPoint::kEndToEnd:
      return "end_to_end";
  }
  return "unknown";
}

TenantMetricsSnapshot TenantMetrics::Collect(MetricClock::time_point now) {
  TenantMetricsSnapshot snap;
  for (size_t c = 0; c < kCounterCount; ++c) {
    snap.windows[c] = counters_[c].Sums(now);
    snap.totals[c] = counters_[c].Total();
  }
  for (size_t g = 0; g < kGaugeCount; ++g) {
    snap.gauges[g] = gauges_[g].load(std::memory_order_relaxed);
  }
  for (size_t p = 0; p < kLatencyPointCount; ++p) {
    snap.latencies[p] = histograms_[p].Snapshot();
  }
  return snap;
}

std::string RenderPrometheusText(
    const std::vector<std::pair<std::string, TenantMetricsSnapshot>>&
        tenants) {
  // Host aggregate rendered under the reserved "_host" tenant label when
  // more than one tenant is listed (a single tenant IS the host).
  std::vector<std::pair<std::string, const TenantMetricsSnapshot*>> rows;
  rows.reserve(tenants.size() + 1);
  for (const auto& [id, snap] : tenants) rows.emplace_back(id, &snap);
  TenantMetricsSnapshot host;
  if (tenants.size() > 1) {
    for (const auto& [_, snap] : tenants) host.MergeFrom(snap);
    rows.emplace_back("_host", &host);
  }

  std::string out;
  out.reserve(4096);
  for (size_t c = 0; c < kCounterCount; ++c) {
    const char* name = CounterName(static_cast<Counter>(c));
    AppendF(&out,
            "# HELP templar_%s_window Events in the trailing window.\n"
            "# TYPE templar_%s_window gauge\n",
            name, name);
    for (const auto& [id, snap] : rows) {
      const std::string tenant = EscapeLabel(id);
      for (size_t w = 0; w < kWindowCount; ++w) {
        AppendF(&out, "templar_%s_window{tenant=\"%s\",window=\"%s\"} %llu\n",
                name, tenant.c_str(), kWindowSpecs[w].label,
                static_cast<unsigned long long>(snap->windows[c][w]));
      }
    }
    AppendF(&out,
            "# HELP templar_%s_rate Events per second over the trailing "
            "window.\n# TYPE templar_%s_rate gauge\n",
            name, name);
    for (const auto& [id, snap] : rows) {
      const std::string tenant = EscapeLabel(id);
      for (size_t w = 0; w < kWindowCount; ++w) {
        AppendF(&out, "templar_%s_rate{tenant=\"%s\",window=\"%s\"} %.6g\n",
                name, tenant.c_str(), kWindowSpecs[w].label,
                static_cast<double>(snap->windows[c][w]) /
                    kWindowSpecs[w].seconds);
      }
    }
    AppendF(&out,
            "# HELP templar_%s_total Lifetime events.\n"
            "# TYPE templar_%s_total counter\n",
            name, name);
    for (const auto& [id, snap] : rows) {
      AppendF(&out, "templar_%s_total{tenant=\"%s\"} %llu\n", name,
              EscapeLabel(id).c_str(),
              static_cast<unsigned long long>(snap->totals[c]));
    }
  }

  for (size_t g = 0; g < kGaugeCount; ++g) {
    const char* name = GaugeName(static_cast<Gauge>(g));
    AppendF(&out,
            "# HELP templar_%s Current value (host aggregate is the max "
            "across tenants).\n# TYPE templar_%s gauge\n",
            name, name);
    for (const auto& [id, snap] : rows) {
      AppendF(&out, "templar_%s{tenant=\"%s\"} %llu\n", name,
              EscapeLabel(id).c_str(),
              static_cast<unsigned long long>(snap->gauges[g]));
    }
  }

  AppendF(&out,
          "# HELP templar_latency_microseconds Serving latency "
          "distribution by recording point.\n"
          "# TYPE templar_latency_microseconds summary\n");
  for (const auto& [id, snap] : rows) {
    const std::string tenant = EscapeLabel(id);
    for (size_t p = 0; p < kLatencyPointCount; ++p) {
      const char* point = LatencyPointName(static_cast<LatencyPoint>(p));
      const HistogramSnapshot& hist = snap->latencies[p];
      for (size_t q = 0; q < std::size(kQuantiles); ++q) {
        AppendF(&out,
                "templar_latency_microseconds{tenant=\"%s\",point=\"%s\","
                "quantile=\"%s\"} %llu\n",
                tenant.c_str(), point, kQuantileLabels[q],
                static_cast<unsigned long long>(
                    hist.ValueAtPercentile(kQuantiles[q])));
      }
      AppendF(&out,
              "templar_latency_microseconds_count{tenant=\"%s\","
              "point=\"%s\"} %llu\n",
              tenant.c_str(), point,
              static_cast<unsigned long long>(hist.count));
      AppendF(&out,
              "templar_latency_microseconds_sum{tenant=\"%s\","
              "point=\"%s\"} %llu\n",
              tenant.c_str(), point,
              static_cast<unsigned long long>(hist.sum));
    }
  }
  return out;
}

void MetricsRegistry::Attach(const std::string& id,
                             std::shared_ptr<TenantMetrics> metrics) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  tenants_[id] = std::move(metrics);
}

void MetricsRegistry::Detach(const std::string& id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  tenants_.erase(id);
}

std::vector<std::string> MetricsRegistry::Ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, _] : tenants_) ids.push_back(id);
  return ids;
}

std::vector<std::pair<std::string, TenantMetricsSnapshot>>
MetricsRegistry::CollectAll(MetricClock::time_point now) const {
  // Copy the pointers out, then collect without the registry lock: Collect
  // takes each counter's mutex, and a tenant mid-burst must not stall an
  // Attach/Detach.
  std::vector<std::pair<std::string, std::shared_ptr<TenantMetrics>>> live;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    live.reserve(tenants_.size());
    for (const auto& [id, metrics] : tenants_) live.emplace_back(id, metrics);
  }
  std::vector<std::pair<std::string, TenantMetricsSnapshot>> snaps;
  snaps.reserve(live.size());
  for (auto& [id, metrics] : live) {
    snaps.emplace_back(id, metrics->Collect(now));
  }
  return snaps;
}

std::string MetricsRegistry::RenderPrometheus(
    MetricClock::time_point now) const {
  return RenderPrometheusText(CollectAll(now));
}

}  // namespace templar::service
