#include "service/request.h"

#include <cstdio>

namespace templar::service {

const char* StageToString(Stage stage) {
  switch (stage) {
    case Stage::kMapKeywords:
      return "MapKeywords";
    case Stage::kInferJoins:
      return "InferJoins";
    case Stage::kTranslate:
      return "Translate";
  }
  return "Unknown";
}

const char* ServedFromToString(ServedFrom served) {
  switch (served) {
    case ServedFrom::kComputed:
      return "computed";
    case ServedFrom::kCache:
      return "cache";
    case ServedFrom::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

namespace {

void AppendFragmentLine(std::string& out, const char* label,
                        const Explanation::FragmentSupport& support) {
  out += "  ";
  out += label;
  out += ": ";
  out += support.key;
  if (support.interned) {
    out += "  [id " + std::to_string(support.id) +
           ", n_v=" + std::to_string(support.occurrences) + "]";
  } else {
    out += "  [never logged]";
  }
  out += '\n';
}

void AppendPairLine(std::string& out, const char* label,
                    const Explanation::PairSupport& pair) {
  char dice[32];
  std::snprintf(dice, sizeof(dice), "%.4f", pair.dice);
  out += "  ";
  out += label;
  out += ": ";
  out += pair.a + " x " + pair.b + "  [n_e=" +
         std::to_string(pair.cooccurrences) + ", Dice=" + dice + "]";
  out += '\n';
}

}  // namespace

std::string Explanation::ToString() const {
  std::string out = "evidence @ " + std::to_string(query_count) +
                    " log queries";
  if (used_query_count) out += " (query-count sensitive)";
  out += '\n';
  for (const auto& support : map_fragments) {
    AppendFragmentLine(out, "map fragment", support);
  }
  for (const auto& pair : map_pairs) {
    AppendPairLine(out, "map pair", pair);
  }
  for (const auto& support : join_relations) {
    AppendFragmentLine(out, "join relation", support);
  }
  for (const auto& pair : join_edges) {
    AppendPairLine(out, "join edge", pair);
  }
  return out;
}

}  // namespace templar::service
