#ifndef TEMPLAR_SERVICE_ADMISSION_H_
#define TEMPLAR_SERVICE_ADMISSION_H_

/// \file admission.h
/// \brief Per-tenant admission control and fair-share scheduling for the
/// multi-tenant serving host.
///
/// A ServiceHost runs many tenants over ONE worker pool, so two failure
/// modes must be engineered away:
///
///  - **Overload.** Unbounded acceptance turns a traffic spike into
///    unbounded queueing (memory growth + latency collapse). Each tenant
///    gets an AdmissionController with two limits: `max_inflight` bounds
///    requests executing at once (sync calls on client threads plus
///    dispatched async tasks), `max_queued` bounds async tasks waiting for
///    a worker. A request over either limit is *rejected immediately* with
///    a typed Status (kOverloaded) — never silently dropped, never blocked.
///  - **Starvation.** A FIFO pool queue lets one hot tenant's burst bury
///    every other tenant's requests behind it. The FairShareScheduler keeps
///    a separate FIFO per tenant and dispatches round-robin across tenants
///    that have runnable work, skipping tenants at their in-flight cap. A
///    cold tenant's request therefore waits behind at most one task per
///    *tenant*, not per queued request.
///
/// Counter contract (verified by the admission unit tests): every request
/// increments `submitted` exactly once and then exactly one of `admitted` or
/// `rejected`; every admitted request eventually increments `completed`.
/// So `admitted + rejected == submitted` at every quiescent point, and
/// `admitted == completed` once all work has drained.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "service/thread_pool.h"

namespace templar::service {

/// \brief Per-tenant admission limits.
struct AdmissionOptions {
  /// Requests allowed to execute concurrently (sync + dispatched async).
  /// 0 rejects everything, async included (a task that could never acquire
  /// an execution slot must not be queued) — useful for draining a tenant
  /// before retire.
  size_t max_inflight = 32;
  /// Async requests allowed to wait for a worker. 0 rejects every async
  /// request (sync requests only contend for in-flight slots).
  size_t max_queued = 128;
};

/// \brief Point-in-time admission counters for one tenant.
struct AdmissionStats {
  uint64_t submitted = 0;  ///< Every request that reached the gate.
  uint64_t admitted = 0;   ///< Granted a slot (executing or queued).
  uint64_t rejected = 0;   ///< Turned away with kOverloaded.
  uint64_t completed = 0;  ///< Admitted requests that finished executing.
  size_t inflight = 0;     ///< Currently executing (instantaneous).
  size_t queued = 0;       ///< Currently waiting for a worker (instantaneous).
  /// Effective limits — the adaptive controller may have moved them off the
  /// configured AdmissionOptions (see AdmissionController::SetLimits).
  size_t max_inflight = 0;
  size_t max_queued = 0;
  /// Tasks parked in the FairShareScheduler's per-tenant FIFO right now
  /// (instantaneous; filled by the owning host, not the controller itself).
  size_t scheduler_queued = 0;
};

/// \brief One tenant's admission gate: lock-free slot counters sized by
/// AdmissionOptions. Thread-safe; shared between the tenant's sync request
/// paths and the FairShareScheduler's dispatch loop.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : configured_(options),
        max_inflight_(options.max_inflight),
        max_queued_(options.max_queued) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// \brief Full admission check for a synchronous request: counts the
  /// submission and either takes an in-flight slot (true) or counts a
  /// rejection (false). Pair with Release().
  bool AdmitInflight() {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (!TryAcquireSlot()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// \brief Full admission check for an asynchronous request: counts the
  /// submission and either takes a queue slot (true) or counts a rejection
  /// (false). The scheduler later moves the task from queued to in-flight.
  bool AdmitQueued() {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    // max_inflight == 0 rejects here too: a queued task can only ever run
    // by acquiring an in-flight slot, so admitting one would park it (and
    // its future) forever instead of draining.
    if (max_inflight_.load(std::memory_order_relaxed) > 0) {
      const size_t max_queued = max_queued_.load(std::memory_order_relaxed);
      size_t cur = queued_.load(std::memory_order_relaxed);
      while (cur < max_queued) {
        if (queued_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel)) {
          admitted_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// \brief Takes an in-flight slot without submission accounting (the
  /// scheduler's dispatch step: the request was already admitted into the
  /// queue). Returns false when the tenant is at its in-flight cap.
  bool TryAcquireSlot() {
    const size_t max_inflight = max_inflight_.load(std::memory_order_relaxed);
    size_t cur = inflight_.load(std::memory_order_relaxed);
    while (cur < max_inflight) {
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  /// \brief Moves an admitted task from queued to executing (slot already
  /// acquired via TryAcquireSlot).
  void MarkDequeued() { queued_.fetch_sub(1, std::memory_order_acq_rel); }

  /// \brief Releases an in-flight slot and counts the completion.
  void Release() {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t queued() const { return queued_.load(std::memory_order_acquire); }
  size_t inflight() const { return inflight_.load(std::memory_order_acquire); }
  /// \brief The limits the tenant was *configured* with (the adaptive
  /// controller never tunes past them — they are its ceiling).
  const AdmissionOptions& options() const { return configured_; }

  /// \brief Effective limits right now (== options() unless the adaptive
  /// controller has moved them).
  size_t max_inflight() const {
    return max_inflight_.load(std::memory_order_relaxed);
  }
  size_t max_queued() const {
    return max_queued_.load(std::memory_order_relaxed);
  }

  /// \brief Re-limits the gate (the host's adaptive controller shrinks a
  /// tenant whose queue-wait p99 blows past target and grows it back toward
  /// the configured caps when pressure clears). Takes effect for future
  /// admissions; requests already admitted keep their slots, so in-flight
  /// may transiently exceed a shrunken cap until they complete.
  void SetLimits(size_t max_inflight, size_t max_queued) {
    max_inflight_.store(max_inflight, std::memory_order_relaxed);
    max_queued_.store(max_queued, std::memory_order_relaxed);
  }

  AdmissionStats Stats() const {
    AdmissionStats stats;
    stats.submitted = submitted_.load(std::memory_order_relaxed);
    stats.admitted = admitted_.load(std::memory_order_relaxed);
    stats.rejected = rejected_.load(std::memory_order_relaxed);
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.inflight = inflight_.load(std::memory_order_relaxed);
    stats.queued = queued_.load(std::memory_order_relaxed);
    stats.max_inflight = max_inflight_.load(std::memory_order_relaxed);
    stats.max_queued = max_queued_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  const AdmissionOptions configured_;
  std::atomic<size_t> max_inflight_;
  std::atomic<size_t> max_queued_;
  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> queued_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
};

/// \brief Round-robin dispatcher of per-tenant task queues onto a shared
/// ThreadPool.
///
/// Submit() admission-checks against the tenant's queue-depth limit, parks
/// the task in the tenant's FIFO, and posts a dispatch trampoline to the
/// pool. Each trampoline repeatedly picks the next tenant in rotation that
/// has queued work *and* a free in-flight slot, runs one of its tasks, and
/// releases the slot — so a saturating tenant never executes more than its
/// cap concurrently and never starves other tenants' queues, regardless of
/// submission order.
class FairShareScheduler {
 public:
  using Task = std::function<void()>;

  explicit FairShareScheduler(ThreadPool* pool) : pool_(pool) {}

  FairShareScheduler(const FairShareScheduler&) = delete;
  FairShareScheduler& operator=(const FairShareScheduler&) = delete;

  /// \brief Admission-checks and enqueues `task` for `tenant`. Returns false
  /// — with the rejection counted in the tenant's stats — when the tenant's
  /// queue is at capacity. The task will run on the shared pool once the
  /// round-robin rotation reaches the tenant and it has in-flight headroom;
  /// the scheduler holds `tenant` alive until then.
  bool Submit(const std::shared_ptr<AdmissionController>& tenant, Task task) {
    if (!tenant->AdmitQueued()) return false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = queues_.try_emplace(tenant.get());
      TenantQueue& queue = it->second;
      if (inserted) queue.tenant = tenant;
      if (!queue.in_rotation) {
        rotation_.push_back(tenant.get());
        queue.in_rotation = true;
      }
      queue.tasks.push_back(std::move(task));
    }
    pool_->Execute([this] { DispatchLoop(); });
    return true;
  }

  /// \brief Wakes the dispatcher when external slot release may have made
  /// queued work runnable (a *sync* request of the tenant finished while its
  /// async queue was blocked on the in-flight cap — the trampolines all
  /// exited, so nothing else would ever re-scan the queue).
  void Poke(const AdmissionController& tenant) {
    if (tenant.queued() > 0) {
      pool_->Execute([this] { DispatchLoop(); });
    }
  }

  /// \brief Tasks parked across all tenant queues (diagnostics; racy).
  size_t QueuedTasks() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& [_, queue] : queues_) total += queue.tasks.size();
    return total;
  }

  /// \brief Tasks parked in `tenant`'s FIFO right now (diagnostics; racy).
  /// Surfaced as AdmissionStats::scheduler_queued so the adaptive
  /// controller and tests can observe per-tenant backlog directly.
  size_t QueuedTasksFor(const AdmissionController* tenant) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queues_.find(const_cast<AdmissionController*>(tenant));
    return it == queues_.end() ? 0 : it->second.tasks.size();
  }

 private:
  struct TenantQueue {
    /// Keeps the controller (and whatever its owner ties to its lifetime)
    /// alive while tasks are parked, including across a tenant retire.
    std::shared_ptr<AdmissionController> tenant;
    std::deque<Task> tasks;
    bool in_rotation = false;
  };

  /// Runs parked tasks until no tenant has runnable work. Over-posting is
  /// benign: a trampoline that finds nothing runnable returns immediately.
  void DispatchLoop() {
    for (;;) {
      Task task;
      std::shared_ptr<AdmissionController> tenant;
      {
        std::lock_guard<std::mutex> lock(mu_);
        // One full rotation at most: every tenant currently in rotation is
        // examined once; at-cap tenants go back to the rotation tail so a
        // later pass (after a Release) can serve them.
        const size_t attempts = rotation_.size();
        for (size_t i = 0; i < attempts; ++i) {
          AdmissionController* key = rotation_.front();
          rotation_.pop_front();
          auto it = queues_.find(key);
          if (it == queues_.end() || it->second.tasks.empty()) {
            // Drained while parked in the rotation; drop it. (Submit
            // re-inserts the tenant when new work arrives.)
            if (it != queues_.end()) {
              it->second.in_rotation = false;
              queues_.erase(it);
            }
            continue;
          }
          if (!key->TryAcquireSlot()) {
            rotation_.push_back(key);  // At in-flight cap: not its turn.
            continue;
          }
          task = std::move(it->second.tasks.front());
          it->second.tasks.pop_front();
          key->MarkDequeued();
          tenant = it->second.tenant;
          if (it->second.tasks.empty()) {
            it->second.in_rotation = false;
            queues_.erase(it);
          } else {
            rotation_.push_back(key);
          }
          break;
        }
      }
      if (!task) return;
      task();
      tenant->Release();
      // Loop: the released slot (or work queued meanwhile) may be runnable.
    }
  }

  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::unordered_map<AdmissionController*, TenantQueue> queues_;
  std::deque<AdmissionController*> rotation_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_ADMISSION_H_
