#include "service/tenant_registry.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace templar::service {

namespace internal {

/// \brief Everything the host replicates per tenant: the serving engine,
/// the admission gate, and the retire flag. Held by shared_ptr from the
/// registry, every TenantHandle, and every queued task — so a retire (or
/// even a host teardown) never frees state a request still touches.
struct TenantState {
  std::string id;
  std::unique_ptr<ServiceCore> core;
  std::shared_ptr<AdmissionController> admission;
  FairShareScheduler* scheduler = nullptr;
  size_t host_workers = 0;
  std::atomic<bool> retired{false};
  /// Queue-wait histogram as of the previous adaptive-controller tick, so
  /// each tick tunes from the p99 of the *interval*, not of all time. Only
  /// the controller (single-threaded) reads or writes it.
  HistogramSnapshot last_queue_wait;
};

}  // namespace internal

namespace {

using internal::TenantState;

template <typename T>
std::future<Result<T>> ReadyFuture(Status status) {
  return internal::ReadyFuture<T>(Result<T>(std::move(status)));
}

Status RetiredError(const TenantState& state) {
  return Status::NotFound("tenant '" + state.id + "' has been retired");
}

Status OverloadedError(const TenantState& state, const char* what) {
  return Status::Overloaded("tenant '" + state.id + "': " + what +
                            " limit reached");
}

/// The core's counters decorated with the tenant-level fields — the single
/// definition of "one tenant's ServiceStats", so TenantHandle::Stats() and
/// the same tenant's entry in ServiceHost::Stats() cannot drift apart.
ServiceStats TenantStatsSnapshot(const TenantState& state) {
  ServiceStats stats = state.core->Stats();
  stats.tenant_id = state.id;
  stats.admission = state.admission->Stats();
  if (state.scheduler != nullptr) {
    stats.admission.scheduler_queued =
        state.scheduler->QueuedTasksFor(state.admission.get());
  }
  stats.worker_threads = state.host_workers;
  return stats;
}

/// Releases the sync-path in-flight slot and, if async work was parked
/// behind the cap this slot occupied, wakes the dispatcher (the scheduler's
/// own trampolines re-scan after their tasks, but a slot held by a *sync*
/// caller is invisible to them).
class SyncSlotGuard {
 public:
  explicit SyncSlotGuard(TenantState& state) : state_(state) {}
  ~SyncSlotGuard() {
    state_.admission->Release();
    state_.scheduler->Poke(*state_.admission);
  }

 private:
  TenantState& state_;
};

/// Shared sync path: retire check, admission gate, then `call` on the
/// tenant's core.
template <typename T, typename Fn>
Result<T> ServeSync(const std::shared_ptr<TenantState>& state, Fn&& call) {
  if (state == nullptr) return Status::InvalidArgument("empty tenant handle");
  if (state->retired.load(std::memory_order_acquire)) {
    return RetiredError(*state);
  }
  if (!state->admission->AdmitInflight()) {
    state->core->metrics().Add(Counter::kRejected, 1);
    return OverloadedError(*state, "in-flight");
  }
  SyncSlotGuard guard(*state);
  return call(*state->core);
}

/// Shared async path: retire check, queue-slot admission, then park the
/// task with the fair-share scheduler. The task re-checks the retire flag
/// when it finally runs (the tenant may have been retired while queued) and
/// keeps `state` alive via its capture either way.
template <typename T, typename Fn>
std::future<Result<T>> ServeAsync(const std::shared_ptr<TenantState>& state,
                                  Fn&& call) {
  if (state == nullptr) {
    return ReadyFuture<T>(Status::InvalidArgument("empty tenant handle"));
  }
  if (state->retired.load(std::memory_order_acquire)) {
    return ReadyFuture<T>(RetiredError(*state));
  }
  auto task = std::make_shared<std::packaged_task<Result<T>()>>(
      [state, call = std::forward<Fn>(call)]() -> Result<T> {
        if (state->retired.load(std::memory_order_acquire)) {
          return RetiredError(*state);
        }
        return call(*state->core);
      });
  std::future<Result<T>> future = task->get_future();
  if (!state->scheduler->Submit(state->admission,
                                [task] { (*task)(); })) {
    state->core->metrics().Add(Counter::kRejected, 1);
    return ReadyFuture<T>(OverloadedError(*state, "queue-depth"));
  }
  return future;
}

}  // namespace

// ---------------------------------------------------------------------------
// TenantHandle

Result<QueryResponse> TenantHandle::Translate(
    const QueryRequest& request) const {
  return ServeSync<QueryResponse>(
      state_, [&](ServiceCore& core) { return core.Translate(request); });
}

std::future<Result<QueryResponse>> TenantHandle::TranslateAsync(
    QueryRequest request) const {
  // A request that is already dead never touches admission: it is answered
  // on the caller's thread without taking a queue slot or a worker.
  if (Status gate = request.CheckRunnable(); !gate.ok()) {
    return ReadyFuture<QueryResponse>(std::move(gate));
  }
  const auto submitted = std::chrono::steady_clock::now();
  return ServeAsync<QueryResponse>(
      state_, [request = std::move(request), submitted](ServiceCore& core) {
        return internal::RunDispatched(
            request, submitted, &core.metrics(),
            [&core](const QueryRequest& r) { return core.Translate(r); });
      });
}

std::vector<Result<QueryResponse>> TenantHandle::TranslateBatch(
    const std::vector<QueryRequest>& requests) const {
  return internal::FanOutAligned(requests, [&](const QueryRequest& request) {
    return TranslateAsync(request);
  });
}

const std::string& TenantHandle::id() const {
  static const std::string kEmpty;
  return state_ ? state_->id : kEmpty;
}

bool TenantHandle::alive() const {
  return state_ != nullptr &&
         !state_->retired.load(std::memory_order_acquire);
}

Result<std::vector<core::Configuration>> TenantHandle::MapKeywords(
    const nlq::ParsedNlq& nlq) const {
  return ServeSync<std::vector<core::Configuration>>(
      state_, [&](ServiceCore& core) { return core.MapKeywords(nlq); });
}

Result<std::vector<graph::JoinPath>> TenantHandle::InferJoins(
    const std::vector<std::string>& relation_bag) const {
  return ServeSync<std::vector<graph::JoinPath>>(
      state_,
      [&](ServiceCore& core) { return core.InferJoins(relation_bag); });
}

std::future<Result<std::vector<core::Configuration>>>
TenantHandle::MapKeywordsAsync(nlq::ParsedNlq nlq) const {
  return ServeAsync<std::vector<core::Configuration>>(
      state_, [nlq = std::move(nlq)](ServiceCore& core) {
        return core.MapKeywords(nlq);
      });
}

std::future<Result<std::vector<graph::JoinPath>>>
TenantHandle::InferJoinsAsync(std::vector<std::string> relation_bag) const {
  return ServeAsync<std::vector<graph::JoinPath>>(
      state_, [bag = std::move(relation_bag)](ServiceCore& core) {
        return core.InferJoins(bag);
      });
}

std::vector<Result<std::vector<core::Configuration>>>
TenantHandle::MapKeywordsBatch(const std::vector<nlq::ParsedNlq>& nlqs) const {
  return internal::FanOutAligned(
      nlqs, [&](const nlq::ParsedNlq& nlq) { return MapKeywordsAsync(nlq); });
}

std::vector<Result<std::vector<graph::JoinPath>>>
TenantHandle::InferJoinsBatch(
    const std::vector<std::vector<std::string>>& relation_bags) const {
  return internal::FanOutAligned(relation_bags,
                                 [&](const std::vector<std::string>& bag) {
                                   return InferJoinsAsync(bag);
                                 });
}

Result<AppendOutcome> TenantHandle::AppendLogQueries(
    const std::vector<std::string>& sql_entries) const {
  if (state_ == nullptr) {
    return Status::InvalidArgument("empty tenant handle");
  }
  if (state_->retired.load(std::memory_order_acquire)) {
    return RetiredError(*state_);
  }
  // Ingestion is control-plane traffic: not admission-gated (it must go
  // through under overload — appends are what refresh the evidence), and
  // tenant-scoped by construction (it sweeps only this core's caches).
  return state_->core->AppendLogQueries(sql_entries);
}

Status TenantHandle::SaveSnapshot(const std::string& path) const {
  if (state_ == nullptr) {
    return Status::InvalidArgument("empty tenant handle");
  }
  if (state_->retired.load(std::memory_order_acquire)) {
    return RetiredError(*state_);
  }
  return state_->core->SaveSnapshot(path);
}

Result<uint64_t> TenantHandle::SyncWithLog() const {
  if (state_ == nullptr) {
    return Status::InvalidArgument("empty tenant handle");
  }
  if (state_->retired.load(std::memory_order_acquire)) {
    return RetiredError(*state_);
  }
  return state_->core->SyncWithLog();
}

Status TenantHandle::Promote() const {
  if (state_ == nullptr) {
    return Status::InvalidArgument("empty tenant handle");
  }
  if (state_->retired.load(std::memory_order_acquire)) {
    return RetiredError(*state_);
  }
  return state_->core->Promote();
}

Status TenantHandle::CompactLog() const {
  if (state_ == nullptr) {
    return Status::InvalidArgument("empty tenant handle");
  }
  if (state_->retired.load(std::memory_order_acquire)) {
    return RetiredError(*state_);
  }
  return state_->core->CompactLog();
}

bool TenantHandle::is_follower() const {
  return state_ != nullptr && state_->core->is_follower();
}

ServiceStats TenantHandle::Stats() const {
  if (state_ == nullptr) return ServiceStats{};
  return TenantStatsSnapshot(*state_);
}

uint64_t TenantHandle::epoch() const {
  return state_ ? state_->core->epoch() : 0;
}

TenantMetrics& TenantHandle::metrics() const { return state_->core->metrics(); }

// ---------------------------------------------------------------------------
// ServiceHost

ServiceHost::ServiceHost(HostOptions options)
    : options_(options),
      scheduler_(&pool_),  // Stores the pointer only; pool_ is built below.
      pool_(options.worker_threads) {
  if (options_.adaptive.period.count() > 0) {
    controller_ = std::thread([this] { AdaptiveControlLoop(); });
  }
}

ServiceHost::~ServiceHost() {
  // Stop the controller before tenants go away: a tick walks the registry
  // and the per-tenant metrics.
  if (controller_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(controller_mu_);
      stop_controller_ = true;
    }
    controller_cv_.notify_all();
    controller_.join();
  }
  // Retire every tenant before the members a request would touch go away:
  // a TenantHandle outliving the host holds the tenant state (shared_ptr)
  // but NOT the host's scheduler/pool, which the state points into. With
  // the flag set, requests issued through stale handles after this point
  // fail fast with kNotFound before reaching either. Tasks still parked in
  // the scheduler short-circuit the same way when the pool destructor
  // (which runs after this body) drains their trampolines — Submit posted
  // one per task, so none is abandoned. Requests still *executing* on
  // other threads here are a caller contract violation (see the header).
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [_, state] : tenants_) {
    state->retired.store(true, std::memory_order_release);
  }
  tenants_.clear();
}

Status ServiceHost::RegisterTenant(const std::string& id,
                                   const db::Database* db,
                                   const embed::SimilarityModel* model,
                                   const std::vector<std::string>& query_log,
                                   TenantOptions options) {
  if (id.empty()) return Status::InvalidArgument("tenant id must not be empty");
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (tenants_.count(id) > 0) {
      return Status::AlreadyExists("tenant '" + id + "' is already registered");
    }
  }

  // Build outside the registry lock: Templar construction parses the whole
  // query log, and other tenants must keep serving meanwhile. The caches
  // start at the full host budget and are trimmed to this tenant's share by
  // the repartition below.
  ServiceOptions core_options;
  core_options.templar = options.templar;
  core_options.map_cache_capacity = std::max<size_t>(1, options_.map_cache_budget);
  core_options.join_cache_capacity =
      std::max<size_t>(1, options_.join_cache_budget);
  core_options.translate_cache_capacity =
      std::max<size_t>(1, options_.translate_cache_budget);
  core_options.cache_shards = options_.cache_shards;
  core_options.invalidation = options.invalidation;
  core_options.warm_start_path = options.warm_start_path;
  core_options.replication = options.replication;
  auto core = ServiceCore::Create(db, model, query_log, core_options);
  if (!core.ok()) return core.status();

  auto state = std::make_shared<internal::TenantState>();
  state->id = id;
  state->core = std::move(*core);
  // Every tenant scores large configuration products over the host's shared
  // pool (claim-based drain, so a request already running on a pool worker
  // cannot deadlock it). Wired before the tenant is published, as
  // SetScoringPool requires.
  state->core->SetScoringPool(&pool_);
  state->admission = std::make_shared<AdmissionController>(
      options.admission.value_or(options_.default_admission));
  state->scheduler = &scheduler_;
  state->host_workers = pool_.size();

  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check under the exclusive lock: a concurrent register of the same id
  // may have won the race while this one was building.
  auto [it, inserted] = tenants_.emplace(id, std::move(state));
  if (!inserted) {
    return Status::AlreadyExists("tenant '" + id + "' is already registered");
  }
  metrics_.Attach(id, it->second->core->metrics_ptr());
  RepartitionCachesLocked();
  return Status::OK();
}

Status ServiceHost::RetireTenant(const std::string& id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + id + "' is not registered");
  }
  // Flag first, then unlink: a handle that observes the registry without
  // the tenant also observes retired==true. In-flight requests (and tasks
  // still parked in the scheduler) hold the state shared_ptr and complete
  // safely; queued tasks short-circuit to kNotFound when dispatched.
  it->second->retired.store(true, std::memory_order_release);
  metrics_.Detach(id);
  tenants_.erase(it);
  if (!tenants_.empty()) RepartitionCachesLocked();
  return Status::OK();
}

Result<TenantHandle> ServiceHost::Tenant(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + id + "' is not registered");
  }
  return TenantHandle(it->second);
}

std::vector<std::string> ServiceHost::TenantIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, _] : tenants_) ids.push_back(id);
  return ids;  // std::map iteration order: already sorted.
}

size_t ServiceHost::tenant_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tenants_.size();
}

HostStats ServiceHost::Stats() const {
  HostStats stats;
  stats.worker_threads = pool_.size();
  stats.map_cache_budget = options_.map_cache_budget;
  stats.join_cache_budget = options_.join_cache_budget;
  stats.translate_cache_budget = options_.translate_cache_budget;
  std::vector<std::shared_ptr<internal::TenantState>> states;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    stats.tenant_count = tenants_.size();
    states.reserve(tenants_.size());
    for (const auto& [_, state] : tenants_) states.push_back(state);
  }
  // Snapshot outside the registry lock: per-tenant Stats() takes the
  // tenant's QFG lock, and holding the registry across that would let one
  // tenant's writer stall every register/retire.
  stats.tenants.reserve(states.size());
  for (const auto& state : states) {
    stats.tenants.push_back(TenantStatsSnapshot(*state));
  }
  return stats;
}

void ServiceHost::RepartitionCachesLocked() {
  const size_t count = std::max<size_t>(1, tenants_.size());
  const size_t map_share =
      std::max<size_t>(1, options_.map_cache_budget / count);
  const size_t join_share =
      std::max<size_t>(1, options_.join_cache_budget / count);
  const size_t translate_share =
      std::max<size_t>(1, options_.translate_cache_budget / count);
  for (auto& [_, state] : tenants_) {
    state->core->SetCacheCapacities(map_share, join_share, translate_share);
  }
}

namespace {

/// Splits `budget` across tenants proportionally to `weights`, after
/// reserving `floor_share` of the budget as an equal per-tenant floor (so a
/// quiet tenant keeps enough cache to stay warm). Every share is >= 1.
std::vector<size_t> ProportionalShares(size_t budget,
                                       const std::vector<double>& weights,
                                       double floor_share) {
  const size_t n = weights.size();
  std::vector<size_t> shares(n, 1);
  if (n == 0) return shares;
  floor_share = std::min(1.0, std::max(0.0, floor_share));
  const double floor_each =
      floor_share * static_cast<double>(budget) / static_cast<double>(n);
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  const double remainder =
      static_cast<double>(budget) - floor_each * static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double fraction =
        total_weight > 0.0 ? weights[i] / total_weight
                           : 1.0 / static_cast<double>(n);
    shares[i] = std::max<size_t>(
        1, static_cast<size_t>(floor_each + remainder * fraction));
  }
  return shares;
}

}  // namespace

void ServiceHost::RunAdaptiveControlOnce() {
  const AdaptiveControlOptions& adaptive = options_.adaptive;
  // Exclusive registry lock: the tick must not interleave with a
  // register/retire's own equal-share repartition (the per-call work —
  // window sums and SetCapacity evictions — is small and bounded).
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tenants_.empty()) return;

  if (adaptive.repartition_cache) {
    // Weight each tenant by its trailing-1s request traffic; an idle host
    // (all zero) falls back to the 1m window, then to equal shares.
    std::vector<internal::TenantState*> states;
    std::vector<double> weights;
    states.reserve(tenants_.size());
    weights.reserve(tenants_.size());
    const auto now = MetricClock::now();
    bool any_traffic = false;
    for (auto& [_, state] : tenants_) {
      states.push_back(state.get());
      WindowedCounter& requests =
          state->core->metrics().counter(Counter::kRequests);
      uint64_t sum = requests.Sum(Window::kOneSecond, now);
      if (sum == 0) sum = requests.Sum(Window::kOneMinute, now);
      any_traffic = any_traffic || sum > 0;
      weights.push_back(static_cast<double>(sum));
    }
    if (!any_traffic) weights.assign(weights.size(), 1.0);
    const std::vector<size_t> map_shares = ProportionalShares(
        options_.map_cache_budget, weights, adaptive.cache_floor_share);
    const std::vector<size_t> join_shares = ProportionalShares(
        options_.join_cache_budget, weights, adaptive.cache_floor_share);
    const std::vector<size_t> translate_shares = ProportionalShares(
        options_.translate_cache_budget, weights, adaptive.cache_floor_share);
    for (size_t i = 0; i < states.size(); ++i) {
      states[i]->core->SetCacheCapacities(map_shares[i], join_shares[i],
                                          translate_shares[i]);
    }
  }

  if (adaptive.tune_admission) {
    for (auto& [_, state] : tenants_) {
      const AdmissionOptions& configured = state->admission->options();
      if (configured.max_inflight == 0) continue;  // Drain mode: never grow.
      const HistogramSnapshot current =
          state->core->metrics().histogram(LatencyPoint::kQueueWait).Snapshot();
      const HistogramSnapshot interval =
          current.DeltaSince(state->last_queue_wait);
      state->last_queue_wait = current;
      if (interval.count < adaptive.min_samples) continue;
      const uint64_t p99 = interval.ValueAtPercentile(0.99);
      const uint64_t target = static_cast<uint64_t>(
          std::max<int64_t>(1, adaptive.target_queue_wait_p99.count()));
      const size_t limit = state->admission->max_inflight();
      size_t next = limit;
      if (p99 > target) {
        next = std::max<size_t>(1, limit / 2);
      } else if (p99 < target / 2) {
        next = std::min(configured.max_inflight,
                        std::max<size_t>(1, limit) * 2);
      }
      if (next != limit) {
        state->admission->SetLimits(next, configured.max_queued);
      }
    }
  }
}

void ServiceHost::AdaptiveControlLoop() {
  std::unique_lock<std::mutex> lock(controller_mu_);
  while (!stop_controller_) {
    if (controller_cv_.wait_for(lock, options_.adaptive.period,
                                [this] { return stop_controller_; })) {
      return;
    }
    lock.unlock();
    RunAdaptiveControlOnce();
    lock.lock();
  }
}

}  // namespace templar::service
