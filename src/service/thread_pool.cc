#include "service/thread_pool.h"

#include <algorithm>

namespace templar::service {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  // hardware_concurrency() is allowed to return 0 ("not computable"). A pool
  // with zero workers would accept submissions that nothing ever drains —
  // every future would block forever — so always run at least one worker.
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // Task dropped; its future reports broken_promise.
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining tasks on shutdown so every future is satisfied.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace templar::service
