#ifndef TEMPLAR_SERVICE_TENANT_REGISTRY_H_
#define TEMPLAR_SERVICE_TENANT_REGISTRY_H_

/// \file tenant_registry.h
/// \brief Multi-tenant Templar serving: many (database, query-log) pairs in
/// one process, behind one worker pool and one cache-memory budget.
///
/// Templar's QFG-driven artifacts are inherently per-(database, log): a
/// tenant is one such pair, served by its own ServiceCore — so caches,
/// single-flight tables, fragment-delta invalidation, and append epochs are
/// tenant-scoped by construction; an append on tenant A can never evict or
/// stale-drop tenant B's entries, even when their schemas share relation
/// names. What tenants *share* is capacity:
///
///  - **One ThreadPool.** Async/batched requests from every tenant run on
///    the host's pool, dispatched by a FairShareScheduler (admission.h) that
///    round-robins across tenants, so a hot tenant's burst cannot bury a
///    cold tenant's queue.
///  - **Admission control.** Each tenant has in-flight and queue-depth
///    limits (AdmissionOptions); requests beyond them are rejected with a
///    typed kOverloaded Status instead of queueing without bound.
///  - **One cache budget.** HostOptions fixes the total result-cache
///    entries; the host partitions it evenly across live tenants and
///    repartitions on every register/retire (ShardedLruCache::SetCapacity).
///
/// Tenants register and retire at runtime under a shared_mutex registry.
/// Handles are shared_ptr-backed: a retire removes the tenant from the
/// registry and fails *new* requests with kNotFound, while requests already
/// admitted (or holding a handle mid-call) complete safely against the
/// still-alive core — the state is destroyed when the last handle and the
/// last queued task drop it.

#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "service/admission.h"
#include "service/metrics.h"
#include "service/service_stats.h"
#include "service/templar_service.h"
#include "service/thread_pool.h"

namespace templar::service {

/// \brief Knobs of the host's measurement-driven control loop. With
/// `period == 0` (the default) the loop never runs and the host behaves
/// statically: equal cache shares per tenant, admission caps fixed at their
/// configured values. With a period set, a controller thread wakes every
/// `period` and applies both adaptations from the telemetry windows.
struct AdaptiveControlOptions {
  /// Controller wake interval; 0 disables the loop entirely.
  std::chrono::milliseconds period{0};
  /// Repartition the shared cache budgets by each tenant's share of the
  /// trailing-window request traffic (1s window, falling back to 1m, then
  /// to equal shares when the host is idle) instead of equal N-way splits.
  bool repartition_cache = true;
  /// Adapt per-tenant max_inflight from the queue-wait p99 observed since
  /// the previous controller tick: halve it when p99 exceeds
  /// `target_queue_wait_p99`, double it back toward the configured cap when
  /// p99 drops below half the target.
  bool tune_admission = true;
  /// Fraction of each cache budget reserved as an equal-share floor so a
  /// quiet tenant can never be starved to zero cache by a hot neighbour.
  double cache_floor_share = 0.10;
  /// Queue-wait p99 the admission tuner steers toward.
  std::chrono::microseconds target_queue_wait_p99{50000};
  /// Queue-wait samples required in a tick before the tuner acts (a p99 of
  /// two requests is noise, not signal).
  size_t min_samples = 8;
};

/// \brief Host-wide tunables shared by every tenant.
struct HostOptions {
  /// Shared worker threads for Async/Batch requests; 0 = hardware
  /// concurrency.
  size_t worker_threads = 4;
  /// Total result-cache entries across ALL tenants, partitioned evenly and
  /// repartitioned on every register/retire.
  size_t map_cache_budget = 8192;
  size_t join_cache_budget = 8192;
  size_t translate_cache_budget = 8192;
  /// Independent lock shards per tenant cache.
  size_t cache_shards = 8;
  /// Admission limits applied to tenants that do not override them.
  AdmissionOptions default_admission;
  /// Measurement-driven cache repartitioning and admission tuning
  /// (disabled by default; see AdaptiveControlOptions).
  AdaptiveControlOptions adaptive;
};

/// \brief Per-tenant tunables (the serving knobs of ServiceOptions minus
/// the pool and cache-capacity fields, which the host owns).
struct TenantOptions {
  core::TemplarOptions templar;
  /// See ServiceOptions::invalidation.
  InvalidationPolicy invalidation = InvalidationPolicy::kPerFragment;
  /// See ServiceOptions::warm_start_path.
  std::string warm_start_path;
  /// When set, overrides the host's default_admission for this tenant
  /// (an explicit {0, 0} rejects every request — drain mode).
  std::optional<AdmissionOptions> admission;
  /// See ServiceOptions::replication. A tenant with a log_dir is durably
  /// replicated (or, with `follower` set, tails another process's log).
  ReplicationOptions replication;
};

namespace internal {
struct TenantState;
}  // namespace internal

/// \brief A client-side handle to one registered tenant. Cheap to copy;
/// safe to use from any thread. All request traffic — sync, async, batched,
/// and appends — routes through a handle, so it is admission-checked and
/// tenant-scoped. After the tenant is retired, every method fails fast with
/// kNotFound (requests already in flight still complete).
class TenantHandle {
 public:
  TenantHandle() = default;

  /// \brief The registry id this handle serves.
  const std::string& id() const;
  /// \brief False once the tenant has been retired from its host.
  bool alive() const;

  /// \name Typed envelope API (admission-gated)
  ///@{

  /// \brief Synchronous Translate on the caller's thread.
  Result<QueryResponse> Translate(const QueryRequest& request) const;

  /// \brief Asynchronous Translate on the shared pool, fair-share
  /// scheduled. A request already past its deadline (or already cancelled)
  /// at submission returns a ready future with the typed status *without*
  /// entering the admission queue or occupying a worker; one expiring while
  /// queued is rejected at dispatch before any pipeline work.
  /// QueryResponse::timings.queue reports the time parked in the queue.
  std::future<Result<QueryResponse>> TranslateAsync(QueryRequest request)
      const;

  /// \brief Batched Translate over the shared pool; results positionally
  /// aligned, with per-element kOverloaded on admission rejection.
  std::vector<Result<QueryResponse>> TranslateBatch(
      const std::vector<QueryRequest>& requests) const;
  ///@}

  /// \name Legacy synchronous request API (caller's thread; admission-gated)
  ///@{
  Result<std::vector<core::Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq) const;
  Result<std::vector<graph::JoinPath>> InferJoins(
      const std::vector<std::string>& relation_bag) const;
  ///@}

  /// \name Legacy asynchronous request API (shared pool, fair-share
  /// scheduled)
  /// A rejected submission returns an already-satisfied future holding
  /// kOverloaded.
  ///@{
  std::future<Result<std::vector<core::Configuration>>> MapKeywordsAsync(
      nlq::ParsedNlq nlq) const;
  std::future<Result<std::vector<graph::JoinPath>>> InferJoinsAsync(
      std::vector<std::string> relation_bag) const;
  ///@}

  /// \name Legacy batched request API
  /// Fans out over the shared pool; results are positionally aligned with
  /// the inputs, with per-element kOverloaded on admission rejection.
  ///@{
  std::vector<Result<std::vector<core::Configuration>>> MapKeywordsBatch(
      const std::vector<nlq::ParsedNlq>& nlqs) const;
  std::vector<Result<std::vector<graph::JoinPath>>> InferJoinsBatch(
      const std::vector<std::vector<std::string>>& relation_bags) const;
  ///@}

  /// \brief Tenant-scoped online ingestion: sweeps only THIS tenant's
  /// caches (see ServiceCore::AppendLogQueries).
  Result<AppendOutcome> AppendLogQueries(
      const std::vector<std::string>& sql_entries) const;

  /// \brief Checkpoints this tenant's QFG (see ServiceCore::SaveSnapshot).
  Status SaveSnapshot(const std::string& path) const;

  /// \name Replication control plane (see ServiceCore)
  /// Not admission-gated, tenant-scoped by construction.
  ///@{
  /// \brief One follower catch-up pass; returns the applied epoch.
  Result<uint64_t> SyncWithLog() const;
  /// \brief Drains the log and turns this follower into the writer.
  Status Promote() const;
  /// \brief Folds this tenant's delta log into a fresh base snapshot.
  Status CompactLog() const;
  /// \brief True while this tenant rejects appends as a read-only replica.
  bool is_follower() const;
  ///@}

  /// \brief This tenant's counters: cache hit rates, append epoch, and
  /// admission admitted/rejected/queued.
  ServiceStats Stats() const;

  /// \brief This tenant's live windowed telemetry (also rendered through
  /// the host's MetricsRegistry). Precondition: non-empty handle; valid for
  /// the life of the handle, including after a retire.
  TenantMetrics& metrics() const;

  /// \brief This tenant's current append epoch.
  uint64_t epoch() const;

 private:
  friend class ServiceHost;
  explicit TenantHandle(std::shared_ptr<internal::TenantState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::TenantState> state_;
};

/// \brief Owns N tenants, the worker pool and fair-share scheduler they
/// share, and the partitioned cache budget. All methods are thread-safe.
class ServiceHost {
 public:
  explicit ServiceHost(HostOptions options = {});
  /// Retires every tenant, then blocks until queued tasks drain (ThreadPool
  /// destruction semantics; each parked task has a dispatch trampoline in
  /// the pool queue, so none is abandoned). A TenantHandle outliving the
  /// host stays safe to call — every request issued after destruction fails
  /// fast with kNotFound, exactly as after RetireTenant, because the
  /// shared_ptr-kept tenant state never touches the destroyed
  /// scheduler/pool once the retired flag is set. As with any C++ object,
  /// destruction must not *race* calls still executing on other threads
  /// (quiesce or join your client threads first); it is the calls that
  /// begin after the destructor that are guaranteed safe.
  ~ServiceHost();

  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  /// \brief Builds and registers a tenant under `id`. `db` and `model` must
  /// outlive the tenant. Fails with kAlreadyExists on a duplicate id; the
  /// (expensive) Templar build runs outside the registry lock, so other
  /// tenants keep serving during a register.
  Status RegisterTenant(const std::string& id, const db::Database* db,
                        const embed::SimilarityModel* model,
                        const std::vector<std::string>& query_log,
                        TenantOptions options = {});

  /// \brief Removes `id` from the registry. New requests through existing
  /// handles fail with kNotFound; admitted/in-flight requests complete
  /// safely. Fails with kNotFound when `id` is not registered.
  Status RetireTenant(const std::string& id);

  /// \brief Looks up a handle for `id` (kNotFound when absent).
  Result<TenantHandle> Tenant(const std::string& id) const;

  /// \brief Live tenant ids, sorted.
  std::vector<std::string> TenantIds() const;

  size_t tenant_count() const;
  size_t worker_threads() const { return pool_.size(); }

  /// \brief Per-tenant ServiceStats plus host shape, tenants sorted by id.
  HostStats Stats() const;

  /// \brief Registry of every live tenant's rolling windows and latency
  /// histograms (tenants attach at register, detach at retire).
  MetricsRegistry& metrics() { return metrics_; }

  /// \brief Prometheus text exposition across all live tenants, plus the
  /// `_host` aggregate row when more than one tenant is registered.
  std::string RenderMetrics() const { return metrics_.RenderPrometheus(); }

  /// \brief One synchronous tick of the adaptive controller: repartitions
  /// the cache budgets by measured traffic share and retunes admission caps
  /// from the queue-wait p99 since the previous tick, per
  /// HostOptions::adaptive (period is ignored — this IS one tick). Exposed
  /// so tests and benchmarks can drive the loop deterministically; the
  /// background controller thread calls exactly this.
  void RunAdaptiveControlOnce();

 private:
  /// Splits the host cache budget evenly over live tenants. Caller holds
  /// the registry lock (exclusively).
  void RepartitionCachesLocked();

  /// Controller thread body: RunAdaptiveControlOnce every adaptive.period
  /// until stop_controller_ is flagged.
  void AdaptiveControlLoop();

  HostOptions options_;
  FairShareScheduler scheduler_;
  MetricsRegistry metrics_;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<internal::TenantState>> tenants_;

  std::mutex controller_mu_;
  std::condition_variable controller_cv_;
  bool stop_controller_ = false;
  std::thread controller_;

  // Declared last: workers must stop before the scheduler/tenants they
  // touch are torn down.
  ThreadPool pool_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_TENANT_REGISTRY_H_
