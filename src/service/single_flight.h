#ifndef TEMPLAR_SERVICE_SINGLE_FLIGHT_H_
#define TEMPLAR_SERVICE_SINGLE_FLIGHT_H_

/// \file single_flight.h
/// \brief Per-key request coalescing: identical in-flight requests share one
/// computation.
///
/// A cache only absorbs duplicates *after* the first computation finishes;
/// under heavy concurrent traffic the expensive window is the miss itself,
/// when N clients asking the same cold key would all recompute it. The
/// single-flight table closes that window: the first caller of a key (the
/// *leader*) runs the computation, every concurrent caller of the same key
/// (a *follower*) blocks on a shared future and receives the leader's
/// result. The name and semantics follow Go's golang.org/x/sync/singleflight.
///
/// The leader removes the key before publishing the result, so a caller
/// arriving after completion starts a fresh flight rather than being served
/// an arbitrarily old value — between flights, the result cache is what
/// answers duplicates. Values must be copyable (the service coalesces
/// {Status, shared_ptr-to-results} pairs, so fan-out copies a pointer).
///
/// Scoping: keys are meaningful only within one table. Each ServiceCore
/// owns its own SingleFlight instances, so in a multi-tenant ServiceHost
/// identical request keys from different tenants never coalesce onto one
/// computation — they would otherwise serve one tenant's ranking to another
/// whenever two schemas share relation names.

#include <exception>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace templar::service {

/// \brief Groups concurrent calls per string key so each key has at most one
/// computation in flight. Thread-safe; `Value` must be copyable.
template <typename Value>
class SingleFlight {
 public:
  /// \brief The result of one Do call.
  struct Outcome {
    Value value;
    /// True when this caller was a follower served by another thread's
    /// computation; false when it ran `compute` itself.
    bool coalesced = false;
  };

  /// \brief Returns `compute()`'s value for `key`, running it on this thread
  /// if no flight for `key` exists, else waiting for the existing flight.
  ///
  /// `compute` is invoked without any SingleFlight lock held, so it may be
  /// arbitrarily slow and may itself use other keys. If it throws, the
  /// exception propagates to the leader and every waiting follower, and the
  /// flight is cleaned up.
  template <typename Fn>
  Outcome Do(const std::string& key, Fn&& compute) {
    std::promise<Value> promise;
    std::shared_future<Value> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = inflight_.try_emplace(key);
      if (inserted) {
        it->second = promise.get_future().share();
        leader = true;
      }
      flight = it->second;
    }
    if (!leader) {
      return Outcome{flight.get(), /*coalesced=*/true};
    }
    try {
      Value value = compute();
      Land(key);
      promise.set_value(value);
      return Outcome{std::move(value), /*coalesced=*/false};
    } catch (...) {
      Land(key);
      promise.set_exception(std::current_exception());
      throw;
    }
  }

  /// \brief Keys currently in flight (diagnostics; racy by nature).
  size_t InFlight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
  }

 private:
  /// Removes the key before the promise is fulfilled: once a result exists,
  /// new arrivals must consult the cache / start a fresh flight instead of
  /// attaching to a completed one.
  void Land(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<Value>> inflight_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_SINGLE_FLIGHT_H_
