#ifndef TEMPLAR_SERVICE_METRICS_H_
#define TEMPLAR_SERVICE_METRICS_H_

/// \file metrics.h
/// \brief Windowed telemetry for the serving layer: time-bucketed rolling
/// counters, per-tenant metric bundles, and a Prometheus text exporter.
///
/// ServiceStats (service_stats.h) answers "how much has happened since
/// start"; this file answers "how much is happening *now*". Every serving
/// engine (ServiceCore) owns one TenantMetrics, updated inline on the
/// request path:
///
///  - **WindowedCounter** — one event counter observed over three rolling
///    windows (1s / 1m / 1h). Each window is a ring of fixed time buckets
///    advanced lazily on every touch (read or write): stepping the ring
///    zeroes the buckets the elapsed time skipped, so a long-idle counter
///    reads zero without any background thread. One short-held mutex per
///    counter covers all three rings — increments are O(1) and readers
///    never block the request path for more than a ring advance.
///  - **LatencyHistogram** (histogram.h) — bounded-memory log-linear
///    latency distributions recorded at queue-dispatch, per-stage, and
///    end-to-end points; p50/p90/p99/p999 with a proven relative error
///    bound.
///  - **MetricsRegistry** — names live TenantMetrics and renders every
///    window and histogram as Prometheus text exposition, per tenant plus
///    a host-wide aggregate (windows sum; histograms merge bucket-wise).
///
/// All clocks are std::chrono::steady_clock; every read/write entry point
/// takes an optional explicit time point so tests can drive bucket
/// rollover and idle-gap semantics deterministically.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "service/histogram.h"

namespace templar::service {

using MetricClock = std::chrono::steady_clock;

/// \brief The three rolling windows every counter is observed over.
enum class Window : size_t {
  kOneSecond = 0,
  kOneMinute = 1,
  kOneHour = 2,
};
inline constexpr size_t kWindowCount = 3;

/// \brief Ring geometry of one window: `buckets` buckets of `width` each
/// (window length = buckets * width).
struct WindowSpec {
  MetricClock::duration width;
  size_t buckets;
  const char* label;
  double seconds;  ///< Window length, for rate computation.
};

inline constexpr std::array<WindowSpec, kWindowCount> kWindowSpecs = {{
    {std::chrono::milliseconds(50), 20, "1s", 1.0},
    {std::chrono::seconds(1), 60, "1m", 60.0},
    {std::chrono::minutes(1), 60, "1h", 3600.0},
}};

inline const WindowSpec& SpecOf(Window w) {
  return kWindowSpecs[static_cast<size_t>(w)];
}

/// \brief One event counter over the three rolling windows plus a lifetime
/// total. Thread-safe; the mutex is held only for O(ring) work.
class WindowedCounter {
 public:
  WindowedCounter() {
    for (size_t w = 0; w < kWindowCount; ++w) {
      rings_[w].buckets.assign(kWindowSpecs[w].buckets, 0);
      rings_[w].current = -1;  // First touch initializes the position.
    }
  }

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  /// \brief Counts `n` events at `now`.
  void Add(uint64_t n, MetricClock::time_point now = MetricClock::now()) {
    total_.fetch_add(n, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t w = 0; w < kWindowCount; ++w) {
      Ring& ring = rings_[w];
      AdvanceLocked(ring, kWindowSpecs[w], now);
      ring.buckets[static_cast<size_t>(ring.current) %
                   kWindowSpecs[w].buckets] += n;
    }
  }

  /// \brief Events observed within window `w` ending at `now` (the current
  /// partial bucket included).
  uint64_t Sum(Window w, MetricClock::time_point now = MetricClock::now()) {
    const size_t index = static_cast<size_t>(w);
    std::lock_guard<std::mutex> lock(mu_);
    Ring& ring = rings_[index];
    AdvanceLocked(ring, kWindowSpecs[index], now);
    uint64_t sum = 0;
    for (uint64_t b : ring.buckets) sum += b;
    return sum;
  }

  /// \brief Events per second over window `w` (Sum / window length — an
  /// underestimate while the process is younger than the window, which is
  /// the honest reading for a rate).
  double RatePerSecond(Window w,
                       MetricClock::time_point now = MetricClock::now()) {
    return static_cast<double>(Sum(w, now)) / SpecOf(w).seconds;
  }

  /// \brief All three window sums at one `now` (one lock acquisition).
  std::array<uint64_t, kWindowCount> Sums(
      MetricClock::time_point now = MetricClock::now()) {
    std::array<uint64_t, kWindowCount> sums{};
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t w = 0; w < kWindowCount; ++w) {
      Ring& ring = rings_[w];
      AdvanceLocked(ring, kWindowSpecs[w], now);
      for (uint64_t b : ring.buckets) sums[w] += b;
    }
    return sums;
  }

  /// \brief Lifetime total (monotonic, never windows out).
  uint64_t Total() const { return total_.load(std::memory_order_relaxed); }

 private:
  struct Ring {
    std::vector<uint64_t> buckets;
    int64_t current = -1;  ///< Absolute bucket number of the newest bucket.
  };

  /// Steps `ring` forward to the bucket containing `now`, zeroing every
  /// bucket the elapsed time skipped (capped at one full ring: a gap longer
  /// than the window clears everything). Time moving "backwards" across
  /// threads cannot happen under the lock (steady_clock is monotonic and
  /// the latest toucher advanced under the same mutex); an older explicit
  /// test time point simply lands in the current bucket.
  static void AdvanceLocked(Ring& ring, const WindowSpec& spec,
                            MetricClock::time_point now) {
    const int64_t target = now.time_since_epoch() / spec.width;
    if (ring.current < 0) {
      ring.current = target;
      return;
    }
    if (target <= ring.current) return;
    const int64_t steps = target - ring.current;
    if (steps >= static_cast<int64_t>(spec.buckets)) {
      ring.buckets.assign(spec.buckets, 0);
    } else {
      for (int64_t s = 1; s <= steps; ++s) {
        ring.buckets[static_cast<size_t>(ring.current + s) % spec.buckets] = 0;
      }
    }
    ring.current = target;
  }

  mutable std::mutex mu_;
  std::array<Ring, kWindowCount> rings_;
  std::atomic<uint64_t> total_{0};
};

/// \brief The windowed counters a serving engine records, in rendering
/// order.
enum class Counter : size_t {
  kRequests = 0,            ///< Envelopes entering the core (any stage).
  kMapComputations,         ///< Map-stage pipeline executions.
  kJoinComputations,        ///< Join-stage pipeline executions.
  kTranslateComputations,   ///< Full-translation pipeline executions.
  kCacheHits,               ///< Requests answered from a result cache.
  kCacheMisses,             ///< Requests that had to compute or coalesce.
  kCoalesced,               ///< Requests served by another's in-flight work.
  kRejected,                ///< Admission rejections (kOverloaded).
  kDeadlineExceeded,        ///< Typed deadline aborts.
  kCancelled,               ///< Typed cancellation aborts.
  kInvalidationSweeps,      ///< Append batches that swept the caches.
  kInvalidatedEntries,      ///< Cache entries evicted by those sweeps.
};
inline constexpr size_t kCounterCount = 12;

/// \brief Prometheus-safe metric name stem of `counter`.
const char* CounterName(Counter counter);

/// \brief Point-in-time gauges a serving engine publishes. Unlike counters,
/// a gauge's *current* value is the signal — no windowing, no totals; the
/// engine overwrites it whenever the underlying quantity changes.
enum class Gauge : size_t {
  /// Epochs a read-only follower trails the delta log it tails (0 when
  /// caught up, and always 0 on a writer). See replication/graph_log.h.
  kFollowerLagEpochs = 0,
};
inline constexpr size_t kGaugeCount = 1;

/// \brief Prometheus-safe metric name stem of `gauge`.
const char* GaugeName(Gauge gauge);

/// \brief The latency points histograms are recorded at.
enum class LatencyPoint : size_t {
  kQueueWait = 0,  ///< Admission-queue wait, recorded at dispatch.
  kMapStage,       ///< Map stage compute time (computing requests only).
  kJoinStage,      ///< Join stage compute time (computing requests only).
  kAssembleStage,  ///< SQL assembly time (computing requests only).
  kEndToEnd,       ///< Core-side end-to-end latency of served requests.
};
inline constexpr size_t kLatencyPointCount = 5;

/// \brief Prometheus-safe label value of `point`.
const char* LatencyPointName(LatencyPoint point);

/// \brief A plain copy of one engine's telemetry at a moment: every counter
/// over every window (plus lifetime totals) and every histogram. Mergeable
/// for host-level aggregation.
struct TenantMetricsSnapshot {
  /// windows[counter][window] = events in that window; totals[counter] =
  /// lifetime.
  std::array<std::array<uint64_t, kWindowCount>, kCounterCount> windows{};
  std::array<uint64_t, kCounterCount> totals{};
  std::array<uint64_t, kGaugeCount> gauges{};
  std::array<HistogramSnapshot, kLatencyPointCount> latencies;

  uint64_t WindowSum(Counter c, Window w) const {
    return windows[static_cast<size_t>(c)][static_cast<size_t>(w)];
  }
  double Rate(Counter c, Window w) const {
    return static_cast<double>(WindowSum(c, w)) / SpecOf(w).seconds;
  }
  const HistogramSnapshot& Latency(LatencyPoint p) const {
    return latencies[static_cast<size_t>(p)];
  }
  uint64_t GaugeValue(Gauge g) const { return gauges[static_cast<size_t>(g)]; }

  void MergeFrom(const TenantMetricsSnapshot& other) {
    for (size_t c = 0; c < kCounterCount; ++c) {
      for (size_t w = 0; w < kWindowCount; ++w) {
        windows[c][w] += other.windows[c][w];
      }
      totals[c] += other.totals[c];
    }
    // Gauges aggregate as max: the host-level lag is the worst replica's
    // lag, not the sum of everyone's.
    for (size_t g = 0; g < kGaugeCount; ++g) {
      gauges[g] = std::max(gauges[g], other.gauges[g]);
    }
    for (size_t p = 0; p < kLatencyPointCount; ++p) {
      latencies[p].MergeFrom(other.latencies[p]);
    }
  }
};

/// \brief One serving engine's live telemetry: the counters and histograms
/// above, recorded inline on the request path. All methods thread-safe.
class TenantMetrics {
 public:
  TenantMetrics() = default;
  TenantMetrics(const TenantMetrics&) = delete;
  TenantMetrics& operator=(const TenantMetrics&) = delete;

  void Add(Counter c, uint64_t n,
           MetricClock::time_point now = MetricClock::now()) {
    counters_[static_cast<size_t>(c)].Add(n, now);
  }

  void Record(LatencyPoint p, uint64_t micros) {
    histograms_[static_cast<size_t>(p)].Record(micros);
  }

  /// \brief Convenience for recording a duration at a latency point.
  void Record(LatencyPoint p, std::chrono::microseconds d) {
    Record(p, d.count() < 0 ? 0 : static_cast<uint64_t>(d.count()));
  }

  /// \brief Overwrites a gauge with its current value.
  void SetGauge(Gauge g, uint64_t value) {
    gauges_[static_cast<size_t>(g)].store(value, std::memory_order_relaxed);
  }
  uint64_t gauge(Gauge g) const {
    return gauges_[static_cast<size_t>(g)].load(std::memory_order_relaxed);
  }

  WindowedCounter& counter(Counter c) {
    return counters_[static_cast<size_t>(c)];
  }
  const LatencyHistogram& histogram(LatencyPoint p) const {
    return histograms_[static_cast<size_t>(p)];
  }

  /// \brief Consistent-enough copy of everything (each counter snapshots
  /// atomically; cross-counter skew is bounded by the collection walk).
  TenantMetricsSnapshot Collect(
      MetricClock::time_point now = MetricClock::now());

 private:
  std::array<WindowedCounter, kCounterCount> counters_;
  std::array<std::atomic<uint64_t>, kGaugeCount> gauges_{};
  std::array<LatencyHistogram, kLatencyPointCount> histograms_;
};

/// \brief Renders tenant snapshots (sorted by id) as Prometheus text
/// exposition: every counter's window sums and rates, every histogram's
/// quantiles/count/sum, plus a host-wide `tenant="_host"` aggregate when
/// more than one tenant is present.
std::string RenderPrometheusText(
    const std::vector<std::pair<std::string, TenantMetricsSnapshot>>&
        tenants);

/// \brief Names live TenantMetrics instances and renders them. The host
/// attaches each tenant's metrics at register and detaches at retire;
/// shared_ptr keeps a render racing a retire safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Attach(const std::string& id, std::shared_ptr<TenantMetrics> metrics);
  void Detach(const std::string& id);

  /// \brief Live ids, sorted.
  std::vector<std::string> Ids() const;

  /// \brief Snapshot of every attached tenant, sorted by id.
  std::vector<std::pair<std::string, TenantMetricsSnapshot>> CollectAll(
      MetricClock::time_point now = MetricClock::now()) const;

  /// \brief The text exporter: every window and histogram of every
  /// attached tenant plus the host aggregate.
  std::string RenderPrometheus(
      MetricClock::time_point now = MetricClock::now()) const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<TenantMetrics>> tenants_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_METRICS_H_
