#ifndef TEMPLAR_SERVICE_THREAD_POOL_H_
#define TEMPLAR_SERVICE_THREAD_POOL_H_

/// \file thread_pool.h
/// \brief A fixed-size worker pool for the Templar serving layer.
///
/// Tasks are submitted as callables and executed FIFO by a fixed set of
/// worker threads; `Submit` hands back a `std::future` for the result. The
/// pool is deliberately minimal — no work stealing, no priorities — because
/// service requests are coarse-grained (a full MAPKEYWORDS / INFERJOINS call
/// each) and fairness matters more than scheduling cleverness.

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace templar::service {

/// \brief Fixed-size FIFO thread pool. Destruction drains queued tasks
/// (every submitted future is eventually satisfied) and joins the workers.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means `hardware_concurrency()`
  /// (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `fn` and returns a future for its result. Submitting
  /// after shutdown has begun is a programming error (the task is dropped
  /// and the future holds a broken_promise).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Post([task]() { (*task)(); });
    return result;
  }

  /// \brief Fire-and-forget variant of Submit: enqueues `task` with no
  /// future (and thus no packaged_task allocation). Used by schedulers whose
  /// tasks carry their own completion signalling; after shutdown has begun
  /// the task is silently dropped, like Submit's.
  void Execute(std::function<void()> task) { Post(std::move(task)); }

  /// \brief Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// \brief Tasks currently queued (diagnostics; racy by nature).
  size_t QueueDepth() const;

 private:
  void Post(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_THREAD_POOL_H_
