#ifndef TEMPLAR_SERVICE_SERVICE_STATS_H_
#define TEMPLAR_SERVICE_SERVICE_STATS_H_

/// \file service_stats.h
/// \brief Point-in-time observability snapshots of a TemplarService, one
/// ServiceHost tenant, or a whole ServiceHost.

#include <cstdint>
#include <string>
#include <vector>

#include "service/admission.h"
#include "service/lru_cache.h"

namespace templar::service {

/// \brief A consistent snapshot of one serving engine's counters, suitable
/// for logging or a metrics endpoint. Obtained from TemplarService::Stats()
/// (tenant_id/admission stay default) or TenantHandle::Stats() (filled).
struct ServiceStats {
  /// Registry id when the engine is a ServiceHost tenant; empty standalone.
  std::string tenant_id;

  // Request counters (cumulative since service start). `translate_requests`
  // counts full NLQ->SQL envelopes; the legacy stage shims count under
  // map/join.
  uint64_t map_requests = 0;
  uint64_t join_requests = 0;
  uint64_t translate_requests = 0;

  // Single-flight coalescing: `*_computations` counts how many requests ran
  // the underlying pipeline; `*_coalesced_hits` counts requests served by
  // another thread's in-flight computation of the same key. Every request
  // lands in exactly one of {cache hit, coalesced hit, computation, control
  // abort} — but a leader whose own deadline/cancellation aborts it
  // mid-pipeline counts under BOTH a computation and an abort, so the sum
  // bounds `*_requests` from above rather than equaling it.
  uint64_t map_computations = 0;
  uint64_t join_computations = 0;
  uint64_t translate_computations = 0;
  uint64_t map_coalesced_hits = 0;
  uint64_t join_coalesced_hits = 0;
  uint64_t translate_coalesced_hits = 0;

  // Typed control aborts (any stage): requests answered kDeadlineExceeded /
  // kCancelled by the core's boundary probes.
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;

  // Result caches.
  LruCacheStats map_cache;
  LruCacheStats join_cache;
  LruCacheStats translate_cache;

  // Admission control (multi-tenant hosts only; zero standalone).
  AdmissionStats admission;

  // Online ingestion.
  uint64_t epoch = 0;              ///< Bumped once per AppendLogQueries batch.
  uint64_t append_batches = 0;
  uint64_t appended_queries = 0;   ///< Log entries folded into the QFG.
  uint64_t skipped_log_entries = 0;  ///< Unparseable entries (Build + append).

  // QFG shape at snapshot time.
  uint64_t qfg_query_count = 0;
  size_t qfg_vertices = 0;
  size_t qfg_edges = 0;

  size_t worker_threads = 0;

  std::string ToString() const;
};

namespace internal {

/// The ONE textual rendering of a ServiceStats — TenantHandle::Stats()
/// output, TemplarService::Stats() output, and every tenant block inside
/// HostStats::ToString() all come through here, so the standalone and
/// multi-tenant renderings cannot drift apart. Control aborts are always
/// printed (a zero is information: "no deadline pressure"), as is the
/// admission line whenever the engine has a gate (multi-tenant), including
/// the scheduler backlog the host fills in.
inline void AppendServiceStats(std::string& out, const ServiceStats& stats) {
  auto cache_line = [](const char* name, const LruCacheStats& c) {
    return std::string(name) + ": " + std::to_string(c.entries) + "/" +
           std::to_string(c.capacity) + " entries, " +
           std::to_string(c.hits) + " hits, " + std::to_string(c.misses) +
           " misses (" + std::to_string(c.stale_drops) + " stale), " +
           std::to_string(c.evictions) + " evictions, " +
           std::to_string(c.invalidated) + " invalidated, " +
           std::to_string(c.retained) + " retained, " +
           std::to_string(c.stale_put_drops) + " stale puts";
  };
  if (!stats.tenant_id.empty()) out += "tenant: " + stats.tenant_id + "\n";
  out += "requests: map=" + std::to_string(stats.map_requests) +
         " join=" + std::to_string(stats.join_requests) +
         " translate=" + std::to_string(stats.translate_requests) + "\n" +
         "single-flight: map_computed=" +
         std::to_string(stats.map_computations) +
         " map_coalesced=" + std::to_string(stats.map_coalesced_hits) +
         " join_computed=" + std::to_string(stats.join_computations) +
         " join_coalesced=" + std::to_string(stats.join_coalesced_hits) +
         " translate_computed=" +
         std::to_string(stats.translate_computations) +
         " translate_coalesced=" +
         std::to_string(stats.translate_coalesced_hits) + "\n";
  out += "control aborts: deadline_exceeded=" +
         std::to_string(stats.deadline_exceeded) +
         " cancelled=" + std::to_string(stats.cancelled) + "\n";
  out += cache_line("map_cache", stats.map_cache) + "\n" +
         cache_line("join_cache", stats.join_cache) + "\n" +
         cache_line("translate_cache", stats.translate_cache) + "\n";
  const AdmissionStats& adm = stats.admission;
  if (adm.max_inflight > 0 || adm.submitted > 0) {
    out += "admission: submitted=" + std::to_string(adm.submitted) +
           " admitted=" + std::to_string(adm.admitted) +
           " rejected=" + std::to_string(adm.rejected) +
           " completed=" + std::to_string(adm.completed) +
           " inflight=" + std::to_string(adm.inflight) + "/" +
           std::to_string(adm.max_inflight) +
           " queued=" + std::to_string(adm.queued) + "/" +
           std::to_string(adm.max_queued) +
           " scheduler_queued=" + std::to_string(adm.scheduler_queued) +
           "\n";
  }
  out += "ingestion: epoch=" + std::to_string(stats.epoch) +
         " batches=" + std::to_string(stats.append_batches) +
         " appended=" + std::to_string(stats.appended_queries) +
         " skipped=" + std::to_string(stats.skipped_log_entries) + "\n" +
         "qfg: " + std::to_string(stats.qfg_query_count) + " queries, " +
         std::to_string(stats.qfg_vertices) + " vertices, " +
         std::to_string(stats.qfg_edges) + " edges\n" +
         "workers: " + std::to_string(stats.worker_threads);
}

}  // namespace internal

inline std::string ServiceStats::ToString() const {
  std::string out;
  internal::AppendServiceStats(out, *this);
  return out;
}

/// \brief Snapshot of a whole ServiceHost: pool shape plus one ServiceStats
/// per live tenant (sorted by tenant id).
struct HostStats {
  size_t worker_threads = 0;
  size_t tenant_count = 0;
  /// Host-wide cache entry budgets, partitioned across tenants.
  size_t map_cache_budget = 0;
  size_t join_cache_budget = 0;
  size_t translate_cache_budget = 0;
  std::vector<ServiceStats> tenants;

  std::string ToString() const {
    std::string out = "host: " + std::to_string(tenant_count) + " tenant(s), " +
                      std::to_string(worker_threads) + " shared worker(s), " +
                      "cache budget map=" + std::to_string(map_cache_budget) +
                      " join=" + std::to_string(join_cache_budget) +
                      " translate=" + std::to_string(translate_cache_budget) +
                      "\n";
    for (const auto& tenant : tenants) {
      out += "---\n" + tenant.ToString() + "\n";
    }
    return out;
  }
};

}  // namespace templar::service

#endif  // TEMPLAR_SERVICE_SERVICE_STATS_H_
