#ifndef TEMPLAR_DB_VALUE_H_
#define TEMPLAR_DB_VALUE_H_

/// \file value.h
/// \brief Typed cell values for the in-memory relational store.

#include <cstdint>
#include <string>
#include <variant>

namespace templar::db {

/// \brief Column data types supported by the store.
enum class DataType {
  kInt,
  kDouble,
  kText,
};

/// \brief Returns "INT", "DOUBLE" or "TEXT".
const char* DataTypeToString(DataType t);

/// \brief A single cell: NULL, integer, double, or text.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value Text(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  const std::string& as_text() const { return std::get<std::string>(v_); }

  /// \brief SQL-style three-valued-free comparison used by the executor:
  /// NULL never compares equal to anything (including NULL).
  bool Equals(const Value& other) const;

  /// \brief Ordering for numeric values; text compares lexicographically.
  /// Returns <0, 0, >0; comparing NULL or mixed text/number returns 0 via
  /// `comparable()==false` — check `Comparable` first.
  int Compare(const Value& other) const;

  /// \brief True when `Compare` is meaningful for this pair.
  bool Comparable(const Value& other) const;

  /// \brief Display form; NULL prints as "NULL", text unquoted.
  std::string ToString() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr v) : v_(std::move(v)) {}
  Repr v_;
};

}  // namespace templar::db

#endif  // TEMPLAR_DB_VALUE_H_
