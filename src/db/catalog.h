#ifndef TEMPLAR_DB_CATALOG_H_
#define TEMPLAR_DB_CATALOG_H_

/// \file catalog.h
/// \brief Schema metadata: relations, attributes, and FK-PK links.
///
/// The catalog is the source from which the schema graph (Def. 1 in the
/// paper) is built, and what KEYWORDCANDS introspects when a keyword's
/// context is FROM (all relations) or SELECT (all attributes).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace templar::db {

/// \brief One attribute (column) of a relation.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kText;
  bool is_primary_key = false;
  bool fulltext_indexed = false;  ///< Text attributes searchable by FTS.

  bool operator==(const AttributeDef&) const = default;
};

/// \brief A foreign-key to primary-key link between two relations.
struct ForeignKeyDef {
  std::string from_relation;  ///< Relation holding the FK attribute.
  std::string from_attribute;
  std::string to_relation;  ///< Relation holding the referenced PK.
  std::string to_attribute;

  bool operator==(const ForeignKeyDef&) const = default;
  std::string ToString() const {
    return from_relation + "." + from_attribute + " -> " + to_relation + "." +
           to_attribute;
  }
};

/// \brief One relation (table) definition.
struct RelationDef {
  std::string name;
  std::vector<AttributeDef> attributes;

  bool operator==(const RelationDef&) const = default;

  /// \brief Finds an attribute by name; nullptr if absent.
  const AttributeDef* FindAttribute(const std::string& attr_name) const;
  /// \brief Position of an attribute; nullopt if absent.
  std::optional<size_t> AttributeIndex(const std::string& attr_name) const;
};

/// \brief The full schema of a database.
class Catalog {
 public:
  /// \brief Registers a relation. Fails if the name already exists.
  Status AddRelation(RelationDef relation);

  /// \brief Registers an FK-PK link. Both endpoints must exist.
  Status AddForeignKey(ForeignKeyDef fk);

  /// \brief Looks up a relation; nullptr if absent.
  const RelationDef* FindRelation(const std::string& name) const;

  /// \brief True iff `relation.attribute` exists.
  bool HasAttribute(const std::string& relation,
                    const std::string& attribute) const;

  const std::vector<RelationDef>& relations() const { return relations_; }
  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  /// \brief All (relation, attribute) pairs, in declaration order.
  std::vector<std::pair<std::string, std::string>> AllAttributes() const;

  /// \brief Total attribute count across relations.
  size_t attribute_count() const;

 private:
  std::vector<RelationDef> relations_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

}  // namespace templar::db

#endif  // TEMPLAR_DB_CATALOG_H_
