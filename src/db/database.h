#ifndef TEMPLAR_DB_DATABASE_H_
#define TEMPLAR_DB_DATABASE_H_

/// \file database.h
/// \brief The in-memory relational database: catalog + tables.
///
/// Stands in for the MySQL 5.7 instance of the paper's experiments. Templar
/// needs three capabilities from the DBMS: schema introspection (catalog.h),
/// executing candidate predicates for non-emptiness (executor.h), and
/// stemmed boolean full-text search (text/fulltext_index.h, attached by the
/// dataset loaders).

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "db/catalog.h"
#include "db/table.h"

namespace templar::db {

/// \brief Catalog plus row storage for every relation.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  /// \brief Creates a relation (catalog entry + empty table).
  Status CreateRelation(RelationDef def);

  /// \brief Registers an FK-PK link in the catalog.
  Status AddForeignKey(ForeignKeyDef fk) {
    return catalog_.AddForeignKey(std::move(fk));
  }

  /// \brief Inserts a row into `relation`.
  Status Insert(const std::string& relation, Row row);

  /// \brief Table lookup; nullptr when the relation does not exist.
  const Table* FindTable(const std::string& relation) const;

  const Catalog& catalog() const { return catalog_; }
  const std::string& name() const { return name_; }

  /// \brief Total row count over all relations.
  size_t total_rows() const;

  /// \brief Approximate payload size in bytes (for Table II-style stats).
  size_t ApproximateSizeBytes() const;

 private:
  std::string name_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace templar::db

#endif  // TEMPLAR_DB_DATABASE_H_
