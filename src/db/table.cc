#include "db/table.h"

namespace templar::db {

Status Table::Insert(Row row) {
  if (row.size() != def_.attributes.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(def_.attributes.size()) + " for relation '" +
        def_.name + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    const DataType t = def_.attributes[i].type;
    const bool ok = (t == DataType::kInt && v.is_int()) ||
                    (t == DataType::kDouble && v.is_numeric()) ||
                    (t == DataType::kText && v.is_text());
    if (!ok) {
      return Status::TypeError("cell " + std::to_string(i) + " ('" +
                               def_.attributes[i].name + "') of relation '" +
                               def_.name + "' expects " +
                               DataTypeToString(t) + ", got " + v.ToString());
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace templar::db
