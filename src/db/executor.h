#ifndef TEMPLAR_DB_EXECUTOR_H_
#define TEMPLAR_DB_EXECUTOR_H_

/// \file executor.h
/// \brief The minimal query-execution surface Templar relies on.
///
/// Sec. V-B of the paper scores numeric keyword mappings by executing the
/// candidate predicate against the database (`exec(c)`), keeping the
/// similarity score only when the predicate returns a non-empty result.
/// Sec. V-A's KEYWORDCANDS retrieves "all numeric attributes containing at
/// least one value that satisfies the predicate" (findNumericAttrs). This
/// executor implements both, plus small scan utilities used by dataset
/// generators and tests.

#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "sql/ast.h"

namespace templar::db {

/// \brief Evaluates `lhs op rhs` for a single cell against a SQL literal.
/// NULL cells never satisfy any predicate. LIKE supports '%' wildcards.
bool CellSatisfies(const Value& cell, sql::BinaryOp op,
                   const sql::Literal& rhs);

/// \brief Scan-based evaluation helpers over one database.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// \brief Number of rows of `relation` whose `attribute` satisfies the
  /// predicate. NotFound if the relation or attribute is missing.
  Result<size_t> CountMatching(const std::string& relation,
                               const std::string& attribute, sql::BinaryOp op,
                               const sql::Literal& rhs) const;

  /// \brief `exec(c)` from the paper: true iff at least one row satisfies
  /// the single-attribute predicate.
  Result<bool> PredicateNonEmpty(const sql::Predicate& pred) const;

  /// \brief findNumericAttrs: every numeric (relation, attribute) with at
  /// least one value satisfying `op value` (e.g. `> 2000` for "after 2000").
  std::vector<std::pair<std::string, std::string>> FindNumericAttrs(
      double value, sql::BinaryOp op) const;

  /// \brief Distinct non-null values of `relation.attribute` (scan order).
  Result<std::vector<Value>> DistinctValues(const std::string& relation,
                                            const std::string& attribute,
                                            size_t limit = 0) const;

 private:
  const Database* db_;
};

}  // namespace templar::db

#endif  // TEMPLAR_DB_EXECUTOR_H_
