#include "db/catalog.h"

namespace templar::db {

const AttributeDef* RelationDef::FindAttribute(
    const std::string& attr_name) const {
  for (const auto& a : attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

std::optional<size_t> RelationDef::AttributeIndex(
    const std::string& attr_name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name == attr_name) return i;
  }
  return std::nullopt;
}

Status Catalog::AddRelation(RelationDef relation) {
  if (FindRelation(relation.name) != nullptr) {
    return Status::AlreadyExists("relation '" + relation.name + "'");
  }
  relations_.push_back(std::move(relation));
  return Status::OK();
}

Status Catalog::AddForeignKey(ForeignKeyDef fk) {
  const RelationDef* from = FindRelation(fk.from_relation);
  const RelationDef* to = FindRelation(fk.to_relation);
  if (from == nullptr) {
    return Status::NotFound("FK source relation '" + fk.from_relation + "'");
  }
  if (to == nullptr) {
    return Status::NotFound("FK target relation '" + fk.to_relation + "'");
  }
  if (from->FindAttribute(fk.from_attribute) == nullptr) {
    return Status::NotFound("FK source attribute '" + fk.from_relation + "." +
                            fk.from_attribute + "'");
  }
  if (to->FindAttribute(fk.to_attribute) == nullptr) {
    return Status::NotFound("FK target attribute '" + fk.to_relation + "." +
                            fk.to_attribute + "'");
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

const RelationDef* Catalog::FindRelation(const std::string& name) const {
  for (const auto& r : relations_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

bool Catalog::HasAttribute(const std::string& relation,
                           const std::string& attribute) const {
  const RelationDef* r = FindRelation(relation);
  return r != nullptr && r->FindAttribute(attribute) != nullptr;
}

std::vector<std::pair<std::string, std::string>> Catalog::AllAttributes()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& r : relations_) {
    for (const auto& a : r.attributes) {
      out.emplace_back(r.name, a.name);
    }
  }
  return out;
}

size_t Catalog::attribute_count() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r.attributes.size();
  return n;
}

}  // namespace templar::db
