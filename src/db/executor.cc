#include "db/executor.h"

#include <algorithm>
#include <set>

namespace templar::db {

namespace {

/// Glob-style match where '%' matches any run of characters.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Dynamic programming over (text pos, pattern pos); inputs are short.
  const size_t n = text.size();
  const size_t m = pattern.size();
  std::vector<std::vector<bool>> dp(n + 1, std::vector<bool>(m + 1, false));
  dp[0][0] = true;
  for (size_t j = 1; j <= m; ++j) {
    if (pattern[j - 1] == '%') dp[0][j] = dp[0][j - 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (pattern[j - 1] == '%') {
        dp[i][j] = dp[i][j - 1] || dp[i - 1][j];
      } else if (pattern[j - 1] == '_' || pattern[j - 1] == text[i - 1]) {
        dp[i][j] = dp[i - 1][j - 1];
      }
    }
  }
  return dp[n][m];
}

Value LiteralToValue(const sql::Literal& lit) {
  switch (lit.kind) {
    case sql::Literal::Kind::kInt:
      return Value::Int(lit.int_value);
    case sql::Literal::Kind::kDouble:
      return Value::Double(lit.double_value);
    case sql::Literal::Kind::kString:
      return Value::Text(lit.string_value);
    default:
      return Value::Null();
  }
}

}  // namespace

bool CellSatisfies(const Value& cell, sql::BinaryOp op,
                   const sql::Literal& rhs) {
  if (cell.is_null()) return false;
  if (rhs.kind == sql::Literal::Kind::kNull ||
      rhs.kind == sql::Literal::Kind::kPlaceholder) {
    return false;
  }
  if (op == sql::BinaryOp::kLike) {
    if (!cell.is_text() || rhs.kind != sql::Literal::Kind::kString) {
      return false;
    }
    return LikeMatch(cell.as_text(), rhs.string_value);
  }
  const Value rv = LiteralToValue(rhs);
  switch (op) {
    case sql::BinaryOp::kEq:
      return cell.Equals(rv);
    case sql::BinaryOp::kNeq:
      return cell.Comparable(rv) && !cell.Equals(rv);
    case sql::BinaryOp::kLt:
      return cell.Comparable(rv) && cell.Compare(rv) < 0;
    case sql::BinaryOp::kLte:
      return cell.Comparable(rv) && cell.Compare(rv) <= 0;
    case sql::BinaryOp::kGt:
      return cell.Comparable(rv) && cell.Compare(rv) > 0;
    case sql::BinaryOp::kGte:
      return cell.Comparable(rv) && cell.Compare(rv) >= 0;
    default:
      return false;
  }
}

Result<size_t> Executor::CountMatching(const std::string& relation,
                                       const std::string& attribute,
                                       sql::BinaryOp op,
                                       const sql::Literal& rhs) const {
  const Table* table = db_->FindTable(relation);
  if (table == nullptr) return Status::NotFound("relation '" + relation + "'");
  auto idx = table->definition().AttributeIndex(attribute);
  if (!idx) {
    return Status::NotFound("attribute '" + relation + "." + attribute + "'");
  }
  size_t count = 0;
  for (const auto& row : table->rows()) {
    if (CellSatisfies(row[*idx], op, rhs)) ++count;
  }
  return count;
}

Result<bool> Executor::PredicateNonEmpty(const sql::Predicate& pred) const {
  if (pred.IsJoin()) {
    return Status::InvalidArgument(
        "PredicateNonEmpty expects a value predicate, got join condition " +
        pred.ToString());
  }
  TEMPLAR_ASSIGN_OR_RETURN(
      size_t count, CountMatching(pred.lhs.relation, pred.lhs.column, pred.op,
                                  pred.rhs_literal()));
  return count > 0;
}

std::vector<std::pair<std::string, std::string>> Executor::FindNumericAttrs(
    double value, sql::BinaryOp op) const {
  std::vector<std::pair<std::string, std::string>> out;
  const sql::Literal rhs = sql::Literal::Double(value);
  // Key columns (primary keys and both endpoints of FK-PK links) are join
  // plumbing, never the target of a user's numeric constraint; skip them,
  // matching NLIDB practice.
  std::set<std::string> key_attrs;
  for (const auto& fk : db_->catalog().foreign_keys()) {
    key_attrs.insert(fk.from_relation + "." + fk.from_attribute);
    key_attrs.insert(fk.to_relation + "." + fk.to_attribute);
  }
  for (const auto& rel : db_->catalog().relations()) {
    const Table* table = db_->FindTable(rel.name);
    for (size_t col = 0; col < rel.attributes.size(); ++col) {
      const auto& attr = rel.attributes[col];
      if (attr.type == DataType::kText) continue;
      if (attr.is_primary_key) continue;
      if (key_attrs.count(rel.name + "." + attr.name)) continue;
      bool any = false;
      for (const auto& row : table->rows()) {
        if (CellSatisfies(row[col], op, rhs)) {
          any = true;
          break;
        }
      }
      if (any) out.emplace_back(rel.name, attr.name);
    }
  }
  return out;
}

Result<std::vector<Value>> Executor::DistinctValues(
    const std::string& relation, const std::string& attribute,
    size_t limit) const {
  const Table* table = db_->FindTable(relation);
  if (table == nullptr) return Status::NotFound("relation '" + relation + "'");
  auto idx = table->definition().AttributeIndex(attribute);
  if (!idx) {
    return Status::NotFound("attribute '" + relation + "." + attribute + "'");
  }
  std::vector<Value> out;
  std::set<std::string> seen;
  for (const auto& row : table->rows()) {
    const Value& v = row[*idx];
    if (v.is_null()) continue;
    std::string key = v.ToString();
    if (seen.insert(std::move(key)).second) {
      out.push_back(v);
      if (limit > 0 && out.size() >= limit) break;
    }
  }
  return out;
}

}  // namespace templar::db
