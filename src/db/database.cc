#include "db/database.h"

namespace templar::db {

Status Database::CreateRelation(RelationDef def) {
  TEMPLAR_RETURN_NOT_OK(catalog_.AddRelation(def));
  // Copy the key before moving `def` into the table: the evaluation order of
  // the map subscript vs. the constructor argument is unspecified.
  std::string name = def.name;
  tables_[name] = std::make_unique<Table>(std::move(def));
  return Status::OK();
}

Status Database::Insert(const std::string& relation, Row row) {
  auto it = tables_.find(relation);
  if (it == tables_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  return it->second->Insert(std::move(row));
}

const Table* Database::FindTable(const std::string& relation) const {
  auto it = tables_.find(relation);
  return it == tables_.end() ? nullptr : it->second.get();
}

size_t Database::total_rows() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table->row_count();
  return n;
}

size_t Database::ApproximateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [name, table] : tables_) {
    for (const auto& row : table->rows()) {
      for (const auto& cell : row) {
        if (cell.is_null()) {
          bytes += 1;
        } else if (cell.is_text()) {
          bytes += cell.as_text().size() + 8;
        } else {
          bytes += 8;
        }
      }
    }
  }
  return bytes;
}

}  // namespace templar::db
