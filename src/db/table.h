#ifndef TEMPLAR_DB_TABLE_H_
#define TEMPLAR_DB_TABLE_H_

/// \file table.h
/// \brief Row storage for one relation.

#include <vector>

#include "common/result.h"
#include "db/catalog.h"
#include "db/value.h"

namespace templar::db {

/// \brief A row is a vector of cells aligned with the relation's attributes.
using Row = std::vector<Value>;

/// \brief In-memory row store for one relation.
class Table {
 public:
  explicit Table(RelationDef def) : def_(std::move(def)) {}

  /// \brief Appends a row after checking arity and cell types.
  Status Insert(Row row);

  const RelationDef& definition() const { return def_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  /// \brief Cell accessor; caller guarantees bounds.
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

 private:
  RelationDef def_;
  std::vector<Row> rows_;
};

}  // namespace templar::db

#endif  // TEMPLAR_DB_TABLE_H_
