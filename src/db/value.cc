#include "db/value.h"

#include <sstream>

namespace templar::db {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kText:
      return "TEXT";
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return as_double() == other.as_double();
  }
  if (is_text() && other.is_text()) return as_text() == other.as_text();
  return false;
}

bool Value::Comparable(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) return true;
  return is_text() && other.is_text();
}

int Value::Compare(const Value& other) const {
  if (!Comparable(other)) return 0;
  if (is_numeric()) {
    double a = as_double();
    double b = other.as_double();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  return as_text().compare(other.as_text()) < 0
             ? -1
             : (as_text() == other.as_text() ? 0 : 1);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::ostringstream os;
    os << as_double();
    return os.str();
  }
  return as_text();
}

}  // namespace templar::db
