#ifndef TEMPLAR_COMMON_RESULT_H_
#define TEMPLAR_COMMON_RESULT_H_

/// \file result.h
/// \brief `Result<T>`: a value or a Status, in the Arrow idiom.

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace templar {

/// \brief Holds either a successfully computed `T` or the Status explaining
/// why it could not be computed.
///
/// Use with `TEMPLAR_ASSIGN_OR_RETURN` for error propagation:
/// \code
///   TEMPLAR_ASSIGN_OR_RETURN(auto query, Parser::Parse(sql));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok());
  }
  /// Constructs a success result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  /// \brief True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// \brief The error status (OK when a value is present).
  const Status& status() const { return status_; }

  /// \brief Returns the value; must only be called when `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Returns the value, or `alternative` on error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace templar

#endif  // TEMPLAR_COMMON_RESULT_H_
