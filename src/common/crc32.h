#ifndef TEMPLAR_COMMON_CRC32_H_
#define TEMPLAR_COMMON_CRC32_H_

/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// The replication delta log frames every record with a CRC so a torn tail
/// (a crash mid-append, or a tail still being written while a follower
/// polls) is detected and dropped instead of corrupting a replica. No
/// external dependency: the table is built once at first use.

#include <cstddef>
#include <cstdint>

namespace templar {

/// \brief CRC-32 of `data[0..len)`, continuing from `seed` (pass 0 to start;
/// chain calls by passing the previous return value).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace templar

#endif  // TEMPLAR_COMMON_CRC32_H_
