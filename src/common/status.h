#ifndef TEMPLAR_COMMON_STATUS_H_
#define TEMPLAR_COMMON_STATUS_H_

/// \file status.h
/// \brief Error propagation without exceptions, in the Arrow/RocksDB idiom.
///
/// All fallible operations in the library return a `Status` (or a
/// `Result<T>`, see result.h). The `RETURN_NOT_OK` macro propagates errors
/// up the stack.

#include <memory>
#include <string>
#include <utility>

namespace templar {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kParseError = 4,
  kTypeError = 5,
  kOutOfRange = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kIOError = 9,
  kOverloaded = 10,
  kDeadlineExceeded = 11,
  kCancelled = 12,
  kSessionExpired = 13,
};

/// \brief Returns a human-readable name for a status code (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// \brief An operation outcome: either OK, or a code plus a message.
///
/// Statuses are cheap to copy in the OK case (a null pointer). Error state is
/// heap-allocated, matching the common "errors are rare" usage pattern.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// \brief The status code; kOk when `ok()`.
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// \brief The error message; empty when `ok()`.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// \brief Formats the status as "Code: message" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeToString(state_->code);
    s += ": ";
    s += state_->msg;
    return s;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsSessionExpired() const {
    return code() == StatusCode::kSessionExpired;
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Admission-control rejection: the serving layer is at its configured
  /// in-flight or queue-depth limit. Retryable by the caller after backoff.
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  /// The request's deadline passed before (or while) it was served — in the
  /// admission queue or at a pipeline stage boundary. The partial work is
  /// discarded; retry with a fresh deadline.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The caller cancelled the request via its CancelToken. Never produced
  /// spontaneously by the service.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// A wire-protocol session idled past its TTL and was reclaimed; a late
  /// reconnect must start a fresh session (its replay state is gone).
  static Status SessionExpired(std::string msg) {
    return Status(StatusCode::kSessionExpired, std::move(msg));
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;
};

}  // namespace templar

/// Propagates a non-OK Status out of the enclosing function.
#define TEMPLAR_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::templar::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

#define TEMPLAR_CONCAT_IMPL(x, y) x##y
#define TEMPLAR_CONCAT(x, y) TEMPLAR_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define TEMPLAR_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  TEMPLAR_ASSIGN_OR_RETURN_IMPL(                                      \
      TEMPLAR_CONCAT(_templar_result_, __LINE__), lhs, rexpr)

#define TEMPLAR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie();

#endif  // TEMPLAR_COMMON_STATUS_H_
