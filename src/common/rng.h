#ifndef TEMPLAR_COMMON_RNG_H_
#define TEMPLAR_COMMON_RNG_H_

/// \file rng.h
/// \brief Deterministic random number generation.
///
/// Every randomized component in the library (synthetic data, query-log
/// synthesis, fold shuffling, the NaLIR-style parser noise model) draws from
/// a seeded `Rng` so that experiments are bit-for-bit reproducible.

#include <cstdint>
#include <vector>

namespace templar {

/// \brief A small, fast, seedable PRNG (splitmix64-seeded xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// \brief Re-seeds the generator.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// \brief Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \brief True with probability `p`.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// \brief Standard-normal-ish double via sum of uniforms (Irwin-Hall, k=12).
  double NextGaussian() {
    double sum = 0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return sum - 6.0;
  }

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// \brief Picks an index according to (unnormalized) weights.
  size_t NextWeighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace templar

#endif  // TEMPLAR_COMMON_RNG_H_
