#ifndef TEMPLAR_COMMON_STRING_UTIL_H_
#define TEMPLAR_COMMON_STRING_UTIL_H_

/// \file string_util.h
/// \brief Small string helpers shared across the library.

#include <string>
#include <string_view>
#include <vector>

namespace templar {

/// \brief Returns `s` lowercased (ASCII only; the benchmarks are English).
std::string ToLower(std::string_view s);

/// \brief Returns `s` uppercased (ASCII only).
std::string ToUpper(std::string_view s);

/// \brief Removes leading and trailing whitespace.
std::string Trim(std::string_view s);

/// \brief Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Splits `s` on any whitespace run, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// \brief Splits an identifier into lowercase word tokens on '_', '.', '-'
/// and lower→upper camelCase boundaries. "domain_keyword" -> {domain,keyword}.
std::vector<std::string> SplitIdentifierWords(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief True iff `s` contains at least one ASCII digit.
bool ContainsDigit(std::string_view s);

/// \brief True iff `s` parses entirely as a (possibly signed) number.
bool IsNumber(std::string_view s);

/// \brief Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string s, std::string_view from, std::string_view to);

/// \brief Levenshtein edit distance between two strings.
size_t EditDistance(std::string_view a, std::string_view b);

/// \brief 64-bit FNV-1a hash; stable across platforms and runs, used for
/// deterministic synthetic embeddings and dataset generation.
uint64_t Fnv1aHash(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace templar

#endif  // TEMPLAR_COMMON_STRING_UTIL_H_
