#include "common/status.h"

namespace templar {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kSessionExpired:
      return "SessionExpired";
  }
  return "Unknown";
}

}  // namespace templar
