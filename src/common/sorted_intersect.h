#ifndef TEMPLAR_COMMON_SORTED_INTERSECT_H_
#define TEMPLAR_COMMON_SORTED_INTERSECT_H_

/// \file sorted_intersect.h
/// \brief Shared merge-walk intersection test over sorted ranges.

namespace templar {

/// \brief True when two sorted, deduplicated ranges share an element.
/// O(|a| + |b|), no allocation. Both ranges must be sorted ascending.
template <typename Container>
bool SortedRangesIntersect(const Container& a, const Container& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace templar

#endif  // TEMPLAR_COMMON_SORTED_INTERSECT_H_
