#ifndef TEMPLAR_COMMON_SORTED_INTERSECT_H_
#define TEMPLAR_COMMON_SORTED_INTERSECT_H_

/// \file sorted_intersect.h
/// \brief Shared intersection test over sorted ranges — the one audited
/// primitive behind cache footprint sweeps (service/lru_cache.h) and
/// fragment-delta tests (qfg/fragment_delta.h).
///
/// Two strategies, picked by size skew:
///  - Balanced sizes: linear merge walk, O(|a| + |b|).
///  - Skewed sizes (one side >= kGallopSkewRatio x the other): galloping —
///    for each element of the small side, advance through the large side by
///    doubling probes then binary-search the bracketed window. O(|small| *
///    log |large|), which wins when a handful of delta fingerprints are
///    tested against a broad footprint (or vice versa).

#include <algorithm>
#include <cstddef>
#include <iterator>

namespace templar {

/// Size ratio at which galloping beats the merge walk. Crossover measured
/// coarse: merge costs na+nb comparisons, galloping ~na*(2*log2(nb)); 8x
/// with the log factor leaves comfortable margin either side.
inline constexpr size_t kGallopSkewRatio = 8;

namespace internal {

/// True when some element of [sb, se) (small side) occurs in [lb, le)
/// (large side). Both ranges sorted ascending; random-access iterators.
template <typename It>
bool GallopIntersect(It sb, It se, It lb, It le) {
  for (; sb != se && lb != le; ++sb) {
    // Gallop: find the window [lb + step/2, lb + step] bracketing *sb.
    size_t step = 1;
    const size_t remaining = static_cast<size_t>(le - lb);
    while (step < remaining && *(lb + step) < *sb) step <<= 1;
    It window_end = lb + std::min(step, remaining);
    lb = std::lower_bound(lb + (step >> 1), window_end, *sb);
    if (lb != le && !(*sb < *lb)) return true;
  }
  return false;
}

}  // namespace internal

/// \brief True when two sorted, deduplicated ranges share an element.
/// No allocation. Both ranges must be sorted ascending; the containers must
/// offer random-access iterators (vectors in every current caller).
template <typename Container>
bool SortedRangesIntersect(const Container& a, const Container& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  const size_t na = static_cast<size_t>(std::distance(ia, a.end()));
  const size_t nb = static_cast<size_t>(std::distance(ib, b.end()));
  if (na == 0 || nb == 0) return false;
  if (na * kGallopSkewRatio <= nb) {
    return internal::GallopIntersect(ia, a.end(), ib, b.end());
  }
  if (nb * kGallopSkewRatio <= na) {
    return internal::GallopIntersect(ib, b.end(), ia, a.end());
  }
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace templar

#endif  // TEMPLAR_COMMON_SORTED_INTERSECT_H_
