#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace templar {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitIdentifierWords(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = s[i];
    if (c == '_' || c == '.' || c == '-' || c == ' ') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      continue;
    }
    if (std::isupper(c) && i > 0 &&
        std::islower(static_cast<unsigned char>(s[i - 1]))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    }
    cur.push_back(static_cast<char>(std::tolower(c)));
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsDigit(std::string_view s) {
  return std::any_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool IsNumber(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') i = 1;
  if (i == s.size()) return false;
  bool seen_digit = false;
  bool seen_dot = false;
  for (; i < s.size(); ++i) {
    unsigned char c = s[i];
    if (std::isdigit(c)) {
      seen_digit = true;
    } else if (c == '.' && !seen_dot) {
      seen_dot = true;
    } else {
      return false;
    }
  }
  return seen_digit;
}

std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

uint64_t Fnv1aHash(std::string_view s, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace templar
