#include "embed/embedding_model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace templar::embed {

double Cosine(const Vector& a, const Vector& b) {
  if (a.size() != b.size() || a.empty()) return 0;
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

EmbeddingModel::EmbeddingModel(size_t dims, uint64_t seed)
    : dims_(dims), seed_(seed) {}

std::string EmbeddingModel::PairKey(std::string_view a, std::string_view b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (lb < la) std::swap(la, lb);
  return la + "\x1f" + lb;
}

void EmbeddingModel::AddSynonym(std::string_view a, std::string_view b,
                                double similarity) {
  synonyms_[PairKey(a, b)] = similarity;
  // Also index the stemmed pair so inflected forms ("papers", "reviews")
  // inherit the entry; the raw entry wins on exact lookup.
  std::string sa = text::PorterStem(ToLower(a));
  std::string sb = text::PorterStem(ToLower(b));
  synonyms_.emplace(PairKey(sa, sb), similarity);
}

Vector EmbeddingModel::WordVector(std::string_view word) const {
  // Character n-gram (n = 2..4) hashed random projection: each n-gram
  // deterministically contributes a +-1 pattern across the dimensions.
  // Morphologically close words share n-grams, hence direction.
  std::string w = "<" + ToLower(word) + ">";
  Vector v(dims_, 0.0f);
  for (size_t n = 2; n <= 4; ++n) {
    if (w.size() < n) break;
    for (size_t i = 0; i + n <= w.size(); ++i) {
      uint64_t h = Fnv1aHash(std::string_view(w).substr(i, n), seed_);
      for (size_t d = 0; d < dims_; ++d) {
        // Two independent bits per dimension via multiplicative re-hash.
        uint64_t bit = (h * (d * 2 + 3) * 0x9e3779b97f4a7c15ULL) >> 63;
        v[d] += bit ? 1.0f : -1.0f;
      }
    }
  }
  return v;
}

double EmbeddingModel::WordSimilarity(std::string_view a,
                                      std::string_view b) const {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la == lb) return 1.0;

  // Stems equal (papers vs paper) counts as an exact lexical match.
  if (text::PorterStem(la) == text::PorterStem(lb)) return 0.98;

  auto it = synonyms_.find(PairKey(la, lb));
  if (it != synonyms_.end()) return it->second;

  // Also honor lexicon entries between stems, so "papers" inherits the
  // curated similarities of "paper".
  auto it2 = synonyms_.find(PairKey(text::PorterStem(la), text::PorterStem(lb)));
  if (it2 != synonyms_.end()) return it2->second;

  double cos = Cosine(WordVector(la), WordVector(lb));
  // Normalize [-1,1] -> [0,1] as Pipeline does with word2vec cosines, then
  // compress: unrelated random words have cosine near 0 (-> 0.5), which
  // would drown curated signals; squash toward [0, ~0.45] while preserving
  // order so morphological overlap still ranks candidates.
  double normalized = (cos + 1.0) / 2.0;
  return 0.9 * normalized * normalized;
}

double EmbeddingModel::PhraseSimilarity(std::string_view a,
                                        std::string_view b) const {
  std::vector<std::string> ta = text::Tokenize(a);
  std::vector<std::string> tb = text::Tokenize(b);
  // Drop stopwords unless that would empty a side.
  auto content = [](std::vector<std::string> t) {
    std::vector<std::string> out;
    for (auto& w : t) {
      if (!text::IsStopword(w)) out.push_back(std::move(w));
    }
    return out;
  };
  std::vector<std::string> ca = content(ta);
  std::vector<std::string> cb = content(tb);
  if (ca.empty()) ca = std::move(ta);
  if (cb.empty()) cb = std::move(tb);
  if (ca.empty() || cb.empty()) return 0;

  // Greedy best-match alignment, averaged over the left side; symmetric by
  // taking the mean of both directions.
  auto directional = [this](const std::vector<std::string>& xs,
                            const std::vector<std::string>& ys) {
    double total = 0;
    for (const auto& x : xs) {
      double best = 0;
      for (const auto& y : ys) {
        best = std::max(best, WordSimilarity(x, y));
      }
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return 0.5 * (directional(ca, cb) + directional(cb, ca));
}

}  // namespace templar::embed
