#ifndef TEMPLAR_EMBED_EMBEDDING_MODEL_H_
#define TEMPLAR_EMBED_EMBEDDING_MODEL_H_

/// \file embedding_model.h
/// \brief Word-similarity model substituting for word2vec / GloVe.
///
/// The paper scores keyword-to-fragment mappings with cosine similarity from
/// a pretrained word2vec model (Google News corpus), normalized from [-1,1]
/// to [0,1]. That model is proprietary and several gigabytes; this offline
/// reproduction substitutes a hybrid (documented in DESIGN.md):
///
///  1. A curated synonym lexicon covering the benchmark vocabulary, built by
///     the dataset definitions. Crucially it encodes the *ambiguities* the
///     paper's running example depends on (e.g. "papers" is similar to both
///     `journal` and `publication`), so the baseline Pipeline system fails
///     in the same way the paper reports and Templar's QFG score has real
///     errors to correct.
///  2. Deterministic char-n-gram hashed random-projection vectors for
///     everything else, giving a dense fallback similarity that rewards
///     morphological overlap (the same reason fastText-style subword models
///     work).
///
/// Phrase similarity follows common practice with word2vec: average the
/// word vectors of the content tokens on each side, then cosine.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "embed/similarity_model.h"

namespace templar::embed {

/// \brief Dense word vector.
using Vector = std::vector<float>;

/// \brief Cosine similarity of two vectors; 0 when either has zero norm.
double Cosine(const Vector& a, const Vector& b);

/// \brief Word-vector store with synonym-lexicon overrides.
class EmbeddingModel : public SimilarityModel {
 public:
  /// \param dims dimensionality of the synthetic vectors.
  /// \param seed namespace for the hashed projections (changing it yields an
  ///        unrelated but equally structured model).
  explicit EmbeddingModel(size_t dims = 64, uint64_t seed = 0x7e3a91);

  /// \brief Declares that two words are related with the given similarity in
  /// [0,1]. Symmetric. Also used with a == b to mark exact-match synonyms.
  void AddSynonym(std::string_view a, std::string_view b, double similarity);

  /// \brief Similarity of two single words in [0, 1].
  ///
  /// Order of precedence: identical words -> 1.0; curated synonym entry ->
  /// its value; otherwise the cosine of the synthetic vectors, affinely
  /// mapped from [-1,1] to [0,1] exactly as Pipeline normalizes word2vec
  /// cosines (Sec. VII-A2), then damped toward 0.5-centered noise so
  /// unrelated words sit near the middle-low range.
  double WordSimilarity(std::string_view a, std::string_view b) const override;

  /// \brief Similarity of two phrases in [0,1]: greedy best-match alignment
  /// of content tokens (each left token paired with its best right token),
  /// averaged; mirrors how NLIDBs compare multi-word keywords to multi-word
  /// schema names.
  double PhraseSimilarity(std::string_view a,
                          std::string_view b) const override;

  /// \brief The synthetic vector for a word (lexicon-independent).
  Vector WordVector(std::string_view word) const;

  /// \brief Number of curated synonym pairs.
  size_t synonym_count() const { return synonyms_.size(); }

 private:
  static std::string PairKey(std::string_view a, std::string_view b);

  size_t dims_;
  uint64_t seed_;
  std::unordered_map<std::string, double> synonyms_;
};

}  // namespace templar::embed

#endif  // TEMPLAR_EMBED_EMBEDDING_MODEL_H_
