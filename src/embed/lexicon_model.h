#ifndef TEMPLAR_EMBED_LEXICON_MODEL_H_
#define TEMPLAR_EMBED_LEXICON_MODEL_H_

/// \file lexicon_model.h
/// \brief WordNet-style lexical similarity (the NaLIR/Precise column of
/// Table I).
///
/// WordNet-based NLIDBs treat similarity nearly binarily: a word either
/// shares a synset with the target (synonym) or it does not, with lexical
/// overlap as a weak fallback. This model wraps the same curated synonym
/// lexicon as EmbeddingModel but thresholds it: entries at or above
/// `synset_threshold` count as synonyms (fixed high similarity), weaker
/// entries are invisible — which is precisely why lexicon systems are more
/// precise but lower-recall than embedding systems, reproducing the mixed
/// NaLIR-vs-Pipeline baseline ordering of Table III.

#include "embed/embedding_model.h"
#include "embed/similarity_model.h"

namespace templar::embed {

/// \brief Thresholded, lexicon-only similarity.
class LexiconModel : public SimilarityModel {
 public:
  /// \param base the shared lexicon (its synthetic vectors are ignored).
  /// \param synset_threshold lexicon entries >= this count as synonyms.
  /// \param synonym_score similarity assigned to a synonym hit.
  explicit LexiconModel(const EmbeddingModel* base,
                        double synset_threshold = 0.70,
                        double synonym_score = 0.85)
      : base_(base),
        synset_threshold_(synset_threshold),
        synonym_score_(synonym_score) {}

  double WordSimilarity(std::string_view a, std::string_view b) const override;
  double PhraseSimilarity(std::string_view a,
                          std::string_view b) const override;

 private:
  const EmbeddingModel* base_;
  double synset_threshold_;
  double synonym_score_;
};

}  // namespace templar::embed

#endif  // TEMPLAR_EMBED_LEXICON_MODEL_H_
