#ifndef TEMPLAR_EMBED_SIMILARITY_MODEL_H_
#define TEMPLAR_EMBED_SIMILARITY_MODEL_H_

/// \file similarity_model.h
/// \brief Abstract word/phrase similarity interface.
///
/// Table I of the paper shows NLIDBs using different similarity sources:
/// word embeddings (word2vec/GloVe) for SQLizer-style systems and the
/// WordNet lexical database for NaLIR/Precise. The keyword mapper is
/// written against this interface so both styles plug in.

#include <string_view>

namespace templar::embed {

/// \brief Scores similarity of words/phrases in [0, 1].
class SimilarityModel {
 public:
  virtual ~SimilarityModel() = default;

  /// \brief Similarity of two single words in [0,1].
  virtual double WordSimilarity(std::string_view a,
                                std::string_view b) const = 0;

  /// \brief Similarity of two multi-word phrases in [0,1].
  virtual double PhraseSimilarity(std::string_view a,
                                  std::string_view b) const = 0;
};

}  // namespace templar::embed

#endif  // TEMPLAR_EMBED_SIMILARITY_MODEL_H_
