#include "embed/lexicon_model.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace templar::embed {

double LexiconModel::WordSimilarity(std::string_view a,
                                    std::string_view b) const {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la == lb) return 1.0;
  if (text::PorterStem(la) == text::PorterStem(lb)) return 0.98;

  // Lexicon probe via the shared model; EmbeddingModel returns curated
  // entries verbatim, and synthetic-vector fallbacks are capped at 0.45 by
  // construction, safely below any sensible synset threshold.
  double curated = base_->WordSimilarity(a, b);
  if (curated >= synset_threshold_) return synonym_score_;

  // Weak lexical-overlap fallback: shared prefix ratio.
  size_t common = 0;
  while (common < la.size() && common < lb.size() && la[common] == lb[common]) {
    ++common;
  }
  double denom = static_cast<double>(std::max(la.size(), lb.size()));
  double overlap = denom == 0 ? 0 : static_cast<double>(common) / denom;
  return overlap >= 0.5 ? 0.3 * overlap : 0.0;
}

double LexiconModel::PhraseSimilarity(std::string_view a,
                                      std::string_view b) const {
  std::vector<std::string> ta = text::Tokenize(a);
  std::vector<std::string> tb = text::Tokenize(b);
  auto content = [](std::vector<std::string> t) {
    std::vector<std::string> out;
    for (auto& w : t) {
      if (!text::IsStopword(w)) out.push_back(std::move(w));
    }
    return out;
  };
  std::vector<std::string> ca = content(ta);
  std::vector<std::string> cb = content(tb);
  if (ca.empty()) ca = std::move(ta);
  if (cb.empty()) cb = std::move(tb);
  if (ca.empty() || cb.empty()) return 0;

  auto directional = [this](const std::vector<std::string>& xs,
                            const std::vector<std::string>& ys) {
    double total = 0;
    for (const auto& x : xs) {
      double best = 0;
      for (const auto& y : ys) best = std::max(best, WordSimilarity(x, y));
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return 0.5 * (directional(ca, cb) + directional(cb, ca));
}

}  // namespace templar::embed
