#ifndef TEMPLAR_CORE_JOIN_PATH_GENERATOR_H_
#define TEMPLAR_CORE_JOIN_PATH_GENERATOR_H_

/// \file join_path_generator.h
/// \brief INFERJOINS (Sec. VI): log-driven join path inference.
///
/// Input: the bag B_D of relations/attributes known to be in the SQL
/// translation. Attributes are first collapsed to their parent relations;
/// duplicated instances trigger the FORK of Algorithm 4; a Steiner-tree
/// search (graph/steiner.h) over the (possibly forked) schema graph then
/// produces ranked join paths. With log weights enabled, edge weights are
///     w_L(r1, r2) = 1 - Dice(r1, r2)
/// over the QFG's FROM-fragment co-occurrences (Sec. VI-A2); otherwise every
/// edge costs 1 and the search degenerates to shortest join paths — exactly
/// the baseline Pipeline behaviour.

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/schema_graph.h"
#include "graph/steiner.h"
#include "qfg/fragment_delta.h"
#include "qfg/query_fragment_graph.h"

namespace templar::core {

/// \brief Tunables of INFERJOINS.
struct JoinPathGeneratorOptions {
  /// LogJoin toggle of Table IV: use w_L instead of unit weights.
  bool use_log_weights = true;
  /// Ranked join paths returned per request.
  size_t top_k = 3;
  /// Footprint mode. Default (false): record only the endpoint fragments of
  /// the search's *decisive* edges (JoinPath::decisive_edges) — the set
  /// whose weights decided the ranking — so caches survive appends that
  /// touch the rest of the schema. True restores the consult-everything
  /// behaviour (every relation whose w_L the search read, i.e. the whole
  /// connected component) as the conservative differential reference.
  bool consult_everything_footprint = false;
  /// Competitive margin for decisive-edge capture; forwarded to
  /// SteinerOptions::decisive_margin.
  double decisive_margin = 0.25;
  /// Cap on requested instances of one relation ("rel#7" asks for 8). Each
  /// extra instance forks the working schema graph, so an uncapped
  /// wire-supplied bag ("author#1000000") would clone the graph a million
  /// times; beyond the cap InferJoins returns InvalidArgument.
  int max_relation_instances = 8;
};

/// \brief Executes the join-path-inference side of Templar.
class JoinPathGenerator {
 public:
  /// \param schema base schema graph (unforked); must outlive the generator.
  /// \param qfg log statistics; may be null (unit weights regardless of
  ///        options).
  JoinPathGenerator(const graph::SchemaGraph* schema,
                    const qfg::QueryFragmentGraph* qfg,
                    JoinPathGeneratorOptions options = {});

  /// \brief INFERJOINS over a bag of relation instances.
  ///
  /// The bag uses instance naming: a plain name for the first instance of a
  /// relation and "rel#1", "rel#2", ... for duplicates (as produced by
  /// Configuration::RelationBag). Duplicates cause (d-1) forks of the
  /// schema graph before the Steiner search. Suffixes are parsed strictly:
  /// a non-numeric suffix ("rel#x") or an instance count beyond
  /// JoinPathGeneratorOptions::max_relation_instances is InvalidArgument,
  /// never an exception — bags arrive over the wire.
  ///
  /// When `footprint` is non-null it receives FROM-fragment fingerprints of
  /// the base relations the ranking depends on (O(1) per relation — the
  /// fragments are resolved to interned ids before the search). By default
  /// these are the *endpoints of the decisive edges* (see
  /// JoinPath::decisive_edges): an append touching neither endpoint of any
  /// decisive edge moves no weight that decided the ranking. Under
  /// `consult_everything_footprint` the footprint instead records every
  /// relation whose w_L the search read — on a connected schema nearly the
  /// whole graph, which is why that mode survives only as the differential
  /// reference. In both modes the set collapses to empty exactly when the
  /// ranking has no log dependency at all (single-terminal bags, log
  /// weights disabled, null QFG), letting those cache entries survive every
  /// append.
  Result<std::vector<graph::JoinPath>> InferJoins(
      const std::vector<std::string>& relation_bag,
      qfg::QfgFootprint* footprint = nullptr) const;

 private:
  const graph::SchemaGraph* schema_;
  const qfg::QueryFragmentGraph* qfg_;
  JoinPathGeneratorOptions options_;
};

}  // namespace templar::core

#endif  // TEMPLAR_CORE_JOIN_PATH_GENERATOR_H_
