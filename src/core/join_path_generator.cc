#include "core/join_path_generator.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/fork.h"

namespace templar::core {

namespace {

/// Strict instance-suffix parse (mirrors qfg_io's count parse): digits
/// only, no empty suffix, no trailing garbage, overflow-checked. Relation
/// bags arrive verbatim over the wire, so a throwing std::stoi here was a
/// remotely-reachable crash ("author#x", "author#99999999999999999").
Result<int> ParseInstanceSuffix(const std::string& instance, size_t pos,
                                int max_instances) {
  const std::string suffix = instance.substr(pos + 1);
  if (suffix.empty()) {
    return Status::InvalidArgument("bad relation instance '" + instance +
                                   "': empty instance suffix");
  }
  long value = 0;
  for (char c : suffix) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad relation instance '" + instance +
                                     "': non-numeric instance suffix");
    }
    value = value * 10 + (c - '0');
    // The cap doubles as the overflow guard: reject as soon as the running
    // value exceeds it rather than accumulating toward long overflow.
    if (value + 1 > max_instances) {
      return Status::InvalidArgument(
          "relation instance '" + instance + "' requests more than " +
          std::to_string(max_instances) +
          " instances of one relation (fork cap)");
    }
  }
  return static_cast<int>(value);
}

}  // namespace

JoinPathGenerator::JoinPathGenerator(const graph::SchemaGraph* schema,
                                     const qfg::QueryFragmentGraph* qfg,
                                     JoinPathGeneratorOptions options)
    : schema_(schema), qfg_(qfg), options_(options) {}

Result<std::vector<graph::JoinPath>> JoinPathGenerator::InferJoins(
    const std::vector<std::string>& relation_bag,
    qfg::QfgFootprint* footprint) const {
  if (relation_bag.empty()) {
    return Status::InvalidArgument("empty relation bag");
  }

  // Count requested instances per base relation.
  std::map<std::string, int> instances;
  for (const auto& inst : relation_bag) {
    std::string base = graph::BaseRelationName(inst);
    if (!schema_->HasRelation(base)) {
      return Status::NotFound("relation '" + base + "' not in schema");
    }
    int& n = instances[base];
    n = std::max(n, 1);
    auto pos = inst.find('#');
    if (pos != std::string::npos) {
      TEMPLAR_ASSIGN_OR_RETURN(
          int idx,
          ParseInstanceSuffix(inst, pos, options_.max_relation_instances));
      n = std::max(n, idx + 1);
    }
  }

  // Fork the graph (d-1) times per duplicated relation (Sec. VI-C).
  graph::SchemaGraph working = *schema_;
  for (const auto& [base, count] : instances) {
    for (int copy = 1; copy < count; ++copy) {
      TEMPLAR_ASSIGN_OR_RETURN(std::string instance,
                               graph::ForkRelation(&working, base, copy));
      (void)instance;
    }
  }

  graph::SteinerOptions steiner_options;
  steiner_options.top_k = options_.top_k;
  steiner_options.decisive_margin = options_.decisive_margin;

  // w_L (Sec. VI-A2) with the relation fragments resolved to interned ids
  // up front: every base relation of the (forked) working graph is
  // normalized and looked up exactly once here, so each edge relaxation
  // inside the Steiner search is one small map probe plus an id-pair Dice —
  // no FROM-fragment key construction or triple string-hash per weight
  // read. The resolution also carries the fragment's cache fingerprint,
  // which is what the footprint records when the search consults a weight.
  struct ResolvedRelation {
    qfg::FragmentId id = qfg::kInvalidFragmentId;
    qfg::FragmentFingerprint fingerprint = 0;
  };
  std::unordered_map<std::string, ResolvedRelation> relations;
  // Raw (possibly duplicated) fingerprints: the footprint sorts and dedups
  // once at Fingerprints() time, so the hot weight callback below stays a
  // pair of vector pushes instead of ordered-set inserts. Only filled in
  // consult-everything mode — the default decisive mode reads nothing in
  // the hot loop and records from JoinPath::decisive_edges after the
  // search.
  std::vector<qfg::FragmentFingerprint> consulted;
  const bool log_weights = options_.use_log_weights && qfg_ != nullptr;
  if (log_weights) {
    for (const auto& inst : working.relations()) {
      std::string base = graph::BaseRelationName(inst);
      if (relations.count(base)) continue;
      qfg::ResolvedFragment r = qfg_->Resolve(qfg::RelationFragment(base));
      relations.emplace(std::move(base),
                        ResolvedRelation{r.id, r.fingerprint});
    }
    // The Steiner solver hands the weight function base relation names of
    // the working graph's own edges, so the lookups below always hit.
    const qfg::QueryFragmentGraph* qfg = qfg_;
    const bool record =
        footprint != nullptr && options_.consult_everything_footprint;
    steiner_options.weight_fn = [qfg, &relations, &consulted, record](
                                    const std::string& a,
                                    const std::string& b) {
      auto ia = relations.find(a);
      auto ib = relations.find(b);
      if (ia == relations.end() || ib == relations.end()) {
        // Unreachable with a well-formed graph; fall back to the shim —
        // still recording the dependency, so a footprint can never
        // under-report what the search consulted.
        if (record) {
          consulted.push_back(qfg::FingerprintFragmentKey(
              qfg::RelationFragment(a).Key()));
          consulted.push_back(qfg::FingerprintFragmentKey(
              qfg::RelationFragment(b).Key()));
        }
        return 1.0 - qfg->RelationDice(a, b);
      }
      if (record) {
        consulted.push_back(ia->second.fingerprint);
        consulted.push_back(ib->second.fingerprint);
      }
      return 1.0 - qfg->Dice(ia->second.id, ib->second.id);
    };
  }

  auto paths = graph::FindJoinPaths(working, relation_bag, steiner_options);
  if (footprint != nullptr) {
    // Consult-everything reference: every weight the search read.
    for (qfg::FragmentFingerprint fingerprint : consulted) {
      footprint->AddFingerprint(fingerprint);
    }
    // Decisive mode: both endpoints of every decisive edge — an edge's w_L
    // moves iff an append touches either endpoint's FROM fragment, so this
    // is exactly the dependency set of the weights that decided the
    // ranking. Every path of one ranking carries the same set.
    if (log_weights && !options_.consult_everything_footprint && paths.ok() &&
        !paths->empty()) {
      for (const auto& edge : paths->front().decisive_edges) {
        for (const std::string& endpoint :
             {graph::BaseRelationName(edge.fk_relation),
              graph::BaseRelationName(edge.pk_relation)}) {
          auto it = relations.find(endpoint);
          if (it != relations.end()) {
            footprint->AddFingerprint(it->second.fingerprint);
          } else {
            // Unreachable with a well-formed working graph; hash the key so
            // the footprint can never under-report a dependency.
            footprint->AddKey(qfg::RelationFragment(endpoint).Key());
          }
        }
      }
    }
  }
  return paths;
}

}  // namespace templar::core
