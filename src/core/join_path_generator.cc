#include "core/join_path_generator.h"

#include <algorithm>
#include <map>
#include <set>

#include "graph/fork.h"

namespace templar::core {

JoinPathGenerator::JoinPathGenerator(const graph::SchemaGraph* schema,
                                     const qfg::QueryFragmentGraph* qfg,
                                     JoinPathGeneratorOptions options)
    : schema_(schema), qfg_(qfg), options_(options) {}

graph::EdgeWeightFn JoinPathGenerator::WeightFunction() const {
  if (!options_.use_log_weights || qfg_ == nullptr) {
    return nullptr;  // Steiner solver treats null as unit weights.
  }
  const qfg::QueryFragmentGraph* qfg = qfg_;
  return [qfg](const std::string& a, const std::string& b) {
    return 1.0 - qfg->RelationDice(a, b);
  };
}

Result<std::vector<graph::JoinPath>> JoinPathGenerator::InferJoins(
    const std::vector<std::string>& relation_bag,
    qfg::QfgFootprint* footprint) const {
  if (relation_bag.empty()) {
    return Status::InvalidArgument("empty relation bag");
  }

  // Count requested instances per base relation.
  std::map<std::string, int> instances;
  for (const auto& inst : relation_bag) {
    std::string base = graph::BaseRelationName(inst);
    if (!schema_->HasRelation(base)) {
      return Status::NotFound("relation '" + base + "' not in schema");
    }
    int& n = instances[base];
    n = std::max(n, 1);
    auto pos = inst.find('#');
    if (pos != std::string::npos) {
      int idx = std::stoi(inst.substr(pos + 1));
      n = std::max(n, idx + 1);
    }
  }

  // Fork the graph (d-1) times per duplicated relation (Sec. VI-C).
  graph::SchemaGraph working = *schema_;
  for (const auto& [base, count] : instances) {
    for (int copy = 1; copy < count; ++copy) {
      TEMPLAR_ASSIGN_OR_RETURN(std::string instance,
                               graph::ForkRelation(&working, base, copy));
      (void)instance;
    }
  }

  graph::SteinerOptions steiner_options;
  steiner_options.top_k = options_.top_k;
  steiner_options.weight_fn = WeightFunction();

  // Record which relations' Dice values the search reads by interposing on
  // the weight function. The Steiner solver hands it base relation names
  // already, so the recorded set keys directly into the QFG's FROM
  // fragments. A null weight function (unit weights) reads nothing.
  std::set<std::string> consulted;
  if (footprint != nullptr && steiner_options.weight_fn) {
    graph::EdgeWeightFn inner = std::move(steiner_options.weight_fn);
    steiner_options.weight_fn = [&consulted, inner](const std::string& a,
                                                    const std::string& b) {
      consulted.insert(a);
      consulted.insert(b);
      return inner(a, b);
    };
  }

  auto paths = graph::FindJoinPaths(working, relation_bag, steiner_options);
  if (footprint != nullptr) {
    for (const auto& relation : consulted) {
      footprint->fragment_keys.push_back(
          qfg::RelationFragment(relation).Key());
    }
  }
  return paths;
}

}  // namespace templar::core
