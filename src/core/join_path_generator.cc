#include "core/join_path_generator.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/fork.h"

namespace templar::core {

JoinPathGenerator::JoinPathGenerator(const graph::SchemaGraph* schema,
                                     const qfg::QueryFragmentGraph* qfg,
                                     JoinPathGeneratorOptions options)
    : schema_(schema), qfg_(qfg), options_(options) {}

Result<std::vector<graph::JoinPath>> JoinPathGenerator::InferJoins(
    const std::vector<std::string>& relation_bag,
    qfg::QfgFootprint* footprint) const {
  if (relation_bag.empty()) {
    return Status::InvalidArgument("empty relation bag");
  }

  // Count requested instances per base relation.
  std::map<std::string, int> instances;
  for (const auto& inst : relation_bag) {
    std::string base = graph::BaseRelationName(inst);
    if (!schema_->HasRelation(base)) {
      return Status::NotFound("relation '" + base + "' not in schema");
    }
    int& n = instances[base];
    n = std::max(n, 1);
    auto pos = inst.find('#');
    if (pos != std::string::npos) {
      int idx = std::stoi(inst.substr(pos + 1));
      n = std::max(n, idx + 1);
    }
  }

  // Fork the graph (d-1) times per duplicated relation (Sec. VI-C).
  graph::SchemaGraph working = *schema_;
  for (const auto& [base, count] : instances) {
    for (int copy = 1; copy < count; ++copy) {
      TEMPLAR_ASSIGN_OR_RETURN(std::string instance,
                               graph::ForkRelation(&working, base, copy));
      (void)instance;
    }
  }

  graph::SteinerOptions steiner_options;
  steiner_options.top_k = options_.top_k;

  // w_L (Sec. VI-A2) with the relation fragments resolved to interned ids
  // up front: every base relation of the (forked) working graph is
  // normalized and looked up exactly once here, so each edge relaxation
  // inside the Steiner search is one small map probe plus an id-pair Dice —
  // no FROM-fragment key construction or triple string-hash per weight
  // read. The resolution also carries the fragment's cache fingerprint,
  // which is what the footprint records when the search consults a weight.
  struct ResolvedRelation {
    qfg::FragmentId id = qfg::kInvalidFragmentId;
    qfg::FragmentFingerprint fingerprint = 0;
  };
  std::unordered_map<std::string, ResolvedRelation> relations;
  // Raw (possibly duplicated) fingerprints: the footprint sorts and dedups
  // once at Fingerprints() time, so the hot weight callback below stays a
  // pair of vector pushes instead of ordered-set inserts.
  std::vector<qfg::FragmentFingerprint> consulted;
  const bool log_weights = options_.use_log_weights && qfg_ != nullptr;
  if (log_weights) {
    for (const auto& inst : working.relations()) {
      std::string base = graph::BaseRelationName(inst);
      if (relations.count(base)) continue;
      qfg::ResolvedFragment r = qfg_->Resolve(qfg::RelationFragment(base));
      relations.emplace(std::move(base),
                        ResolvedRelation{r.id, r.fingerprint});
    }
    // The Steiner solver hands the weight function base relation names of
    // the working graph's own edges, so the lookups below always hit.
    const qfg::QueryFragmentGraph* qfg = qfg_;
    const bool record = footprint != nullptr;
    steiner_options.weight_fn = [qfg, &relations, &consulted, record](
                                    const std::string& a,
                                    const std::string& b) {
      auto ia = relations.find(a);
      auto ib = relations.find(b);
      if (ia == relations.end() || ib == relations.end()) {
        // Unreachable with a well-formed graph; fall back to the shim —
        // still recording the dependency, so a footprint can never
        // under-report what the search consulted.
        if (record) {
          consulted.push_back(qfg::FingerprintFragmentKey(
              qfg::RelationFragment(a).Key()));
          consulted.push_back(qfg::FingerprintFragmentKey(
              qfg::RelationFragment(b).Key()));
        }
        return 1.0 - qfg->RelationDice(a, b);
      }
      if (record) {
        consulted.push_back(ia->second.fingerprint);
        consulted.push_back(ib->second.fingerprint);
      }
      return 1.0 - qfg->Dice(ia->second.id, ib->second.id);
    };
  }

  auto paths = graph::FindJoinPaths(working, relation_bag, steiner_options);
  if (footprint != nullptr) {
    for (qfg::FragmentFingerprint fingerprint : consulted) {
      footprint->AddFingerprint(fingerprint);
    }
  }
  return paths;
}

}  // namespace templar::core
