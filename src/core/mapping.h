#ifndef TEMPLAR_CORE_MAPPING_H_
#define TEMPLAR_CORE_MAPPING_H_

/// \file mapping.h
/// \brief Query fragment mappings (Def. 4) and configurations (Def. 5).

#include <string>
#include <vector>

#include "nlq/keyword.h"
#include "qfg/fragment.h"
#include "sql/ast.h"

namespace templar::core {

/// \brief A candidate query fragment for one keyword, with the structured
/// payload the NLIDB needs to assemble SQL from a chosen configuration.
struct CandidateMapping {
  /// What the fragment denotes.
  enum class Kind {
    kRelation,   ///< FROM-context: a relation.
    kAttribute,  ///< SELECT-context: attribute, possibly aggregated/grouped.
    kPredicate,  ///< WHERE-context: `relation.attribute op literal`.
  };

  Kind kind = Kind::kAttribute;
  std::string relation;
  std::string attribute;            ///< Unused for kRelation.
  std::vector<sql::AggFunc> aggs;   ///< kAttribute only; outermost first.
  bool distinct = false;            ///< kAttribute only.
  bool group_by = false;            ///< kAttribute only.
  sql::BinaryOp op = sql::BinaryOp::kEq;  ///< kPredicate only.
  sql::Literal value;                     ///< kPredicate only.

  /// \brief The canonical query fragment (built at Full obscurity; the QFG
  /// re-obscures on lookup).
  qfg::QueryFragment fragment;

  /// \brief σ — similarity score between the keyword and this fragment.
  double similarity = 0;

  /// \brief The WHERE predicate for kPredicate candidates.
  sql::Predicate ToPredicate() const {
    sql::Predicate p;
    p.lhs = sql::ColumnRef{relation, attribute};
    p.op = op;
    p.rhs = value;
    return p;
  }

  std::string ToString() const;
};

/// \brief One keyword paired with its chosen candidate (Def. 4 triple).
struct FragmentMapping {
  nlq::AnnotatedKeyword keyword;
  CandidateMapping candidate;
};

/// \brief A configuration φ(S): one mapping per keyword, plus its scores.
struct Configuration {
  std::vector<FragmentMapping> mappings;
  double sigma_score = 0;  ///< Scoreσ — geometric mean of σ_k (Sec. V-C1).
  double qfg_score = 0;    ///< ScoreQFG — log-driven score (Sec. V-C2).
  double score = 0;        ///< λ·Scoreσ + (1-λ)·ScoreQFG.

  /// \brief Relations implied by the configuration: explicit kRelation
  /// mappings plus the parent relation of every attribute/predicate mapping.
  /// Duplicate *predicate* attributes contribute one instance each
  /// (self-join bag semantics, Sec. VI-C); attribute projections collapse.
  std::vector<std::string> RelationBag() const;

  std::string ToString() const;
};

}  // namespace templar::core

#endif  // TEMPLAR_CORE_MAPPING_H_
