#include "core/keyword_mapper.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>

#include "common/string_util.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace templar::core {

namespace {

/// Pulls the first numeric token out of a keyword: "after 2000" -> 2000.
std::optional<double> ExtractNumber(const std::string& s) {
  for (const auto& tok : SplitWhitespace(s)) {
    if (IsNumber(tok)) return std::stod(tok);
  }
  return std::nullopt;
}

/// The keyword text with numeric tokens removed (s_text in Algorithm 3).
std::string TextPart(const std::string& s) {
  std::vector<std::string> kept;
  for (const auto& tok : SplitWhitespace(s)) {
    if (!IsNumber(tok)) kept.push_back(tok);
  }
  return Join(kept, " ");
}

/// Human-comparable name of an attribute: "publication citation num".
std::string AttributePhrase(const std::string& relation,
                            const std::string& attribute) {
  return Join(SplitIdentifierWords(relation), " ") + " " +
         Join(SplitIdentifierWords(attribute), " ");
}

sql::Literal NumberLiteral(double value) {
  double rounded = std::round(value);
  if (rounded == value) {
    return sql::Literal::Int(static_cast<int64_t>(rounded));
  }
  return sql::Literal::Double(value);
}

/// The λ-blend, shared by the reference and incremental scorers. noinline
/// so both paths run the exact same instruction sequence: if the expression
/// were inlined separately into each loop, the compiler could contract the
/// multiply-add into an FMA in one and not the other, breaking the
/// byte-identity contract between the two paths on the last bit.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
double
BlendScore(double lambda, double sigma, double qfg) {
  return lambda * sigma + (1 - lambda) * qfg;
}

// ---------------------------------------------------------------------------
// Incremental configuration-scoring engine
//
// The reference scorer (QfgScoreResolved per configuration) re-reads every
// cross-keyword Dice for every configuration: O(K^2) graph lookups times up
// to max_configurations, even though consecutive odometer steps change one
// keyword's candidate and the same (candidate_i, candidate_j) id pairs
// recombine across thousands of configurations. The engine below
//
//   1. memoizes each cross-keyword candidate pair's Dice (and its SameAs
//      skip flag) once after pruning — enumeration never touches the QFG;
//   2. walks the odometer with per-pair row pointers, refreshing only the
//      rows of the digit that moved (O(pairs involving k) per step);
//   3. collects the ranking in a bounded worst-at-front heap of
//      (score, odometer index) and materializes Configuration objects only
//      for the final top_configurations winners;
//   4. optionally partitions the index space into contiguous ranges scored
//      in parallel on a caller-supplied executor, merged by a final sort.
//
// Byte-identity with the reference path is by construction, not by
// approximation: per configuration the memoized pair values are folded in
// the reference's exact (i < j) order and the σ logs in keyword order, so
// every floating-point operation sequence is the same — only redundant
// *lookups* are eliminated. (A running log-sum updated by add/subtract on
// odometer steps would be faster still, but FP addition is not associative
// and the scores would drift off the reference by ULPs; the fold keeps the
// contract exact at O(K^2) trivial flops per configuration.)
// ---------------------------------------------------------------------------

/// One memo cell: the pair's Dice and whether it contributes (pairs
/// identical after obscuring are skipped in scoring, not zeroed).
struct PairCell {
  double dice = 0;
  bool contributing = false;
};

/// The memo table of one non-FROM keyword pair (a < b in keyword order):
/// cells[i * b_size + j] covers (candidate i of a, candidate j of b).
struct PairTable {
  size_t a = 0;
  size_t b = 0;
  size_t b_size = 0;
  std::vector<PairCell> cells;
};

/// One scored configuration, identified by its odometer index alone.
struct ScoredEntry {
  double score = 0;
  double sigma = 0;
  double qfg = 0;
  uint64_t index = 0;
};

/// Strict total order "x ranks before y": descending score, ascending
/// odometer index. This is exactly the order the reference path's
/// stable_sort produces (configurations are materialized in odometer order,
/// so stability there means lower index wins ties).
bool RanksBefore(const ScoredEntry& x, const ScoredEntry& y) {
  if (x.score != y.score) return x.score > y.score;
  return x.index < y.index;
}

/// Fixed-capacity top-N collector: a worst-at-front heap under RanksBefore.
class TopNHeap {
 public:
  explicit TopNHeap(size_t capacity) : capacity_(capacity) {}

  void Offer(const ScoredEntry& entry) {
    if (capacity_ == 0) return;
    if (entries_.size() < capacity_) {
      entries_.push_back(entry);
      std::push_heap(entries_.begin(), entries_.end(), RanksBefore);
      return;
    }
    if (!RanksBefore(entry, entries_.front())) return;
    std::pop_heap(entries_.begin(), entries_.end(), RanksBefore);
    entries_.back() = entry;
    std::push_heap(entries_.begin(), entries_.end(), RanksBefore);
  }

  std::vector<ScoredEntry> Take() { return std::move(entries_); }

 private:
  size_t capacity_;
  std::vector<ScoredEntry> entries_;
};

/// Everything the enumeration workers read. Built once per call, immutable
/// while workers run (they never touch the QFG or the footprint).
struct EngineContext {
  size_t kw_count = 0;
  std::vector<size_t> sizes;                 ///< Pruned candidates/keyword.
  std::vector<std::vector<double>> log_sim;  ///< log(max(σ, 1e-9)).
  bool use_log = false;
  double lambda = 0;
  size_t top_n = 0;
  std::vector<PairTable> pairs;  ///< Non-FROM pairs, (a, b)-lexicographic.
  /// Occurrence-fallback memo for the first non-FROM keyword (the reference
  /// reads frags[0], which is that keyword's candidate in every
  /// configuration). Unused when every keyword is FROM or the log is empty.
  bool have_occ = false;
  size_t first_non_from = 0;
  std::vector<double> occ_ratio;
  std::vector<char> occ_positive;
  const std::function<Status()>* checkpoint = nullptr;
  size_t checkpoint_stride = 1;
  std::atomic<bool>* stop = nullptr;
};

/// What one worker hands back to the merge.
struct WorkerResult {
  std::vector<ScoredEntry> top;
  Status status;
  bool used_query_count = false;
  uint64_t scored = 0;
};

void DecodeIndex(uint64_t index, const std::vector<size_t>& sizes,
                 std::vector<size_t>* digits) {
  for (size_t k = 0; k < sizes.size(); ++k) {
    (*digits)[k] = static_cast<size_t>(index % sizes[k]);
    index /= sizes[k];
  }
}

/// Scores odometer indices [begin, end). Seeds its digit vector and pair
/// row pointers from `begin`, then per step refreshes only the rows whose
/// keyword digit moved — the delta part of the engine.
void ScoreRange(const EngineContext& ctx, uint64_t begin, uint64_t end,
                WorkerResult* out) {
  TopNHeap heap(ctx.top_n);
  std::vector<size_t> idx(ctx.kw_count, 0);
  DecodeIndex(begin, ctx.sizes, &idx);
  std::vector<const PairCell*> row(ctx.pairs.size());
  for (size_t p = 0; p < ctx.pairs.size(); ++p) {
    row[p] = ctx.pairs[p].cells.data() + idx[ctx.pairs[p].a] * ctx.pairs[p].b_size;
  }
  const double kw_count = static_cast<double>(ctx.kw_count);

  for (uint64_t i = begin; i < end; ++i) {
    if ((i - begin) % ctx.checkpoint_stride == 0) {
      if (ctx.stop != nullptr && ctx.stop->load(std::memory_order_relaxed)) {
        break;  // Another worker's checkpoint failed; its status wins.
      }
      if (ctx.checkpoint != nullptr && *ctx.checkpoint) {
        Status probe = (*ctx.checkpoint)();
        if (!probe.ok()) {
          out->status = std::move(probe);
          if (ctx.stop != nullptr) {
            ctx.stop->store(true, std::memory_order_relaxed);
          }
          break;
        }
      }
    }

    // Scoreσ: fold the memoized logs in keyword order — the reference
    // SigmaScore's exact summation order.
    double log_sum = 0;
    for (size_t k = 0; k < ctx.kw_count; ++k) {
      log_sum += ctx.log_sim[k][idx[k]];
    }
    const double sigma = std::exp(log_sum / kw_count);

    // ScoreQFG: fold the memoized pair cells in the reference
    // QfgScoreResolved's exact (i < j) order, same skip rule, same
    // fallback.
    double qfg = 0;
    if (ctx.use_log) {
      double product = 1;
      size_t pairs = 0;
      for (size_t p = 0; p < ctx.pairs.size(); ++p) {
        const PairCell& cell = row[p][idx[ctx.pairs[p].b]];
        if (!cell.contributing) continue;
        product *= cell.dice;
        ++pairs;
      }
      if (pairs > 0) {
        qfg = std::pow(product, 1.0 / static_cast<double>(pairs));
      } else if (ctx.have_occ) {
        qfg = ctx.occ_ratio[idx[ctx.first_non_from]];
        if (ctx.occ_positive[idx[ctx.first_non_from]]) {
          out->used_query_count = true;
        }
      }
    }
    const double score =
        ctx.use_log ? BlendScore(ctx.lambda, sigma, qfg) : sigma;
    heap.Offer(ScoredEntry{score, sigma, qfg, i});
    ++out->scored;

    // Odometer step: digits 0..carry changed; refresh exactly the pair rows
    // anchored on a changed keyword. In the common (no-carry) step that is
    // the O(K) pairs involving keyword 0.
    size_t carry = 0;
    for (; carry < ctx.kw_count; ++carry) {
      if (++idx[carry] < ctx.sizes[carry]) break;
      idx[carry] = 0;
    }
    if (i + 1 < end) {
      for (size_t p = 0; p < ctx.pairs.size(); ++p) {
        if (ctx.pairs[p].a <= carry) {
          row[p] =
              ctx.pairs[p].cells.data() + idx[ctx.pairs[p].a] * ctx.pairs[p].b_size;
        }
      }
    }
  }
  out->top = heap.Take();
}

}  // namespace

KeywordMapper::KeywordMapper(const db::Database* db,
                             const text::FulltextIndex* fts,
                             const embed::SimilarityModel* model,
                             const qfg::QueryFragmentGraph* qfg,
                             KeywordMapperOptions options)
    : db_(db), executor_(db), fts_(fts), model_(model), qfg_(qfg),
      options_(options) {}

// ---------------------------------------------------------------------------
// Algorithm 2: KEYWORDCANDS
// ---------------------------------------------------------------------------

const KeywordMapper::CatalogCache& KeywordMapper::catalog_cache() const {
  std::call_once(catalog_cache_once_, [this] {
    for (const auto& fk : db_->catalog().foreign_keys()) {
      catalog_cache_.fk_attrs.insert(fk.from_relation + "." +
                                     fk.from_attribute);
      catalog_cache_.fk_attrs.insert(fk.to_relation + "." + fk.to_attribute);
    }
    for (const auto& rel : db_->catalog().relations()) {
      for (const auto& attr : rel.attributes) {
        if (!attr.fulltext_indexed) continue;
        CatalogCache::FulltextAttr entry;
        entry.relation = rel.name;
        entry.attribute = attr.name;
        for (const auto& w : SplitIdentifierWords(rel.name)) {
          entry.name_stems.insert(text::PorterStem(w));
        }
        for (const auto& w : SplitIdentifierWords(attr.name)) {
          entry.name_stems.insert(text::PorterStem(w));
        }
        catalog_cache_.fulltext_attrs.push_back(std::move(entry));
      }
    }
  });
  return catalog_cache_;
}

std::vector<CandidateMapping> KeywordMapper::KeywordCands(
    const nlq::AnnotatedKeyword& keyword) const {
  if (ContainsDigit(keyword.text) && ExtractNumber(keyword.text)) {
    return NumericCands(keyword);
  }
  switch (keyword.metadata.context) {
    case qfg::FragmentContext::kFrom:
      return RelationCands(keyword);
    case qfg::FragmentContext::kSelect:
    case qfg::FragmentContext::kGroupBy:
    case qfg::FragmentContext::kOrderBy:
      return AttributeCands(keyword);
    default:
      return TextPredicateCands(keyword);
  }
}

std::vector<CandidateMapping> KeywordMapper::NumericCands(
    const nlq::AnnotatedKeyword& keyword) const {
  std::vector<CandidateMapping> out;
  auto number = ExtractNumber(keyword.text);
  if (!number) return out;
  sql::BinaryOp op = keyword.metadata.op.value_or(sql::BinaryOp::kEq);
  // findNumericAttrs: numeric attributes with >=1 satisfying value.
  const auto attrs = executor_.FindNumericAttrs(*number, op);
  out.reserve(attrs.size());
  for (const auto& [rel, attr] : attrs) {
    CandidateMapping c;
    c.kind = CandidateMapping::Kind::kPredicate;
    c.relation = rel;
    c.attribute = attr;
    c.op = op;
    c.value = NumberLiteral(*number);
    c.fragment = qfg::WhereFragment(c.ToPredicate(), qfg::ObscurityLevel::kFull);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<CandidateMapping> KeywordMapper::RelationCands(
    const nlq::AnnotatedKeyword&) const {
  std::vector<CandidateMapping> out;
  out.reserve(db_->catalog().relations().size());
  for (const auto& rel : db_->catalog().relations()) {
    CandidateMapping c;
    c.kind = CandidateMapping::Kind::kRelation;
    c.relation = rel.name;
    c.fragment = qfg::RelationFragment(rel.name);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<CandidateMapping> KeywordMapper::AttributeCands(
    const nlq::AnnotatedKeyword& keyword) const {
  const std::set<std::string>& fk_attrs = catalog_cache().fk_attrs;
  std::vector<CandidateMapping> out;
  size_t attr_count = 0;
  for (const auto& rel : db_->catalog().relations()) {
    attr_count += rel.attributes.size();
  }
  out.reserve(attr_count);
  for (const auto& rel : db_->catalog().relations()) {
    for (const auto& attr : rel.attributes) {
      // Key columns are join plumbing, not projection targets — except for
      // COUNT aggregates, where counting the primary key is idiomatic.
      bool is_key_attr =
          attr.is_primary_key || fk_attrs.count(rel.name + "." + attr.name) > 0;
      bool counting = !keyword.metadata.aggs.empty() &&
                      keyword.metadata.aggs.back() == sql::AggFunc::kCount;
      if (is_key_attr && !counting) continue;
      // Non-COUNT aggregates only make sense on numeric attributes.
      if (!keyword.metadata.aggs.empty() && !counting &&
          attr.type == db::DataType::kText) {
        continue;
      }
      CandidateMapping c;
      c.kind = CandidateMapping::Kind::kAttribute;
      c.relation = rel.name;
      c.attribute = attr.name;
      c.aggs = keyword.metadata.aggs;
      c.group_by = keyword.metadata.group_by;
      c.fragment = qfg::SelectFragment(rel.name, attr.name, c.aggs, c.distinct);
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::vector<CandidateMapping> KeywordMapper::TextPredicateCands(
    const nlq::AnnotatedKeyword& keyword) const {
  std::vector<CandidateMapping> out;
  std::set<std::string> seen;
  std::vector<std::string> stems = text::TokenizeAndStem(keyword.text);
  if (stems.empty()) return out;

  auto add_matches = [&](const std::vector<text::FulltextMatch>& matches) {
    out.reserve(out.size() + matches.size());
    for (const auto& m : matches) {
      std::string key = m.relation + "\x1f" + m.attribute + "\x1f" + m.value;
      if (!seen.insert(std::move(key)).second) continue;
      CandidateMapping c;
      c.kind = CandidateMapping::Kind::kPredicate;
      c.relation = m.relation;
      c.attribute = m.attribute;
      c.op = keyword.metadata.op.value_or(sql::BinaryOp::kEq);
      c.value = sql::Literal::String(m.value);
      c.fragment =
          qfg::WhereFragment(c.ToPredicate(), qfg::ObscurityLevel::kFull);
      out.push_back(std::move(c));
    }
  };

  // Global boolean search with all stemmed tokens.
  add_matches(fts_->Search(stems));

  // Sec. V-A: when a stemmed token equals the stemmed relation/attribute
  // name of a candidate attribute, drop it from the search against that
  // attribute ("movie Saving Private Ryan" on movie.title searches only
  // "saving private ryan"). The per-attribute identifier stems are catalog
  // invariants, precomputed once per mapper.
  for (const auto& entry : catalog_cache().fulltext_attrs) {
    std::vector<std::string> reduced;
    reduced.reserve(stems.size());
    for (const auto& s : stems) {
      if (!entry.name_stems.count(s)) reduced.push_back(s);
    }
    if (reduced.size() == stems.size() || reduced.empty()) continue;
    add_matches(fts_->Search(reduced, entry.relation, entry.attribute));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Algorithm 3: SCOREANDPRUNE
// ---------------------------------------------------------------------------

double KeywordMapper::ScoreCandidate(const nlq::AnnotatedKeyword& keyword,
                                     const CandidateMapping& c) const {
  if (ContainsDigit(keyword.text) &&
      c.kind == CandidateMapping::Kind::kPredicate && c.value.IsNumeric()) {
    // sim_num: execute the candidate predicate; empty result -> ε.
    auto non_empty = executor_.PredicateNonEmpty(c.ToPredicate());
    if (!non_empty.ok() || !*non_empty) return options_.epsilon;
    std::string stext = TextPart(keyword.text);
    if (text::ContentStems(stext).empty()) {
      // Nothing left to compare ("after 2000" minus op word and number):
      // neutral similarity, leaving disambiguation to the log-driven score.
      return 0.5;
    }
    return model_->PhraseSimilarity(stext, AttributePhrase(c.relation,
                                                           c.attribute));
  }

  switch (c.kind) {
    case CandidateMapping::Kind::kRelation:
      return model_->PhraseSimilarity(
          keyword.text, Join(SplitIdentifierWords(c.relation), " "));
    case CandidateMapping::Kind::kAttribute:
      return model_->PhraseSimilarity(keyword.text,
                                      AttributePhrase(c.relation, c.attribute));
    case CandidateMapping::Kind::kPredicate: {
      // Text predicate: compare against the matched value, with the
      // attribute name as secondary signal.
      double v = model_->PhraseSimilarity(
          keyword.text, c.value.kind == sql::Literal::Kind::kString
                            ? c.value.string_value
                            : c.value.ToString());
      double a = model_->PhraseSimilarity(keyword.text,
                                          AttributePhrase(c.relation,
                                                          c.attribute));
      return std::max(v, 0.85 * a);
    }
  }
  return 0;
}

std::vector<CandidateMapping> KeywordMapper::ScoreAndPrune(
    const nlq::AnnotatedKeyword& keyword,
    std::vector<CandidateMapping> candidates) const {
  for (auto& c : candidates) {
    c.similarity = ScoreCandidate(keyword, c);
  }
  // The tie-break key is a built string; most sorts never need one
  // (similarities are usually distinct), so each key is materialized lazily
  // on the first tie that actually compares it — and then cached, since a
  // tie the comparator sees once it tends to see O(log n) times. Sorting an
  // index vector keeps the (heavyweight) mappings moving exactly once.
  std::vector<std::string> keys(candidates.size());
  std::vector<char> key_built(candidates.size(), 0);
  auto key = [&](size_t i) -> const std::string& {
    if (!key_built[i]) {
      keys[i] = candidates[i].fragment.Key();
      key_built[i] = 1;
    }
    return keys[i];
  };
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (candidates[a].similarity != candidates[b].similarity) {
      return candidates[a].similarity > candidates[b].similarity;
    }
    return key(a) < key(b);
  });
  std::vector<CandidateMapping> sorted;
  sorted.reserve(candidates.size());
  for (size_t idx : order) sorted.push_back(std::move(candidates[idx]));
  candidates = std::move(sorted);

  // PRUNE: exact matches crowd out everything else.
  const double exact = 1.0 - options_.epsilon;
  if (!candidates.empty() && candidates.front().similarity >= exact) {
    std::vector<CandidateMapping> exacts;
    for (auto& c : candidates) {
      if (c.similarity >= exact) exacts.push_back(std::move(c));
    }
    return exacts;
  }
  // Otherwise top-κ, extending through ties with the κ-th (non-zero) score.
  if (candidates.size() > options_.kappa) {
    double kth = candidates[options_.kappa - 1].similarity;
    size_t cut = options_.kappa;
    while (cut < candidates.size() && kth > 0 &&
           candidates[cut].similarity == kth) {
      ++cut;
    }
    candidates.resize(cut);
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// Configuration generation and ranking
// ---------------------------------------------------------------------------

double KeywordMapper::SigmaScore(const Configuration& config) {
  if (config.mappings.empty()) return 0;
  double log_sum = 0;
  for (const auto& m : config.mappings) {
    double s = std::max(m.candidate.similarity, 1e-9);
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(config.mappings.size()));
}

double KeywordMapper::QfgScore(const Configuration& config,
                               const qfg::QueryFragmentGraph& graph,
                               bool* used_query_count) {
  // Non-FROM fragments only (Sec. V-C2): relations are implied by the rest
  // of the query and handled by join inference.
  std::vector<const qfg::QueryFragment*> frags;
  for (const auto& m : config.mappings) {
    if (m.candidate.fragment.context != qfg::FragmentContext::kFrom) {
      frags.push_back(&m.candidate.fragment);
    }
  }
  if (frags.size() >= 2) {
    double product = 1;
    size_t pairs = 0;
    for (size_t i = 0; i < frags.size(); ++i) {
      for (size_t j = i + 1; j < frags.size(); ++j) {
        // Fragments identical after obscuring (e.g. two author.name
        // predicates with different constants at NoConstOp) carry no
        // co-occurrence signal — the log cannot distinguish them from one
        // occurrence. Skip such self-pairs instead of zeroing the product.
        if (graph.Normalized(*frags[i]).Key() ==
            graph.Normalized(*frags[j]).Key()) {
          continue;
        }
        product *= graph.Dice(*frags[i], *frags[j]);
        ++pairs;
      }
    }
    // Geometric mean over the contributing pairs. (Deviation from the
    // paper's fixed 1/|φ| exponent, which makes configurations with
    // different duplicate-fragment structure incomparable: a config with
    // fewer distinct pairs would be judged on fewer <1 factors at the same
    // exponent and win spuriously. Recorded in DESIGN.md Sec. 5.)
    if (pairs > 0) {
      return std::pow(product, 1.0 / static_cast<double>(pairs));
    }
  }
  // No usable pair evidence (a single non-FROM fragment, or all fragments
  // identical after obscuring): fall back to occurrence frequency so the
  // log still votes (documented deviation; the paper leaves this case open).
  if (!frags.empty() && graph.query_count() > 0) {
    uint64_t occurrences = graph.Occurrences(*frags[0]);
    // A zero numerator stays zero however query_count grows; only a non-zero
    // ratio makes the score move on appends that miss the fragment itself.
    if (occurrences > 0 && used_query_count != nullptr) {
      *used_query_count = true;
    }
    return static_cast<double>(occurrences) /
           static_cast<double>(graph.query_count());
  }
  return 0;
}

double KeywordMapper::QfgScoreResolved(
    const std::vector<const qfg::ResolvedFragment*>& frags,
    const qfg::QueryFragmentGraph& graph, bool* used_query_count) {
  if (frags.size() >= 2) {
    double product = 1;
    size_t pairs = 0;
    for (size_t i = 0; i < frags.size(); ++i) {
      for (size_t j = i + 1; j < frags.size(); ++j) {
        // Same skip rule as QfgScore: fragments identical after obscuring
        // carry no co-occurrence signal. Interned fragments compare by id;
        // fragments the log never saw fall back to their resolved keys.
        if (frags[i]->SameAs(*frags[j])) continue;
        product *= graph.Dice(frags[i]->id, frags[j]->id);
        ++pairs;
      }
    }
    if (pairs > 0) {
      return std::pow(product, 1.0 / static_cast<double>(pairs));
    }
  }
  if (!frags.empty() && graph.query_count() > 0) {
    uint64_t occurrences = graph.Occurrences(frags[0]->id);
    if (occurrences > 0 && used_query_count != nullptr) {
      *used_query_count = true;
    }
    return static_cast<double>(occurrences) /
           static_cast<double>(graph.query_count());
  }
  return 0;
}

Result<std::vector<Configuration>> KeywordMapper::MapKeywords(
    const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint) const {
  return MapKeywords(nlq, footprint, MapKeywordsControls{});
}

Result<std::vector<Configuration>> KeywordMapper::MapKeywords(
    const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint,
    const MapKeywordsControls& controls) const {
  if (nlq.keywords.empty()) {
    return Status::InvalidArgument("NLQ has no keywords");
  }
  // Per-keyword candidate retrieval + scoring (Algorithm 1 lines 3-7).
  std::vector<std::vector<CandidateMapping>> per_keyword;
  per_keyword.reserve(nlq.keywords.size());
  for (const auto& kw : nlq.keywords) {
    std::vector<CandidateMapping> cands =
        ScoreAndPrune(kw, KeywordCands(kw));
    if (cands.empty()) {
      return Status::NotFound("no candidate mappings for keyword '" +
                              kw.text + "'");
    }
    per_keyword.push_back(std::move(cands));
  }

  // Resolve every pruned candidate's fragment against the QFG exactly once:
  // one normalize + one intern lookup here, then configuration scoring is
  // pure id arithmetic — no per-pair string builds or string-hash probes.
  // FROM fragments are excluded from ScoreQFG (Sec. V-C2) and are never
  // resolved. The footprint union is recorded here, identically for the
  // reference and incremental paths (every configuration draws its
  // fragments from the pruned candidates, so their union bounds what
  // scoring can consult).
  const bool use_log = options_.use_qfg && qfg_ != nullptr;
  std::vector<std::vector<qfg::ResolvedFragment>> resolved;
  if (use_log) {
    resolved.resize(per_keyword.size());
    for (size_t k = 0; k < per_keyword.size(); ++k) {
      resolved[k].resize(per_keyword[k].size());
      for (size_t i = 0; i < per_keyword[k].size(); ++i) {
        const CandidateMapping& c = per_keyword[k][i];
        if (c.fragment.context == qfg::FragmentContext::kFrom) continue;
        resolved[k][i] = qfg_->Resolve(c.fragment);
        if (footprint != nullptr) {
          footprint->AddFingerprint(resolved[k][i].fingerprint);
        }
      }
    }
  }

  const size_t kw_count = per_keyword.size();

  // The incremental engine assumes each keyword's candidates share one
  // FROM/non-FROM context — true by construction (each keyword's candidates
  // come from exactly one generator). Verify anyway; a mixed keyword would
  // silently mis-batch pairs, so it falls back to the reference scorer.
  bool uniform_context = true;
  std::vector<char> keyword_is_from(kw_count, 0);
  for (size_t k = 0; k < kw_count && uniform_context; ++k) {
    const bool is_from = per_keyword[k][0].fragment.context ==
                         qfg::FragmentContext::kFrom;
    keyword_is_from[k] = is_from ? 1 : 0;
    for (const auto& c : per_keyword[k]) {
      if ((c.fragment.context == qfg::FragmentContext::kFrom) != is_from) {
        uniform_context = false;
        break;
      }
    }
  }

  if (options_.reference_scoring || !uniform_context) {
    // ----- Reference path: the original full-recompute scorer. Kept as the
    // differential oracle (the incremental engine must match it byte for
    // byte) and as an escape hatch. Ignores MapKeywordsControls.
    std::vector<Configuration> configs;
    std::vector<std::vector<const qfg::ResolvedFragment*>> config_fragments;
    std::vector<size_t> index(per_keyword.size(), 0);
    while (configs.size() < options_.max_configurations) {
      Configuration config;
      config.mappings.reserve(per_keyword.size());
      std::vector<const qfg::ResolvedFragment*> fragments;
      for (size_t k = 0; k < per_keyword.size(); ++k) {
        const CandidateMapping& candidate = per_keyword[k][index[k]];
        if (use_log &&
            candidate.fragment.context != qfg::FragmentContext::kFrom) {
          fragments.push_back(&resolved[k][index[k]]);
        }
        config.mappings.push_back(FragmentMapping{nlq.keywords[k], candidate});
      }
      configs.push_back(std::move(config));
      if (use_log) config_fragments.push_back(std::move(fragments));
      // Odometer increment.
      size_t k = 0;
      for (; k < index.size(); ++k) {
        if (++index[k] < per_keyword[k].size()) break;
        index[k] = 0;
      }
      if (k == index.size()) break;
    }

    for (size_t i = 0; i < configs.size(); ++i) {
      Configuration& config = configs[i];
      config.sigma_score = SigmaScore(config);
      config.qfg_score =
          use_log ? QfgScoreResolved(config_fragments[i], *qfg_,
                                     footprint
                                         ? &footprint->query_count_sensitive
                                         : nullptr)
                  : 0;
      config.score = use_log ? BlendScore(options_.lambda, config.sigma_score,
                                          config.qfg_score)
                             : config.sigma_score;
    }
    std::stable_sort(configs.begin(), configs.end(),
                     [](const Configuration& a, const Configuration& b) {
                       return a.score > b.score;
                     });
    if (configs.size() > options_.top_configurations) {
      configs.resize(options_.top_configurations);
    }
    return configs;
  }

  // ----- Incremental engine (see the file-local comment block above).

  EngineContext ctx;
  ctx.kw_count = kw_count;
  ctx.use_log = use_log;
  ctx.lambda = options_.lambda;
  ctx.top_n = options_.top_configurations;
  ctx.checkpoint = controls.checkpoint ? &controls.checkpoint : nullptr;
  ctx.checkpoint_stride = std::max<size_t>(1, options_.checkpoint_stride);

  // Saturating enumeration count: min(Π sizes, max_configurations), exactly
  // what the reference loop enumerates.
  ctx.sizes.resize(kw_count);
  uint64_t total = 1;
  const uint64_t cap = options_.max_configurations;
  for (size_t k = 0; k < kw_count; ++k) {
    ctx.sizes[k] = per_keyword[k].size();
    if (total >= cap || ctx.sizes[k] > cap / std::max<uint64_t>(total, 1)) {
      total = cap;
    } else {
      total *= ctx.sizes[k];
    }
  }
  total = std::min<uint64_t>(total, cap);
  if (total == 0) return std::vector<Configuration>{};

  // σ memo: log(max(σ, 1e-9)) per pruned candidate.
  ctx.log_sim.resize(kw_count);
  for (size_t k = 0; k < kw_count; ++k) {
    ctx.log_sim[k].reserve(per_keyword[k].size());
    for (const auto& c : per_keyword[k]) {
      ctx.log_sim[k].push_back(std::log(std::max(c.similarity, 1e-9)));
    }
  }

  if (use_log) {
    // Pair-Dice memo: one SameAs + one Dice per cross-keyword candidate
    // pair of each non-FROM keyword pair — the only QFG reads of the whole
    // enumeration. Tables are ordered (a, b)-lexicographically, which is
    // the reference's (i < j) fold order over its non-FROM fragment list.
    std::vector<size_t> non_from;
    for (size_t k = 0; k < kw_count; ++k) {
      if (!keyword_is_from[k]) non_from.push_back(k);
    }
    for (size_t ai = 0; ai < non_from.size(); ++ai) {
      for (size_t bi = ai + 1; bi < non_from.size(); ++bi) {
        PairTable table;
        table.a = non_from[ai];
        table.b = non_from[bi];
        table.b_size = per_keyword[table.b].size();
        table.cells.resize(per_keyword[table.a].size() * table.b_size);
        for (size_t i = 0; i < per_keyword[table.a].size(); ++i) {
          const qfg::ResolvedFragment& ra = resolved[table.a][i];
          for (size_t j = 0; j < table.b_size; ++j) {
            const qfg::ResolvedFragment& rb = resolved[table.b][j];
            PairCell& cell = table.cells[i * table.b_size + j];
            cell.contributing = !ra.SameAs(rb);
            if (cell.contributing) cell.dice = qfg_->Dice(ra.id, rb.id);
          }
        }
        ctx.pairs.push_back(std::move(table));
      }
    }
    // Occurrence-fallback memo: the reference reads frags[0], which is
    // always the first non-FROM keyword's current candidate.
    if (!non_from.empty() && qfg_->query_count() > 0) {
      ctx.have_occ = true;
      ctx.first_non_from = non_from.front();
      const auto& k0 = resolved[ctx.first_non_from];
      ctx.occ_ratio.reserve(k0.size());
      ctx.occ_positive.reserve(k0.size());
      const double query_count = static_cast<double>(qfg_->query_count());
      for (const auto& r : k0) {
        const uint64_t occurrences = qfg_->Occurrences(r.id);
        ctx.occ_ratio.push_back(static_cast<double>(occurrences) /
                                query_count);
        ctx.occ_positive.push_back(occurrences > 0 ? 1 : 0);
      }
    }
  }

  // Enumerate: contiguous index ranges, in parallel when the caller
  // supplied an executor and the product is worth the fan-out. Workers only
  // read `ctx` and write their own WorkerResult; the merge is a
  // deterministic sort, so the parallel ranking is byte-identical to the
  // sequential one.
  const ScoringExecutor* executor = controls.executor;
  size_t workers = 1;
  if (executor != nullptr && executor->run && executor->parallelism > 1 &&
      total >= options_.parallel_min_configurations) {
    workers = static_cast<size_t>(
        std::min<uint64_t>(executor->parallelism, total));
  }
  std::atomic<bool> stop{false};
  ctx.stop = &stop;
  std::vector<WorkerResult> results(workers);
  if (workers == 1) {
    ScoreRange(ctx, 0, total, &results[0]);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(workers);
    const uint64_t base = total / workers;
    const uint64_t extra = total % workers;
    uint64_t begin = 0;
    for (size_t w = 0; w < workers; ++w) {
      const uint64_t end = begin + base + (w < extra ? 1 : 0);
      tasks.push_back([&ctx, begin, end, out = &results[w]] {
        ScoreRange(ctx, begin, end, out);
      });
      begin = end;
    }
    executor->run(std::move(tasks));
  }

  // Merge: statuses (first failing worker in range order wins — ranges are
  // deterministic, so error reporting is too), the query-count flag, and
  // the per-range top-N heaps.
  Status status;
  uint64_t scored = 0;
  bool used_query_count = false;
  std::vector<ScoredEntry> entries;
  for (auto& r : results) {
    if (status.ok() && !r.status.ok()) status = r.status;
    scored += r.scored;
    used_query_count = used_query_count || r.used_query_count;
    for (const auto& e : r.top) entries.push_back(e);
  }
  if (!status.ok()) {
    // A checkpoint abort: with the partial disposition requested (and at
    // least one configuration actually scored) return the best-so-far
    // ranking; otherwise propagate the typed abort unchanged.
    if (controls.partial == nullptr || scored == 0) return status;
    *controls.partial = true;
  }
  if (footprint != nullptr && used_query_count) {
    footprint->query_count_sensitive = true;
  }

  std::sort(entries.begin(), entries.end(), RanksBefore);
  if (entries.size() > ctx.top_n) entries.resize(ctx.top_n);

  // Materialize Configuration objects only for the winners.
  std::vector<Configuration> configs;
  configs.reserve(entries.size());
  std::vector<size_t> digits(kw_count, 0);
  for (const auto& e : entries) {
    DecodeIndex(e.index, ctx.sizes, &digits);
    Configuration config;
    config.mappings.reserve(kw_count);
    for (size_t k = 0; k < kw_count; ++k) {
      config.mappings.push_back(
          FragmentMapping{nlq.keywords[k], per_keyword[k][digits[k]]});
    }
    config.sigma_score = e.sigma;
    config.qfg_score = e.qfg;
    config.score = e.score;
    configs.push_back(std::move(config));
  }
  return configs;
}

}  // namespace templar::core
