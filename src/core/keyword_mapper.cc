#include "core/keyword_mapper.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/string_util.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace templar::core {

namespace {

/// Pulls the first numeric token out of a keyword: "after 2000" -> 2000.
std::optional<double> ExtractNumber(const std::string& s) {
  for (const auto& tok : SplitWhitespace(s)) {
    if (IsNumber(tok)) return std::stod(tok);
  }
  return std::nullopt;
}

/// The keyword text with numeric tokens removed (s_text in Algorithm 3).
std::string TextPart(const std::string& s) {
  std::vector<std::string> kept;
  for (const auto& tok : SplitWhitespace(s)) {
    if (!IsNumber(tok)) kept.push_back(tok);
  }
  return Join(kept, " ");
}

/// Human-comparable name of an attribute: "publication citation num".
std::string AttributePhrase(const std::string& relation,
                            const std::string& attribute) {
  return Join(SplitIdentifierWords(relation), " ") + " " +
         Join(SplitIdentifierWords(attribute), " ");
}

sql::Literal NumberLiteral(double value) {
  double rounded = std::round(value);
  if (rounded == value) {
    return sql::Literal::Int(static_cast<int64_t>(rounded));
  }
  return sql::Literal::Double(value);
}

}  // namespace

KeywordMapper::KeywordMapper(const db::Database* db,
                             const text::FulltextIndex* fts,
                             const embed::SimilarityModel* model,
                             const qfg::QueryFragmentGraph* qfg,
                             KeywordMapperOptions options)
    : db_(db), executor_(db), fts_(fts), model_(model), qfg_(qfg),
      options_(options) {}

// ---------------------------------------------------------------------------
// Algorithm 2: KEYWORDCANDS
// ---------------------------------------------------------------------------

std::vector<CandidateMapping> KeywordMapper::KeywordCands(
    const nlq::AnnotatedKeyword& keyword) const {
  if (ContainsDigit(keyword.text) && ExtractNumber(keyword.text)) {
    return NumericCands(keyword);
  }
  switch (keyword.metadata.context) {
    case qfg::FragmentContext::kFrom:
      return RelationCands(keyword);
    case qfg::FragmentContext::kSelect:
    case qfg::FragmentContext::kGroupBy:
    case qfg::FragmentContext::kOrderBy:
      return AttributeCands(keyword);
    default:
      return TextPredicateCands(keyword);
  }
}

std::vector<CandidateMapping> KeywordMapper::NumericCands(
    const nlq::AnnotatedKeyword& keyword) const {
  std::vector<CandidateMapping> out;
  auto number = ExtractNumber(keyword.text);
  if (!number) return out;
  sql::BinaryOp op = keyword.metadata.op.value_or(sql::BinaryOp::kEq);
  // findNumericAttrs: numeric attributes with >=1 satisfying value.
  for (const auto& [rel, attr] : executor_.FindNumericAttrs(*number, op)) {
    CandidateMapping c;
    c.kind = CandidateMapping::Kind::kPredicate;
    c.relation = rel;
    c.attribute = attr;
    c.op = op;
    c.value = NumberLiteral(*number);
    c.fragment = qfg::WhereFragment(c.ToPredicate(), qfg::ObscurityLevel::kFull);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<CandidateMapping> KeywordMapper::RelationCands(
    const nlq::AnnotatedKeyword&) const {
  std::vector<CandidateMapping> out;
  for (const auto& rel : db_->catalog().relations()) {
    CandidateMapping c;
    c.kind = CandidateMapping::Kind::kRelation;
    c.relation = rel.name;
    c.fragment = qfg::RelationFragment(rel.name);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<CandidateMapping> KeywordMapper::AttributeCands(
    const nlq::AnnotatedKeyword& keyword) const {
  std::vector<CandidateMapping> out;
  std::set<std::string> fk_attrs;
  for (const auto& fk : db_->catalog().foreign_keys()) {
    fk_attrs.insert(fk.from_relation + "." + fk.from_attribute);
    fk_attrs.insert(fk.to_relation + "." + fk.to_attribute);
  }
  for (const auto& rel : db_->catalog().relations()) {
    for (const auto& attr : rel.attributes) {
      // Key columns are join plumbing, not projection targets — except for
      // COUNT aggregates, where counting the primary key is idiomatic.
      bool is_key_attr =
          attr.is_primary_key || fk_attrs.count(rel.name + "." + attr.name) > 0;
      bool counting = !keyword.metadata.aggs.empty() &&
                      keyword.metadata.aggs.back() == sql::AggFunc::kCount;
      if (is_key_attr && !counting) continue;
      // Non-COUNT aggregates only make sense on numeric attributes.
      if (!keyword.metadata.aggs.empty() && !counting &&
          attr.type == db::DataType::kText) {
        continue;
      }
      CandidateMapping c;
      c.kind = CandidateMapping::Kind::kAttribute;
      c.relation = rel.name;
      c.attribute = attr.name;
      c.aggs = keyword.metadata.aggs;
      c.group_by = keyword.metadata.group_by;
      c.fragment = qfg::SelectFragment(rel.name, attr.name, c.aggs, c.distinct);
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::vector<CandidateMapping> KeywordMapper::TextPredicateCands(
    const nlq::AnnotatedKeyword& keyword) const {
  std::vector<CandidateMapping> out;
  std::set<std::string> seen;
  std::vector<std::string> stems = text::TokenizeAndStem(keyword.text);
  if (stems.empty()) return out;

  auto add_matches = [&](const std::vector<text::FulltextMatch>& matches) {
    for (const auto& m : matches) {
      std::string key = m.relation + "\x1f" + m.attribute + "\x1f" + m.value;
      if (!seen.insert(std::move(key)).second) continue;
      CandidateMapping c;
      c.kind = CandidateMapping::Kind::kPredicate;
      c.relation = m.relation;
      c.attribute = m.attribute;
      c.op = keyword.metadata.op.value_or(sql::BinaryOp::kEq);
      c.value = sql::Literal::String(m.value);
      c.fragment =
          qfg::WhereFragment(c.ToPredicate(), qfg::ObscurityLevel::kFull);
      out.push_back(std::move(c));
    }
  };

  // Global boolean search with all stemmed tokens.
  add_matches(fts_->Search(stems));

  // Sec. V-A: when a stemmed token equals the stemmed relation/attribute
  // name of a candidate attribute, drop it from the search against that
  // attribute ("movie Saving Private Ryan" on movie.title searches only
  // "saving private ryan").
  for (const auto& rel : db_->catalog().relations()) {
    for (const auto& attr : rel.attributes) {
      if (!attr.fulltext_indexed) continue;
      std::set<std::string> name_stems;
      for (const auto& w : SplitIdentifierWords(rel.name)) {
        name_stems.insert(text::PorterStem(w));
      }
      for (const auto& w : SplitIdentifierWords(attr.name)) {
        name_stems.insert(text::PorterStem(w));
      }
      std::vector<std::string> reduced;
      for (const auto& s : stems) {
        if (!name_stems.count(s)) reduced.push_back(s);
      }
      if (reduced.size() == stems.size() || reduced.empty()) continue;
      add_matches(fts_->Search(reduced, rel.name, attr.name));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Algorithm 3: SCOREANDPRUNE
// ---------------------------------------------------------------------------

double KeywordMapper::ScoreCandidate(const nlq::AnnotatedKeyword& keyword,
                                     const CandidateMapping& c) const {
  if (ContainsDigit(keyword.text) &&
      c.kind == CandidateMapping::Kind::kPredicate && c.value.IsNumeric()) {
    // sim_num: execute the candidate predicate; empty result -> ε.
    auto non_empty = executor_.PredicateNonEmpty(c.ToPredicate());
    if (!non_empty.ok() || !*non_empty) return options_.epsilon;
    std::string stext = TextPart(keyword.text);
    if (text::ContentStems(stext).empty()) {
      // Nothing left to compare ("after 2000" minus op word and number):
      // neutral similarity, leaving disambiguation to the log-driven score.
      return 0.5;
    }
    return model_->PhraseSimilarity(stext, AttributePhrase(c.relation,
                                                           c.attribute));
  }

  switch (c.kind) {
    case CandidateMapping::Kind::kRelation:
      return model_->PhraseSimilarity(
          keyword.text, Join(SplitIdentifierWords(c.relation), " "));
    case CandidateMapping::Kind::kAttribute:
      return model_->PhraseSimilarity(keyword.text,
                                      AttributePhrase(c.relation, c.attribute));
    case CandidateMapping::Kind::kPredicate: {
      // Text predicate: compare against the matched value, with the
      // attribute name as secondary signal.
      double v = model_->PhraseSimilarity(
          keyword.text, c.value.kind == sql::Literal::Kind::kString
                            ? c.value.string_value
                            : c.value.ToString());
      double a = model_->PhraseSimilarity(keyword.text,
                                          AttributePhrase(c.relation,
                                                          c.attribute));
      return std::max(v, 0.85 * a);
    }
  }
  return 0;
}

std::vector<CandidateMapping> KeywordMapper::ScoreAndPrune(
    const nlq::AnnotatedKeyword& keyword,
    std::vector<CandidateMapping> candidates) const {
  for (auto& c : candidates) {
    c.similarity = ScoreCandidate(keyword, c);
  }
  // The tie-break key is a built string; materialize each once instead of
  // O(n log n) times inside the comparator, and sort an index vector so the
  // (heavyweight) mappings move exactly once.
  std::vector<std::string> keys;
  keys.reserve(candidates.size());
  for (const auto& c : candidates) keys.push_back(c.fragment.Key());
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (candidates[a].similarity != candidates[b].similarity) {
      return candidates[a].similarity > candidates[b].similarity;
    }
    return keys[a] < keys[b];
  });
  std::vector<CandidateMapping> sorted;
  sorted.reserve(candidates.size());
  for (size_t idx : order) sorted.push_back(std::move(candidates[idx]));
  candidates = std::move(sorted);

  // PRUNE: exact matches crowd out everything else.
  const double exact = 1.0 - options_.epsilon;
  if (!candidates.empty() && candidates.front().similarity >= exact) {
    std::vector<CandidateMapping> exacts;
    for (auto& c : candidates) {
      if (c.similarity >= exact) exacts.push_back(std::move(c));
    }
    return exacts;
  }
  // Otherwise top-κ, extending through ties with the κ-th (non-zero) score.
  if (candidates.size() > options_.kappa) {
    double kth = candidates[options_.kappa - 1].similarity;
    size_t cut = options_.kappa;
    while (cut < candidates.size() && kth > 0 &&
           candidates[cut].similarity == kth) {
      ++cut;
    }
    candidates.resize(cut);
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// Configuration generation and ranking
// ---------------------------------------------------------------------------

double KeywordMapper::SigmaScore(const Configuration& config) {
  if (config.mappings.empty()) return 0;
  double log_sum = 0;
  for (const auto& m : config.mappings) {
    double s = std::max(m.candidate.similarity, 1e-9);
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(config.mappings.size()));
}

double KeywordMapper::QfgScore(const Configuration& config,
                               const qfg::QueryFragmentGraph& graph,
                               bool* used_query_count) {
  // Non-FROM fragments only (Sec. V-C2): relations are implied by the rest
  // of the query and handled by join inference.
  std::vector<const qfg::QueryFragment*> frags;
  for (const auto& m : config.mappings) {
    if (m.candidate.fragment.context != qfg::FragmentContext::kFrom) {
      frags.push_back(&m.candidate.fragment);
    }
  }
  if (frags.size() >= 2) {
    double product = 1;
    size_t pairs = 0;
    for (size_t i = 0; i < frags.size(); ++i) {
      for (size_t j = i + 1; j < frags.size(); ++j) {
        // Fragments identical after obscuring (e.g. two author.name
        // predicates with different constants at NoConstOp) carry no
        // co-occurrence signal — the log cannot distinguish them from one
        // occurrence. Skip such self-pairs instead of zeroing the product.
        if (graph.Normalized(*frags[i]).Key() ==
            graph.Normalized(*frags[j]).Key()) {
          continue;
        }
        product *= graph.Dice(*frags[i], *frags[j]);
        ++pairs;
      }
    }
    // Geometric mean over the contributing pairs. (Deviation from the
    // paper's fixed 1/|φ| exponent, which makes configurations with
    // different duplicate-fragment structure incomparable: a config with
    // fewer distinct pairs would be judged on fewer <1 factors at the same
    // exponent and win spuriously. Recorded in DESIGN.md Sec. 5.)
    if (pairs > 0) {
      return std::pow(product, 1.0 / static_cast<double>(pairs));
    }
  }
  // No usable pair evidence (a single non-FROM fragment, or all fragments
  // identical after obscuring): fall back to occurrence frequency so the
  // log still votes (documented deviation; the paper leaves this case open).
  if (!frags.empty() && graph.query_count() > 0) {
    uint64_t occurrences = graph.Occurrences(*frags[0]);
    // A zero numerator stays zero however query_count grows; only a non-zero
    // ratio makes the score move on appends that miss the fragment itself.
    if (occurrences > 0 && used_query_count != nullptr) {
      *used_query_count = true;
    }
    return static_cast<double>(occurrences) /
           static_cast<double>(graph.query_count());
  }
  return 0;
}

double KeywordMapper::QfgScoreResolved(
    const std::vector<const qfg::ResolvedFragment*>& frags,
    const qfg::QueryFragmentGraph& graph, bool* used_query_count) {
  if (frags.size() >= 2) {
    double product = 1;
    size_t pairs = 0;
    for (size_t i = 0; i < frags.size(); ++i) {
      for (size_t j = i + 1; j < frags.size(); ++j) {
        // Same skip rule as QfgScore: fragments identical after obscuring
        // carry no co-occurrence signal. Interned fragments compare by id;
        // fragments the log never saw fall back to their resolved keys.
        if (frags[i]->SameAs(*frags[j])) continue;
        product *= graph.Dice(frags[i]->id, frags[j]->id);
        ++pairs;
      }
    }
    if (pairs > 0) {
      return std::pow(product, 1.0 / static_cast<double>(pairs));
    }
  }
  if (!frags.empty() && graph.query_count() > 0) {
    uint64_t occurrences = graph.Occurrences(frags[0]->id);
    if (occurrences > 0 && used_query_count != nullptr) {
      *used_query_count = true;
    }
    return static_cast<double>(occurrences) /
           static_cast<double>(graph.query_count());
  }
  return 0;
}

Result<std::vector<Configuration>> KeywordMapper::MapKeywords(
    const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint) const {
  if (nlq.keywords.empty()) {
    return Status::InvalidArgument("NLQ has no keywords");
  }
  // Per-keyword candidate retrieval + scoring (Algorithm 1 lines 3-7).
  std::vector<std::vector<CandidateMapping>> per_keyword;
  per_keyword.reserve(nlq.keywords.size());
  for (const auto& kw : nlq.keywords) {
    std::vector<CandidateMapping> cands =
        ScoreAndPrune(kw, KeywordCands(kw));
    if (cands.empty()) {
      return Status::NotFound("no candidate mappings for keyword '" +
                              kw.text + "'");
    }
    per_keyword.push_back(std::move(cands));
  }

  // Resolve every pruned candidate's fragment against the QFG exactly once:
  // one normalize + one intern lookup here, then configuration scoring is
  // pure id arithmetic — no per-pair string builds or string-hash probes
  // inside the O(k^2)-per-configuration Dice loop. FROM fragments are
  // excluded from ScoreQFG (Sec. V-C2) and are never resolved.
  const bool use_log = options_.use_qfg && qfg_ != nullptr;
  std::vector<std::vector<qfg::ResolvedFragment>> resolved;
  if (use_log) {
    resolved.resize(per_keyword.size());
    for (size_t k = 0; k < per_keyword.size(); ++k) {
      resolved[k].resize(per_keyword[k].size());
      for (size_t i = 0; i < per_keyword[k].size(); ++i) {
        const CandidateMapping& c = per_keyword[k][i];
        if (c.fragment.context == qfg::FragmentContext::kFrom) continue;
        resolved[k][i] = qfg_->Resolve(c.fragment);
        if (footprint != nullptr) {
          // Every configuration draws its fragments from the pruned
          // candidates, so their union bounds what scoring can consult.
          footprint->AddFingerprint(resolved[k][i].fingerprint);
        }
      }
    }
  }

  // Cartesian product with a hard cap. Each configuration carries (in
  // config_fragments) the pre-resolved non-FROM fragments it scores over.
  std::vector<Configuration> configs;
  std::vector<std::vector<const qfg::ResolvedFragment*>> config_fragments;
  std::vector<size_t> index(per_keyword.size(), 0);
  while (configs.size() < options_.max_configurations) {
    Configuration config;
    config.mappings.reserve(per_keyword.size());
    std::vector<const qfg::ResolvedFragment*> fragments;
    for (size_t k = 0; k < per_keyword.size(); ++k) {
      const CandidateMapping& candidate = per_keyword[k][index[k]];
      if (use_log &&
          candidate.fragment.context != qfg::FragmentContext::kFrom) {
        fragments.push_back(&resolved[k][index[k]]);
      }
      config.mappings.push_back(FragmentMapping{nlq.keywords[k], candidate});
    }
    configs.push_back(std::move(config));
    if (use_log) config_fragments.push_back(std::move(fragments));
    // Odometer increment.
    size_t k = 0;
    for (; k < index.size(); ++k) {
      if (++index[k] < per_keyword[k].size()) break;
      index[k] = 0;
    }
    if (k == index.size()) break;
  }

  // Score and rank.
  for (size_t i = 0; i < configs.size(); ++i) {
    Configuration& config = configs[i];
    config.sigma_score = SigmaScore(config);
    config.qfg_score =
        use_log ? QfgScoreResolved(config_fragments[i], *qfg_,
                                   footprint ? &footprint->query_count_sensitive
                                             : nullptr)
                : 0;
    config.score = use_log ? options_.lambda * config.sigma_score +
                                 (1 - options_.lambda) * config.qfg_score
                           : config.sigma_score;
  }
  std::stable_sort(configs.begin(), configs.end(),
                   [](const Configuration& a, const Configuration& b) {
                     return a.score > b.score;
                   });
  if (configs.size() > options_.top_configurations) {
    configs.resize(options_.top_configurations);
  }
  return configs;
}

}  // namespace templar::core
