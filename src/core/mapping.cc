#include "core/mapping.h"

#include <algorithm>
#include <map>
#include <set>

namespace templar::core {

std::string CandidateMapping::ToString() const {
  std::string out = fragment.ToString();
  out += " sigma=" + std::to_string(similarity);
  return out;
}

std::vector<std::string> Configuration::RelationBag() const {
  // A relation needs one instance per *duplicate reference to the same
  // attribute* (Sec. VI-C: "John"/"Jane" both on author.name -> two author
  // instances). Predicates on different attributes of one relation, and
  // projections, all share a single instance.
  std::map<std::string, std::map<std::string, int>> attr_counts;
  std::set<std::string> relations;
  for (const auto& m : mappings) {
    const CandidateMapping& c = m.candidate;
    relations.insert(c.relation);
    if (c.kind == CandidateMapping::Kind::kPredicate) {
      attr_counts[c.relation][c.attribute]++;
    }
  }
  std::vector<std::string> bag;
  for (const auto& rel : relations) {
    int instances = 1;
    auto it = attr_counts.find(rel);
    if (it != attr_counts.end()) {
      for (const auto& [attr, count] : it->second) {
        instances = std::max(instances, count);
      }
    }
    bag.push_back(rel);
    for (int i = 1; i < instances; ++i) {
      bag.push_back(rel + "#" + std::to_string(i));
    }
  }
  std::sort(bag.begin(), bag.end());
  return bag;
}

std::string Configuration::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < mappings.size(); ++i) {
    if (i > 0) out += "; ";
    out += mappings[i].candidate.fragment.ToString();
  }
  out += "] score=" + std::to_string(score);
  return out;
}

}  // namespace templar::core
