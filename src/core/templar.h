#ifndef TEMPLAR_CORE_TEMPLAR_H_
#define TEMPLAR_CORE_TEMPLAR_H_

/// \file templar.h
/// \brief The TEMPLAR facade (Fig. 2): the two NLIDB-facing interface calls.
///
/// Templar augments an existing pipeline NLIDB on exactly two fronts, each
/// an independent call (Sec. III-E): MAPKEYWORDS for keyword mapping and
/// INFERJOINS for join path inference. The NLIDB remains responsible for
/// parsing the NLQ into keywords+metadata and for assembling the final SQL
/// from the chosen configuration and join path.

#include <memory>

#include "common/result.h"
#include "core/join_path_generator.h"
#include "core/keyword_mapper.h"
#include "db/database.h"
#include "embed/similarity_model.h"
#include "graph/schema_graph.h"
#include "nlq/keyword.h"
#include "qfg/query_fragment_graph.h"
#include "text/fulltext_index.h"

namespace templar::core {

/// \brief All Templar tunables in one place.
struct TemplarOptions {
  KeywordMapperOptions mapper;
  JoinPathGeneratorOptions joins;
  /// Obscurity level at which the SQL log is indexed (Sec. IV). NoConstOp is
  /// the paper's best-performing and default setting.
  qfg::ObscurityLevel obscurity = qfg::ObscurityLevel::kNoConstOp;
};

/// \brief A Templar instance bound to one database + one SQL query log.
class Templar {
 public:
  /// \brief Builds Templar over `db` with the given query log.
  ///
  /// Parses every log entry into the QFG (entries that fail to parse are
  /// skipped and counted), builds the full-text index and schema graph.
  /// `db` and `model` must outlive the returned object.
  static Result<std::unique_ptr<Templar>> Build(
      const db::Database* db, const embed::SimilarityModel* model,
      const std::vector<std::string>& query_log, TemplarOptions options = {});

  /// \brief Warm-start Build: adopts an already-populated QFG (e.g. restored
  /// from a qfg_io snapshot) instead of re-parsing the log. The graph's
  /// obscurity level overrides `options.obscurity`.
  static Result<std::unique_ptr<Templar>> BuildFromQfg(
      const db::Database* db, const embed::SimilarityModel* model,
      qfg::QueryFragmentGraph qfg, TemplarOptions options = {});

  /// \brief Interface call 1: MAPKEYWORDS (Sec. III-C1).
  ///
  /// `footprint` (optional) receives the QFG dependency set of the ranking —
  /// see KeywordMapper::MapKeywords. Serving layers use it for selective
  /// cache invalidation.
  Result<std::vector<Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint = nullptr) const {
    return mapper_->MapKeywords(nlq, footprint);
  }

  /// \brief MAPKEYWORDS with serving-layer controls: enumeration-loop
  /// deadline/cancel probes, parallel scoring on a caller-supplied
  /// executor, and the partial disposition. See core::MapKeywordsControls.
  Result<std::vector<Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint,
      const MapKeywordsControls& controls) const {
    return mapper_->MapKeywords(nlq, footprint, controls);
  }

  /// \brief Interface call 2: INFERJOINS (Sec. III-C2).
  ///
  /// `footprint` (optional) receives the FROM fragments whose log-driven
  /// weights the search consulted — see JoinPathGenerator::InferJoins.
  Result<std::vector<graph::JoinPath>> InferJoins(
      const std::vector<std::string>& relation_bag,
      qfg::QfgFootprint* footprint = nullptr) const {
    return joins_->InferJoins(relation_bag, footprint);
  }

  /// \brief Folds one additional log entry into the QFG (online ingestion).
  ///
  /// NOT thread-safe against concurrent MapKeywords/InferJoins: both score
  /// against the QFG. Callers that serve concurrently must hold an exclusive
  /// lock over this call and a shared lock over the two interface calls —
  /// service::TemplarService implements exactly that protocol. Unparseable
  /// entries are counted in skipped_log_entries() and returned as ParseError.
  Status AppendLogQuery(const std::string& sql_text);

  /// \brief Same, for an entry the caller has already parsed (lets services
  /// parse outside their write lock). Returns the interned ids of the
  /// query's fragments so the caller can derive the append's fragment delta
  /// from the interner (O(1) fingerprints, no second extraction).
  std::vector<qfg::FragmentId> AppendLogQuery(const sql::SelectQuery& query) {
    return qfg_.AddQueryIds(query);
  }

  const qfg::QueryFragmentGraph& query_fragment_graph() const { return qfg_; }

  /// \brief Mutable QFG access for the replication subsystem: a follower
  /// applies delta-log batches through QueryFragmentGraph::InternFragment /
  /// ApplyQueryIds. Same locking protocol as AppendLogQuery — callers must
  /// hold an exclusive lock against concurrent MapKeywords/InferJoins.
  qfg::QueryFragmentGraph* mutable_query_fragment_graph() { return &qfg_; }
  const graph::SchemaGraph& schema_graph() const { return schema_graph_; }
  const text::FulltextIndex& fulltext_index() const { return fts_; }
  const KeywordMapper& keyword_mapper() const { return *mapper_; }
  const JoinPathGenerator& join_path_generator() const { return *joins_; }
  /// \brief Log entries that failed to parse during Build.
  size_t skipped_log_entries() const { return skipped_log_entries_; }

 private:
  Templar(const db::Database* db, const embed::SimilarityModel* model,
          TemplarOptions options);

  TemplarOptions options_;
  qfg::QueryFragmentGraph qfg_;
  graph::SchemaGraph schema_graph_;
  text::FulltextIndex fts_;
  std::unique_ptr<KeywordMapper> mapper_;
  std::unique_ptr<JoinPathGenerator> joins_;
  size_t skipped_log_entries_ = 0;
};

}  // namespace templar::core

#endif  // TEMPLAR_CORE_TEMPLAR_H_
