#include "core/templar.h"

namespace templar::core {

Templar::Templar(const db::Database* db, const embed::SimilarityModel* model,
                 TemplarOptions options)
    : options_(options),
      qfg_(options.obscurity),
      schema_graph_(graph::SchemaGraph::FromCatalog(db->catalog())),
      fts_(text::FulltextIndex::Build(*db)) {
  mapper_ = std::make_unique<KeywordMapper>(db, &fts_, model, &qfg_,
                                            options_.mapper);
  joins_ = std::make_unique<JoinPathGenerator>(&schema_graph_, &qfg_,
                                               options_.joins);
}

Result<std::unique_ptr<Templar>> Templar::Build(
    const db::Database* db, const embed::SimilarityModel* model,
    const std::vector<std::string>& query_log, TemplarOptions options) {
  if (db == nullptr || model == nullptr) {
    return Status::InvalidArgument("db and model must be non-null");
  }
  std::unique_ptr<Templar> t(new Templar(db, model, options));
  for (const auto& sql_text : query_log) {
    Status st = t->qfg_.AddQuerySql(sql_text);
    if (!st.ok()) ++t->skipped_log_entries_;
  }
  return t;
}

Result<std::unique_ptr<Templar>> Templar::BuildFromQfg(
    const db::Database* db, const embed::SimilarityModel* model,
    qfg::QueryFragmentGraph qfg, TemplarOptions options) {
  if (db == nullptr || model == nullptr) {
    return Status::InvalidArgument("db and model must be non-null");
  }
  options.obscurity = qfg.level();
  std::unique_ptr<Templar> t(new Templar(db, model, options));
  // qfg_'s address is stable across this move-assign, so the mapper and
  // join generator pointers taken in the constructor stay valid.
  t->qfg_ = std::move(qfg);
  return t;
}

Status Templar::AppendLogQuery(const std::string& sql_text) {
  Status st = qfg_.AddQuerySql(sql_text);
  if (!st.ok()) ++skipped_log_entries_;
  return st;
}

}  // namespace templar::core
