#include "core/templar.h"

namespace templar::core {

Templar::Templar(const db::Database* db, const embed::SimilarityModel* model,
                 TemplarOptions options)
    : options_(options),
      qfg_(options.obscurity),
      schema_graph_(graph::SchemaGraph::FromCatalog(db->catalog())),
      fts_(text::FulltextIndex::Build(*db)) {
  mapper_ = std::make_unique<KeywordMapper>(db, &fts_, model, &qfg_,
                                            options_.mapper);
  joins_ = std::make_unique<JoinPathGenerator>(&schema_graph_, &qfg_,
                                               options_.joins);
}

Result<std::unique_ptr<Templar>> Templar::Build(
    const db::Database* db, const embed::SimilarityModel* model,
    const std::vector<std::string>& query_log, TemplarOptions options) {
  if (db == nullptr || model == nullptr) {
    return Status::InvalidArgument("db and model must be non-null");
  }
  std::unique_ptr<Templar> t(new Templar(db, model, options));
  for (const auto& sql_text : query_log) {
    Status st = t->qfg_.AddQuerySql(sql_text);
    if (!st.ok()) ++t->skipped_log_entries_;
  }
  return t;
}

}  // namespace templar::core
