#ifndef TEMPLAR_CORE_KEYWORD_MAPPER_H_
#define TEMPLAR_CORE_KEYWORD_MAPPER_H_

/// \file keyword_mapper.h
/// \brief MAPKEYWORDS (Algorithms 1-3, Sec. V).
///
/// Pipeline: (1) retrieve candidate keyword->fragment mappings from the
/// database (KEYWORDCANDS); (2) score with the word-similarity model and
/// prune to the top-κ (SCOREANDPRUNE); (3) generate configurations and rank
/// them with the λ-blend of the similarity score and the QFG log-driven
/// score. The QFG argument is optional: with a null QFG the mapper degrades
/// to the word-similarity-only behaviour of the baseline NLIDBs, which is
/// how `Pipeline` (without Templar) reuses this code.
///
/// Configuration ranking runs on an *incremental scoring engine*: every
/// cross-keyword candidate pair's Dice is memoized once after pruning, the
/// odometer enumeration touches only the pair-table rows of the keyword
/// whose digit changed, and the ranking is collected in a bounded heap of
/// (score, odometer index) instead of 20k materialized Configuration
/// objects. The engine recombines the memoized values per configuration in
/// exactly the reference evaluation order, so its rankings — scores
/// included — are byte-identical to the original full-recompute scorer,
/// which survives as `KeywordMapperOptions::reference_scoring` and is the
/// differential oracle in tests.

#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/mapping.h"
#include "db/database.h"
#include "db/executor.h"
#include "embed/similarity_model.h"
#include "nlq/keyword.h"
#include "qfg/fragment_delta.h"
#include "qfg/query_fragment_graph.h"
#include "text/fulltext_index.h"

namespace templar::core {

/// \brief Tunables of MAPKEYWORDS.
struct KeywordMapperOptions {
  /// κ — candidates kept per keyword before configuration generation.
  size_t kappa = 5;
  /// λ — weight of Scoreσ vs ScoreQFG in the final blend (Sec. V-C2).
  double lambda = 0.8;
  /// ε — exact-match threshold (σ ≥ 1-ε short-circuits pruning) and the
  /// floor similarity for numeric predicates that execute to empty.
  double epsilon = 0.02;
  /// Hard cap on enumerated configurations (κ^|S| explosion guard).
  size_t max_configurations = 20000;
  /// Ranked configurations returned.
  size_t top_configurations = 10;
  /// When false, ScoreQFG is skipped entirely (pure word-similarity
  /// ranking) even if a QFG is supplied.
  bool use_qfg = true;
  /// When true, configurations are scored by the original full-recompute
  /// loop (one QfgScoreResolved per configuration, full stable_sort) instead
  /// of the incremental engine. Kept as the differential oracle — the
  /// incremental engine must match it byte for byte — and as an escape
  /// hatch. The reference path ignores MapKeywordsControls (no checkpoint
  /// probes, no parallelism, never partial).
  bool reference_scoring = false;
  /// Minimum enumerated configurations before MapKeywords fans the index
  /// space out over a caller-supplied ScoringExecutor; smaller products are
  /// scored inline (the fan-out overhead would dominate).
  size_t parallel_min_configurations = 4096;
  /// How often (in configurations, per worker) the enumeration loop probes
  /// MapKeywordsControls::checkpoint. A worker probes before scoring its
  /// c-th configuration whenever c % checkpoint_stride == 0.
  size_t checkpoint_stride = 256;
};

/// \brief Caller-supplied parallel task runner for configuration scoring.
///
/// `run` executes every task in the batch and returns only once all of them
/// have completed; tasks are independent and may execute on any thread,
/// including the caller's. `parallelism` is the fan-out hint (worker count).
/// The service layer adapts its ThreadPool to this shape
/// (service/scoring_executor.h) with a claim-based drain that cannot
/// deadlock even when the caller itself runs on a pool worker.
struct ScoringExecutor {
  std::function<void(std::vector<std::function<void()>>)> run;
  size_t parallelism = 1;
};

/// \brief Optional per-call controls of MapKeywords (all fields optional;
/// a default-constructed value reproduces the plain call exactly).
struct MapKeywordsControls {
  /// Probed inside the enumeration loop every
  /// KeywordMapperOptions::checkpoint_stride configurations. A non-OK
  /// return stops enumeration: with `partial` set, MapKeywords returns the
  /// best-so-far ranking and flags it partial; otherwise the status
  /// propagates as the call's error. Must be safe to call from multiple
  /// threads when `executor` is also supplied.
  std::function<Status()> checkpoint;
  /// When non-null (and the product is large enough), enumeration is
  /// partitioned into contiguous odometer ranges scored in parallel. The
  /// merged ranking is byte-identical to the sequential one.
  const ScoringExecutor* executor = nullptr;
  /// When non-null, a checkpoint abort mid-enumeration returns the ranking
  /// over the configurations scored so far (success, *partial = true)
  /// instead of an error — unless nothing was scored yet, which still
  /// returns the checkpoint's status. Untouched on complete runs.
  bool* partial = nullptr;
};

/// \brief Executes the keyword-mapping side of Templar.
class KeywordMapper {
 public:
  /// \param db database (catalog + contents); must outlive the mapper.
  /// \param fts full-text index over `db`; must outlive the mapper.
  /// \param model word-similarity model; must outlive the mapper.
  /// \param qfg query-fragment graph of the SQL log; may be null (baseline
  ///        mode — configurations are ranked by Scoreσ alone).
  KeywordMapper(const db::Database* db, const text::FulltextIndex* fts,
                const embed::SimilarityModel* model,
                const qfg::QueryFragmentGraph* qfg,
                KeywordMapperOptions options = {});

  /// \brief Algorithm 1: full MAPKEYWORDS — returns configurations ranked
  /// by descending Score(φ).
  ///
  /// When `footprint` is non-null it receives the QFG dependency set of the
  /// returned ranking: the normalized keys of every non-FROM candidate
  /// fragment that entered configuration scoring (a superset of the
  /// fragments whose Dice/occurrence counts the scores read), plus the
  /// query-count-sensitivity flag when any configuration used the occurrence
  /// fallback with a non-zero numerator. An append that touches none of
  /// these fragments provably leaves the ranking unchanged, which is what
  /// lets the serving layer keep such cache entries warm.
  Result<std::vector<Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint = nullptr) const;

  /// \brief As above, with serving-layer controls: deadline/cancel probes
  /// inside the enumeration loop, parallel enumeration on a caller-supplied
  /// executor, and the partial disposition. See MapKeywordsControls.
  Result<std::vector<Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint,
      const MapKeywordsControls& controls) const;

  /// \brief Algorithm 2: KEYWORDCANDS — unscored candidate retrieval.
  /// Exposed for tests and diagnostics.
  std::vector<CandidateMapping> KeywordCands(
      const nlq::AnnotatedKeyword& keyword) const;

  /// \brief Algorithm 3: SCOREANDPRUNE — scores candidates and prunes to
  /// top-κ (with the exact-match and tie rules of Sec. V-B).
  std::vector<CandidateMapping> ScoreAndPrune(
      const nlq::AnnotatedKeyword& keyword,
      std::vector<CandidateMapping> candidates) const;

  /// \brief Scoreσ of a configuration: geometric mean of mapping σ's.
  static double SigmaScore(const Configuration& config);

  /// \brief ScoreQFG of a configuration against `qfg` (Sec. V-C2): product
  /// of Dice over unordered pairs of non-FROM fragments, taken to the
  /// 1/|φ| power; falls back to normalized fragment occurrence when the
  /// configuration has fewer than two non-FROM fragments.
  ///
  /// `used_query_count` (optional) is set to true when the occurrence
  /// fallback divided a non-zero count by query_count() — the one code path
  /// whose value shifts on appends that touch none of the configuration's
  /// own fragments. It is left untouched otherwise, so callers can OR it
  /// across configurations.
  ///
  /// This is the string-shim reference path: every Dice re-normalizes both
  /// fragments through the graph's string API. MapKeywords itself scores
  /// through QfgScoreResolved; the differential tests assert the two agree
  /// bit-for-bit.
  static double QfgScore(const Configuration& config,
                         const qfg::QueryFragmentGraph& qfg,
                         bool* used_query_count = nullptr);

  /// \brief Id-native ScoreQFG over pre-resolved non-FROM fragments (in
  /// configuration order). Identical semantics to QfgScore — including the
  /// skip of pairs identical after obscuring, which for fragments the log
  /// has never seen falls back to comparing the resolved normalized keys —
  /// but each Dice is an id-pair lookup with no string construction.
  static double QfgScoreResolved(
      const std::vector<const qfg::ResolvedFragment*>& non_from_fragments,
      const qfg::QueryFragmentGraph& qfg, bool* used_query_count = nullptr);

  const KeywordMapperOptions& options() const { return options_; }

 private:
  std::vector<CandidateMapping> NumericCands(
      const nlq::AnnotatedKeyword& keyword) const;
  std::vector<CandidateMapping> RelationCands(
      const nlq::AnnotatedKeyword& keyword) const;
  std::vector<CandidateMapping> AttributeCands(
      const nlq::AnnotatedKeyword& keyword) const;
  std::vector<CandidateMapping> TextPredicateCands(
      const nlq::AnnotatedKeyword& keyword) const;

  double ScoreCandidate(const nlq::AnnotatedKeyword& keyword,
                        const CandidateMapping& candidate) const;

  /// Catalog-derived invariants of candidate generation, computed once per
  /// mapper instead of once per keyword (the catalog is frozen for the
  /// mapper's lifetime). Lazy so construction stays cheap; call_once keeps
  /// the const-qualified, concurrently-called generators race-free.
  struct CatalogCache {
    /// "relation.attribute" of every foreign-key endpoint (AttributeCands).
    std::set<std::string> fk_attrs;
    /// Stemmed identifier words of each fulltext-indexed (relation,
    /// attribute), for TextPredicateCands' drop-the-attribute-name rule.
    struct FulltextAttr {
      std::string relation;
      std::string attribute;
      std::set<std::string> name_stems;
    };
    std::vector<FulltextAttr> fulltext_attrs;
  };
  const CatalogCache& catalog_cache() const;

  const db::Database* db_;
  db::Executor executor_;
  const text::FulltextIndex* fts_;
  const embed::SimilarityModel* model_;
  const qfg::QueryFragmentGraph* qfg_;
  KeywordMapperOptions options_;

  mutable std::once_flag catalog_cache_once_;
  mutable CatalogCache catalog_cache_;
};

}  // namespace templar::core

#endif  // TEMPLAR_CORE_KEYWORD_MAPPER_H_
