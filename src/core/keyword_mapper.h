#ifndef TEMPLAR_CORE_KEYWORD_MAPPER_H_
#define TEMPLAR_CORE_KEYWORD_MAPPER_H_

/// \file keyword_mapper.h
/// \brief MAPKEYWORDS (Algorithms 1-3, Sec. V).
///
/// Pipeline: (1) retrieve candidate keyword->fragment mappings from the
/// database (KEYWORDCANDS); (2) score with the word-similarity model and
/// prune to the top-κ (SCOREANDPRUNE); (3) generate configurations and rank
/// them with the λ-blend of the similarity score and the QFG log-driven
/// score. The QFG argument is optional: with a null QFG the mapper degrades
/// to the word-similarity-only behaviour of the baseline NLIDBs, which is
/// how `Pipeline` (without Templar) reuses this code.

#include <vector>

#include "common/result.h"
#include "core/mapping.h"
#include "db/database.h"
#include "db/executor.h"
#include "embed/similarity_model.h"
#include "nlq/keyword.h"
#include "qfg/fragment_delta.h"
#include "qfg/query_fragment_graph.h"
#include "text/fulltext_index.h"

namespace templar::core {

/// \brief Tunables of MAPKEYWORDS.
struct KeywordMapperOptions {
  /// κ — candidates kept per keyword before configuration generation.
  size_t kappa = 5;
  /// λ — weight of Scoreσ vs ScoreQFG in the final blend (Sec. V-C2).
  double lambda = 0.8;
  /// ε — exact-match threshold (σ ≥ 1-ε short-circuits pruning) and the
  /// floor similarity for numeric predicates that execute to empty.
  double epsilon = 0.02;
  /// Hard cap on enumerated configurations (κ^|S| explosion guard).
  size_t max_configurations = 20000;
  /// Ranked configurations returned.
  size_t top_configurations = 10;
  /// When false, ScoreQFG is skipped entirely (pure word-similarity
  /// ranking) even if a QFG is supplied.
  bool use_qfg = true;
};

/// \brief Executes the keyword-mapping side of Templar.
class KeywordMapper {
 public:
  /// \param db database (catalog + contents); must outlive the mapper.
  /// \param fts full-text index over `db`; must outlive the mapper.
  /// \param model word-similarity model; must outlive the mapper.
  /// \param qfg query-fragment graph of the SQL log; may be null (baseline
  ///        mode — configurations are ranked by Scoreσ alone).
  KeywordMapper(const db::Database* db, const text::FulltextIndex* fts,
                const embed::SimilarityModel* model,
                const qfg::QueryFragmentGraph* qfg,
                KeywordMapperOptions options = {});

  /// \brief Algorithm 1: full MAPKEYWORDS — returns configurations ranked
  /// by descending Score(φ).
  ///
  /// When `footprint` is non-null it receives the QFG dependency set of the
  /// returned ranking: the normalized keys of every non-FROM candidate
  /// fragment that entered configuration scoring (a superset of the
  /// fragments whose Dice/occurrence counts the scores read), plus the
  /// query-count-sensitivity flag when any configuration used the occurrence
  /// fallback with a non-zero numerator. An append that touches none of
  /// these fragments provably leaves the ranking unchanged, which is what
  /// lets the serving layer keep such cache entries warm.
  Result<std::vector<Configuration>> MapKeywords(
      const nlq::ParsedNlq& nlq, qfg::QfgFootprint* footprint = nullptr) const;

  /// \brief Algorithm 2: KEYWORDCANDS — unscored candidate retrieval.
  /// Exposed for tests and diagnostics.
  std::vector<CandidateMapping> KeywordCands(
      const nlq::AnnotatedKeyword& keyword) const;

  /// \brief Algorithm 3: SCOREANDPRUNE — scores candidates and prunes to
  /// top-κ (with the exact-match and tie rules of Sec. V-B).
  std::vector<CandidateMapping> ScoreAndPrune(
      const nlq::AnnotatedKeyword& keyword,
      std::vector<CandidateMapping> candidates) const;

  /// \brief Scoreσ of a configuration: geometric mean of mapping σ's.
  static double SigmaScore(const Configuration& config);

  /// \brief ScoreQFG of a configuration against `qfg` (Sec. V-C2): product
  /// of Dice over unordered pairs of non-FROM fragments, taken to the
  /// 1/|φ| power; falls back to normalized fragment occurrence when the
  /// configuration has fewer than two non-FROM fragments.
  ///
  /// `used_query_count` (optional) is set to true when the occurrence
  /// fallback divided a non-zero count by query_count() — the one code path
  /// whose value shifts on appends that touch none of the configuration's
  /// own fragments. It is left untouched otherwise, so callers can OR it
  /// across configurations.
  ///
  /// This is the string-shim reference path: every Dice re-normalizes both
  /// fragments through the graph's string API. MapKeywords itself scores
  /// through QfgScoreResolved; the differential tests assert the two agree
  /// bit-for-bit.
  static double QfgScore(const Configuration& config,
                         const qfg::QueryFragmentGraph& qfg,
                         bool* used_query_count = nullptr);

  /// \brief Id-native ScoreQFG over pre-resolved non-FROM fragments (in
  /// configuration order). Identical semantics to QfgScore — including the
  /// skip of pairs identical after obscuring, which for fragments the log
  /// has never seen falls back to comparing the resolved normalized keys —
  /// but each Dice is an id-pair lookup with no string construction.
  static double QfgScoreResolved(
      const std::vector<const qfg::ResolvedFragment*>& non_from_fragments,
      const qfg::QueryFragmentGraph& qfg, bool* used_query_count = nullptr);

  const KeywordMapperOptions& options() const { return options_; }

 private:
  std::vector<CandidateMapping> NumericCands(
      const nlq::AnnotatedKeyword& keyword) const;
  std::vector<CandidateMapping> RelationCands(
      const nlq::AnnotatedKeyword& keyword) const;
  std::vector<CandidateMapping> AttributeCands(
      const nlq::AnnotatedKeyword& keyword) const;
  std::vector<CandidateMapping> TextPredicateCands(
      const nlq::AnnotatedKeyword& keyword) const;

  double ScoreCandidate(const nlq::AnnotatedKeyword& keyword,
                        const CandidateMapping& candidate) const;

  const db::Database* db_;
  db::Executor executor_;
  const text::FulltextIndex* fts_;
  const embed::SimilarityModel* model_;
  const qfg::QueryFragmentGraph* qfg_;
  KeywordMapperOptions options_;
};

}  // namespace templar::core

#endif  // TEMPLAR_CORE_KEYWORD_MAPPER_H_
