#ifndef TEMPLAR_DATASETS_DATASET_H_
#define TEMPLAR_DATASETS_DATASET_H_

/// \file dataset.h
/// \brief The three evaluation benchmarks (Sec. VII-A4): MAS, Yelp, IMDB.
///
/// The paper's benchmark databases and hand-annotated NLQ-SQL pairs are not
/// redistributable / reachable offline, so each dataset here is a synthetic
/// equivalent (DESIGN.md documents the substitution): a schema matching
/// Table II's relation/attribute/FK-PK counts, deterministic seeded data,
/// a curated similarity lexicon encoding the keyword ambiguities the paper's
/// examples rely on, a template-generated benchmark of NLQ/gold-SQL pairs
/// (194 / 127 / 128 queries), and a workload-consistent extra query log.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "embed/embedding_model.h"
#include "nlq/keyword.h"
#include "sql/ast.h"

namespace templar::datasets {

/// \brief One benchmark item: NLQ, its hand parse, and the gold SQL.
struct BenchmarkQuery {
  std::string nlq;            ///< Natural-language question text.
  nlq::ParsedNlq gold_parse;  ///< Hand-parsed keywords + metadata.
  sql::SelectQuery gold_sql;  ///< The annotated SQL translation.
  /// Expected Full-level fragment key per non-relation keyword text, for
  /// the KW metric of Sec. VII-B2.
  std::map<std::string, std::string> gold_fragments;
  std::string shape_id;  ///< Generator template (for error breakdowns).
};

/// \brief Paper-reported statistics, reprinted by the Table II bench.
struct PaperStats {
  double size_gb = 0;
  int relations = 0;
  int attributes = 0;
  int fk_pk = 0;
  int queries = 0;
};

/// \brief A fully materialized benchmark dataset.
struct Dataset {
  std::string name;
  std::unique_ptr<db::Database> database;
  /// Curated embedding lexicon + synthetic fallback, used by Pipeline
  /// (word2vec stand-in). Encodes the paper's ambiguity traps.
  std::unique_ptr<embed::EmbeddingModel> lexicon;
  /// WordNet-style synset table used (thresholded) by NaLIR: precise,
  /// high-valued entries with narrower coverage than the embedding lexicon.
  std::unique_ptr<embed::EmbeddingModel> wordnet;
  std::vector<BenchmarkQuery> benchmark;
  /// Workload-consistent log entries beyond the benchmark's gold SQL
  /// (Sec. VII-A3's representativeness assumption).
  std::vector<std::string> extra_log;
  PaperStats paper;
};

/// \brief Builds the Microsoft Academic Search dataset (194 queries).
Result<Dataset> BuildMas(uint64_t seed = 7001);

/// \brief Builds the Yelp business-review dataset (127 queries).
Result<Dataset> BuildYelp(uint64_t seed = 7002);

/// \brief Builds the IMDB movie dataset (128 queries).
Result<Dataset> BuildImdb(uint64_t seed = 7003);

/// \brief Case-insensitive lookup: "mas" | "yelp" | "imdb".
Result<Dataset> BuildByName(const std::string& name, uint64_t seed = 0);

/// \brief All three, in paper order.
Result<std::vector<Dataset>> BuildAll();

}  // namespace templar::datasets

#endif  // TEMPLAR_DATASETS_DATASET_H_
