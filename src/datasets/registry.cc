#include "common/string_util.h"
#include "datasets/dataset.h"

namespace templar::datasets {

Result<Dataset> BuildByName(const std::string& name, uint64_t seed) {
  std::string lower = ToLower(name);
  if (lower == "mas") return BuildMas(seed == 0 ? 7001 : seed);
  if (lower == "yelp") return BuildYelp(seed == 0 ? 7002 : seed);
  if (lower == "imdb") return BuildImdb(seed == 0 ? 7003 : seed);
  return Status::NotFound("unknown dataset '" + name +
                          "' (expected mas | yelp | imdb)");
}

Result<std::vector<Dataset>> BuildAll() {
  std::vector<Dataset> out;
  TEMPLAR_ASSIGN_OR_RETURN(Dataset mas, BuildMas());
  out.push_back(std::move(mas));
  TEMPLAR_ASSIGN_OR_RETURN(Dataset yelp, BuildYelp());
  out.push_back(std::move(yelp));
  TEMPLAR_ASSIGN_OR_RETURN(Dataset imdb, BuildImdb());
  out.push_back(std::move(imdb));
  return out;
}

}  // namespace templar::datasets
