#ifndef TEMPLAR_DATASETS_WORKLOAD_H_
#define TEMPLAR_DATASETS_WORKLOAD_H_

/// \file workload.h
/// \brief Template engine generating NLQ / gold-SQL benchmark pairs.
///
/// Each dataset declares a set of query *shapes*: a projection (with an NL
/// word the user would say), optional aggregation, an optional text-value
/// slot (possibly duplicated — a self-join shape), an optional numeric slot,
/// and the gold join path connecting everything. The engine instantiates
/// shapes with concrete values sampled from the generated database, emitting
/// the NLQ string, the hand parse, the gold SQL (assembled through the same
/// code path the NLIDBs use, so formatting never diverges), and the expected
/// per-keyword fragments for the KW metric.

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "datasets/dataset.h"
#include "db/database.h"
#include "graph/schema_graph.h"
#include "sql/ast.h"

namespace templar::datasets {

/// \brief The projected attribute and the NL word that asks for it.
struct ProjectionSpec {
  std::string nl_word;    ///< e.g. "papers"
  std::string relation;   ///< e.g. "publication"
  std::string attribute;  ///< e.g. "title"
};

/// \brief A text-value predicate slot; values sampled from the database.
struct ValueSlotSpec {
  std::string relation;
  std::string attribute;
  /// NLQ phrase with `{v}` replaced by the sampled value,
  /// e.g. "in the {v} domain".
  std::string nl_template;
  /// 2 for self-join shapes ("by both {v} and {v}"): the template must then
  /// contain two `{v}` markers; two distinct values are sampled.
  int count = 1;
  /// When > 0, sample only from the first `max_distinct` distinct values of
  /// the attribute (scan order). Datasets use this to force values from a
  /// deliberately ambiguous sub-pool (e.g. keyword terms that are also
  /// domain names).
  size_t max_distinct = 0;
};

/// \brief A numeric predicate slot.
struct NumericSlotSpec {
  std::string relation;
  std::string attribute;
  std::string op_word;  ///< e.g. "after" — kept in the keyword text.
  sql::BinaryOp op = sql::BinaryOp::kGt;
  int64_t min_value = 0;  ///< Sample range; dataset data generators
  int64_t max_value = 0;  ///< guarantee non-empty results inside it.
  /// Optional unit word after the number ("citations" in "with more than
  /// 100 citations"); part of the keyword text, anchoring word similarity.
  std::string unit_word;
};

/// \brief One query template.
struct Shape {
  std::string id;
  double weight = 1.0;  ///< Sampling weight within the benchmark mix.
  std::string command = "Return the";  ///< NLQ opening phrase.
  ProjectionSpec projection;
  std::vector<sql::AggFunc> aggs;  ///< Wraps the projection (outermost 1st).
  bool group_by = false;           ///< "for each"-style grouping.
  std::optional<ValueSlotSpec> value;
  /// A second, independent value slot (for "papers on {kw} in the {domain}
  /// area"-style queries with two text predicates).
  std::optional<ValueSlotSpec> value2;
  std::optional<NumericSlotSpec> numeric;
  /// Gold join path edges over relation instances; self-join shapes use
  /// fork-style instance names ("writes#1"). Empty = single relation.
  std::vector<graph::SchemaEdge> join_edges;
};

/// \brief Instantiates shapes against a database.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const db::Database* db, uint64_t seed);

  /// \brief One concrete benchmark query from `shape`.
  Result<BenchmarkQuery> Instantiate(const Shape& shape);

  /// \brief `count` queries drawn from `shapes` by weight; every shape is
  /// visited at least once when count >= shapes.size().
  Result<std::vector<BenchmarkQuery>> GenerateBenchmark(
      const std::vector<Shape>& shapes, size_t count);

  /// \brief `count` log-only SQL strings drawn from `shapes` by weight.
  Result<std::vector<std::string>> GenerateLog(const std::vector<Shape>& shapes,
                                               size_t count);

 private:
  Result<std::vector<std::string>> SampleValues(const ValueSlotSpec& slot,
                                                int count);

  const db::Database* db_;
  Rng rng_;
};

}  // namespace templar::datasets

#endif  // TEMPLAR_DATASETS_WORKLOAD_H_
