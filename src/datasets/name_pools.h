#ifndef TEMPLAR_DATASETS_NAME_POOLS_H_
#define TEMPLAR_DATASETS_NAME_POOLS_H_

/// \file name_pools.h
/// \brief Synthetic vocabulary pools for the dataset generators.
///
/// All values are generated from these pools with a seeded Rng, so the
/// databases (and therefore every benchmark and experiment) are bit-for-bit
/// reproducible.

#include <string>
#include <vector>

#include "common/rng.h"

namespace templar::datasets {

/// \brief Pools of words used to synthesize entity names.
class NamePools {
 public:
  static const std::vector<std::string>& FirstNames();
  static const std::vector<std::string>& LastNames();
  static const std::vector<std::string>& ResearchTopics();   // "Databases", ...
  static const std::vector<std::string>& ResearchQualifiers();  // "Scalable", ...
  static const std::vector<std::string>& VenueAcronyms();    // "TKDE"-style
  static const std::vector<std::string>& Universities();
  static const std::vector<std::string>& Continents();
  static const std::vector<std::string>& Cities();
  static const std::vector<std::string>& UsStates();
  static const std::vector<std::string>& Cuisines();
  static const std::vector<std::string>& BusinessSuffixes();
  static const std::vector<std::string>& MovieNouns();
  static const std::vector<std::string>& MovieAdjectives();
  static const std::vector<std::string>& Genres();
  static const std::vector<std::string>& Nationalities();
  static const std::vector<std::string>& Weekdays();
  static const std::vector<std::string>& Months();

  /// \brief "First Last" drawn from the pools.
  static std::string PersonName(Rng* rng);

  /// \brief A paper-ish title: "Scalable Query Processing for Databases".
  static std::string PaperTitle(Rng* rng);

  /// \brief A movie-ish title: "The Silent Harbor".
  static std::string MovieTitle(Rng* rng);

  /// \brief A business name: "Golden Thai Kitchen".
  static std::string BusinessName(Rng* rng);

  /// \brief Uniform pick from a pool.
  static const std::string& Pick(const std::vector<std::string>& pool,
                                 Rng* rng);
};

}  // namespace templar::datasets

#endif  // TEMPLAR_DATASETS_NAME_POOLS_H_
