#include <set>

#include "datasets/dataset.h"
#include "datasets/name_pools.h"
#include "datasets/workload.h"

namespace templar::datasets {

namespace {

using db::AttributeDef;
using db::DataType;
using db::Database;
using db::ForeignKeyDef;
using db::Value;
using graph::SchemaEdge;

struct YelpSizes {
  int businesses = 400;
  int users = 500;
  int reviews_per_business = 4;
  int tips_per_business = 2;
  int categories_per_business = 2;
  int checkins_per_business = 2;
};

Status CreateYelpSchema(Database* db) {
  auto T = [](const char* n) {
    return AttributeDef{n, DataType::kText, false, false};
  };
  auto FT = [](const char* n) {
    return AttributeDef{n, DataType::kText, false, true};
  };
  auto I = [](const char* n) {
    return AttributeDef{n, DataType::kInt, false, false};
  };
  auto D = [](const char* n) {
    return AttributeDef{n, DataType::kDouble, false, false};
  };
  auto PK = [](const char* n) {
    return AttributeDef{n, DataType::kInt, true, false};
  };

  // 7 relations / 38 attributes / 7 FK-PK, per Table II.
  TEMPLAR_RETURN_NOT_OK(db->CreateRelation(
      {"business",
       {PK("bid"), FT("name"), T("full_address"), FT("city"), FT("state"),
        T("zip_code"), D("latitude"), D("longitude"), I("review_count"),
        D("rating")}}));
  TEMPLAR_RETURN_NOT_OK(db->CreateRelation(
      {"category", {PK("cid"), I("bid"), FT("category_name")}}));
  TEMPLAR_RETURN_NOT_OK(db->CreateRelation(
      {"user", {PK("uid"), FT("name"), I("review_count"), I("fans")}}));
  TEMPLAR_RETURN_NOT_OK(db->CreateRelation(
      {"review",
       {PK("rid"), I("bid"), I("uid"), D("rating"), T("text"), I("year"),
        FT("month"), I("votes")}}));
  TEMPLAR_RETURN_NOT_OK(db->CreateRelation(
      {"tip",
       {PK("tid"), I("bid"), I("uid"), T("text"), I("likes"), I("year")}}));
  TEMPLAR_RETURN_NOT_OK(db->CreateRelation(
      {"checkin", {PK("kid"), I("bid"), I("count"), FT("day")}}));
  TEMPLAR_RETURN_NOT_OK(db->CreateRelation(
      {"neighborhood", {PK("nid"), I("bid"), FT("name")}}));

  const ForeignKeyDef kFks[] = {
      {"category", "bid", "business", "bid"},
      {"review", "bid", "business", "bid"},
      {"review", "uid", "user", "uid"},
      {"tip", "bid", "business", "bid"},
      {"tip", "uid", "user", "uid"},
      {"checkin", "bid", "business", "bid"},
      {"neighborhood", "bid", "business", "bid"},
  };
  for (const auto& fk : kFks) {
    TEMPLAR_RETURN_NOT_OK(db->AddForeignKey(fk));
  }
  return Status::OK();
}

Status PopulateYelp(Database* db, const YelpSizes& sizes, Rng* rng) {
  // Users.
  std::set<std::string> used_names;
  for (int u = 0; u < sizes.users; ++u) {
    std::string name;
    do {
      name = NamePools::PersonName(rng);
    } while (!used_names.insert(name).second);
    TEMPLAR_RETURN_NOT_OK(db->Insert(
        "user", {Value::Int(u), Value::Text(name),
                 Value::Int(rng->NextInt(1, 400)),
                 Value::Int(rng->NextInt(0, 120))}));
  }

  // Businesses + satellites.
  std::set<std::string> used_biz;
  int rid = 0;
  int tid = 0;
  int cid = 0;
  int kid = 0;
  int nid = 0;
  const auto& cuisines = NamePools::Cuisines();
  for (int b = 0; b < sizes.businesses; ++b) {
    std::string name;
    do {
      name = NamePools::BusinessName(rng);
    } while (!used_biz.insert(name).second);
    std::string city = NamePools::Pick(NamePools::Cities(), rng);
    TEMPLAR_RETURN_NOT_OK(db->Insert(
        "business",
        {Value::Int(b), Value::Text(name),
         Value::Text(std::to_string(100 + b) + " Main St, " + city),
         Value::Text(city), Value::Text(NamePools::Pick(NamePools::UsStates(),
                                                        rng)),
         Value::Text(std::to_string(10000 + b)),
         Value::Double(30.0 + rng->NextDouble() * 15),
         Value::Double(-120.0 + rng->NextDouble() * 40),
         Value::Int(rng->NextInt(3, 800)),
         Value::Double(1.0 + rng->NextBounded(9) * 0.5)}));

    // Categories: one cuisine + "Restaurants"/"Bars"/"Cafes".
    TEMPLAR_RETURN_NOT_OK(db->Insert(
        "category", {Value::Int(cid++), Value::Int(b),
                     Value::Text(cuisines[rng->NextBounded(cuisines.size())])}));
    static const char* kKinds[] = {"Restaurants", "Bars", "Cafes", "Bakeries"};
    TEMPLAR_RETURN_NOT_OK(db->Insert(
        "category", {Value::Int(cid++), Value::Int(b),
                     Value::Text(kKinds[rng->NextBounded(4)])}));

    TEMPLAR_RETURN_NOT_OK(db->Insert(
        "neighborhood",
        {Value::Int(nid++), Value::Int(b),
         Value::Text(NamePools::Pick(NamePools::Cities(), rng) + " " +
                     (rng->NextBool() ? "Heights" : "Old Town"))}));

    for (int r = 0; r < sizes.reviews_per_business; ++r) {
      TEMPLAR_RETURN_NOT_OK(db->Insert(
          "review",
          {Value::Int(rid++), Value::Int(b),
           Value::Int(static_cast<int>(rng->NextBounded(sizes.users))),
           Value::Double(1.0 + rng->NextBounded(9) * 0.5),
           Value::Text("Great spot for " +
                       NamePools::Pick(cuisines, rng) + " food."),
           Value::Int(rng->NextInt(2008, 2016)),
           Value::Text(NamePools::Pick(NamePools::Months(), rng)),
           Value::Int(rng->NextInt(0, 40))}));
    }
    for (int t = 0; t < sizes.tips_per_business; ++t) {
      TEMPLAR_RETURN_NOT_OK(db->Insert(
          "tip", {Value::Int(tid++), Value::Int(b),
                  Value::Int(static_cast<int>(rng->NextBounded(sizes.users))),
                  Value::Text("Try the " + NamePools::Pick(cuisines, rng) +
                              " special."),
                  Value::Int(rng->NextInt(0, 50)),
                  Value::Int(rng->NextInt(2009, 2016))}));
    }
    for (int k = 0; k < sizes.checkins_per_business; ++k) {
      TEMPLAR_RETURN_NOT_OK(db->Insert(
          "checkin", {Value::Int(kid++), Value::Int(b),
                      Value::Int(rng->NextInt(1, 300)),
                      Value::Text(NamePools::Pick(NamePools::Weekdays(),
                                                  rng))}));
    }
  }
  return Status::OK();
}

void BuildYelpLexicon(embed::EmbeddingModel* model) {
  // Trap: "restaurants" is closer to the business *address* and to review
  // text than to business.name for the embedding; the log fixes it.
  model->AddSynonym("restaurant", "business", 0.56);
  model->AddSynonym("restaurant", "category", 0.60);
  model->AddSynonym("restaurant", "name", 0.40);
  model->AddSynonym("place", "business", 0.58);
  model->AddSynonym("place", "neighborhood", 0.60);
  model->AddSynonym("business", "name", 0.50);

  model->AddSynonym("user", "name", 0.52);
  model->AddSynonym("reviewer", "user", 0.75);
  model->AddSynonym("reviewer", "review", 0.78);  // Trap: reviewer ~ review.
  model->AddSynonym("customer", "user", 0.68);

  model->AddSynonym("review", "text", 0.50);
  model->AddSynonym("reviews", "review", 0.95);
  model->AddSynonym("tip", "text", 0.48);
  model->AddSynonym("rating", "stars", 0.70);
  model->AddSynonym("stars", "rating", 0.70);

  model->AddSynonym("city", "full address", 0.45);
  model->AddSynonym("neighborhood", "city", 0.55);
  model->AddSynonym("area", "neighborhood", 0.66);
  model->AddSynonym("area", "city", 0.60);

  model->AddSynonym("after", "year", 0.50);
  model->AddSynonym("since", "year", 0.48);
  model->AddSynonym("above", "rating", 0.42);
  model->AddSynonym("least", "rating", 0.30);
}

/// NaLIR's WordNet-style synset table for Yelp. Coverage is decent but the
/// embedding lexicon is even better here, which is why Pipeline's baseline
/// beats NaLIR's on this benchmark (Table III).
void BuildYelpWordnet(embed::EmbeddingModel* model) {
  model->AddSynonym("business", "name", 0.78);
  model->AddSynonym("restaurant", "business", 0.82);
  model->AddSynonym("restaurant", "name", 0.72);
  model->AddSynonym("user", "name", 0.78);
  model->AddSynonym("reviewer", "user", 0.82);
  model->AddSynonym("reviewer", "name", 0.72);
  model->AddSynonym("review", "text", 0.75);
  model->AddSynonym("tip", "text", 0.75);
  model->AddSynonym("city", "city", 0.90);
  model->AddSynonym("after", "year", 0.75);
  // Gaps: "places", "customers", "days", "cities" (plural city form misses
  // the city attribute via the fallback), "businesses" numeric contexts.
}

std::vector<Shape> YelpShapes() {
  std::vector<Shape> shapes;
  const SchemaEdge kCatBiz = {"category", "bid", "business", "bid"};
  const SchemaEdge kRevBiz = {"review", "bid", "business", "bid"};
  const SchemaEdge kRevUser = {"review", "uid", "user", "uid"};
  const SchemaEdge kTipBiz = {"tip", "bid", "business", "bid"};
  const SchemaEdge kTipUser = {"tip", "uid", "user", "uid"};
  const SchemaEdge kNbBiz = {"neighborhood", "bid", "business", "bid"};

  // 1. Businesses in a category ("Thai restaurants").
  shapes.push_back(Shape{
      .id = "yelp_biz_in_category",
      .weight = 3.0,
      .projection = {"restaurants", "business", "name"},
      .value = ValueSlotSpec{"category", "category_name", "in the {v} "
                                                          "category"},
      .join_edges = {kCatBiz}});

  // 2. Businesses in a city.
  shapes.push_back(Shape{.id = "yelp_biz_in_city",
                         .weight = 2.5,
                         .projection = {"businesses", "business", "name"},
                         .value = ValueSlotSpec{"business", "city", "in {v}"}});

  // 3. Users who reviewed a business. The gold route is review; tip gives an
  // equal-length decoy — the Table IV LogJoin headline case for Yelp.
  shapes.push_back(Shape{
      .id = "yelp_users_reviewed_biz",
      .weight = 3.0,
      .projection = {"reviewers", "user", "name"},
      .value = ValueSlotSpec{"business", "name", "who reviewed {v}"},
      .join_edges = {kRevUser, kRevBiz}});

  // 4. Reviews of a business after a year.
  shapes.push_back(Shape{
      .id = "yelp_reviews_of_biz_year",
      .weight = 2.0,
      .projection = {"reviews", "review", "text"},
      .value = ValueSlotSpec{"business", "name", "of {v}"},
      .numeric = NumericSlotSpec{"review", "year", "after", sql::BinaryOp::kGt,
                                 2009, 2014},
      .join_edges = {kRevBiz}});

  // 5. Businesses with rating above a threshold... rating is DOUBLE; use
  // review_count (INT) to stay within integer numeric slots.
  shapes.push_back(Shape{
      .id = "yelp_biz_many_reviews",
      .weight = 2.0,
      .projection = {"businesses", "business", "name"},
      .numeric = NumericSlotSpec{"business", "review_count", "with more than",
                                 sql::BinaryOp::kGt, 50, 600, "reviews"}});

  // 6. Count of reviews by a user.
  shapes.push_back(Shape{
      .id = "yelp_count_reviews_by_user",
      .weight = 1.5,
      .projection = {"reviews", "review", "text"},
      .aggs = {sql::AggFunc::kCount},
      .value = ValueSlotSpec{"user", "name", "written by {v}"},
      .join_edges = {kRevUser}});

  // 7. Tips for a business.
  shapes.push_back(Shape{
      .id = "yelp_tips_for_biz",
      .weight = 1.5,
      .projection = {"tips", "tip", "text"},
      .value = ValueSlotSpec{"business", "name", "for {v}"},
      .join_edges = {kTipBiz}});

  // 8. Businesses in a neighborhood.
  shapes.push_back(Shape{
      .id = "yelp_biz_in_neighborhood",
      .weight = 1.5,
      .projection = {"places", "business", "name"},
      .value = ValueSlotSpec{"neighborhood", "name", "in the {v} "
                                                     "neighborhood"},
      .join_edges = {kNbBiz}});

  // 9. Users who tipped a business (gold = tip route; review is the decoy).
  shapes.push_back(Shape{
      .id = "yelp_users_tipped_biz",
      .weight = 1.0,
      .projection = {"customers", "user", "name"},
      .value = ValueSlotSpec{"business", "name", "who left tips at {v}"},
      .join_edges = {kTipUser, kTipBiz}});

  // 10. Self-join: businesses reviewed by two users.
  shapes.push_back(Shape{
      .id = "yelp_biz_by_two_users",
      .weight = 1.0,
      .projection = {"businesses", "business", "name"},
      .value = ValueSlotSpec{"user", "name", "reviewed by both {v} and {v}",
                             2},
      .join_edges = {kRevUser,
                     kRevBiz,
                     {"review#1", "uid", "user#1", "uid"},
                     {"review#1", "bid", "business", "bid"}}});

  // 11. Cities of businesses in a category.
  shapes.push_back(Shape{
      .id = "yelp_cities_of_category",
      .weight = 1.0,
      .projection = {"cities", "business", "city"},
      .value = ValueSlotSpec{"category", "category_name", "with {v} places"},
      .join_edges = {kCatBiz}});

  // 12. Checkins for a business after a count.
  shapes.push_back(Shape{
      .id = "yelp_checkin_days",
      .weight = 1.0,
      .projection = {"days", "checkin", "day"},
      .value = ValueSlotSpec{"business", "name", "at {v}"},
      .join_edges = {{"checkin", "bid", "business", "bid"}}});

  return shapes;
}

std::vector<Shape> YelpLogOnlyShapes() {
  std::vector<Shape> shapes;
  shapes.push_back(Shape{.id = "yelp_log_businesses",
                         .weight = 2.0,
                         .projection = {"businesses", "business", "name"}});
  shapes.push_back(Shape{
      .id = "yelp_log_users_many_fans",
      .weight = 1.0,
      .projection = {"users", "user", "name"},
      .numeric = NumericSlotSpec{"user", "fans", "with more than",
                                 sql::BinaryOp::kGt, 10, 100, "fans"}});
  shapes.push_back(Shape{
      .id = "yelp_log_addresses",
      .weight = 1.0,
      .projection = {"addresses", "business", "full_address"},
      .value = ValueSlotSpec{"business", "state", "in {v}"}});
  return shapes;
}

}  // namespace

Result<Dataset> BuildYelp(uint64_t seed) {
  Dataset ds;
  ds.name = "Yelp";
  ds.paper = PaperStats{2.0, 7, 38, 7, 127};
  ds.database = std::make_unique<Database>("yelp");
  ds.lexicon = std::make_unique<embed::EmbeddingModel>();
  ds.wordnet = std::make_unique<embed::EmbeddingModel>();

  Rng rng(seed);
  YelpSizes sizes;
  TEMPLAR_RETURN_NOT_OK(CreateYelpSchema(ds.database.get()));
  TEMPLAR_RETURN_NOT_OK(PopulateYelp(ds.database.get(), sizes, &rng));
  BuildYelpLexicon(ds.lexicon.get());
  BuildYelpWordnet(ds.wordnet.get());

  WorkloadGenerator gen(ds.database.get(), seed ^ 0x2f81d);
  TEMPLAR_ASSIGN_OR_RETURN(ds.benchmark,
                           gen.GenerateBenchmark(YelpShapes(), 127));

  WorkloadGenerator log_gen(ds.database.get(), seed ^ 0x99b31);
  TEMPLAR_ASSIGN_OR_RETURN(std::vector<std::string> workload_log,
                           log_gen.GenerateLog(YelpShapes(), 300));
  TEMPLAR_ASSIGN_OR_RETURN(std::vector<std::string> noise_log,
                           log_gen.GenerateLog(YelpLogOnlyShapes(), 80));
  ds.extra_log = std::move(workload_log);
  ds.extra_log.insert(ds.extra_log.end(), noise_log.begin(), noise_log.end());
  return ds;
}

}  // namespace templar::datasets
