#include "datasets/workload.h"

#include <algorithm>
#include <set>

#include "core/mapping.h"
#include "db/executor.h"
#include "nlidb/sql_assembler.h"
#include "qfg/fragment.h"

namespace templar::datasets {

namespace {

/// NLQ phrase introducing an aggregate ("number of papers").
std::string AggPhrase(const std::vector<sql::AggFunc>& aggs) {
  if (aggs.empty()) return "";
  switch (aggs.front()) {
    case sql::AggFunc::kCount:
      return "number of ";
    case sql::AggFunc::kSum:
      return "total ";
    case sql::AggFunc::kAvg:
      return "average ";
    case sql::AggFunc::kMax:
      return "maximum ";
    case sql::AggFunc::kMin:
      return "minimum ";
  }
  return "";
}

/// Replaces the first occurrence of `{v}` in `s` with `value`.
std::string FillValue(std::string s, const std::string& value) {
  auto pos = s.find("{v}");
  if (pos != std::string::npos) s.replace(pos, 3, value);
  return s;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const db::Database* db, uint64_t seed)
    : db_(db), rng_(seed) {}

Result<std::vector<std::string>> WorkloadGenerator::SampleValues(
    const ValueSlotSpec& slot, int count) {
  db::Executor executor(db_);
  TEMPLAR_ASSIGN_OR_RETURN(
      std::vector<db::Value> values,
      executor.DistinctValues(slot.relation, slot.attribute,
                              slot.max_distinct));
  if (static_cast<int>(values.size()) < count) {
    return Status::InvalidArgument("not enough distinct values in " +
                                   slot.relation + "." + slot.attribute);
  }
  std::set<size_t> picked;
  std::vector<std::string> out;
  while (static_cast<int>(out.size()) < count) {
    size_t i = rng_.NextBounded(values.size());
    if (!picked.insert(i).second) continue;
    out.push_back(values[i].ToString());
  }
  return out;
}

Result<BenchmarkQuery> WorkloadGenerator::Instantiate(const Shape& shape) {
  BenchmarkQuery q;
  q.shape_id = shape.id;

  // --- Build the gold configuration (keyword -> fragment mappings). -------
  core::Configuration config;

  // Projection keyword.
  {
    nlq::AnnotatedKeyword kw;
    kw.text = shape.projection.nl_word;
    kw.metadata.context = qfg::FragmentContext::kSelect;
    kw.metadata.aggs = shape.aggs;
    kw.metadata.group_by = shape.group_by;

    core::CandidateMapping c;
    c.kind = core::CandidateMapping::Kind::kAttribute;
    c.relation = shape.projection.relation;
    c.attribute = shape.projection.attribute;
    c.aggs = shape.aggs;
    c.group_by = shape.group_by;
    c.similarity = 1.0;
    c.fragment = qfg::SelectFragment(c.relation, c.attribute, c.aggs, false);
    q.gold_fragments[kw.text] = c.fragment.Key();
    config.mappings.push_back({kw, c});
    q.gold_parse.keywords.push_back(std::move(kw));
  }

  // NLQ assembly begins.
  std::string nlq_text =
      shape.command + " " + AggPhrase(shape.aggs) + shape.projection.nl_word;

  // Text-value keyword(s). Values must be distinct across slots: a repeated
  // string would merge two keywords in the gold annotation.
  std::set<std::string> used_values;
  auto add_value_slot = [&](const ValueSlotSpec& slot) -> Status {
    std::vector<std::string> values;
    for (int attempt = 0; attempt < 8; ++attempt) {
      TEMPLAR_ASSIGN_OR_RETURN(values, SampleValues(slot, slot.count));
      bool clash = false;
      for (const auto& v : values) clash = clash || used_values.count(v) > 0;
      if (!clash) break;
      values.clear();
    }
    if (values.empty()) {
      return Status::Internal("could not sample distinct values for " +
                              slot.relation + "." + slot.attribute);
    }
    for (const auto& v : values) used_values.insert(v);
    std::string phrase = slot.nl_template;
    for (const auto& v : values) phrase = FillValue(phrase, v);
    nlq_text += " " + phrase;

    for (const auto& v : values) {
      nlq::AnnotatedKeyword kw;
      kw.text = v;
      kw.metadata.context = qfg::FragmentContext::kWhere;
      kw.metadata.op = sql::BinaryOp::kEq;

      core::CandidateMapping c;
      c.kind = core::CandidateMapping::Kind::kPredicate;
      c.relation = slot.relation;
      c.attribute = slot.attribute;
      c.op = sql::BinaryOp::kEq;
      c.value = sql::Literal::String(v);
      c.similarity = 1.0;
      c.fragment = qfg::WhereFragment(c.ToPredicate(),
                                      qfg::ObscurityLevel::kFull);
      q.gold_fragments[kw.text] = c.fragment.Key();
      config.mappings.push_back({kw, c});
      q.gold_parse.keywords.push_back(std::move(kw));
    }
    return Status::OK();
  };
  if (shape.value) {
    TEMPLAR_RETURN_NOT_OK(add_value_slot(*shape.value));
  }
  if (shape.value2) {
    TEMPLAR_RETURN_NOT_OK(add_value_slot(*shape.value2));
  }

  // Numeric keyword.
  if (shape.numeric) {
    int64_t n = rng_.NextInt(shape.numeric->min_value, shape.numeric->max_value);
    nlq::AnnotatedKeyword kw;
    kw.text = shape.numeric->op_word + " " + std::to_string(n);
    if (!shape.numeric->unit_word.empty()) {
      kw.text += " " + shape.numeric->unit_word;
    }
    kw.metadata.context = qfg::FragmentContext::kWhere;
    kw.metadata.op = shape.numeric->op;
    nlq_text += " " + kw.text;

    core::CandidateMapping c;
    c.kind = core::CandidateMapping::Kind::kPredicate;
    c.relation = shape.numeric->relation;
    c.attribute = shape.numeric->attribute;
    c.op = shape.numeric->op;
    c.value = sql::Literal::Int(n);
    c.similarity = 1.0;
    c.fragment = qfg::WhereFragment(c.ToPredicate(),
                                    qfg::ObscurityLevel::kFull);
    q.gold_fragments[kw.text] = c.fragment.Key();
    config.mappings.push_back({kw, c});
    q.gold_parse.keywords.push_back(std::move(kw));
  }

  q.nlq = nlq_text;
  q.gold_parse.original = nlq_text;

  // --- Assemble the gold SQL through the shared assembler. ----------------
  graph::JoinPath jp;
  jp.edges = shape.join_edges;
  std::set<std::string> rels;
  for (const auto& e : jp.edges) {
    rels.insert(e.fk_relation);
    rels.insert(e.pk_relation);
  }
  for (const auto& inst : config.RelationBag()) rels.insert(inst);
  jp.relations.assign(rels.begin(), rels.end());
  jp.terminals = config.RelationBag();
  TEMPLAR_ASSIGN_OR_RETURN(q.gold_sql, nlidb::AssembleSql(config, jp));
  return q;
}

Result<std::vector<BenchmarkQuery>> WorkloadGenerator::GenerateBenchmark(
    const std::vector<Shape>& shapes, size_t count) {
  if (shapes.empty()) return Status::InvalidArgument("no shapes");
  std::vector<double> weights;
  weights.reserve(shapes.size());
  for (const auto& s : shapes) weights.push_back(s.weight);

  std::vector<BenchmarkQuery> out;
  std::set<std::string> seen_sql;  // No duplicate gold queries.
  size_t attempts = 0;
  while (out.size() < count && attempts < count * 20) {
    ++attempts;
    // Round-robin through shapes first so each appears at least once.
    const Shape& shape = out.size() < shapes.size()
                             ? shapes[out.size()]
                             : shapes[rng_.NextWeighted(weights)];
    auto q = Instantiate(shape);
    if (!q.ok()) return q.status();
    std::string key = q->gold_sql.ToString();
    if (!seen_sql.insert(std::move(key)).second) continue;
    out.push_back(std::move(*q));
  }
  if (out.size() < count) {
    return Status::Internal("could not generate " + std::to_string(count) +
                            " distinct queries (got " +
                            std::to_string(out.size()) + ")");
  }
  return out;
}

Result<std::vector<std::string>> WorkloadGenerator::GenerateLog(
    const std::vector<Shape>& shapes, size_t count) {
  if (shapes.empty()) return Status::InvalidArgument("no shapes");
  std::vector<double> weights;
  weights.reserve(shapes.size());
  for (const auto& s : shapes) weights.push_back(s.weight);
  std::vector<std::string> out;
  out.reserve(count);
  size_t attempts = 0;
  while (out.size() < count && attempts < count * 20) {
    ++attempts;
    const Shape& shape = out.size() < shapes.size()
                             ? shapes[out.size()]
                             : shapes[rng_.NextWeighted(weights)];
    auto q = Instantiate(shape);
    if (!q.ok()) continue;  // Log synthesis tolerates sparse value pools.
    out.push_back(q->gold_sql.ToString());
  }
  return out;
}

}  // namespace templar::datasets
